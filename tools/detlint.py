#!/usr/bin/env python3
"""detlint — determinism linter for the conscale simulation tree.

Every result this reproduction publishes rests on a determinism contract
(DESIGN.md §8): no wall-clock or ambient randomness on the simulation path,
no result-affecting iteration over unordered containers, no address-dependent
container ordering, and no raw heap churn outside the event arena. This tool
machine-checks that contract so a careless edit cannot silently break
bit-reproducibility.

Engines
-------
If ``clang.cindex`` (libclang) is importable, the ``unordered-iter`` rule is
checked semantically on a best-effort AST parse; everything else — and
everything, when libclang is absent — runs on a robust token-level scanner so
CI needs no dependencies beyond Python 3. Any libclang failure falls back to
the token engine per file; the tool never hard-fails because of a missing or
broken clang installation.

Rules
-----
banned-api      Wall-clock / ambient-randomness APIs on the sim path:
                std::chrono (and the three clocks), rand/srand, time/clock/
                gettimeofday/clock_gettime calls, std::random_device and the
                <random> engines outside common/rng.h, the thread_local
                keyword, and #include <chrono>/<random>/<ctime>.
unordered-iter  Range-for or .begin()/.cbegin() iteration over a variable
                declared as std::unordered_{map,set,multimap,multiset} in
                non-test code. Iterate a sorted view instead, or waive with
                a proof of order-independence.
pointer-key     Associative containers keyed by a pointer type
                (std::unordered_map<const Server*, ...> and friends): their
                iteration order depends on addresses, which depend on
                allocation history — the classic silent reproducibility
                leak.
raw-new         Raw new/delete expressions. Event-path allocation belongs to
                the simcore arena (simcore/event.h); model state belongs in
                containers or unique_ptr.
bad-waiver      A waiver comment with a missing/empty reason, or naming an
                unknown rule.
unused-waiver   A waiver that suppressed nothing — stale waivers must be
                deleted, so the waiver list stays an honest audit surface.

Waivers
-------
``// detlint: allow(<rule>) <reason>`` on the offending line or the line
directly above it suppresses that rule there. The reason is mandatory; every
waiver is counted and printable with --list-waivers, so the set of waivers is
itself a reviewable artifact.

Usage
-----
    detlint.py [--github] [--list-waivers] [--engine auto|tokens|clang]
               <file-or-dir> [...]

Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

CXX_EXTENSIONS = (".h", ".hpp", ".hh", ".cpp", ".cc", ".cxx")

RULES = (
    "banned-api",
    "unordered-iter",
    "pointer-key",
    "raw-new",
    "bad-waiver",
    "unused-waiver",
)

# The one sanctioned home for RNG machinery; RNG-engine identifiers are legal
# here and banned everywhere else.
RNG_HOME = "common/rng.h"

BANNED_CLOCK_IDENTIFIERS = {
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
}
BANNED_RNG_IDENTIFIERS = {
    "random_device",
    "mt19937",
    "mt19937_64",
    "default_random_engine",
    "minstd_rand",
    "minstd_rand0",
    "ranlux24",
    "ranlux48",
    "knuth_b",
}
# Free functions that read ambient time (or seed from it). Flagged when
# called unqualified, std::-qualified, or at global scope — but not as a
# member (`sim.time()` would be a deterministic model method).
BANNED_TIME_CALLS = {
    "time",
    "clock",
    "gettimeofday",
    "clock_gettime",
    "timespec_get",
    "rand",
    "srand",
    "rand_r",
    "random",
    "srandom",
}
BANNED_INCLUDES = {"chrono", "random", "ctime", "time.h", "sys/time.h"}

UNORDERED_CONTAINERS = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
}
# Ordered associative containers still leak address order when keyed by a
# pointer; the short names require a std:: qualifier to avoid false hits.
ORDERED_ASSOCIATIVE = {"map", "set", "multimap", "multiset"}

WAIVER_RE = re.compile(r"detlint:\s*allow\(([A-Za-z0-9_-]+)\)\s*(.*)")


@dataclass
class Token:
    kind: str  # "id", "num", "punct"
    text: str
    line: int


@dataclass
class Violation:
    path: str
    line: int
    rule: str
    message: str


@dataclass
class Waiver:
    path: str
    line: int
    rule: str
    reason: str
    used: int = 0


@dataclass
class FileScan:
    path: str
    tokens: list = field(default_factory=list)
    includes: list = field(default_factory=list)  # (line, header)
    waivers: list = field(default_factory=list)
    bad_waivers: list = field(default_factory=list)  # (line, message)


# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

_PUNCT3 = ("->*", "<<=", ">>=", "...")
_PUNCT2 = (
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
)

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")


def lex(text: str, path: str) -> FileScan:
    """Tokenizes C++ source, collecting waiver comments and #includes.

    Comments and string/char literals are consumed (never tokenized), so the
    rules cannot fire on prose. Raw strings and line continuations are
    handled; anything pathological degrades to skipping characters, never to
    an exception.
    """
    scan = FileScan(path=path)
    tokens = scan.tokens
    i = 0
    line = 1
    n = len(text)

    def record_comment(comment: str, comment_line: int) -> None:
        match = WAIVER_RE.search(comment)
        if not match:
            return
        rule, reason = match.group(1), match.group(2).strip()
        if rule not in RULES:
            scan.bad_waivers.append(
                (comment_line, f"waiver names unknown rule '{rule}'")
            )
        elif not reason:
            scan.bad_waivers.append(
                (comment_line,
                 f"waiver for '{rule}' has no reason — every waiver must "
                 "say why the code is safe")
            )
        else:
            scan.waivers.append(Waiver(path, comment_line, rule, reason))

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Preprocessor: record includes, then lex the rest of the line
        # normally (macro bodies can hide banned calls).
        if c == "#" and (not tokens or tokens[-1].line != line):
            match = re.match(r'#\s*include\s*[<"]([^>"]+)[>"]',
                             text[i:i + 200])
            if match:
                scan.includes.append((line, match.group(1)))
            i += 1
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                end = text.find("\n", i)
                if end == -1:
                    end = n
                record_comment(text[i:end], line)
                i = end
                continue
            if text[i + 1] == "*":
                end = text.find("*/", i + 2)
                if end == -1:
                    end = n
                else:
                    end += 2
                record_comment(text[i:end], line)
                line += text.count("\n", i, end)
                i = end
                continue
        # Raw string literal.
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            match = re.match(r'R"([^()\\ \t\n]*)\(', text[i:i + 40])
            if match:
                terminator = ")" + match.group(1) + '"'
                end = text.find(terminator, i)
                end = n if end == -1 else end + len(terminator)
                line += text.count("\n", i, end)
                i = end
                continue
        if c == '"' or c == "'":
            # Skip the literal, honouring escapes. A char literal like 'a'
            # and digit separators like 1'000 both land here; for the latter
            # the "literal" ends at the next quote, which is harmless for
            # linting purposes.
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c or text[j] == "\n":
                    break
                j += 1
            line += text.count("\n", i, min(j + 1, n))
            i = min(j + 1, n)
            continue
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] == "."):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        three = text[i:i + 3]
        if three in _PUNCT3:
            tokens.append(Token("punct", three, line))
            i += 3
            continue
        two = text[i:i + 2]
        if two in _PUNCT2:
            tokens.append(Token("punct", two, line))
            i += 2
            continue
        tokens.append(Token("punct", c, line))
        i += 1
    return scan


# --------------------------------------------------------------------------
# Token-stream helpers
# --------------------------------------------------------------------------

def match_angle(tokens, start):
    """Given tokens[start] == '<', returns the index just past the matching
    '>' (treating '>>' as two closers), or None if unbalanced/not a template
    argument list."""
    depth = 0
    i = start
    while i < len(tokens):
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{", "}") or tokens[i].kind == "punct" and t in (
                "&&", "||"):
            # Statement boundary or boolean operator: this '<' was a
            # comparison, not a template list.
            return None
        i += 1
    return None


def first_template_arg(tokens, lt_index):
    """Returns the token list of the first template argument of the angle
    list opening at lt_index, or None."""
    end = match_angle(tokens, lt_index)
    if end is None:
        return None
    depth = 0
    arg = []
    for i in range(lt_index, end):
        t = tokens[i].text
        if t == "<":
            depth += 1
            if depth == 1:
                continue
        elif t == ">" :
            depth -= 1
            if depth == 0:
                break
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                break
        elif t == "," and depth == 1:
            break
        if depth >= 1:
            arg.append(tokens[i])
    return arg


def is_std_qualified(tokens, i):
    """True when tokens[i] is preceded by `std ::`."""
    return (i >= 2 and tokens[i - 1].text == "::"
            and tokens[i - 2].text == "std")


def collect_unordered_names(scan: FileScan) -> set:
    """Names of variables/members declared with an unordered container type
    in this file (token-level heuristic: `unordered_xxx < ... > [&*] name`)."""
    names = set()
    tokens = scan.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in UNORDERED_CONTAINERS:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "<":
            continue
        end = match_angle(tokens, i + 1)
        if end is None:
            continue
        j = end
        while j < len(tokens) and tokens[j].text in ("&", "*", "const"):
            j += 1
        if j < len(tokens) and tokens[j].kind == "id":
            follower = tokens[j + 1].text if j + 1 < len(tokens) else ";"
            if follower in (";", "=", "{", ",", ")"):
                names.add(tokens[j].text)
    return names


# --------------------------------------------------------------------------
# Rule checks (token engine)
# --------------------------------------------------------------------------

def check_banned_api(scan: FileScan, report) -> None:
    rel = scan.path.replace(os.sep, "/")
    if rel.endswith(RNG_HOME):
        return  # the RNG home is where these identifiers are allowed
    for line, header in scan.includes:
        if header in BANNED_INCLUDES:
            report(line, "banned-api",
                   f"#include <{header}> pulls wall-clock/ambient-randomness "
                   "APIs onto the sim path; all time comes from "
                   "Simulation::now(), all randomness from common/rng.h")
    tokens = scan.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        name = tok.text
        if name == "chrono" and is_std_qualified(tokens, i):
            report(tok.line, "banned-api",
                   "std::chrono on the sim path — simulated time is "
                   "Simulation::now(), wall time is not reproducible")
            continue
        if name == "thread_local":
            report(tok.line, "banned-api",
                   "thread_local state breaks run isolation: parallel runs "
                   "sharing a worker thread would share it")
            continue
        if name in BANNED_CLOCK_IDENTIFIERS:
            report(tok.line, "banned-api",
                   f"{name} reads the wall clock; runs would no longer "
                   "replay bit-for-bit")
            continue
        if name in BANNED_RNG_IDENTIFIERS:
            report(tok.line, "banned-api",
                   f"{name} outside common/rng.h — every component draws "
                   "from an owned, seeded conscale::Rng")
            continue
        if name in BANNED_TIME_CALLS:
            if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
                continue
            prev = tokens[i - 1] if i > 0 else Token("punct", ";", 0)
            if prev.text in (".", "->"):
                continue  # member call on a model object; not libc
            if prev.text == "::" and i >= 2 and tokens[i - 2].kind == "id" \
                    and tokens[i - 2].text != "std":
                continue  # SomeClass::time(...) — not the libc function
            # `double time() const` declares a member; a call site is
            # preceded by punctuation (= ( , ; { ) + ...) or `return`.
            if prev.kind == "id" and prev.text != "return":
                continue
            if prev.text in ("*", "&", ">"):
                continue  # tail of a declarator type
            report(tok.line, "banned-api",
                   f"call of {name}() — ambient time/randomness is banned "
                   "on the sim path")


def check_pointer_key(scan: FileScan, report) -> None:
    tokens = scan.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        container = tok.text
        if container in ORDERED_ASSOCIATIVE:
            if not is_std_qualified(tokens, i):
                continue
        elif container not in UNORDERED_CONTAINERS:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "<":
            continue
        arg = first_template_arg(tokens, i + 1)
        if arg is None:
            continue
        if any(t.text == "*" for t in arg):
            key = " ".join(t.text for t in arg).replace(" *", "*")
            report(tok.line, "pointer-key",
                   f"std::{container} keyed by pointer type '{key}': "
                   "iteration order follows addresses, which follow "
                   "allocation history — key by a stable index instead")


def check_raw_new(scan: FileScan, report) -> None:
    tokens = scan.tokens
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        prev = tokens[i - 1].text if i > 0 else ""
        if tok.text == "new":
            if prev == "operator":
                continue
            report(tok.line, "raw-new",
                   "raw new expression — event-path allocation goes through "
                   "the simcore arena; model state belongs in containers or "
                   "make_unique")
        elif tok.text == "delete":
            if prev in ("=", "operator"):
                continue  # deleted special member / operator delete
            report(tok.line, "raw-new",
                   "raw delete expression — nothing on the sim path owns "
                   "raw heap pointers")


def check_unordered_iter(scan: FileScan, unordered_names, report) -> None:
    tokens = scan.tokens
    for i, tok in enumerate(tokens):
        # Iterator-pair loops: name.begin() / name.cbegin().
        if tok.kind == "id" and tok.text in ("begin", "cbegin"):
            if (i >= 2 and tokens[i - 1].text in (".", "->")
                    and tokens[i - 2].kind == "id"
                    and tokens[i - 2].text in unordered_names
                    and i + 1 < len(tokens) and tokens[i + 1].text == "("):
                report(tok.line, "unordered-iter",
                       f"iterating '{tokens[i - 2].text}' (declared "
                       "unordered) — hash order is not part of the "
                       "determinism contract; iterate a sorted view or "
                       "waive with a proof of order-independence")
            continue
        if tok.kind != "id" or tok.text != "for":
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        # Find the range-for ':' at parenthesis depth 1.
        depth = 0
        colon = None
        close = None
        for j in range(i + 1, min(i + 200, len(tokens))):
            t = tokens[j].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    close = j
                    break
            elif t == ";" and depth == 1:
                break  # classic three-clause for
            elif t == ":" and depth == 1 and colon is None:
                colon = j
        if colon is None or close is None:
            continue
        range_expr = tokens[colon + 1:close]
        # A call in the range expression means a view/copy was taken
        # deliberately (e.g. sorted_keys(users_)) — not a direct iteration.
        if any(t.text == "(" for t in range_expr):
            continue
        for t in range_expr:
            if t.kind == "id" and t.text in unordered_names:
                report(tok.line, "unordered-iter",
                       f"range-for over '{t.text}' (declared unordered) — "
                       "hash order is not part of the determinism "
                       "contract; iterate a sorted view or waive with a "
                       "proof of order-independence")
                break


# --------------------------------------------------------------------------
# Optional libclang engine (unordered-iter only; best-effort)
# --------------------------------------------------------------------------

def clang_unordered_iter(path: str, report) -> bool:
    """Semantic unordered-iter check via libclang. Returns True when the
    check ran (so the token-level version is skipped); any failure returns
    False and the caller falls back."""
    try:
        from clang import cindex  # type: ignore

        index = cindex.Index.create()
        tu = index.parse(path, args=["-std=c++20", "-Isrc", "-x", "c++"])
        if any(d.severity >= cindex.Diagnostic.Fatal
               for d in tu.diagnostics):
            return False

        def walk(cursor):
            for child in cursor.walk_preorder():
                if child.kind != cindex.CursorKind.CXX_FOR_RANGE_STMT:
                    continue
                children = list(child.get_children())
                if len(children) < 2:
                    continue
                range_type = children[-2].type.spelling
                if "unordered_map" in range_type or \
                        "unordered_set" in range_type or \
                        "unordered_multi" in range_type:
                    report(child.location.line, "unordered-iter",
                           f"range-for over '{range_type}' — hash order is "
                           "not part of the determinism contract")

        walk(tu.cursor)
        return True
    except Exception:  # noqa: BLE001 — clang is best-effort by design
        return False


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def is_test_path(path: str) -> bool:
    parts = path.replace(os.sep, "/").split("/")
    return "tests" in parts or "test" in parts


def gather_files(paths):
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
    # Deterministic order regardless of argument order.
    return sorted(dict.fromkeys(files))


def lint_files(files, engine="auto"):
    """Lints `files`; returns (violations, waivers)."""
    scans = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as error:
            raise FileNotFoundError(f"{path}: {error}") from error
        scans.append(lex(text, path))

    # Header/source pairing for the unordered-name table: foo.cpp sees the
    # members foo.h declares (the common member-in-header, loop-in-source
    # shape). Names declared in the file itself always apply.
    names_by_stem = {}
    for scan in scans:
        stem = os.path.splitext(os.path.basename(scan.path))[0]
        names_by_stem.setdefault(stem, set()).update(
            collect_unordered_names(scan))

    violations = []
    all_waivers = []
    for scan in scans:
        waiver_index = {}
        for waiver in scan.waivers:
            waiver_index.setdefault((waiver.rule, waiver.line), waiver)
            all_waivers.append(waiver)

        def report(line, rule, message, scan=scan, waiver_index=waiver_index):
            # A waiver covers its own line and the line directly below it.
            waiver = waiver_index.get((rule, line)) or \
                waiver_index.get((rule, line - 1))
            if waiver is not None:
                waiver.used += 1
                return
            violations.append(Violation(scan.path, line, rule, message))

        for line, message in scan.bad_waivers:
            violations.append(Violation(scan.path, line, "bad-waiver",
                                        message))

        check_banned_api(scan, report)
        check_pointer_key(scan, report)
        check_raw_new(scan, report)

        if not is_test_path(scan.path):
            handled = False
            if engine in ("auto", "clang"):
                handled = clang_unordered_iter(scan.path, report)
            if not handled:
                if engine == "clang":
                    print(f"warning: libclang unavailable for {scan.path}; "
                          "using token engine", file=sys.stderr)
                stem = os.path.splitext(os.path.basename(scan.path))[0]
                names = set(names_by_stem.get(stem, set()))
                names.update(collect_unordered_names(scan))
                check_unordered_iter(scan, names, report)

    for waiver in all_waivers:
        if waiver.used == 0:
            violations.append(Violation(
                waiver.path, waiver.line, "unused-waiver",
                f"waiver for '{waiver.rule}' suppresses nothing — delete it "
                "(stale waivers rot the audit surface)"))

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations, all_waivers


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="detlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub Actions annotations")
    parser.add_argument("--list-waivers", action="store_true",
                        help="print every active waiver with its reason")
    parser.add_argument("--engine", choices=("auto", "tokens", "clang"),
                        default="auto",
                        help="auto = libclang if importable, else tokens")
    args = parser.parse_args(argv)

    try:
        files = gather_files(args.paths)
    except FileNotFoundError as error:
        print(f"detlint: no such file or directory: {error}",
              file=sys.stderr)
        return 2
    if not files:
        print("detlint: no C++ sources under the given paths",
              file=sys.stderr)
        return 2

    try:
        violations, waivers = lint_files(files, engine=args.engine)
    except FileNotFoundError as error:
        print(f"detlint: {error}", file=sys.stderr)
        return 2

    if args.list_waivers:
        for waiver in sorted(waivers, key=lambda w: (w.path, w.line)):
            status = "used" if waiver.used else "UNUSED"
            print(f"{waiver.path}:{waiver.line}: waiver({waiver.rule}) "
                  f"[{status}] {waiver.reason}")

    for violation in violations:
        if args.github:
            print(f"::error file={violation.path},line={violation.line},"
                  f"title=detlint({violation.rule})::{violation.message}")
        else:
            print(f"{violation.path}:{violation.line}: [{violation.rule}] "
                  f"{violation.message}")

    used = sum(1 for w in waivers if w.used)
    print(f"detlint: {len(files)} files, {len(violations)} violation(s), "
          f"{used} active waiver(s)", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
