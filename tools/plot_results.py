#!/usr/bin/env python3
"""Render the CSV dumps produced by the bench harnesses as PNG figures.

The bench binaries print terminal charts by themselves; this script is for
paper-quality figures. Pass `csv_dir=<dir>` to any bench to produce the CSVs,
then:

    ./tools/plot_results.py out/fig10_ec2.csv out/fig10_conscale.csv
    ./tools/plot_results.py --scatter out/fig06_scatter.csv

Requires matplotlib (not needed by anything else in the repository).
"""
import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        rows = list(reader)
    if not rows:
        raise SystemExit(f"{path}: empty CSV")
    return {k: [float(r[k]) for r in rows] for k in rows[0]}


def plot_timeline(paths, output):
    import matplotlib.pyplot as plt

    fig, (ax_rt, ax_tp) = plt.subplots(2, 1, figsize=(9, 6), sharex=True)
    for path in paths:
        data = read_csv(path)
        label = os.path.splitext(os.path.basename(path))[0]
        ax_rt.plot(data["t"], data["mean_rt_ms"], label=label, linewidth=1)
        ax_tp.plot(data["t"], data["throughput_rps"], label=label, linewidth=1)
    ax_rt.set_ylabel("Response Time [ms]")
    ax_rt.legend()
    ax_tp.set_ylabel("Throughput [reqs/s]")
    ax_tp.set_xlabel("Timeline [s]")
    fig.tight_layout()
    fig.savefig(output, dpi=150)
    print(f"wrote {output}")


def plot_scatter(paths, output):
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(8, 5))
    for path in paths:
        data = read_csv(path)
        label = os.path.splitext(os.path.basename(path))[0]
        ax.scatter(data["concurrency"], data["throughput"], s=4, alpha=0.4,
                   label=label)
    ax.set_xlabel("Concurrency [#]")
    ax.set_ylabel("Throughput [reqs/s]")
    ax.legend()
    fig.tight_layout()
    fig.savefig(output, dpi=150)
    print(f"wrote {output}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csvs", nargs="+", help="CSV files from a bench run")
    parser.add_argument("--scatter", action="store_true",
                        help="treat inputs as concurrency/throughput scatters")
    parser.add_argument("-o", "--output", default=None,
                        help="output PNG (default: derived from first input)")
    args = parser.parse_args()

    try:
        import matplotlib  # noqa: F401
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    output = args.output or (
        os.path.splitext(args.csvs[0])[0] +
        ("_scatter.png" if args.scatter else "_timeline.png"))
    if args.scatter:
        plot_scatter(args.csvs, output)
    else:
        plot_timeline(args.csvs, output)


if __name__ == "__main__":
    main()
