#!/usr/bin/env python3
"""Render the CSV dumps produced by the bench harnesses as PNG figures.

The bench binaries print terminal charts by themselves; this script is for
paper-quality figures. Pass `csv_dir=<dir>` to any bench to produce the CSVs,
then:

    ./tools/plot_results.py out/fig10_ec2.csv out/fig10_conscale.csv
    ./tools/plot_results.py --scatter out/fig06_scatter.csv
    ./tools/plot_results.py --windows out/resilience_crash_ConScale_windows.csv \\
        out/resilience_crash_ConScale.csv
    ./tools/plot_results.py --resilience out/resilience.csv
    ./tools/plot_results.py --lanes out/scale_summary.csv

Requires matplotlib (not needed by anything else in the repository).
"""
import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        rows = list(reader)
    if not rows:
        raise SystemExit(f"{path}: empty CSV")
    return {k: [float(r[k]) for r in rows] for k in rows[0]}


def read_csv_raw(path):
    """Rows as dicts of strings (for CSVs with non-numeric columns)."""
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


# Shading colors per fault kind (matching src/faults/fault_plan.h kinds).
FAULT_COLORS = {"crash": "tab:red", "cpu": "tab:orange",
                "boot": "tab:purple", "drop": "tab:gray"}


def shade_fault_windows(ax, windows_path):
    """Shades each [start, end) window of a *_windows.csv on the axis."""
    labeled = set()
    for row in read_csv_raw(windows_path):
        kind = row["kind"]
        start, end = float(row["start"]), float(row["end"])
        if end <= start:  # permanent crash: zero-length outage marker
            ax.axvline(start, color=FAULT_COLORS.get(kind, "black"),
                       linestyle="--", linewidth=1)
            continue
        ax.axvspan(start, end, color=FAULT_COLORS.get(kind, "black"),
                   alpha=0.15, label=None if kind in labeled else kind)
        labeled.add(kind)


def plot_timeline(paths, output, windows=None):
    import matplotlib.pyplot as plt

    fig, (ax_rt, ax_tp) = plt.subplots(2, 1, figsize=(9, 6), sharex=True)
    for path in paths:
        data = read_csv(path)
        label = os.path.splitext(os.path.basename(path))[0]
        ax_rt.plot(data["t"], data["mean_rt_ms"], label=label, linewidth=1)
        ax_tp.plot(data["t"], data["throughput_rps"], label=label, linewidth=1)
    if windows:
        shade_fault_windows(ax_rt, windows)
        shade_fault_windows(ax_tp, windows)
    ax_rt.set_ylabel("Response Time [ms]")
    ax_rt.legend()
    ax_tp.set_ylabel("Throughput [reqs/s]")
    ax_tp.set_xlabel("Timeline [s]")
    fig.tight_layout()
    fig.savefig(output, dpi=150)
    print(f"wrote {output}")


def plot_resilience(path, output):
    """Grouped tail-latency bars from bench_resilience's resilience.csv:
    one group per fault scenario, one bar per framework, worst-case p99
    across the traces in the grid."""
    import matplotlib.pyplot as plt

    rows = read_csv_raw(path)
    if not rows:
        raise SystemExit(f"{path}: empty CSV")
    faults, frameworks, worst = [], [], {}
    for row in rows:
        fault, framework = row["fault"], row["framework"]
        if fault not in faults:
            faults.append(fault)
        if framework not in frameworks:
            frameworks.append(framework)
        key = (fault, framework)
        worst[key] = max(worst.get(key, 0.0), float(row["p99_ms"]))

    fig, ax = plt.subplots(figsize=(9, 5))
    width = 0.8 / len(frameworks)
    for j, framework in enumerate(frameworks):
        xs = [i + (j - (len(frameworks) - 1) / 2) * width
              for i in range(len(faults))]
        ys = [worst.get((fault, framework), 0.0) for fault in faults]
        ax.bar(xs, ys, width=width, label=framework)
    ax.set_xticks(range(len(faults)))
    ax.set_xticklabels(faults)
    ax.set_xlabel("Fault scenario")
    ax.set_ylabel("Worst-case p99 [ms]")
    ax.legend()
    fig.tight_layout()
    fig.savefig(output, dpi=150)
    print(f"wrote {output}")


def plot_nodes(paths, output):
    """Per-node latency breakdown bars from a graph bench's *_nodes.csv
    (bench_dag / bench_cache_sweep): one group per service node, one bar
    per percentile, one hatch family per input file so two runs (e.g. the
    hit-ratio sweep's extremes) can be compared side by side."""
    import matplotlib.pyplot as plt

    percentiles = ["p50_ms", "p95_ms", "p99_ms"]
    fig, ax = plt.subplots(figsize=(9, 5))
    hatches = [None, "//", "..", "xx"]
    width = 0.8 / (len(percentiles) * len(paths))
    # Union of node lists across every input, in first-appearance order: a
    # node present in only some files (topologies differ, or a cache node
    # never served) still gets its group, with zero bars where absent —
    # taking the first file's list would silently drop the others' nodes.
    all_rows = []
    nodes = []
    for path in paths:
        rows = read_csv_raw(path)
        if not rows:
            raise SystemExit(f"{path}: empty CSV")
        all_rows.append(rows)
        for row in rows:
            if row["node"] not in nodes:
                nodes.append(row["node"])
    for f, path in enumerate(paths):
        rows = all_rows[f]
        label_base = os.path.splitext(os.path.basename(path))[0]
        by_node = {row["node"]: row for row in rows}
        for j, pct in enumerate(percentiles):
            slot = f * len(percentiles) + j
            offset = (slot - (len(percentiles) * len(paths) - 1) / 2) * width
            xs = [i + offset for i in range(len(nodes))]
            ys = [float(by_node[node][pct]) if node in by_node else 0.0
                  for node in nodes]
            label = (pct if len(paths) == 1
                     else f"{label_base} {pct}")
            ax.bar(xs, ys, width=width, label=label,
                   hatch=hatches[f % len(hatches)])
    ax.set_xticks(range(len(nodes)))
    ax.set_xticklabels(nodes, rotation=20, ha="right")
    ax.set_xlabel("Service node")
    ax.set_ylabel("Node-local latency [ms]")
    ax.legend()
    fig.tight_layout()
    fig.savefig(output, dpi=150)
    print(f"wrote {output}")


def plot_lanes(path, output):
    """Parallel-speedup bars from bench_scale's scale_summary.csv: one group
    per (topology, framework, mode) cell, one bar for the laned run's
    speedup over its threads=1 serial reference from the same bench
    invocation (wall_s ratio; both runs are bit-identical by contract)."""
    import matplotlib.pyplot as plt

    rows = read_csv_raw(path)
    if not rows:
        raise SystemExit(f"{path}: empty CSV")
    # Pair each laned row with the serial (threads=1) row that follows it in
    # the same cell; compare=0 runs have no reference and are skipped.
    cells, serial, laned = [], {}, {}
    for row in rows:
        key = (row["topology"], row["framework"], row["mode"])
        if int(row["threads"]) == 1:
            serial[key] = float(row["wall_s"])
        else:
            laned[key] = (int(row["threads"]), float(row["wall_s"]))
            if key not in cells:
                cells.append(key)

    fig, ax = plt.subplots(figsize=(9, 5))
    labels, speedups, bars = [], [], []
    for key in cells:
        if key not in serial or key not in laned:
            continue
        threads, wall = laned[key]
        if wall <= 0.0:
            continue
        topology, framework, mode = key
        labels.append(f"{topology}/{framework}\n{mode} x{threads}")
        speedups.append(serial[key] / wall)
    if not labels:
        raise SystemExit(f"{path}: no laned/serial row pairs to plot")
    bars = ax.bar(range(len(labels)), speedups, color="tab:blue")
    ax.bar_label(bars, fmt="%.2fx")
    ax.axhline(1.0, color="black", linewidth=1, linestyle="--",
               label="serial reference")
    ax.set_xticks(range(len(labels)))
    ax.set_xticklabels(labels)
    ax.set_ylabel("Speedup over threads=1 [x]")
    ax.legend()
    fig.tight_layout()
    fig.savefig(output, dpi=150)
    print(f"wrote {output}")


def plot_scatter(paths, output):
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(8, 5))
    for path in paths:
        data = read_csv(path)
        label = os.path.splitext(os.path.basename(path))[0]
        ax.scatter(data["concurrency"], data["throughput"], s=4, alpha=0.4,
                   label=label)
    ax.set_xlabel("Concurrency [#]")
    ax.set_ylabel("Throughput [reqs/s]")
    ax.legend()
    fig.tight_layout()
    fig.savefig(output, dpi=150)
    print(f"wrote {output}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csvs", nargs="+", help="CSV files from a bench run")
    parser.add_argument("--scatter", action="store_true",
                        help="treat inputs as concurrency/throughput scatters")
    parser.add_argument("--resilience", action="store_true",
                        help="treat the input as bench_resilience's "
                             "resilience.csv (per-fault tail-latency bars)")
    parser.add_argument("--lanes", action="store_true",
                        help="treat the input as bench_scale's "
                             "scale_summary.csv (parallel-speedup bars per "
                             "topology/framework/mode cell)")
    parser.add_argument("--nodes", action="store_true",
                        help="treat inputs as *_nodes.csv from bench_dag / "
                             "bench_cache_sweep (per-node latency bars; "
                             "several files overlay for comparison)")
    parser.add_argument("--windows", default=None, metavar="CSV",
                        help="a *_windows.csv from bench_resilience; shades "
                             "the fault windows on the timeline")
    parser.add_argument("-o", "--output", default=None,
                        help="output PNG (default: derived from first input)")
    args = parser.parse_args()

    try:
        import matplotlib  # noqa: F401
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    suffix = ("_scatter.png" if args.scatter else
              "_tails.png" if args.resilience else
              "_speedup.png" if args.lanes else
              "_bars.png" if args.nodes else "_timeline.png")
    output = args.output or (os.path.splitext(args.csvs[0])[0] + suffix)
    if args.scatter:
        plot_scatter(args.csvs, output)
    elif args.resilience:
        plot_resilience(args.csvs[0], output)
    elif args.lanes:
        plot_lanes(args.csvs[0], output)
    elif args.nodes:
        plot_nodes(args.csvs, output)
    else:
        plot_timeline(args.csvs, output, windows=args.windows)


if __name__ == "__main__":
    main()
