#!/usr/bin/env python3
"""Complexity gate over bench_micro_core JSON output.

Reads a google-benchmark ``--benchmark_format=json`` dump and asserts that
per-item cost stays flat where the design says it must. The bounds are
*ratios between benchmarks from the same run*, so runner speed and CPU
contention cancel out; only an algorithmic regression (an O(n)-per-event
scan creeping back into the PS resource or the warehouse ingest path) can
trip them.

Gates (see EXPERIMENTS.md "virtual-time PS + metrics hot paths"):

* PsResourceChurn/2048 items/s within 10x of PsResourceChurn/4. Measured
  3-5x on the virtual-time implementation (run-to-run noise included); the
  pre-rewrite O(n) scan sat at ~630x, so 10x is generous against noise and
  unmissable against regression.
* WarehouseIngestQuery/14400 items/s within 6x of /3600. Interned-id append
  is O(1) amortized (measured ~3x, dominated by one series reallocation in
  the timed region); a per-ingest name lookup or full-series window copy
  scales with prefill and blows well past 6x.

Usage: check_bench_ratios.py <bench.json>
"""

import json
import sys

# (faster benchmark, slower benchmark, max allowed items/s ratio)
GATES = [
    ("BM_PsResourceChurn/4", "BM_PsResourceChurn/2048", 10.0),
    ("BM_WarehouseIngestQuery/3600", "BM_WarehouseIngestQuery/14400", 6.0),
    # Lane-engine per-event cost: 16x more closed-loop sessions may pay a
    # heap log factor (~1.3x in theory, a few x with cache effects), never a
    # linear one — an O(n) scan per event would sit at 16x minimum.
    ("BM_LaneSessionChurn/4096", "BM_LaneSessionChurn/65536", 5.0),
    # Same bound for the tier-laned variant: the null-message protocol's
    # per-round EOT fixed point is O(channels) per round, independent of the
    # session count, so its per-event cost must stay as flat as the
    # time-window path's.
    ("BM_LaneTierChurn/4096", "BM_LaneTierChurn/65536", 5.0),
]


def main(path):
    with open(path) as f:
        report = json.load(f)
    rates = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows if repetitions are ever enabled
        rates[bench["name"]] = bench.get("items_per_second")

    failures = []
    for fast_name, slow_name, bound in GATES:
        fast = rates.get(fast_name)
        slow = rates.get(slow_name)
        if not fast or not slow:
            failures.append(
                f"missing benchmark(s): {fast_name}={fast} {slow_name}={slow}"
            )
            continue
        ratio = fast / slow
        verdict = "OK" if ratio <= bound else "FAIL"
        print(
            f"{verdict}: {fast_name} / {slow_name} items-per-second ratio "
            f"{ratio:.2f} (bound {bound:g})"
        )
        if ratio > bound:
            failures.append(
                f"{slow_name} is {ratio:.1f}x slower per item than "
                f"{fast_name} (bound {bound:g}x) — hot path no longer flat"
            )

    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
