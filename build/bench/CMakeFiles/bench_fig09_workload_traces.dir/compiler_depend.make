# Empty compiler generated dependencies file for bench_fig09_workload_traces.
# This may be replaced when dependencies are built.
