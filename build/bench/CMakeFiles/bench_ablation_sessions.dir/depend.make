# Empty dependencies file for bench_ablation_sessions.
# This may be replaced when dependencies are built.
