file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sessions.dir/bench_ablation_sessions.cpp.o"
  "CMakeFiles/bench_ablation_sessions.dir/bench_ablation_sessions.cpp.o.d"
  "bench_ablation_sessions"
  "bench_ablation_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
