# Empty compiler generated dependencies file for bench_fig11_dcm_vs_conscale.
# This may be replaced when dependencies are built.
