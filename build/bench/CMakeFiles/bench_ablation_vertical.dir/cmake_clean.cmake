file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vertical.dir/bench_ablation_vertical.cpp.o"
  "CMakeFiles/bench_ablation_vertical.dir/bench_ablation_vertical.cpp.o.d"
  "bench_ablation_vertical"
  "bench_ablation_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
