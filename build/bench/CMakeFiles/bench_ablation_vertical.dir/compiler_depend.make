# Empty compiler generated dependencies file for bench_ablation_vertical.
# This may be replaced when dependencies are built.
