# Empty compiler generated dependencies file for bench_fig05_fine_grained_monitoring.
# This may be replaced when dependencies are built.
