file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_fine_grained_monitoring.dir/bench_fig05_fine_grained_monitoring.cpp.o"
  "CMakeFiles/bench_fig05_fine_grained_monitoring.dir/bench_fig05_fine_grained_monitoring.cpp.o.d"
  "bench_fig05_fine_grained_monitoring"
  "bench_fig05_fine_grained_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_fine_grained_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
