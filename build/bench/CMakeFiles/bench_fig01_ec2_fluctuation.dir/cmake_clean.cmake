file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_ec2_fluctuation.dir/bench_fig01_ec2_fluctuation.cpp.o"
  "CMakeFiles/bench_fig01_ec2_fluctuation.dir/bench_fig01_ec2_fluctuation.cpp.o.d"
  "bench_fig01_ec2_fluctuation"
  "bench_fig01_ec2_fluctuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_ec2_fluctuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
