# Empty compiler generated dependencies file for bench_fig01_ec2_fluctuation.
# This may be replaced when dependencies are built.
