# Empty compiler generated dependencies file for bench_fig07_factor_study.
# This may be replaced when dependencies are built.
