# Empty dependencies file for bench_fig10_ec2_vs_conscale.
# This may be replaced when dependencies are built.
