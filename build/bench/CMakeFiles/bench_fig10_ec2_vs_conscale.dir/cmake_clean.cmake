file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ec2_vs_conscale.dir/bench_fig10_ec2_vs_conscale.cpp.o"
  "CMakeFiles/bench_fig10_ec2_vs_conscale.dir/bench_fig10_ec2_vs_conscale.cpp.o.d"
  "bench_fig10_ec2_vs_conscale"
  "bench_fig10_ec2_vs_conscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ec2_vs_conscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
