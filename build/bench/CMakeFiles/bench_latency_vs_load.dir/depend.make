# Empty dependencies file for bench_latency_vs_load.
# This may be replaced when dependencies are built.
