# Empty compiler generated dependencies file for bench_table1_tail_latency.
# This may be replaced when dependencies are built.
