# Empty dependencies file for bench_fig03_concurrency_sweep.
# This may be replaced when dependencies are built.
