# Empty dependencies file for bench_fig06_scatter_correlation.
# This may be replaced when dependencies are built.
