file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_scatter_correlation.dir/bench_fig06_scatter_correlation.cpp.o"
  "CMakeFiles/bench_fig06_scatter_correlation.dir/bench_fig06_scatter_correlation.cpp.o.d"
  "bench_fig06_scatter_correlation"
  "bench_fig06_scatter_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_scatter_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
