file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interval.dir/bench_ablation_interval.cpp.o"
  "CMakeFiles/bench_ablation_interval.dir/bench_ablation_interval.cpp.o.d"
  "bench_ablation_interval"
  "bench_ablation_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
