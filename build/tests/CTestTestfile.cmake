# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_tests "/root/repo/build/tests/common_tests")
set_tests_properties(common_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simcore_tests "/root/repo/build/tests/simcore_tests")
set_tests_properties(simcore_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;19;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(resources_tests "/root/repo/build/tests/resources_tests")
set_tests_properties(resources_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_tests "/root/repo/build/tests/workload_tests")
set_tests_properties(workload_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;28;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tier_tests "/root/repo/build/tests/tier_tests")
set_tests_properties(tier_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;36;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cluster_tests "/root/repo/build/tests/cluster_tests")
set_tests_properties(cluster_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;39;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(metrics_tests "/root/repo/build/tests/metrics_tests")
set_tests_properties(metrics_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;44;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_tests "/root/repo/build/tests/analysis_tests")
set_tests_properties(analysis_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;50;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sct_tests "/root/repo/build/tests/sct_tests")
set_tests_properties(sct_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;54;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(conscale_tests "/root/repo/build/tests/conscale_tests")
set_tests_properties(conscale_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;58;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(experiments_tests "/root/repo/build/tests/experiments_tests")
set_tests_properties(experiments_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;66;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_tests "/root/repo/build/tests/integration_tests")
set_tests_properties(integration_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;71;cs_add_test;/root/repo/tests/CMakeLists.txt;0;")
