file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/properties_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/properties_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/scaling_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/scaling_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
