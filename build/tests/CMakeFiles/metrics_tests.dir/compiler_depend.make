# Empty compiler generated dependencies file for metrics_tests.
# This may be replaced when dependencies are built.
