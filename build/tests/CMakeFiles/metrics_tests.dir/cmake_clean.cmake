file(REMOVE_RECURSE
  "CMakeFiles/metrics_tests.dir/metrics/interval_test.cpp.o"
  "CMakeFiles/metrics_tests.dir/metrics/interval_test.cpp.o.d"
  "CMakeFiles/metrics_tests.dir/metrics/latency_breakdown_test.cpp.o"
  "CMakeFiles/metrics_tests.dir/metrics/latency_breakdown_test.cpp.o.d"
  "CMakeFiles/metrics_tests.dir/metrics/monitor_test.cpp.o"
  "CMakeFiles/metrics_tests.dir/metrics/monitor_test.cpp.o.d"
  "CMakeFiles/metrics_tests.dir/metrics/warehouse_test.cpp.o"
  "CMakeFiles/metrics_tests.dir/metrics/warehouse_test.cpp.o.d"
  "metrics_tests"
  "metrics_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
