file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/analytic_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/analytic_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/mva_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/mva_test.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
