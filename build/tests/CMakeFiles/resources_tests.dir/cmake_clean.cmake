file(REMOVE_RECURSE
  "CMakeFiles/resources_tests.dir/resources/fcfs_resource_test.cpp.o"
  "CMakeFiles/resources_tests.dir/resources/fcfs_resource_test.cpp.o.d"
  "CMakeFiles/resources_tests.dir/resources/ps_resource_test.cpp.o"
  "CMakeFiles/resources_tests.dir/resources/ps_resource_test.cpp.o.d"
  "CMakeFiles/resources_tests.dir/resources/token_pool_test.cpp.o"
  "CMakeFiles/resources_tests.dir/resources/token_pool_test.cpp.o.d"
  "resources_tests"
  "resources_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resources_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
