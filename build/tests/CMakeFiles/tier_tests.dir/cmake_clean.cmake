file(REMOVE_RECURSE
  "CMakeFiles/tier_tests.dir/tier/server_test.cpp.o"
  "CMakeFiles/tier_tests.dir/tier/server_test.cpp.o.d"
  "tier_tests"
  "tier_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tier_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
