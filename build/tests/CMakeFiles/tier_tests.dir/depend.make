# Empty dependencies file for tier_tests.
# This may be replaced when dependencies are built.
