# Empty compiler generated dependencies file for simcore_tests.
# This may be replaced when dependencies are built.
