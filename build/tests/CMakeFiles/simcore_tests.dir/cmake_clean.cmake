file(REMOVE_RECURSE
  "CMakeFiles/simcore_tests.dir/simcore/simulation_fuzz_test.cpp.o"
  "CMakeFiles/simcore_tests.dir/simcore/simulation_fuzz_test.cpp.o.d"
  "CMakeFiles/simcore_tests.dir/simcore/simulation_test.cpp.o"
  "CMakeFiles/simcore_tests.dir/simcore/simulation_test.cpp.o.d"
  "simcore_tests"
  "simcore_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcore_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
