
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/load_balancer_test.cpp" "tests/CMakeFiles/cluster_tests.dir/cluster/load_balancer_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_tests.dir/cluster/load_balancer_test.cpp.o.d"
  "/root/repo/tests/cluster/system_test.cpp" "tests/CMakeFiles/cluster_tests.dir/cluster/system_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_tests.dir/cluster/system_test.cpp.o.d"
  "/root/repo/tests/cluster/vm_tier_test.cpp" "tests/CMakeFiles/cluster_tests.dir/cluster/vm_tier_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_tests.dir/cluster/vm_tier_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/cs_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/conscale/CMakeFiles/cs_conscale.dir/DependInfo.cmake"
  "/root/repo/build/src/sct/CMakeFiles/cs_sct.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tier/CMakeFiles/cs_tier.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/cs_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cs_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
