file(REMOVE_RECURSE
  "CMakeFiles/cluster_tests.dir/cluster/load_balancer_test.cpp.o"
  "CMakeFiles/cluster_tests.dir/cluster/load_balancer_test.cpp.o.d"
  "CMakeFiles/cluster_tests.dir/cluster/system_test.cpp.o"
  "CMakeFiles/cluster_tests.dir/cluster/system_test.cpp.o.d"
  "CMakeFiles/cluster_tests.dir/cluster/vm_tier_test.cpp.o"
  "CMakeFiles/cluster_tests.dir/cluster/vm_tier_test.cpp.o.d"
  "cluster_tests"
  "cluster_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
