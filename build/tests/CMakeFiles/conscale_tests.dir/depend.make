# Empty dependencies file for conscale_tests.
# This may be replaced when dependencies are built.
