file(REMOVE_RECURSE
  "CMakeFiles/conscale_tests.dir/conscale/agents_test.cpp.o"
  "CMakeFiles/conscale_tests.dir/conscale/agents_test.cpp.o.d"
  "CMakeFiles/conscale_tests.dir/conscale/controller_test.cpp.o"
  "CMakeFiles/conscale_tests.dir/conscale/controller_test.cpp.o.d"
  "CMakeFiles/conscale_tests.dir/conscale/estimator_service_test.cpp.o"
  "CMakeFiles/conscale_tests.dir/conscale/estimator_service_test.cpp.o.d"
  "CMakeFiles/conscale_tests.dir/conscale/framework_test.cpp.o"
  "CMakeFiles/conscale_tests.dir/conscale/framework_test.cpp.o.d"
  "CMakeFiles/conscale_tests.dir/conscale/policy_test.cpp.o"
  "CMakeFiles/conscale_tests.dir/conscale/policy_test.cpp.o.d"
  "CMakeFiles/conscale_tests.dir/conscale/threshold_rule_test.cpp.o"
  "CMakeFiles/conscale_tests.dir/conscale/threshold_rule_test.cpp.o.d"
  "conscale_tests"
  "conscale_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conscale_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
