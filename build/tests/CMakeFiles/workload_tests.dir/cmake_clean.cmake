file(REMOVE_RECURSE
  "CMakeFiles/workload_tests.dir/workload/client_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/client_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/mix_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/mix_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/open_loop_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/open_loop_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/session_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/session_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/trace_io_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/trace_io_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/trace_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/trace_test.cpp.o.d"
  "workload_tests"
  "workload_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
