file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/ascii_chart_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/ascii_chart_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/csv_config_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/csv_config_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/histogram_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/histogram_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/json_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/json_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/rng_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/stats_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/stats_test.cpp.o.d"
  "common_tests"
  "common_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
