# Empty dependencies file for sct_tests.
# This may be replaced when dependencies are built.
