file(REMOVE_RECURSE
  "CMakeFiles/sct_tests.dir/sct/estimator_test.cpp.o"
  "CMakeFiles/sct_tests.dir/sct/estimator_test.cpp.o.d"
  "CMakeFiles/sct_tests.dir/sct/scatter_test.cpp.o"
  "CMakeFiles/sct_tests.dir/sct/scatter_test.cpp.o.d"
  "sct_tests"
  "sct_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sct_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
