file(REMOVE_RECURSE
  "CMakeFiles/sct_explorer.dir/sct_explorer.cpp.o"
  "CMakeFiles/sct_explorer.dir/sct_explorer.cpp.o.d"
  "sct_explorer"
  "sct_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sct_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
