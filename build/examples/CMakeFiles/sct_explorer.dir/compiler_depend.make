# Empty compiler generated dependencies file for sct_explorer.
# This may be replaced when dependencies are built.
