# Empty dependencies file for flash_crowd.
# This may be replaced when dependencies are built.
