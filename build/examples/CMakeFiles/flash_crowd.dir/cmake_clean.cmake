file(REMOVE_RECURSE
  "CMakeFiles/flash_crowd.dir/flash_crowd.cpp.o"
  "CMakeFiles/flash_crowd.dir/flash_crowd.cpp.o.d"
  "flash_crowd"
  "flash_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
