file(REMOVE_RECURSE
  "CMakeFiles/autoscale_demo.dir/autoscale_demo.cpp.o"
  "CMakeFiles/autoscale_demo.dir/autoscale_demo.cpp.o.d"
  "autoscale_demo"
  "autoscale_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
