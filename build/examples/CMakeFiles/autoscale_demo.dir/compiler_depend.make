# Empty compiler generated dependencies file for autoscale_demo.
# This may be replaced when dependencies are built.
