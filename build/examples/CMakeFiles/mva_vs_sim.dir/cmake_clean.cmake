file(REMOVE_RECURSE
  "CMakeFiles/mva_vs_sim.dir/mva_vs_sim.cpp.o"
  "CMakeFiles/mva_vs_sim.dir/mva_vs_sim.cpp.o.d"
  "mva_vs_sim"
  "mva_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mva_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
