# Empty dependencies file for mva_vs_sim.
# This may be replaced when dependencies are built.
