
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conscale/agents.cpp" "src/conscale/CMakeFiles/cs_conscale.dir/agents.cpp.o" "gcc" "src/conscale/CMakeFiles/cs_conscale.dir/agents.cpp.o.d"
  "/root/repo/src/conscale/controller.cpp" "src/conscale/CMakeFiles/cs_conscale.dir/controller.cpp.o" "gcc" "src/conscale/CMakeFiles/cs_conscale.dir/controller.cpp.o.d"
  "/root/repo/src/conscale/estimator_service.cpp" "src/conscale/CMakeFiles/cs_conscale.dir/estimator_service.cpp.o" "gcc" "src/conscale/CMakeFiles/cs_conscale.dir/estimator_service.cpp.o.d"
  "/root/repo/src/conscale/framework.cpp" "src/conscale/CMakeFiles/cs_conscale.dir/framework.cpp.o" "gcc" "src/conscale/CMakeFiles/cs_conscale.dir/framework.cpp.o.d"
  "/root/repo/src/conscale/policy.cpp" "src/conscale/CMakeFiles/cs_conscale.dir/policy.cpp.o" "gcc" "src/conscale/CMakeFiles/cs_conscale.dir/policy.cpp.o.d"
  "/root/repo/src/conscale/threshold_rule.cpp" "src/conscale/CMakeFiles/cs_conscale.dir/threshold_rule.cpp.o" "gcc" "src/conscale/CMakeFiles/cs_conscale.dir/threshold_rule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sct/CMakeFiles/cs_sct.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tier/CMakeFiles/cs_tier.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/cs_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cs_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
