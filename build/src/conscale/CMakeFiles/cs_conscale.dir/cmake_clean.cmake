file(REMOVE_RECURSE
  "CMakeFiles/cs_conscale.dir/agents.cpp.o"
  "CMakeFiles/cs_conscale.dir/agents.cpp.o.d"
  "CMakeFiles/cs_conscale.dir/controller.cpp.o"
  "CMakeFiles/cs_conscale.dir/controller.cpp.o.d"
  "CMakeFiles/cs_conscale.dir/estimator_service.cpp.o"
  "CMakeFiles/cs_conscale.dir/estimator_service.cpp.o.d"
  "CMakeFiles/cs_conscale.dir/framework.cpp.o"
  "CMakeFiles/cs_conscale.dir/framework.cpp.o.d"
  "CMakeFiles/cs_conscale.dir/policy.cpp.o"
  "CMakeFiles/cs_conscale.dir/policy.cpp.o.d"
  "CMakeFiles/cs_conscale.dir/threshold_rule.cpp.o"
  "CMakeFiles/cs_conscale.dir/threshold_rule.cpp.o.d"
  "libcs_conscale.a"
  "libcs_conscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_conscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
