file(REMOVE_RECURSE
  "libcs_conscale.a"
)
