# Empty compiler generated dependencies file for cs_conscale.
# This may be replaced when dependencies are built.
