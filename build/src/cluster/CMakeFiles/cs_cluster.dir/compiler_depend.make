# Empty compiler generated dependencies file for cs_cluster.
# This may be replaced when dependencies are built.
