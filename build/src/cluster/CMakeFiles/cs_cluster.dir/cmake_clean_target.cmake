file(REMOVE_RECURSE
  "libcs_cluster.a"
)
