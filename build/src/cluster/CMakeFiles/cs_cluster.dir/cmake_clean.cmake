file(REMOVE_RECURSE
  "CMakeFiles/cs_cluster.dir/load_balancer.cpp.o"
  "CMakeFiles/cs_cluster.dir/load_balancer.cpp.o.d"
  "CMakeFiles/cs_cluster.dir/ntier_system.cpp.o"
  "CMakeFiles/cs_cluster.dir/ntier_system.cpp.o.d"
  "CMakeFiles/cs_cluster.dir/tier_group.cpp.o"
  "CMakeFiles/cs_cluster.dir/tier_group.cpp.o.d"
  "CMakeFiles/cs_cluster.dir/vm.cpp.o"
  "CMakeFiles/cs_cluster.dir/vm.cpp.o.d"
  "libcs_cluster.a"
  "libcs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
