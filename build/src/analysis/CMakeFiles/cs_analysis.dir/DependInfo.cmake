
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/mva.cpp" "src/analysis/CMakeFiles/cs_analysis.dir/mva.cpp.o" "gcc" "src/analysis/CMakeFiles/cs_analysis.dir/mva.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resources/CMakeFiles/cs_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cs_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
