file(REMOVE_RECURSE
  "CMakeFiles/cs_analysis.dir/mva.cpp.o"
  "CMakeFiles/cs_analysis.dir/mva.cpp.o.d"
  "libcs_analysis.a"
  "libcs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
