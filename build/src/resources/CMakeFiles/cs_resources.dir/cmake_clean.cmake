file(REMOVE_RECURSE
  "CMakeFiles/cs_resources.dir/fcfs_resource.cpp.o"
  "CMakeFiles/cs_resources.dir/fcfs_resource.cpp.o.d"
  "CMakeFiles/cs_resources.dir/ps_resource.cpp.o"
  "CMakeFiles/cs_resources.dir/ps_resource.cpp.o.d"
  "CMakeFiles/cs_resources.dir/token_pool.cpp.o"
  "CMakeFiles/cs_resources.dir/token_pool.cpp.o.d"
  "libcs_resources.a"
  "libcs_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
