
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resources/fcfs_resource.cpp" "src/resources/CMakeFiles/cs_resources.dir/fcfs_resource.cpp.o" "gcc" "src/resources/CMakeFiles/cs_resources.dir/fcfs_resource.cpp.o.d"
  "/root/repo/src/resources/ps_resource.cpp" "src/resources/CMakeFiles/cs_resources.dir/ps_resource.cpp.o" "gcc" "src/resources/CMakeFiles/cs_resources.dir/ps_resource.cpp.o.d"
  "/root/repo/src/resources/token_pool.cpp" "src/resources/CMakeFiles/cs_resources.dir/token_pool.cpp.o" "gcc" "src/resources/CMakeFiles/cs_resources.dir/token_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/cs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
