file(REMOVE_RECURSE
  "libcs_resources.a"
)
