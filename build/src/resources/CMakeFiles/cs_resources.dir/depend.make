# Empty dependencies file for cs_resources.
# This may be replaced when dependencies are built.
