# CMake generated Testfile for 
# Source directory: /root/repo/src/sct
# Build directory: /root/repo/build/src/sct
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
