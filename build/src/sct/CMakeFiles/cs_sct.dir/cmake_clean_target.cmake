file(REMOVE_RECURSE
  "libcs_sct.a"
)
