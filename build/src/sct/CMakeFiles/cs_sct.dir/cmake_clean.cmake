file(REMOVE_RECURSE
  "CMakeFiles/cs_sct.dir/estimator.cpp.o"
  "CMakeFiles/cs_sct.dir/estimator.cpp.o.d"
  "CMakeFiles/cs_sct.dir/scatter.cpp.o"
  "CMakeFiles/cs_sct.dir/scatter.cpp.o.d"
  "libcs_sct.a"
  "libcs_sct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_sct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
