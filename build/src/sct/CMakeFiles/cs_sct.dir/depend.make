# Empty dependencies file for cs_sct.
# This may be replaced when dependencies are built.
