# Empty dependencies file for cs_workload.
# This may be replaced when dependencies are built.
