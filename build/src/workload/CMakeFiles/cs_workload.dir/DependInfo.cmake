
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/client.cpp" "src/workload/CMakeFiles/cs_workload.dir/client.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/client.cpp.o.d"
  "/root/repo/src/workload/mix.cpp" "src/workload/CMakeFiles/cs_workload.dir/mix.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/mix.cpp.o.d"
  "/root/repo/src/workload/open_loop.cpp" "src/workload/CMakeFiles/cs_workload.dir/open_loop.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/open_loop.cpp.o.d"
  "/root/repo/src/workload/session.cpp" "src/workload/CMakeFiles/cs_workload.dir/session.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/session.cpp.o.d"
  "/root/repo/src/workload/session_population.cpp" "src/workload/CMakeFiles/cs_workload.dir/session_population.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/session_population.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/cs_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/cs_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/cs_workload.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/cs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
