file(REMOVE_RECURSE
  "CMakeFiles/cs_workload.dir/client.cpp.o"
  "CMakeFiles/cs_workload.dir/client.cpp.o.d"
  "CMakeFiles/cs_workload.dir/mix.cpp.o"
  "CMakeFiles/cs_workload.dir/mix.cpp.o.d"
  "CMakeFiles/cs_workload.dir/open_loop.cpp.o"
  "CMakeFiles/cs_workload.dir/open_loop.cpp.o.d"
  "CMakeFiles/cs_workload.dir/session.cpp.o"
  "CMakeFiles/cs_workload.dir/session.cpp.o.d"
  "CMakeFiles/cs_workload.dir/session_population.cpp.o"
  "CMakeFiles/cs_workload.dir/session_population.cpp.o.d"
  "CMakeFiles/cs_workload.dir/trace.cpp.o"
  "CMakeFiles/cs_workload.dir/trace.cpp.o.d"
  "CMakeFiles/cs_workload.dir/trace_io.cpp.o"
  "CMakeFiles/cs_workload.dir/trace_io.cpp.o.d"
  "libcs_workload.a"
  "libcs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
