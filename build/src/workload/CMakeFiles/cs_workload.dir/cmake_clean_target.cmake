file(REMOVE_RECURSE
  "libcs_workload.a"
)
