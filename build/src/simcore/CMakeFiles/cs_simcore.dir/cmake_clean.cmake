file(REMOVE_RECURSE
  "CMakeFiles/cs_simcore.dir/simulation.cpp.o"
  "CMakeFiles/cs_simcore.dir/simulation.cpp.o.d"
  "libcs_simcore.a"
  "libcs_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
