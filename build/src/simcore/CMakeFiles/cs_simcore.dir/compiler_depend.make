# Empty compiler generated dependencies file for cs_simcore.
# This may be replaced when dependencies are built.
