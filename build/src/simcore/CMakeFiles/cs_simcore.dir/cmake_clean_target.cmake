file(REMOVE_RECURSE
  "libcs_simcore.a"
)
