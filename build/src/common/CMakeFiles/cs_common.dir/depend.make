# Empty dependencies file for cs_common.
# This may be replaced when dependencies are built.
