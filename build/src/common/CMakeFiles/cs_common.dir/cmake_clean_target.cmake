file(REMOVE_RECURSE
  "libcs_common.a"
)
