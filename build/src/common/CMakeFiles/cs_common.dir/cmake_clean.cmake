file(REMOVE_RECURSE
  "CMakeFiles/cs_common.dir/ascii_chart.cpp.o"
  "CMakeFiles/cs_common.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/cs_common.dir/config.cpp.o"
  "CMakeFiles/cs_common.dir/config.cpp.o.d"
  "CMakeFiles/cs_common.dir/csv.cpp.o"
  "CMakeFiles/cs_common.dir/csv.cpp.o.d"
  "CMakeFiles/cs_common.dir/histogram.cpp.o"
  "CMakeFiles/cs_common.dir/histogram.cpp.o.d"
  "CMakeFiles/cs_common.dir/json.cpp.o"
  "CMakeFiles/cs_common.dir/json.cpp.o.d"
  "CMakeFiles/cs_common.dir/logging.cpp.o"
  "CMakeFiles/cs_common.dir/logging.cpp.o.d"
  "CMakeFiles/cs_common.dir/stats.cpp.o"
  "CMakeFiles/cs_common.dir/stats.cpp.o.d"
  "libcs_common.a"
  "libcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
