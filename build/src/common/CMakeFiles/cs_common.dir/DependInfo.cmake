
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/ascii_chart.cpp" "src/common/CMakeFiles/cs_common.dir/ascii_chart.cpp.o" "gcc" "src/common/CMakeFiles/cs_common.dir/ascii_chart.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/common/CMakeFiles/cs_common.dir/config.cpp.o" "gcc" "src/common/CMakeFiles/cs_common.dir/config.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/common/CMakeFiles/cs_common.dir/csv.cpp.o" "gcc" "src/common/CMakeFiles/cs_common.dir/csv.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/common/CMakeFiles/cs_common.dir/histogram.cpp.o" "gcc" "src/common/CMakeFiles/cs_common.dir/histogram.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/common/CMakeFiles/cs_common.dir/json.cpp.o" "gcc" "src/common/CMakeFiles/cs_common.dir/json.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/cs_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/cs_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/cs_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/cs_common.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
