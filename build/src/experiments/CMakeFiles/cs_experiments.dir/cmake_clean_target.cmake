file(REMOVE_RECURSE
  "libcs_experiments.a"
)
