file(REMOVE_RECURSE
  "CMakeFiles/cs_experiments.dir/analytic.cpp.o"
  "CMakeFiles/cs_experiments.dir/analytic.cpp.o.d"
  "CMakeFiles/cs_experiments.dir/json_export.cpp.o"
  "CMakeFiles/cs_experiments.dir/json_export.cpp.o.d"
  "CMakeFiles/cs_experiments.dir/report.cpp.o"
  "CMakeFiles/cs_experiments.dir/report.cpp.o.d"
  "CMakeFiles/cs_experiments.dir/runner.cpp.o"
  "CMakeFiles/cs_experiments.dir/runner.cpp.o.d"
  "CMakeFiles/cs_experiments.dir/scenario.cpp.o"
  "CMakeFiles/cs_experiments.dir/scenario.cpp.o.d"
  "libcs_experiments.a"
  "libcs_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
