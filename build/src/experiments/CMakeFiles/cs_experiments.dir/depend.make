# Empty dependencies file for cs_experiments.
# This may be replaced when dependencies are built.
