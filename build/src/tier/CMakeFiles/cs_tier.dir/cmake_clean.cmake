file(REMOVE_RECURSE
  "CMakeFiles/cs_tier.dir/server.cpp.o"
  "CMakeFiles/cs_tier.dir/server.cpp.o.d"
  "libcs_tier.a"
  "libcs_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
