# Empty dependencies file for cs_tier.
# This may be replaced when dependencies are built.
