file(REMOVE_RECURSE
  "libcs_tier.a"
)
