
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/interval.cpp" "src/metrics/CMakeFiles/cs_metrics.dir/interval.cpp.o" "gcc" "src/metrics/CMakeFiles/cs_metrics.dir/interval.cpp.o.d"
  "/root/repo/src/metrics/latency_breakdown.cpp" "src/metrics/CMakeFiles/cs_metrics.dir/latency_breakdown.cpp.o" "gcc" "src/metrics/CMakeFiles/cs_metrics.dir/latency_breakdown.cpp.o.d"
  "/root/repo/src/metrics/monitor.cpp" "src/metrics/CMakeFiles/cs_metrics.dir/monitor.cpp.o" "gcc" "src/metrics/CMakeFiles/cs_metrics.dir/monitor.cpp.o.d"
  "/root/repo/src/metrics/warehouse.cpp" "src/metrics/CMakeFiles/cs_metrics.dir/warehouse.cpp.o" "gcc" "src/metrics/CMakeFiles/cs_metrics.dir/warehouse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/cs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tier/CMakeFiles/cs_tier.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cs_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/cs_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cs_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
