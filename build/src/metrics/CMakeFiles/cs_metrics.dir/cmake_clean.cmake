file(REMOVE_RECURSE
  "CMakeFiles/cs_metrics.dir/interval.cpp.o"
  "CMakeFiles/cs_metrics.dir/interval.cpp.o.d"
  "CMakeFiles/cs_metrics.dir/latency_breakdown.cpp.o"
  "CMakeFiles/cs_metrics.dir/latency_breakdown.cpp.o.d"
  "CMakeFiles/cs_metrics.dir/monitor.cpp.o"
  "CMakeFiles/cs_metrics.dir/monitor.cpp.o.d"
  "CMakeFiles/cs_metrics.dir/warehouse.cpp.o"
  "CMakeFiles/cs_metrics.dir/warehouse.cpp.o.d"
  "libcs_metrics.a"
  "libcs_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
