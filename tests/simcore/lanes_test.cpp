// Kernel-level tests of the lane-partitioned PDES engine: canonical keyed
// ordering, windowed execution primitives, cross-lane messaging, the
// lookahead-violation guard, and the lookahead analysis itself. The
// system-level byte-identity contract (lanes=1 vs lanes=K over full
// experiment runs) lives in tests/experiments/lane_determinism_test.cpp.
#include "simcore/lanes/lane_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "simcore/lanes/actor.h"
#include "simcore/lanes/lookahead.h"

namespace conscale {
namespace {

using lanes::LaneActor;
using lanes::LaneEngine;
using lanes::LookaheadAnalysis;

// ---- keyed scheduling on the plain Simulation -----------------------------

TEST(KeyedScheduling, PlainEventsRunBeforeKeyedAtEqualTime) {
  Simulation sim;
  std::string order;
  sim.schedule_keyed(1.0, /*group=*/7, /*seq=*/0, [&] { order += 'k'; });
  sim.schedule_at(1.0, [&] { order += 'p'; });
  sim.run_until(2.0);
  EXPECT_EQ(order, "pk");
}

TEST(KeyedScheduling, EqualTimeKeyedOrderIsByStreamThenSeq) {
  Simulation sim;
  std::string order;
  // Inserted in scrambled order; execution must follow (stream, seq).
  sim.schedule_keyed(1.0, 2, 0, [&] { order += 'c'; });
  sim.schedule_keyed(1.0, 1, 1, [&] { order += 'b'; });
  sim.schedule_keyed(1.0, 3, 5, [&] { order += 'd'; });
  sim.schedule_keyed(1.0, 1, 0, [&] { order += 'a'; });
  sim.run_until(2.0);
  EXPECT_EQ(order, "abcd");
}

TEST(KeyedScheduling, RunBeforeIsExclusiveAndNextEventTimeReports) {
  Simulation sim;
  int ran = 0;
  sim.schedule_at(1.0, [&] { ++ran; });
  sim.schedule_at(2.0, [&] { ++ran; });
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 1.0);
  sim.run_before(2.0);  // exclusive: the t=2 event must stay queued
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 2.0);
  sim.run_before(std::nextafter(2.0, 3.0));
  EXPECT_EQ(ran, 2);
  EXPECT_TRUE(std::isinf(sim.next_event_time()));
}

// ---- cross-lane ping-pong -------------------------------------------------

/// Appends "(tag, time)" marks to a lane-local trace; bounces a message to
/// its peer until the horizon. Only its own lane ever touches its trace.
class PingPonger final : public LaneActor {
 public:
  PingPonger(LaneEngine& engine, std::size_t lane, char tag,
             SimDuration net_delay)
      : LaneActor(engine, lane), tag_(tag), net_delay_(net_delay) {}

  void set_peer(PingPonger* peer) { peer_ = peer; }

  void bounce() {
    trace_.push_back(std::to_string(sim().now()) + tag_);
    if (sim().now() > 0.9) return;
    post(peer_->lane(), net_delay_, [peer = peer_] { peer->bounce(); });
  }

  void kick() {
    schedule_at(0.0, [this] { bounce(); });
  }

  const std::vector<std::string>& trace() const { return trace_; }

 private:
  char tag_;
  SimDuration net_delay_;
  PingPonger* peer_ = nullptr;
  std::vector<std::string> trace_;
};

std::vector<std::string> ping_pong_trace(std::size_t lanes, char which) {
  LaneEngine::Options options;
  options.lanes = lanes;
  options.lookahead = 0.05;
  LaneEngine engine(options);
  PingPonger a(engine, 0, 'a', 0.05);
  PingPonger b(engine, lanes - 1, 'b', 0.05);
  a.set_peer(&b);
  b.set_peer(&a);
  a.kick();
  engine.run(1.0);
  EXPECT_GT(engine.stats().windows, 0u);
  EXPECT_GT(engine.stats().messages, 0u);
  return which == 'a' ? a.trace() : b.trace();
}

TEST(LaneEngine, PingPongIsIdenticalAcrossLaneCounts) {
  // Same actors, same streams, different placement: one lane (inline, zero
  // threads) versus two (worker thread). The observable traces must match
  // element for element — the core of the lanes=1 ≡ lanes=K contract.
  EXPECT_EQ(ping_pong_trace(1, 'a'), ping_pong_trace(2, 'a'));
  EXPECT_EQ(ping_pong_trace(1, 'b'), ping_pong_trace(2, 'b'));
  EXPECT_FALSE(ping_pong_trace(1, 'a').empty());
}

TEST(LaneEngine, ConstructionTimePostsAreDelivered) {
  LaneEngine::Options options;
  options.lanes = 2;
  options.lookahead = 0.05;
  LaneEngine engine(options);
  PingPonger a(engine, 0, 'a', 0.05);
  PingPonger b(engine, 1, 'b', 0.05);
  a.set_peer(&b);
  b.set_peer(&a);
  a.kick();  // keyed event at t=0 on lane 0, posts to lane 1 from the run
  engine.run(0.2);
  EXPECT_FALSE(b.trace().empty());
}

TEST(LaneEngine, RejectsNonPositiveLookahead) {
  LaneEngine::Options options;
  options.lanes = 2;
  options.lookahead = 0.0;
  EXPECT_THROW(LaneEngine{options}, std::invalid_argument);
}

/// An actor that (incorrectly) posts with less delay than the engine's
/// lookahead window — the conservative-synchronization guard must refuse.
class Violator final : public LaneActor {
 public:
  Violator(LaneEngine& engine, std::size_t lane)
      : LaneActor(engine, lane) {}
  void kick() {
    schedule_at(0.1, [this] { post(lane() ^ 1, 0.001, [] {}); });
  }
};

TEST(LaneEngine, DetectsLookaheadViolation) {
  LaneEngine::Options options;
  options.lanes = 2;
  options.lookahead = 0.05;
  LaneEngine engine(options);
  Violator bad(engine, 0);
  bad.kick();
  EXPECT_THROW(engine.run(1.0), std::runtime_error);
}

// ---- null-message protocol ------------------------------------------------

/// Ring forwarder for the CMB tests: lane i forwards a token to the next
/// lane across its declared channel, recording every arrival instant. The
/// ring is the canonical conservative-PDES deadlock shape — every lane
/// waits on its predecessor — so completing at all exercises the
/// deadlock-freedom argument (fresh per-round EOTs strictly above the
/// global minimum, see lane_engine.h).
class RingHopper final : public LaneActor {
 public:
  RingHopper(LaneEngine& engine, std::size_t lane, SimDuration delay)
      : LaneActor(engine, lane), delay_(delay) {}

  void set_next(RingHopper* next) { next_ = next; }

  void kick() {
    schedule_at(0.0, [this] { hop(); });
  }

  void hop() {
    trace_.push_back(sim().now());
    if (sim().now() > 3.0) return;
    post(next_->lane(), delay_, [next = next_] { next->hop(); });
  }

  const std::vector<double>& trace() const { return trace_; }

 private:
  SimDuration delay_;
  RingHopper* next_ = nullptr;
  std::vector<double> trace_;
};

struct RingResult {
  std::vector<std::vector<double>> traces;
  lanes::LaneEngineStats stats;
};

/// Three-lane ring with skewed channel delays (the CMB-payoff regime),
/// run under the requested protocol / thread count / anti-flood floor.
RingResult run_ring(LaneEngine::Protocol protocol, std::size_t threads,
                    SimDuration null_floor) {
  const std::vector<SimDuration> delays = {0.01, 0.05, 0.2};
  LaneEngine::Options options;
  options.lanes = 3;
  options.lookahead = 0.01;
  options.threads = threads;
  options.protocol = protocol;
  options.null_floor = null_floor;
  LaneEngine engine(options);
  for (std::size_t i = 0; i < 3; ++i) {
    engine.declare_channel(i, (i + 1) % 3, delays[i]);
  }
  std::vector<std::unique_ptr<RingHopper>> hoppers;
  for (std::size_t i = 0; i < 3; ++i) {
    hoppers.push_back(std::make_unique<RingHopper>(engine, i, delays[i]));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    hoppers[i]->set_next(hoppers[(i + 1) % 3].get());
  }
  hoppers[0]->kick();
  engine.run(4.0);
  RingResult result;
  for (const auto& hopper : hoppers) result.traces.push_back(hopper->trace());
  result.stats = engine.stats();
  return result;
}

TEST(NullMessageProtocol, RingCycleCompletesAndMatchesSingleThread) {
  // Deadlock-freedom on a dependency cycle: the threaded CMB run must
  // terminate with the exact event history of the single-threaded one.
  const RingResult threaded =
      run_ring(LaneEngine::Protocol::kNullMessage, /*threads=*/3, 0.0);
  const RingResult serial =
      run_ring(LaneEngine::Protocol::kNullMessage, /*threads=*/1, 0.0);
  EXPECT_EQ(threaded.traces, serial.traces);
  EXPECT_FALSE(threaded.traces[0].empty());
  EXPECT_FALSE(threaded.traces[2].empty());
  EXPECT_GT(threaded.stats.nulls_announced, 0u);
}

TEST(NullMessageProtocol, MatchesTimeWindowResults) {
  // The protocols schedule differently but execute the same model: the
  // event histories must agree (each is separately thread-count-invariant).
  const RingResult cmb =
      run_ring(LaneEngine::Protocol::kNullMessage, /*threads=*/3, 0.0);
  const RingResult tw =
      run_ring(LaneEngine::Protocol::kTimeWindow, /*threads=*/3, 0.0);
  EXPECT_EQ(cmb.traces, tw.traces);
}

/// Self-rescheduling local timer chain: lane-local events only, counted.
struct TickChain {
  Simulation& sim;
  double period;
  double horizon;
  int ticks = 0;

  void start() {
    sim.schedule_at(0.0, [this] { tick(); });
  }
  void tick() {
    ++ticks;
    if (sim.now() + period <= horizon) {
      sim.schedule_after(period, [this] { tick(); });
    }
  }
};

/// Busy pair (lanes 0<->1, thin mutual channels, dense local chains) plus a
/// slow observer (lane 2) fed by a fat channel from lane 1. The observer is
/// never starved — its bound sits at the fat channel's horizon — so the
/// floor's suppressed announcements on 1->2 are never rescued and must show
/// up in the counters; the busy pair's mutual announcements get rescued on
/// demand either way.
struct FloorResult {
  int ticks[3] = {0, 0, 0};
  lanes::LaneEngineStats stats;
};

FloorResult run_floor_topology(SimDuration null_floor) {
  LaneEngine::Options options;
  options.lanes = 3;
  options.lookahead = 0.01;
  options.threads = 3;
  options.protocol = LaneEngine::Protocol::kNullMessage;
  options.null_floor = null_floor;
  LaneEngine engine(options);
  engine.declare_channel(0, 1, 0.02);
  engine.declare_channel(1, 0, 0.02);
  engine.declare_channel(1, 2, 5.0);
  TickChain fast0{engine.lane(0).sim(), 0.01, 3.0};
  TickChain fast1{engine.lane(1).sim(), 0.01, 3.0};
  TickChain slow2{engine.lane(2).sim(), 1.0, 3.0};
  fast0.start();
  fast1.start();
  slow2.start();
  engine.run(3.0);
  FloorResult result;
  result.ticks[0] = fast0.ticks;
  result.ticks[1] = fast1.ticks;
  result.ticks[2] = slow2.ticks;
  result.stats = engine.stats();
  return result;
}

TEST(NullMessageProtocol, AntiFloodFloorSuppressesNullsWithoutChangingResults) {
  const FloorResult free_run = run_floor_topology(/*null_floor=*/0.0);
  const FloorResult floored = run_floor_topology(/*null_floor=*/1.0);
  // The floor swallows sub-threshold EOT advances (the rescue pass keeps
  // starved lanes alive), so it may only change scheduling — never results.
  EXPECT_EQ(free_run.ticks[0], floored.ticks[0]);
  EXPECT_EQ(free_run.ticks[1], floored.ticks[1]);
  EXPECT_EQ(free_run.ticks[2], floored.ticks[2]);
  EXPECT_GT(free_run.ticks[0], 100);
  EXPECT_EQ(free_run.ticks[2], 4);
  EXPECT_GT(floored.stats.nulls_suppressed, 0u);
  EXPECT_LT(floored.stats.nulls_announced, free_run.stats.nulls_announced);
}

TEST(NullMessageProtocol, RequiresDeclaredChannels) {
  LaneEngine::Options options;
  options.lanes = 2;
  options.lookahead = 0.05;
  options.protocol = LaneEngine::Protocol::kNullMessage;
  LaneEngine engine(options);
  EXPECT_THROW(engine.run(1.0), std::runtime_error);
}

TEST(LaneEngine, RejectsPostOutsideDeclaredChannels) {
  // Once any channel is declared, every cross-lane post must travel one.
  LaneEngine::Options options;
  options.lanes = 2;
  options.lookahead = 0.05;
  LaneEngine engine(options);
  engine.declare_channel(0, 1, 0.05);
  PingPonger a(engine, 0, 'a', 0.05);
  PingPonger b(engine, 1, 'b', 0.05);
  a.set_peer(&b);
  b.set_peer(&a);
  // a -> b rides the declared channel; b's bounce back has none.
  a.kick();
  EXPECT_THROW(engine.run(1.0), std::runtime_error);
}

TEST(LaneEngine, RejectsPostBelowChannelDelay) {
  LaneEngine::Options options;
  options.lanes = 2;
  options.lookahead = 0.01;
  LaneEngine engine(options);
  engine.declare_channel(0, 1, 0.2);  // channel promises 0.2 of lookahead
  Violator bad(engine, 0);            // ...but posts with 0.001
  bad.kick();
  EXPECT_THROW(engine.run(1.0), std::runtime_error);
}

TEST(LaneEngine, SoloRoundsRunInlineWhenOneLaneIsActive) {
  // Only lane 0 has events: every round has a single active lane and must
  // take the inline fast path (the DAG-regression fix ISSUE 10 targets).
  LaneEngine::Options options;
  options.lanes = 3;
  options.lookahead = 0.05;
  LaneEngine engine(options);
  Simulation& sim = engine.lane(0).sim();
  int ran = 0;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(0.1 * (i + 1), [&] { ++ran; });
  }
  engine.run(1.0);
  EXPECT_EQ(ran, 5);
  EXPECT_GT(engine.stats().solo_rounds, 0u);
}

// ---- lookahead analysis ---------------------------------------------------

TEST(LookaheadAnalysis, WindowIsMinPositiveChannelDelay) {
  LookaheadAnalysis analysis;
  analysis.add_source("up", 0.05, true);
  analysis.add_source("down", 0.08, true);
  analysis.add_source("vm prep", 15.0, false);  // slack, not a channel
  EXPECT_DOUBLE_EQ(analysis.window(), 0.05);
  EXPECT_DOUBLE_EQ(analysis.channel_skew(), 0.08 / 0.05);
  EXPECT_EQ(analysis.recommended(), LookaheadAnalysis::Protocol::kTimeWindow);
}

TEST(LookaheadAnalysis, SkewedChannelsRecommendNullMessages) {
  LookaheadAnalysis analysis;
  analysis.add_source("fast", 0.01, true);
  analysis.add_source("slow", 0.5, true);
  EXPECT_EQ(analysis.recommended(), LookaheadAnalysis::Protocol::kNullMessage);
  EXPECT_EQ(analysis.recommended(/*skew_threshold=*/100.0),
            LookaheadAnalysis::Protocol::kTimeWindow);
}

TEST(LookaheadAnalysis, ProtocolBoundaryIsExactlyFourTimesSkew) {
  // The switch point is skew > 4: exactly 4x stays on time windows, the
  // next representable ratio flips to null messages.
  LookaheadAnalysis at_threshold;
  at_threshold.add_source("fast", 1.0, true);
  at_threshold.add_source("slow", 4.0, true);
  EXPECT_DOUBLE_EQ(at_threshold.channel_skew(), 4.0);
  EXPECT_EQ(at_threshold.recommended(),
            LookaheadAnalysis::Protocol::kTimeWindow);

  LookaheadAnalysis above;
  above.add_source("fast", 1.0, true);
  above.add_source("slow", std::nextafter(4.0, 5.0), true);
  EXPECT_EQ(above.recommended(), LookaheadAnalysis::Protocol::kNullMessage);
}

TEST(LookaheadAnalysis, NoChannelsMeansNoWindow) {
  LookaheadAnalysis analysis;
  analysis.add_source("vm prep", 15.0, false);
  EXPECT_DOUBLE_EQ(analysis.window(), 0.0);
  EXPECT_FALSE(analysis.summary().empty());
}

}  // namespace
}  // namespace conscale
