// Kernel-level tests of the lane-partitioned PDES engine: canonical keyed
// ordering, windowed execution primitives, cross-lane messaging, the
// lookahead-violation guard, and the lookahead analysis itself. The
// system-level byte-identity contract (lanes=1 vs lanes=K over full
// experiment runs) lives in tests/experiments/lane_determinism_test.cpp.
#include "simcore/lanes/lane_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "simcore/lanes/actor.h"
#include "simcore/lanes/lookahead.h"

namespace conscale {
namespace {

using lanes::LaneActor;
using lanes::LaneEngine;
using lanes::LookaheadAnalysis;

// ---- keyed scheduling on the plain Simulation -----------------------------

TEST(KeyedScheduling, PlainEventsRunBeforeKeyedAtEqualTime) {
  Simulation sim;
  std::string order;
  sim.schedule_keyed(1.0, /*group=*/7, /*seq=*/0, [&] { order += 'k'; });
  sim.schedule_at(1.0, [&] { order += 'p'; });
  sim.run_until(2.0);
  EXPECT_EQ(order, "pk");
}

TEST(KeyedScheduling, EqualTimeKeyedOrderIsByStreamThenSeq) {
  Simulation sim;
  std::string order;
  // Inserted in scrambled order; execution must follow (stream, seq).
  sim.schedule_keyed(1.0, 2, 0, [&] { order += 'c'; });
  sim.schedule_keyed(1.0, 1, 1, [&] { order += 'b'; });
  sim.schedule_keyed(1.0, 3, 5, [&] { order += 'd'; });
  sim.schedule_keyed(1.0, 1, 0, [&] { order += 'a'; });
  sim.run_until(2.0);
  EXPECT_EQ(order, "abcd");
}

TEST(KeyedScheduling, RunBeforeIsExclusiveAndNextEventTimeReports) {
  Simulation sim;
  int ran = 0;
  sim.schedule_at(1.0, [&] { ++ran; });
  sim.schedule_at(2.0, [&] { ++ran; });
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 1.0);
  sim.run_before(2.0);  // exclusive: the t=2 event must stay queued
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 2.0);
  sim.run_before(std::nextafter(2.0, 3.0));
  EXPECT_EQ(ran, 2);
  EXPECT_TRUE(std::isinf(sim.next_event_time()));
}

// ---- cross-lane ping-pong -------------------------------------------------

/// Appends "(tag, time)" marks to a lane-local trace; bounces a message to
/// its peer until the horizon. Only its own lane ever touches its trace.
class PingPonger final : public LaneActor {
 public:
  PingPonger(LaneEngine& engine, std::size_t lane, char tag,
             SimDuration net_delay)
      : LaneActor(engine, lane), tag_(tag), net_delay_(net_delay) {}

  void set_peer(PingPonger* peer) { peer_ = peer; }

  void bounce() {
    trace_.push_back(std::to_string(sim().now()) + tag_);
    if (sim().now() > 0.9) return;
    post(peer_->lane(), net_delay_, [peer = peer_] { peer->bounce(); });
  }

  void kick() {
    schedule_at(0.0, [this] { bounce(); });
  }

  const std::vector<std::string>& trace() const { return trace_; }

 private:
  char tag_;
  SimDuration net_delay_;
  PingPonger* peer_ = nullptr;
  std::vector<std::string> trace_;
};

std::vector<std::string> ping_pong_trace(std::size_t lanes, char which) {
  LaneEngine::Options options;
  options.lanes = lanes;
  options.lookahead = 0.05;
  LaneEngine engine(options);
  PingPonger a(engine, 0, 'a', 0.05);
  PingPonger b(engine, lanes - 1, 'b', 0.05);
  a.set_peer(&b);
  b.set_peer(&a);
  a.kick();
  engine.run(1.0);
  EXPECT_GT(engine.stats().windows, 0u);
  EXPECT_GT(engine.stats().messages, 0u);
  return which == 'a' ? a.trace() : b.trace();
}

TEST(LaneEngine, PingPongIsIdenticalAcrossLaneCounts) {
  // Same actors, same streams, different placement: one lane (inline, zero
  // threads) versus two (worker thread). The observable traces must match
  // element for element — the core of the lanes=1 ≡ lanes=K contract.
  EXPECT_EQ(ping_pong_trace(1, 'a'), ping_pong_trace(2, 'a'));
  EXPECT_EQ(ping_pong_trace(1, 'b'), ping_pong_trace(2, 'b'));
  EXPECT_FALSE(ping_pong_trace(1, 'a').empty());
}

TEST(LaneEngine, ConstructionTimePostsAreDelivered) {
  LaneEngine::Options options;
  options.lanes = 2;
  options.lookahead = 0.05;
  LaneEngine engine(options);
  PingPonger a(engine, 0, 'a', 0.05);
  PingPonger b(engine, 1, 'b', 0.05);
  a.set_peer(&b);
  b.set_peer(&a);
  a.kick();  // keyed event at t=0 on lane 0, posts to lane 1 from the run
  engine.run(0.2);
  EXPECT_FALSE(b.trace().empty());
}

TEST(LaneEngine, RejectsNonPositiveLookahead) {
  LaneEngine::Options options;
  options.lanes = 2;
  options.lookahead = 0.0;
  EXPECT_THROW(LaneEngine{options}, std::invalid_argument);
}

/// An actor that (incorrectly) posts with less delay than the engine's
/// lookahead window — the conservative-synchronization guard must refuse.
class Violator final : public LaneActor {
 public:
  Violator(LaneEngine& engine, std::size_t lane)
      : LaneActor(engine, lane) {}
  void kick() {
    schedule_at(0.1, [this] { post(lane() ^ 1, 0.001, [] {}); });
  }
};

TEST(LaneEngine, DetectsLookaheadViolation) {
  LaneEngine::Options options;
  options.lanes = 2;
  options.lookahead = 0.05;
  LaneEngine engine(options);
  Violator bad(engine, 0);
  bad.kick();
  EXPECT_THROW(engine.run(1.0), std::runtime_error);
}

// ---- lookahead analysis ---------------------------------------------------

TEST(LookaheadAnalysis, WindowIsMinPositiveChannelDelay) {
  LookaheadAnalysis analysis;
  analysis.add_source("up", 0.05, true);
  analysis.add_source("down", 0.08, true);
  analysis.add_source("vm prep", 15.0, false);  // slack, not a channel
  EXPECT_DOUBLE_EQ(analysis.window(), 0.05);
  EXPECT_DOUBLE_EQ(analysis.channel_skew(), 0.08 / 0.05);
  EXPECT_EQ(analysis.recommended(), LookaheadAnalysis::Protocol::kTimeWindow);
}

TEST(LookaheadAnalysis, SkewedChannelsRecommendNullMessages) {
  LookaheadAnalysis analysis;
  analysis.add_source("fast", 0.01, true);
  analysis.add_source("slow", 0.5, true);
  EXPECT_EQ(analysis.recommended(), LookaheadAnalysis::Protocol::kNullMessage);
  EXPECT_EQ(analysis.recommended(/*skew_threshold=*/100.0),
            LookaheadAnalysis::Protocol::kTimeWindow);
}

TEST(LookaheadAnalysis, NoChannelsMeansNoWindow) {
  LookaheadAnalysis analysis;
  analysis.add_source("vm prep", 15.0, false);
  EXPECT_DOUBLE_EQ(analysis.window(), 0.0);
  EXPECT_FALSE(analysis.summary().empty());
}

}  // namespace
}  // namespace conscale
