// Randomized conformance test: the event queue against a trivially correct
// reference model. Thousands of random schedule/cancel/run interleavings
// must produce identical firing sequences — this pins down the lazy-deletion
// heap, the (time, sequence) ordering, and cancellation semantics at once.
#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "simcore/simulation.h"

namespace conscale {
namespace {

struct ReferenceEvent {
  double time;
  std::uint64_t seq;
  int id;
  bool cancelled = false;
};

class SimulationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  Simulation sim;
  std::vector<int> fired;

  std::vector<ReferenceEvent> reference;
  std::vector<EventHandle> handles;
  std::uint64_t seq = 0;
  int next_id = 0;

  // Phase 1: random schedules and cancels before running.
  for (int op = 0; op < 400; ++op) {
    const double dice = rng.uniform();
    if (dice < 0.7 || handles.empty()) {
      const double when = rng.uniform(0.0, 100.0);
      const int id = next_id++;
      handles.push_back(sim.schedule_at(when, [&fired, id] {
        fired.push_back(id);
      }));
      reference.push_back({when, seq++, id});
    } else {
      const std::size_t victim = rng.uniform_index(handles.size());
      const bool did_cancel = handles[victim].cancel();
      if (!reference[victim].cancelled) {
        EXPECT_TRUE(did_cancel);
        reference[victim].cancelled = true;
      } else {
        EXPECT_FALSE(did_cancel);
      }
    }
  }

  // Phase 2: run in random-length time slices, interleaving more schedules.
  double horizon = 0.0;
  while (horizon < 100.0) {
    horizon += rng.uniform(0.0, 20.0);
    sim.run_until(horizon);
    // Events scheduled "in the past" clamp to now and fire next.
    if (rng.bernoulli(0.5)) {
      const double requested = rng.uniform(0.0, 100.0);
      const int id = next_id++;
      handles.push_back(sim.schedule_at(requested, [&fired, id] {
        fired.push_back(id);
      }));
      reference.push_back({std::max(requested, sim.now()), seq++, id});
    }
  }
  sim.run_all();

  // Reference: stable sort by (time, seq), drop cancelled.
  std::vector<ReferenceEvent> expected;
  for (const auto& e : reference) {
    if (!e.cancelled) expected.push_back(e);
  }
  std::sort(expected.begin(), expected.end(),
            [](const ReferenceEvent& a, const ReferenceEvent& b) {
              return a.time != b.time ? a.time < b.time : a.seq < b.seq;
            });

  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], expected[i].id) << "position " << i;
  }
  EXPECT_EQ(sim.events_executed(), fired.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace conscale
