#include "simcore/simulation.h"

#include <vector>

#include <gtest/gtest.h>

namespace conscale {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, SimultaneousEventsFifoByScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, PastTimesClampToNow) {
  Simulation sim;
  sim.schedule_at(10.0, [] {});
  sim.run_all();
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });  // in the past
  sim.run_all();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);  // clock never goes backwards
}

TEST(Simulation, NegativeDelayClampsToZero) {
  Simulation sim;
  bool fired = false;
  sim.schedule_after(-5.0, [&] { fired = true; });
  sim.run_all();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.schedule_after(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // second cancel is a no-op
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulation, HandleNotPendingAfterFiring) {
  Simulation sim;
  EventHandle handle = sim.schedule_after(1.0, [] {});
  sim.run_all();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulation, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(5.0, [&] { fired.push_back(5.0); });
  sim.run_until(3.0);
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // clock advances to the deadline
  sim.run_until(10.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
}

TEST(Simulation, RunForIsRelative) {
  Simulation sim;
  sim.run_for(2.0);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_for(3.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule_after(1.0, chain);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, StepExecutesExactlyOne) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ExecutedCounterSkipsCancelled) {
  Simulation sim;
  auto h = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  h.cancel();
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(PeriodicTask, FiresAtPeriod) {
  Simulation sim;
  std::vector<double> times;
  PeriodicTask task(sim, 0.5, [&](SimTime t) { times.push_back(t); });
  sim.run_until(2.2);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[3], 2.0);
}

TEST(PeriodicTask, FireImmediatelyOption) {
  Simulation sim;
  std::vector<double> times;
  PeriodicTask task(sim, 1.0, [&](SimTime t) { times.push_back(t); },
                    /*fire_immediately=*/true);
  sim.run_until(2.5);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
}

TEST(PeriodicTask, StopHaltsFiring) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(sim, 1.0, [&](SimTime) { ++count; });
  sim.run_until(2.5);
  task.stop();
  EXPECT_FALSE(task.running());
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, DestructorCancels) {
  Simulation sim;
  int count = 0;
  {
    PeriodicTask task(sim, 1.0, [&](SimTime) { ++count; });
    sim.run_until(1.5);
  }
  sim.run_until(10.0);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTask, CallbackCanStopItself) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(sim, 1.0, [&](SimTime) {
    if (++count == 3) task.stop();
  });
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace conscale
