// TierLanePlacement unit tests: uncuttable-edge merging, deterministic
// cluster numbering, and the weight-packing fold under a lane cap.
#include "simcore/lanes/placement.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace conscale::lanes {
namespace {

TEST(TierLanePlacement, DisconnectedNodesGetTheirOwnLanes) {
  TierLanePlacement placement;
  placement.add_node("web", 1.0);
  placement.add_node("app", 2.0);
  placement.add_node("db", 3.0);
  const LanePlan plan = placement.plan(/*min_cut_delay=*/0.01);
  EXPECT_EQ(plan.lane_count, 3u);
  EXPECT_EQ(plan.lane_of, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(plan.lane_weight, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TierLanePlacement, EdgesAtOrAboveTheFloorAreCut) {
  TierLanePlacement placement;
  placement.add_node("web", 1.0);
  placement.add_node("app", 1.0);
  placement.add_node("db", 1.0);
  placement.add_edge(0, 1, 0.01);
  placement.add_edge(1, 2, 0.01);
  // Every edge carries exactly the floor of lookahead: all cuttable.
  const LanePlan plan = placement.plan(/*min_cut_delay=*/0.01);
  EXPECT_EQ(plan.lane_count, 3u);
}

TEST(TierLanePlacement, SubFloorEdgesMergeTheirEndpoints) {
  TierLanePlacement placement;
  placement.add_node("web", 1.0);
  placement.add_node("app", 2.0);
  placement.add_node("db", 4.0);
  placement.add_edge(0, 1, 0.001);  // below the floor: no usable lookahead
  placement.add_edge(1, 2, 0.05);
  const LanePlan plan = placement.plan(/*min_cut_delay=*/0.01);
  EXPECT_EQ(plan.lane_count, 2u);
  EXPECT_EQ(plan.lane_of[0], plan.lane_of[1]);
  EXPECT_NE(plan.lane_of[1], plan.lane_of[2]);
  // Clusters are numbered by first contained node: {web,app}=0, {db}=1.
  EXPECT_EQ(plan.lane_of[0], 0u);
  EXPECT_EQ(plan.lane_of[2], 1u);
  EXPECT_DOUBLE_EQ(plan.lane_weight[0], 3.0);
  EXPECT_DOUBLE_EQ(plan.lane_weight[1], 4.0);
}

TEST(TierLanePlacement, ZeroDelayEdgesAreAlwaysUncuttable) {
  TierLanePlacement placement;
  placement.add_node("a", 1.0);
  placement.add_node("b", 1.0);
  placement.add_edge(0, 1, 0.0);
  const LanePlan plan = placement.plan(/*min_cut_delay=*/0.0);
  EXPECT_EQ(plan.lane_count, 1u);
}

TEST(TierLanePlacement, LaneCapFoldsLightestClustersFirst) {
  TierLanePlacement placement;
  placement.add_node("web", 8.0);
  placement.add_node("app", 1.0);
  placement.add_node("cache", 2.0);
  placement.add_node("db", 16.0);
  const LanePlan plan = placement.plan(/*min_cut_delay=*/0.01,
                                       /*max_lanes=*/3);
  EXPECT_EQ(plan.lane_count, 3u);
  // app (1.0) and cache (2.0) are the two lightest: folded together; the
  // heavy tiers keep dedicated lanes.
  EXPECT_EQ(plan.lane_of[1], plan.lane_of[2]);
  EXPECT_NE(plan.lane_of[0], plan.lane_of[1]);
  EXPECT_NE(plan.lane_of[0], plan.lane_of[3]);
  std::vector<double> weights = plan.lane_weight;
  EXPECT_EQ(weights.size(), 3u);
  EXPECT_DOUBLE_EQ(weights[plan.lane_of[1]], 3.0);
}

TEST(TierLanePlacement, SummaryNamesEveryLane) {
  TierLanePlacement placement;
  placement.add_node("web", 1.0);
  placement.add_node("app", 2.0);
  placement.add_edge(0, 1, 0.001);
  const LanePlan plan = placement.plan(/*min_cut_delay=*/0.01);
  const std::string text = plan.summary({"web", "app"});
  EXPECT_NE(text.find("web"), std::string::npos);
  EXPECT_NE(text.find("app"), std::string::npos);
  EXPECT_NE(text.find("1 lane"), std::string::npos);
}

}  // namespace
}  // namespace conscale::lanes
