#include "conscale/threshold_rule.h"

#include <gtest/gtest.h>

namespace conscale {
namespace {

ThresholdRuleParams quick_params() {
  ThresholdRuleParams p;
  p.scale_out_threshold = 0.80;
  p.scale_in_threshold = 0.30;
  p.out_sustain_ticks = 2;
  p.in_sustain_ticks = 4;
  p.cooldown = 10.0;
  return p;
}

TEST(ThresholdRule, ScaleOutNeedsSustainedHotTicks) {
  ThresholdRule rule(quick_params());
  EXPECT_EQ(rule.evaluate(1.0, 0.9, false), ScalingDirection::kNone);
  EXPECT_EQ(rule.evaluate(2.0, 0.9, false), ScalingDirection::kOut);
}

TEST(ThresholdRule, HotStreakResetByNormalSample) {
  ThresholdRule rule(quick_params());
  rule.evaluate(1.0, 0.9, false);
  rule.evaluate(2.0, 0.5, false);  // back to normal
  EXPECT_EQ(rule.evaluate(3.0, 0.9, false), ScalingDirection::kNone);
  EXPECT_EQ(rule.evaluate(4.0, 0.9, false), ScalingDirection::kOut);
}

TEST(ThresholdRule, ScaleInIsSlow) {
  ThresholdRule rule(quick_params());
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(rule.evaluate(i, 0.1, false), ScalingDirection::kNone) << i;
  }
  EXPECT_EQ(rule.evaluate(4.0, 0.1, false), ScalingDirection::kIn);
}

TEST(ThresholdRule, QuickStartSlowStopAsymmetry) {
  const ThresholdRuleParams p = quick_params();
  EXPECT_LT(p.out_sustain_ticks, p.in_sustain_ticks);
}

TEST(ThresholdRule, MidRangeUtilizationResetsBothCounters) {
  ThresholdRule rule(quick_params());
  rule.evaluate(1.0, 0.9, false);
  rule.evaluate(2.0, 0.1, false);
  rule.evaluate(3.0, 0.1, false);
  rule.evaluate(4.0, 0.5, false);  // mid-range resets the cold streak
  rule.evaluate(5.0, 0.1, false);
  rule.evaluate(6.0, 0.1, false);
  rule.evaluate(7.0, 0.1, false);
  EXPECT_EQ(rule.evaluate(8.0, 0.1, false), ScalingDirection::kIn);
}

TEST(ThresholdRule, CooldownSuppressesActions) {
  ThresholdRule rule(quick_params());
  rule.evaluate(1.0, 0.9, false);
  EXPECT_EQ(rule.evaluate(2.0, 0.9, false), ScalingDirection::kOut);
  rule.on_action(2.0);  // cooldown until 12.0
  for (double t = 3.0; t < 12.0; t += 1.0) {
    EXPECT_EQ(rule.evaluate(t, 0.95, false), ScalingDirection::kNone) << t;
  }
  EXPECT_EQ(rule.evaluate(12.0, 0.95, false), ScalingDirection::kNone);
  EXPECT_EQ(rule.evaluate(13.0, 0.95, false), ScalingDirection::kOut);
}

TEST(ThresholdRule, BlockedPausesEvaluation) {
  ThresholdRule rule(quick_params());
  rule.evaluate(1.0, 0.9, false);
  // Blocked (e.g. a VM is provisioning): no action and the streak resets.
  EXPECT_EQ(rule.evaluate(2.0, 0.9, true), ScalingDirection::kNone);
  EXPECT_EQ(rule.evaluate(3.0, 0.9, false), ScalingDirection::kNone);
  EXPECT_EQ(rule.evaluate(4.0, 0.9, false), ScalingDirection::kOut);
}

TEST(ThresholdRule, BoundaryValuesInclusive) {
  ThresholdRule rule(quick_params());
  // Exactly at the thresholds counts as hot/cold.
  rule.evaluate(1.0, 0.80, false);
  EXPECT_EQ(rule.evaluate(2.0, 0.80, false), ScalingDirection::kOut);
  ThresholdRule rule2(quick_params());
  for (int i = 1; i <= 3; ++i) rule2.evaluate(i, 0.30, false);
  EXPECT_EQ(rule2.evaluate(4.0, 0.30, false), ScalingDirection::kIn);
}

TEST(ThresholdRule, DirectionToString) {
  EXPECT_EQ(to_string(ScalingDirection::kNone), "none");
  EXPECT_EQ(to_string(ScalingDirection::kOut), "scale-out");
  EXPECT_EQ(to_string(ScalingDirection::kIn), "scale-in");
}

}  // namespace
}  // namespace conscale
