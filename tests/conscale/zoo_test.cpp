// Behavioral tests for the controller zoo: each controller is driven with
// hand-injected warehouse samples (monitor-free, like controller_test) so
// the control law sees exactly the signal the test dictates.
#include <gtest/gtest.h>

#include <memory>

#include "conscale/framework.h"
#include "conscale/zoo/predictive_controller.h"
#include "conscale/zoo/rt_policies.h"
#include "conscale/zoo/vertical_controller.h"
#include "test_helpers.h"

namespace conscale {
namespace {

using testing::Harness;
using zoo::FuzzyResponseTimePolicy;
using zoo::PiResponseTimePolicy;
using zoo::PredictiveController;
using zoo::VerticalEntitlementController;

/// Monitor-free bundle: samples are injected by hand.
struct ZooFixture : ::testing::Test {
  ZooFixture()
      : scenario(testing::small_scenario()),
        system(sim, scenario.system_config()),
        warehouse(std::make_shared<MetricsWarehouse>()),
        hw(sim, system), sw(sim, system) {
    targets.thread_adapt_tiers = {kAppTier};
  }

  std::string app_tier_name() const { return "Tomcat"; }

  void push_system(SimTime t, double mean_rt, double throughput) {
    SystemSample s;
    s.t = t;
    s.mean_rt = mean_rt;
    s.throughput = throughput;
    warehouse->record_system(s);
  }

  void push_app_tier(SimTime t, double util, std::uint32_t running) {
    TierSample s;
    s.t = t;
    s.avg_cpu_utilization = util;
    s.billed_vms = running;
    s.running_vms = running;
    warehouse->record_tier(app_tier_name(), s);
  }

  Simulation sim;
  ScenarioParams scenario;
  NTierSystem system;
  std::shared_ptr<MetricsWarehouse> warehouse;
  HardwareAgent hw;
  SoftwareAgent sw;
  SoftAdaptTargets targets;
  Ec2AutoScalingPolicy noop_policy;
};

// ---- PI response-time policy ----------------------------------------------

TEST_F(ZooFixture, PiShrinksConcurrencyWhenRtAboveTarget) {
  PiResponseTimePolicy policy(system, sw, *warehouse, targets,
                              PiPolicyParams{});
  sim.run_until(6.0);  // initial VMs ready: no actuator-lag suppression
  const double initial =
      static_cast<double>(system.tier(kAppTier).thread_pool_size());
  ASSERT_GT(initial, 4.0);
  push_system(7.0, /*mean_rt=*/1.0, /*throughput=*/50.0);  // 4x over target
  policy.adapt(7.0);
  ASSERT_FALSE(sw.events().empty());
  EXPECT_EQ(sw.events().back().action, "threads");
  EXPECT_LT(sw.events().back().value, initial);
}

TEST_F(ZooFixture, PiUpdatesOncePerObservation) {
  PiResponseTimePolicy policy(system, sw, *warehouse, targets,
                              PiPolicyParams{});
  sim.run_until(6.0);
  policy.adapt(6.5);  // no samples yet: no actuation
  EXPECT_TRUE(sw.events().empty());
  push_system(7.0, 1.0, 50.0);
  policy.adapt(7.0);
  const std::size_t after_first = sw.events().size();
  ASSERT_GE(after_first, 1u);
  policy.adapt(7.2);  // same observation: dedup, no second PI step
  EXPECT_EQ(sw.events().size(), after_first);
}

TEST_F(ZooFixture, PiGrowsAllocationBackWhenRtRecovers) {
  PiResponseTimePolicy policy(system, sw, *warehouse, targets,
                              PiPolicyParams{});
  sim.run_until(6.0);
  push_system(7.0, 1.0, 50.0);
  policy.adapt(7.0);
  ASSERT_FALSE(sw.events().empty());
  const double shrunk = sw.events().back().value;
  push_system(8.0, 0.05, 50.0);  // well under the 250 ms target
  policy.adapt(8.0);
  EXPECT_GT(sw.events().back().value, shrunk);
}

TEST_F(ZooFixture, PiHoldsIntegratorWhileTargetsProvision) {
  PiResponseTimePolicy policy(system, sw, *warehouse, targets,
                              PiPolicyParams{});
  // The sim never runs, so the initial VMs are still provisioning: RT over
  // target is actuator lag, not excess concurrency — conditional
  // integration skips the ki term and the allocation holds.
  push_system(1.0, 1.0, 50.0);
  policy.adapt(1.0);
  EXPECT_TRUE(sw.events().empty());
}

TEST_F(ZooFixture, PiWindsUpDuringProvisioningWhenAntiWindupOff) {
  PiPolicyParams params;
  params.conditional_integration = false;
  PiResponseTimePolicy policy(system, sw, *warehouse, targets, params);
  push_system(1.0, 1.0, 50.0);  // same lagged regime as above
  policy.adapt(1.0);
  ASSERT_FALSE(sw.events().empty());  // legacy behavior: shrink anyway
  EXPECT_EQ(sw.events().back().action, "threads");
}

// ---- fuzzy response-time policy -------------------------------------------

TEST_F(ZooFixture, FuzzyStepsDownOnHighRtAndUpOnLowRt) {
  FuzzyResponseTimePolicy policy(system, sw, *warehouse, targets,
                                 FuzzyPolicyParams{});
  const double initial =
      static_cast<double>(system.tier(kAppTier).thread_pool_size());
  push_system(1.0, 1.0, 50.0);
  policy.adapt(1.0);
  ASSERT_FALSE(sw.events().empty());
  const double shrunk = sw.events().back().value;
  EXPECT_LT(shrunk, initial);
  push_system(2.0, 0.05, 50.0);
  policy.adapt(2.0);
  EXPECT_GT(sw.events().back().value, shrunk);
}

TEST_F(ZooFixture, FuzzyHoldsWhenNothingCompletes) {
  FuzzyResponseTimePolicy policy(system, sw, *warehouse, targets,
                                 FuzzyPolicyParams{});
  push_system(1.0, /*mean_rt=*/0.0, /*throughput=*/0.0);  // stalled second
  policy.adapt(1.0);
  EXPECT_TRUE(sw.events().empty());  // no error signal, no actuation
}

// ---- vertical entitlement controller --------------------------------------

TEST_F(ZooFixture, VerticalTrimsEntitlementOnLowUtilizationThenRaises) {
  VerticalControllerParams params;
  params.period = 1.0;
  params.tiers = {kAppTier};
  VerticalEntitlementController controller(sim, system, *warehouse, hw, sw,
                                           noop_policy, ControllerConfig{},
                                           params);
  push_app_tier(0.5, /*util=*/0.2, /*running=*/1);
  sim.run_until(1.5);  // one review on a cold tier
  bool trimmed = false;
  double entitlement = 1.0;
  for (const ScalingEvent& event : hw.events()) {
    if (event.action == "entitlement") {
      trimmed = true;
      entitlement = event.value;
    }
  }
  ASSERT_TRUE(trimmed);
  EXPECT_LT(entitlement, 1.0);
  EXPECT_GE(controller.counters().at("entitlement_trims"), 1u);

  // Demand returns: utilization against the trimmed window reads hot, and
  // the next review hands capacity back.
  push_app_tier(1.6, /*util=*/0.95, /*running=*/1);
  sim.run_until(2.5);
  double raised = 0.0;
  for (const ScalingEvent& event : hw.events()) {
    if (event.action == "entitlement") raised = event.value;
  }
  EXPECT_GT(raised, entitlement);
  EXPECT_GE(controller.counters().at("entitlement_raises"), 1u);
}

TEST_F(ZooFixture, VerticalHoldsInsideDeadband) {
  VerticalControllerParams params;
  params.period = 1.0;
  params.tiers = {kAppTier};
  VerticalEntitlementController controller(sim, system, *warehouse, hw, sw,
                                           noop_policy, ControllerConfig{},
                                           params);
  push_app_tier(0.5, /*util=*/params.target_utilization, /*running=*/1);
  sim.run_until(1.5);  // usage == target: desired entitlement is current
  for (const ScalingEvent& event : hw.events()) {
    EXPECT_NE(event.action, "entitlement");
  }
  EXPECT_GE(controller.counters().at("entitlement_holds"), 1u);
  // The horizontal counters ride along in the same map.
  EXPECT_EQ(controller.counters().at("scale_outs"), 0u);
}

// ---- Holt-Winters predictive controller -----------------------------------

PredictiveControllerParams fast_predictive() {
  PredictiveControllerParams params;
  params.period = 1.0;
  params.horizon = 5.0;
  params.cooldown = 2.0;
  return params;
}

TEST_F(ZooFixture, PredictiveScalesOutAheadOfRisingThroughput) {
  PredictiveController controller(sim, system, *warehouse, hw,
                                  fast_predictive());
  // A steady ramp: +50% completion rate per second under high utilization.
  for (int k = 0; k < 10; ++k) {
    sim.schedule_at(0.5 + k, [this, k] {
      push_system(sim.now(), 0.2, 10.0 + 5.0 * k);
      push_app_tier(sim.now(), 0.7, 1);
    });
  }
  sim.run_until(1.2);  // first step only primes the Holt state
  EXPECT_EQ(controller.counters().at("forecasts"), 0u);
  EXPECT_EQ(controller.counters().at("scale_outs"), 0u);
  sim.run_until(10.0);
  EXPECT_GE(controller.counters().at("forecasts"), 1u);
  EXPECT_GE(controller.counters().at("scale_outs"), 1u);
  EXPECT_GE(system.tier(kAppTier).billed_vms(), 2u);
}

TEST_F(ZooFixture, PredictiveScalesInWhenForecastSitsInsideTargetBand) {
  // Grow the app tier first, then feed a flat, low-utilization forecast.
  ASSERT_TRUE(hw.scale_out(kAppTier));
  sim.run_until(6.0);  // past the 5 s prep delay: 2 VMs running
  ASSERT_EQ(system.tier(kAppTier).running_vms(), 2u);
  PredictiveController controller(sim, system, *warehouse, hw,
                                  fast_predictive());
  for (int k = 0; k < 6; ++k) {
    sim.schedule_at(6.5 + k, [this] {
      push_system(sim.now(), 0.05, 10.0);  // flat: growth ratio ~1
      push_app_tier(sim.now(), 0.1, 2);
    });
  }
  sim.run_until(12.0);
  EXPECT_GE(controller.counters().at("scale_ins"), 1u);
  EXPECT_EQ(system.tier(kAppTier).billed_vms(), 1u);
}

TEST_F(ZooFixture, PredictiveIgnoresQuietSeries) {
  PredictiveController controller(sim, system, *warehouse, hw,
                                  fast_predictive());
  for (int k = 0; k < 5; ++k) {
    sim.schedule_at(0.5 + k, [this] {
      push_system(sim.now(), 0.0, 0.0);  // no traffic at all
      push_app_tier(sim.now(), 0.0, 1);
    });
  }
  sim.run_until(8.0);
  EXPECT_EQ(controller.counters().at("forecasts"), 0u);
  EXPECT_EQ(controller.counters().at("scale_outs"), 0u);
  EXPECT_EQ(controller.counters().at("scale_ins"), 0u);
}

// ---- registry-level option plumbing ---------------------------------------

TEST(ZooOptions, UnknownZooOptionAbortsLoudly) {
  Harness h;
  FrameworkConfig config;
  config.targets.thread_adapt_tiers = {kAppTier};
  EXPECT_THROW(ScalingFramework(h.sim, h.system, *h.warehouse, "pi(bogus=1)",
                                config),
               std::runtime_error);
  EXPECT_THROW(ScalingFramework(h.sim, h.system, *h.warehouse,
                                "holt-winters(alpha=fast)", config),
               std::runtime_error);
}

TEST(ZooOptions, TunedReferencesBuild) {
  for (const std::string ref :
       {"pi(target_ms=300;kp=10;ki=2)", "fuzzy(step_large=20)",
        "vertical(target_util=0.7;period=2)",
        "holt-winters(alpha=0.5;horizon=30)"}) {
    SCOPED_TRACE(ref);
    Harness h;
    FrameworkConfig config;
    config.targets.thread_adapt_tiers = {kAppTier};
    ScalingFramework framework(h.sim, h.system, *h.warehouse, ref, config);
    h.sim.run_until(6.0);
    EXPECT_FALSE(framework.controller().counters().empty());
  }
}

}  // namespace
}  // namespace conscale
