// Shared fixture pieces for the conscale module tests: a compressed 3-tier
// system with deterministic workload helpers.
#pragma once

#include <memory>

#include "cluster/ntier_system.h"
#include "experiments/scenario.h"
#include "metrics/monitor.h"
#include "metrics/warehouse.h"
#include "workload/client.h"

namespace conscale::testing {

inline ScenarioParams small_scenario() {
  ScenarioParams p = ScenarioParams::test_scale();
  p.vm_prep_delay = 5.0;  // faster tests
  return p;
}

/// System + warehouse + monitor bundle used across conscale tests.
struct Harness {
  explicit Harness(const ScenarioParams& params = small_scenario())
      : scenario(params), mix(params.make_mix()),
        system(sim, params.system_config()),
        warehouse(std::make_shared<MetricsWarehouse>()),
        monitor(sim, system, *warehouse) {}

  /// Drives a constant closed-loop load of `users` (zero think) for later
  /// inspection. Returns the population so the caller can keep it alive.
  std::unique_ptr<ClientPopulation> load(double users, double duration,
                                         double think = 0.0) {
    trace = std::make_unique<WorkloadTrace>(
        make_constant_trace(users, duration + 1.0));
    ClientPopulation::Params cp;
    cp.think_time_mean = think;
    cp.seed = scenario.seed ^ 0xabcd;
    auto clients = std::make_unique<ClientPopulation>(
        sim, *trace, mix,
        [this](const RequestContext& ctx, std::function<void()> done) {
          system.submit(ctx, std::move(done));
        },
        cp);
    clients->set_completion_hook(
        [this](SimTime issued, double rt, const RequestClass&) {
          monitor.on_client_completion(issued, rt);
        });
    return clients;
  }

  Simulation sim;
  ScenarioParams scenario;
  RequestMix mix;
  NTierSystem system;
  std::shared_ptr<MetricsWarehouse> warehouse;
  MonitoringAgent monitor;
  std::unique_ptr<WorkloadTrace> trace;
};

}  // namespace conscale::testing
