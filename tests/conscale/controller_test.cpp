#include "conscale/controller.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace conscale {
namespace {

using testing::Harness;

// A policy that records its adapt() invocations.
class SpyPolicy final : public SoftResourcePolicy {
 public:
  std::string name() const override { return "spy"; }
  void adapt(SimTime now) override { calls.push_back(now); }
  std::vector<SimTime> calls;
};

ControllerConfig fast_config() {
  ControllerConfig config;
  config.rule.scale_out_threshold = 0.80;
  config.rule.scale_in_threshold = 0.30;
  config.rule.out_sustain_ticks = 2;
  config.rule.in_sustain_ticks = 5;
  config.rule.cooldown = 3.0;
  config.tick = 1.0;
  return config;
}

// Deliberately monitor-free: CPU samples are injected by hand so the rule
// sees exactly the utilization the test dictates.
struct ControllerFixture : ::testing::Test {
  struct H {
    H() : scenario(testing::small_scenario()),
          system(sim, scenario.system_config()),
          warehouse(std::make_shared<MetricsWarehouse>()) {}
    Simulation sim;
    ScenarioParams scenario;
    NTierSystem system;
    std::shared_ptr<MetricsWarehouse> warehouse;
  };

  ControllerFixture() : hw(h.sim, h.system), sw(h.sim, h.system) {}

  void make_controller(ControllerConfig config = fast_config()) {
    controller = std::make_unique<DecisionController>(
        h.sim, h.system, *h.warehouse, hw, sw, policy, config);
  }

  /// Injects a tier CPU sample directly (bypassing real load).
  void push_cpu(const std::string& tier, double util) {
    TierSample s;
    s.t = h.sim.now();
    s.avg_cpu_utilization = util;
    h.warehouse->record_tier(tier, s);
  }

  H h;
  HardwareAgent hw;
  SoftwareAgent sw;
  SpyPolicy policy;
  std::unique_ptr<DecisionController> controller;
};

TEST_F(ControllerFixture, ScalesOutOnSustainedHotCpu) {
  make_controller();
  h.sim.run_until(0.1);
  // Keep the Tomcat tier hot; ticks at 1,2 should trigger at tick 2.
  for (int t = 0; t < 3; ++t) {
    push_cpu("Tomcat", 0.95);
    h.sim.run_for(1.0);
  }
  EXPECT_EQ(controller->scale_out_count(), 1u);
  EXPECT_EQ(h.system.tier(kAppTier).billed_vms(), 2u);
}

TEST_F(ControllerFixture, NoScaleOutBelowThreshold) {
  make_controller();
  h.sim.run_until(0.1);
  for (int t = 0; t < 10; ++t) {
    push_cpu("Tomcat", 0.70);
    push_cpu("MySQL", 0.70);
    h.sim.run_for(1.0);
  }
  EXPECT_EQ(controller->scale_out_count(), 0u);
}

TEST_F(ControllerFixture, AdaptInvokedWhenVmBecomesReady) {
  make_controller();
  h.sim.run_until(0.1);
  for (int t = 0; t < 3; ++t) {
    push_cpu("MySQL", 0.95);
    h.sim.run_for(1.0);
  }
  ASSERT_EQ(controller->scale_out_count(), 1u);
  EXPECT_TRUE(policy.calls.empty());  // VM still provisioning
  h.sim.run_for(h.scenario.vm_prep_delay + 1.0);
  EXPECT_EQ(policy.calls.size(), 1u);
  EXPECT_EQ(controller->adapt_count(), 1u);
}

TEST_F(ControllerFixture, ProvisioningBlocksFurtherScaleOut) {
  make_controller();
  h.sim.run_until(0.1);
  for (int t = 0; t < 5; ++t) {
    push_cpu("Tomcat", 0.95);
    h.sim.run_for(1.0);
  }
  // Only one scale-out despite persistent heat: the tier is blocked while
  // the new VM provisions (prep delay is 5 s in the test scenario).
  EXPECT_EQ(controller->scale_out_count(), 1u);
}

TEST_F(ControllerFixture, ScaleInAfterSustainedColdAndAdapts) {
  make_controller();
  h.sim.run_until(0.1);
  // Grow the DB tier first.
  for (int t = 0; t < 3; ++t) {
    push_cpu("MySQL", 0.95);
    h.sim.run_for(1.0);
  }
  h.sim.run_for(h.scenario.vm_prep_delay + 2.0);
  ASSERT_EQ(h.system.tier(kDbTier).running_vms(), 2u);
  const std::size_t adapts_before = policy.calls.size();
  // Now run cold long enough for slow turn-off (5 ticks + cooldown).
  for (int t = 0; t < 12; ++t) {
    push_cpu("MySQL", 0.05);
    h.sim.run_for(1.0);
  }
  EXPECT_EQ(controller->scale_in_count(), 1u);
  EXPECT_GT(policy.calls.size(), adapts_before);  // adapt on scale-in too
}

TEST_F(ControllerFixture, PeriodicAdaptWhenConfigured) {
  ControllerConfig config = fast_config();
  config.periodic_adapt = 2.0;
  make_controller(config);
  h.sim.run_until(7.0);
  EXPECT_GE(policy.calls.size(), 3u);  // t = 2, 4, 6
}

TEST_F(ControllerFixture, NoPeriodicAdaptByDefault) {
  make_controller();
  h.sim.run_until(10.0);
  EXPECT_TRUE(policy.calls.empty());
}

}  // namespace
}  // namespace conscale
