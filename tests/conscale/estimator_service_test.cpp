#include "conscale/estimator_service.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "test_helpers.h"

namespace conscale {
namespace {

using testing::Harness;

// Feeds synthetic 50 ms samples for a server into the warehouse: a classic
// three-stage curve, so the service has real structure to estimate.
void feed_curve(MetricsWarehouse& warehouse, const std::string& server,
                int q_knee, int q_fall, double tp_max, int q_max,
                std::uint64_t seed = 5) {
  Rng rng(seed);
  SimTime t = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    for (int q = 1; q <= q_max; ++q) {
      IntervalSample s;
      s.t_end = (t += 0.05);
      s.concurrency = q;
      double tp;
      if (q <= q_knee) {
        tp = tp_max * q / q_knee;
      } else if (q <= q_fall) {
        tp = tp_max;
      } else {
        // Steep enough that the descending stage is unambiguous
        // under the estimator's practical-floor + t-test evidence rule.
        tp = tp_max * (1.0 - 0.02 * (q - q_fall));
      }
      s.throughput = rng.normal(tp, 0.03 * tp_max);
      s.completions = 5;
      s.mean_rt = 0.01;
      warehouse.record_server(server, s);
    }
  }
}

TEST(EstimatorService, NoEstimateWithoutData) {
  Harness h;
  EstimatorServiceParams params;
  ConcurrencyEstimatorService service(h.sim, h.system, *h.warehouse, params);
  h.sim.run_until(0.1);
  service.refresh_now();
  EXPECT_FALSE(service.tier_estimate("MySQL").has_value());
  EXPECT_TRUE(service.history().empty());
}

TEST(EstimatorService, EstimatesTierFromServerWindows) {
  Harness h;
  h.sim.run_until(0.1);
  EstimatorServiceParams params;
  params.window = 1e9;  // everything
  ConcurrencyEstimatorService service(h.sim, h.system, *h.warehouse, params);
  feed_curve(*h.warehouse, "MySQL1", 15, 30, 5000.0, 60);
  h.sim.run_for(100.0);
  service.refresh_now();
  const auto estimate = service.tier_estimate("MySQL");
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(estimate->q_lower, 15, 3);
  EXPECT_FALSE(service.history().empty());
}

TEST(EstimatorService, RightCensoredWindowDoesNotUpdateCache) {
  Harness h;
  h.sim.run_until(0.1);
  EstimatorServiceParams params;
  params.window = 1e9;
  ConcurrencyEstimatorService service(h.sim, h.system, *h.warehouse, params);
  // Ascending-then-plateau only (no descending stage observed).
  feed_curve(*h.warehouse, "MySQL1", 15, 100, 5000.0, 40);
  h.sim.run_for(100.0);  // move past the synthetic samples' timestamps
  service.refresh_now();
  EXPECT_FALSE(service.tier_estimate("MySQL").has_value());
}

TEST(EstimatorService, SmoothingBlendsSuccessiveEstimates) {
  Harness h;
  h.sim.run_until(0.1);
  EstimatorServiceParams params;
  params.window = 120.0;
  params.smoothing = 0.5;
  params.refresh = 1e9;  // only the explicit refresh_now() calls below
  ConcurrencyEstimatorService service(h.sim, h.system, *h.warehouse, params);
  feed_curve(*h.warehouse, "MySQL1", 10, 30, 5000.0, 60, 5);
  h.sim.run_for(100.0);  // move past the synthetic samples' timestamps
  service.refresh_now();
  const auto first = service.tier_estimate("MySQL");
  ASSERT_TRUE(first.has_value());
  // Advance time so the old samples age out, then feed a shifted curve.
  h.sim.run_for(500.0);
  Rng rng(9);
  SimTime t = h.sim.now() - 100.0;
  for (int rep = 0; rep < 20; ++rep) {
    for (int q = 1; q <= 60; ++q) {
      IntervalSample s;
      s.t_end = (t += 0.05);
      s.concurrency = q;
      const double tp = q <= 20   ? 5000.0 * q / 20.0
                        : q <= 40 ? 5000.0
                                  : 5000.0 * (1.0 - 0.03 * (q - 40));
      s.throughput = rng.normal(tp, 100.0);
      s.completions = 5;
      h.warehouse->record_server("MySQL1", s);
    }
  }
  service.refresh_now();
  const auto blended = service.tier_estimate("MySQL");
  ASSERT_TRUE(blended.has_value());
  // Halfway between the old knee (~10) and the new (~20).
  EXPECT_GT(blended->q_lower, first->q_lower + 1);
  EXPECT_LT(blended->q_lower, 20);
}

TEST(EstimatorService, CensoredEdgeSurvivesBlending) {
  // Once any blended-in estimate had a censored plateau edge, the cached
  // range must stay censored (the policy must not clamp to it).
  Harness h;
  h.sim.run_until(0.1);
  EstimatorServiceParams params;
  params.window = 120.0;
  params.smoothing = 0.5;
  params.refresh = 1e9;
  ConcurrencyEstimatorService service(h.sim, h.system, *h.warehouse, params);
  // First window: full three-stage curve, contiguous through the knee.
  feed_curve(*h.warehouse, "MySQL1", 12, 25, 5000.0, 60);
  h.sim.run_for(100.0);
  service.refresh_now();
  auto first = service.tier_estimate("MySQL");
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->q_upper_censored);
  // Second window: ascending + a far-away degraded blob (gap after the
  // plateau) -> censored edge, descending still observed.
  h.sim.run_for(500.0);
  Rng rng(17);
  SimTime t = h.sim.now() - 100.0;
  for (int rep = 0; rep < 30; ++rep) {
    for (int q = 1; q <= 14; ++q) {
      IntervalSample s;
      s.t_end = (t += 0.05);
      s.concurrency = q;
      s.throughput = rng.normal(5000.0 * std::min(q, 12) / 12.0, 120.0);
      s.completions = 5;
      h.warehouse->record_server("MySQL1", s);
    }
    IntervalSample blob;
    blob.t_end = (t += 0.05);
    blob.concurrency = 80;
    blob.throughput = rng.normal(1800.0, 120.0);
    blob.completions = 5;
    h.warehouse->record_server("MySQL1", blob);
  }
  service.refresh_now();
  auto blended = service.tier_estimate("MySQL");
  ASSERT_TRUE(blended.has_value());
  EXPECT_TRUE(blended->q_upper_censored);
}

TEST(EstimatorService, PeriodicRefreshRuns) {
  Harness h;
  EstimatorServiceParams params;
  params.refresh = 5.0;
  params.window = 1e9;
  ConcurrencyEstimatorService service(h.sim, h.system, *h.warehouse, params);
  feed_curve(*h.warehouse, "Tomcat1", 12, 30, 1000.0, 60);
  h.sim.run_until(66.0);  // periodic refreshes at t=5,10,...,65
  EXPECT_TRUE(service.tier_estimate("Tomcat").has_value());
}

TEST(EstimatorService, MergesReplicasOfATier) {
  Harness h;
  h.sim.run_until(0.1);
  h.system.tier(kDbTier).scale_out();
  h.sim.run_until(10.0);
  ASSERT_EQ(h.system.tier(kDbTier).running_vms(), 2u);
  EstimatorServiceParams params;
  params.window = 1e9;
  ConcurrencyEstimatorService service(h.sim, h.system, *h.warehouse, params);
  // Each replica alone has too few samples per bucket; merged they succeed.
  feed_curve(*h.warehouse, "MySQL1", 15, 30, 5000.0, 60);
  feed_curve(*h.warehouse, "MySQL2", 15, 30, 5000.0, 60, 99);
  h.sim.run_for(100.0);  // move past the synthetic samples' timestamps
  service.refresh_now();
  ASSERT_TRUE(service.tier_estimate("MySQL").has_value());
  EXPECT_GT(service.tier_estimate("MySQL")->samples_used, 1200u);
}

}  // namespace
}  // namespace conscale
