#include "conscale/registry.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "conscale/framework.h"
#include "test_helpers.h"

namespace conscale {
namespace {

using testing::Harness;

// ---- reference parsing ----------------------------------------------------

TEST(ParseControllerRef, BareName) {
  const ControllerRef ref = parse_controller_ref("conscale");
  EXPECT_EQ(ref.name, "conscale");
  EXPECT_TRUE(ref.options.empty());
}

TEST(ParseControllerRef, NameWithOptions) {
  const ControllerRef ref = parse_controller_ref("pi(target_ms=250;kp=0.9)");
  EXPECT_EQ(ref.name, "pi");
  ASSERT_EQ(ref.options.size(), 2u);
  EXPECT_EQ(ref.options.at("target_ms"), "250");
  EXPECT_EQ(ref.options.at("kp"), "0.9");
}

TEST(ParseControllerRef, CommaSeparatorAndWhitespaceTolerated) {
  const ControllerRef ref =
      parse_controller_ref("  fuzzy( step_large = 12 , step_small=4 )  ");
  EXPECT_EQ(ref.name, "fuzzy");
  ASSERT_EQ(ref.options.size(), 2u);
  EXPECT_EQ(ref.options.at("step_large"), "12");
  EXPECT_EQ(ref.options.at("step_small"), "4");
}

TEST(ParseControllerRef, MalformedSyntaxAborts) {
  EXPECT_THROW(parse_controller_ref("pi(kp=1"), std::runtime_error);
  EXPECT_THROW(parse_controller_ref(""), std::runtime_error);
  EXPECT_THROW(parse_controller_ref("(kp=1)"), std::runtime_error);
  EXPECT_THROW(parse_controller_ref("pi(kp)"), std::runtime_error);
  EXPECT_THROW(parse_controller_ref("pi(=1)"), std::runtime_error);
  EXPECT_THROW(parse_controller_ref("pi(kp=1;kp=2)"), std::runtime_error);
}

TEST(ParseControllerRef, ToStringRoundTrips) {
  for (const std::string text :
       {"conscale", "pi(ki=0.2;kp=0.9)", "vertical(period=2;target_util=0.7)"}) {
    const ControllerRef ref = parse_controller_ref(text);
    EXPECT_EQ(to_string(ref), text);
    const ControllerRef again = parse_controller_ref(to_string(ref));
    EXPECT_EQ(again.name, ref.name);
    EXPECT_EQ(again.options, ref.options);
  }
}

// ---- registration ---------------------------------------------------------

TEST(ControllerRegistry, RejectsInvalidAndDuplicateSpecs) {
  ControllerRegistry& registry = ControllerRegistry::global();
  EXPECT_THROW(registry.register_spec(ControllerSpec{}),
               std::invalid_argument);
  ControllerSpec no_builder;
  no_builder.name = "zz-no-builder";
  EXPECT_THROW(registry.register_spec(no_builder), std::invalid_argument);

  ControllerSpec dup;
  dup.name = "zz-dup-test";
  dup.build = [](const ControllerBuildContext&) { return FrameworkParts{}; };
  registry.register_spec(dup);
  EXPECT_TRUE(registry.contains("zz-dup-test"));
  // Display name defaults to the registry key.
  EXPECT_EQ(registry.at("zz-dup-test").display_name, "zz-dup-test");
  EXPECT_THROW(registry.register_spec(dup), std::invalid_argument);
}

TEST(ControllerRegistry, UnknownNameListsTheRegistry) {
  try {
    ControllerRegistry::global().at("nope");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown controller 'nope'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("conscale"), std::string::npos) << message;
    EXPECT_NE(message.find("holt-winters"), std::string::npos) << message;
  }
}

TEST(ControllerRegistry, NamesAreSortedAndCoverBuiltinsPlusZoo) {
  const std::vector<std::string> names = ControllerRegistry::global().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string expected : {"conscale", "dcm", "ec2", "fuzzy",
                                     "holt-winters", "pi", "vertical"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  // all() mirrors names(), spec pointers keyed consistently.
  for (const ControllerSpec* spec : ControllerRegistry::global().all()) {
    EXPECT_TRUE(ControllerRegistry::global().contains(spec->name));
  }
}

// ---- list parsing ---------------------------------------------------------

TEST(ControllerRegistry, ParseListSplitsOutsideParensOnly) {
  const auto refs = ControllerRegistry::global().parse_list(
      "ec2, pi(kp=2,ki=1), conscale(headroom=1.3)");
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0].name, "ec2");
  EXPECT_EQ(refs[1].name, "pi");
  EXPECT_EQ(refs[1].options.size(), 2u);
  EXPECT_EQ(refs[2].name, "conscale");
  EXPECT_EQ(refs[2].options.at("headroom"), "1.3");
}

TEST(ControllerRegistry, ParseListValidatesEveryName) {
  EXPECT_TRUE(ControllerRegistry::global().parse_list("").empty());
  EXPECT_THROW(ControllerRegistry::global().parse_list("ec2,conscael"),
               std::runtime_error);
  EXPECT_THROW(ControllerRegistry::global().parse_list("pi(kp=1"),
               std::runtime_error);
}

// ---- OptionReader ---------------------------------------------------------

TEST(OptionReader, ReadsTypedValuesAndRejectsLeftovers) {
  ControllerOptions options{{"a", "1.5"}, {"b", "7"}};
  OptionReader reader("test", options);
  double a = 0.0;
  int b = 0;
  int absent = 42;
  reader.get("a", a);
  reader.get("b", b);
  reader.get("missing", absent);
  EXPECT_DOUBLE_EQ(a, 1.5);
  EXPECT_EQ(b, 7);
  EXPECT_EQ(absent, 42);  // untouched when the key is absent
  EXPECT_NO_THROW(reader.finish());
}

TEST(OptionReader, RejectsUnparsableValues) {
  {
    OptionReader reader("test", {{"a", "fast"}});
    double a = 0.0;
    EXPECT_THROW(reader.get("a", a), std::runtime_error);
  }
  {
    OptionReader reader("test", {{"b", "1.5"}});
    int b = 0;
    EXPECT_THROW(reader.get("b", b), std::runtime_error);
  }
  {
    OptionReader reader("test", {{"stray", "1"}});
    EXPECT_THROW(reader.finish(), std::runtime_error);
  }
}

// ---- factory round-trip ---------------------------------------------------

// Every shipped controller must assemble through the registry seam and
// survive an idle run: non-null controller, stable key/display name, and a
// counters() map the reports can consume.
TEST(ControllerRegistry, FactoryRoundTripForAllShippedControllers) {
  const std::vector<std::string> shipped = {
      "ec2", "dcm", "conscale", "pi", "fuzzy", "vertical", "holt-winters"};
  for (const std::string& name : shipped) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(ControllerRegistry::global().contains(name));
    Harness h;
    FrameworkConfig config;
    config.targets.thread_adapt_tiers = {kAppTier};
    config.targets.conn_adapt = {{kAppTier, kDbTier}};
    config.dcm_profile.tier_optimal_concurrency[kAppTier] = 20;
    ScalingFramework framework(h.sim, h.system, *h.warehouse, name, config);
    EXPECT_EQ(framework.key(), name);
    EXPECT_EQ(framework.name(),
              ControllerRegistry::global().at(name).display_name);
    h.sim.run_until(12.0);  // periodic reviews fire without load: no crash
    const ControllerCounters counters = framework.controller().counters();
    EXPECT_FALSE(counters.empty());
  }
}

}  // namespace
}  // namespace conscale
