#include "conscale/framework.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace conscale {
namespace {

using testing::Harness;

FrameworkConfig basic_config() {
  FrameworkConfig config;
  config.targets.thread_adapt_tiers = {kAppTier};
  config.targets.conn_adapt = {{kAppTier, kDbTier}};
  return config;
}

TEST(BuiltinControllers, HistoricalDisplayNamesPreserved) {
  const ControllerRegistry& registry = ControllerRegistry::global();
  EXPECT_EQ(registry.at("ec2").display_name, "EC2-AutoScaling");
  EXPECT_EQ(registry.at("dcm").display_name, "DCM");
  EXPECT_EQ(registry.at("conscale").display_name, "ConScale");
}

TEST(ScalingFramework, Ec2HasNoEstimatorService) {
  Harness h;
  ScalingFramework framework(h.sim, h.system, *h.warehouse, "ec2",
                             basic_config());
  EXPECT_EQ(framework.estimator_service(), nullptr);
  EXPECT_EQ(framework.name(), "EC2-AutoScaling");
  EXPECT_EQ(framework.key(), "ec2");
}

TEST(ScalingFramework, DcmHasNoEstimatorService) {
  Harness h;
  FrameworkConfig config = basic_config();
  config.dcm_profile.tier_optimal_concurrency[kAppTier] = 20;
  ScalingFramework framework(h.sim, h.system, *h.warehouse, "dcm", config);
  EXPECT_EQ(framework.estimator_service(), nullptr);
  EXPECT_EQ(framework.name(), "DCM");
}

TEST(ScalingFramework, ConScaleHasEstimatorService) {
  Harness h;
  ScalingFramework framework(h.sim, h.system, *h.warehouse, "conscale",
                             basic_config());
  EXPECT_NE(framework.estimator_service(), nullptr);
  EXPECT_EQ(framework.name(), "ConScale");
}

TEST(ScalingFramework, UnknownControllerAbortsWithRegisteredList) {
  Harness h;
  try {
    ScalingFramework framework(h.sim, h.system, *h.warehouse, "conscael",
                               basic_config());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown controller 'conscael'"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("conscale"), std::string::npos) << message;
    EXPECT_NE(message.find("ec2"), std::string::npos) << message;
  }
}

TEST(ScalingFramework, ReferenceOptionsReachTheConfig) {
  // "conscale(headroom=...)" must flow through the configure hook; an
  // option on a controller without one must abort.
  Harness h;
  ScalingFramework ok(h.sim, h.system, *h.warehouse,
                      "conscale(headroom=1.25)", basic_config());
  EXPECT_EQ(ok.key(), "conscale");
  EXPECT_THROW(ScalingFramework(h.sim, h.system, *h.warehouse,
                                "conscale(hedroom=1.25)", basic_config()),
               std::runtime_error);
  EXPECT_THROW(ScalingFramework(h.sim, h.system, *h.warehouse, "ec2(x=1)",
                                basic_config()),
               std::runtime_error);
}

TEST(ScalingFramework, AllEventsMergedAndSorted) {
  Harness h;
  ScalingFramework framework(h.sim, h.system, *h.warehouse, "conscale",
                             basic_config());
  h.sim.run_until(0.1);
  // Interleave hardware and soft actions.
  framework.software_agent().set_tier_threads(kAppTier, 30);
  framework.hardware_agent().scale_out(kDbTier);
  h.sim.run_for(5.0);
  framework.software_agent().set_tier_threads(kAppTier, 25);
  const auto events = framework.all_events();
  ASSERT_GE(events.size(), 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t, events[i].t);
  }
}

TEST(ScalingFramework, RunsQuietlyWithoutLoad) {
  // A framework on an idle system must not scale or crash.
  Harness h;
  ScalingFramework framework(h.sim, h.system, *h.warehouse, "conscale",
                             basic_config());
  h.sim.run_until(60.0);
  const ControllerCounters counters = framework.controller().counters();
  EXPECT_EQ(counters.at("scale_outs"), 0u);
  EXPECT_EQ(counters.at("scale_ins"), 0u);
  EXPECT_EQ(h.system.total_billed_vms(), 3u);
}

}  // namespace
}  // namespace conscale
