#include "conscale/framework.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace conscale {
namespace {

using testing::Harness;

FrameworkConfig basic_config() {
  FrameworkConfig config;
  config.targets.thread_adapt_tiers = {kAppTier};
  config.targets.conn_adapt = {{kAppTier, kDbTier}};
  return config;
}

TEST(FrameworkKindNames, ToString) {
  EXPECT_EQ(to_string(FrameworkKind::kEc2AutoScaling), "EC2-AutoScaling");
  EXPECT_EQ(to_string(FrameworkKind::kDcm), "DCM");
  EXPECT_EQ(to_string(FrameworkKind::kConScale), "ConScale");
}

TEST(ScalingFramework, Ec2HasNoEstimatorService) {
  Harness h;
  ScalingFramework framework(h.sim, h.system, *h.warehouse,
                             FrameworkKind::kEc2AutoScaling, basic_config());
  EXPECT_EQ(framework.estimator_service(), nullptr);
  EXPECT_EQ(framework.name(), "EC2-AutoScaling");
  EXPECT_EQ(framework.kind(), FrameworkKind::kEc2AutoScaling);
}

TEST(ScalingFramework, DcmHasNoEstimatorService) {
  Harness h;
  FrameworkConfig config = basic_config();
  config.dcm_profile.tier_optimal_concurrency[kAppTier] = 20;
  ScalingFramework framework(h.sim, h.system, *h.warehouse,
                             FrameworkKind::kDcm, config);
  EXPECT_EQ(framework.estimator_service(), nullptr);
  EXPECT_EQ(framework.name(), "DCM");
}

TEST(ScalingFramework, ConScaleHasEstimatorService) {
  Harness h;
  ScalingFramework framework(h.sim, h.system, *h.warehouse,
                             FrameworkKind::kConScale, basic_config());
  EXPECT_NE(framework.estimator_service(), nullptr);
  EXPECT_EQ(framework.name(), "ConScale");
}

TEST(ScalingFramework, AllEventsMergedAndSorted) {
  Harness h;
  ScalingFramework framework(h.sim, h.system, *h.warehouse,
                             FrameworkKind::kConScale, basic_config());
  h.sim.run_until(0.1);
  // Interleave hardware and soft actions.
  framework.software_agent().set_tier_threads(kAppTier, 30);
  framework.hardware_agent().scale_out(kDbTier);
  h.sim.run_for(5.0);
  framework.software_agent().set_tier_threads(kAppTier, 25);
  const auto events = framework.all_events();
  ASSERT_GE(events.size(), 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t, events[i].t);
  }
}

TEST(ScalingFramework, RunsQuietlyWithoutLoad) {
  // A framework on an idle system must not scale or crash.
  Harness h;
  ScalingFramework framework(h.sim, h.system, *h.warehouse,
                             FrameworkKind::kConScale, basic_config());
  h.sim.run_until(60.0);
  EXPECT_EQ(framework.controller().scale_out_count(), 0u);
  EXPECT_EQ(framework.controller().scale_in_count(), 0u);
  EXPECT_EQ(h.system.total_billed_vms(), 3u);
}

}  // namespace
}  // namespace conscale
