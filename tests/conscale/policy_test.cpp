#include "conscale/policy.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace conscale {
namespace {

using testing::Harness;

SoftAdaptTargets standard_targets() {
  SoftAdaptTargets t;
  t.thread_adapt_tiers = {kAppTier};
  t.conn_adapt = {{kAppTier, kDbTier}};
  return t;
}

TEST(ApplyOptima, SetsThreadsFromOwnTierOptimum) {
  Harness h;
  h.sim.run_until(0.1);
  SoftwareAgent agent(h.sim, h.system);
  apply_optima(h.system, agent, standard_targets(),
               [](std::size_t tier) -> std::optional<int> {
                 return tier == kAppTier ? std::optional<int>(24)
                                         : std::nullopt;
               });
  h.sim.run_until(0.3);
  EXPECT_EQ(h.system.tier(kAppTier).thread_pool_size(), 24u);
  // No DB optimum -> connection pool untouched.
  EXPECT_EQ(h.system.tier(kAppTier).downstream_pool_size(),
            h.scenario.app_dbconn);
}

TEST(ApplyOptima, ConnPoolScalesWithReplicaRatio) {
  Harness h;
  h.sim.run_until(0.1);
  // 2 Tomcats, 1 MySQL.
  h.system.tier(kAppTier).scale_out();
  h.sim.run_until(10.0);
  ASSERT_EQ(h.system.tier(kAppTier).running_vms(), 2u);
  SoftwareAgent agent(h.sim, h.system);
  apply_optima(h.system, agent, standard_targets(),
               [](std::size_t tier) -> std::optional<int> {
                 return tier == kDbTier ? std::optional<int>(20)
                                        : std::nullopt;
               });
  h.sim.run_until(10.3);
  // Total into MySQL = 20 × 1 replica; per Tomcat = 20/2 = 10.
  EXPECT_EQ(h.system.tier(kAppTier).downstream_pool_size(), 10u);
}

TEST(ApplyOptima, FloorsAtOne) {
  Harness h;
  h.sim.run_until(0.1);
  SoftwareAgent agent(h.sim, h.system);
  apply_optima(h.system, agent, standard_targets(),
               [](std::size_t) -> std::optional<int> { return 0; });
  h.sim.run_until(0.3);
  EXPECT_EQ(h.system.tier(kAppTier).thread_pool_size(), 1u);
  EXPECT_EQ(h.system.tier(kAppTier).downstream_pool_size(), 1u);
}

TEST(Ec2Policy, AdaptIsNoOp) {
  Ec2AutoScalingPolicy policy;
  EXPECT_EQ(policy.name(), "EC2-AutoScaling");
  policy.adapt(1.0);  // must not crash; nothing to assert — it does nothing
}

TEST(DcmPolicy, AppliesTrainedProfile) {
  Harness h;
  h.sim.run_until(0.1);
  SoftwareAgent agent(h.sim, h.system);
  DcmProfile profile;
  profile.tier_optimal_concurrency[kAppTier] = 20;
  profile.tier_optimal_concurrency[kDbTier] = 40;
  DcmPolicy policy(h.system, agent, standard_targets(), profile);
  EXPECT_EQ(policy.name(), "DCM");
  policy.adapt(h.sim.now());
  h.sim.run_until(0.3);
  EXPECT_EQ(h.system.tier(kAppTier).thread_pool_size(), 20u);
  EXPECT_EQ(h.system.tier(kAppTier).downstream_pool_size(), 40u);
}

TEST(DcmPolicy, ProfileIsConditionBlind) {
  // DCM applies the same trained value regardless of runtime changes —
  // the staleness the paper exploits in Fig 11.
  Harness h;
  h.sim.run_until(0.1);
  SoftwareAgent agent(h.sim, h.system);
  DcmProfile profile;
  profile.tier_optimal_concurrency[kAppTier] = 20;
  DcmPolicy policy(h.system, agent, standard_targets(), profile);
  policy.adapt(h.sim.now());
  h.sim.run_until(0.3);
  const std::size_t first = h.system.tier(kAppTier).thread_pool_size();
  // "Change" the environment; DCM recommends the same thing.
  h.mix.apply_dataset_scale(0.5);
  policy.adapt(h.sim.now());
  h.sim.run_until(0.6);
  EXPECT_EQ(h.system.tier(kAppTier).thread_pool_size(), first);
}

TEST(DcmPolicy, EmptyProfileChangesNothing) {
  Harness h;
  h.sim.run_until(0.1);
  SoftwareAgent agent(h.sim, h.system);
  DcmPolicy policy(h.system, agent, standard_targets(), DcmProfile{});
  policy.adapt(h.sim.now());
  h.sim.run_until(0.3);
  EXPECT_EQ(h.system.tier(kAppTier).thread_pool_size(), h.scenario.app_threads);
  EXPECT_TRUE(agent.events().empty());
}

TEST(ConScalePolicy, UsesEstimatorRecommendationWithHeadroom) {
  Harness h;
  h.sim.run_until(0.1);
  SoftwareAgent agent(h.sim, h.system);
  EstimatorServiceParams params;
  params.window = 1e9;
  ConcurrencyEstimatorService service(h.sim, h.system, *h.warehouse, params);
  // Seed the warehouse with a three-stage curve for the app tier.
  Rng rng(31);
  SimTime t = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    for (int q = 1; q <= 60; ++q) {
      IntervalSample s;
      s.t_end = (t += 0.05);
      s.concurrency = q;
      const double tp = q <= 20 ? 1000.0 * q / 20.0
                       : q <= 35 ? 1000.0
                                 : 1000.0 - 25.0 * (q - 35);
      s.throughput = rng.normal(tp, 20.0);
      s.completions = 5;
      h.warehouse->record_server("Tomcat1", s);
    }
  }
  h.sim.run_for(100.0);
  SoftAdaptTargets targets;
  targets.thread_adapt_tiers = {kAppTier};
  ConScalePolicy policy(h.system, agent, targets, service, 1.2);
  EXPECT_EQ(policy.name(), "ConScale");
  policy.adapt(h.sim.now());
  h.sim.run_for(0.3);
  const std::size_t applied = h.system.tier(kAppTier).thread_pool_size();
  // q_lower ~20, headroom 1.2 -> ~24, clamped by q_upper ~35.
  EXPECT_GE(applied, 20u);
  EXPECT_LE(applied, 30u);
}

TEST(ConScalePolicy, NoEstimateLeavesAllocationAlone) {
  Harness h;
  h.sim.run_until(0.1);
  SoftwareAgent agent(h.sim, h.system);
  EstimatorServiceParams params;
  ConcurrencyEstimatorService service(h.sim, h.system, *h.warehouse, params);
  ConScalePolicy policy(h.system, agent, standard_targets(), service);
  policy.adapt(h.sim.now());
  h.sim.run_for(0.3);
  EXPECT_EQ(h.system.tier(kAppTier).thread_pool_size(), h.scenario.app_threads);
  EXPECT_EQ(h.system.tier(kAppTier).downstream_pool_size(),
            h.scenario.app_dbconn);
}

}  // namespace
}  // namespace conscale
