#include "conscale/agents.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace conscale {
namespace {

using testing::Harness;

TEST(HardwareAgent, ScaleOutStartsProvisioningAndLogs) {
  Harness h;
  h.sim.run_until(0.1);
  HardwareAgent agent(h.sim, h.system);
  EXPECT_TRUE(agent.scale_out(kAppTier));
  EXPECT_EQ(h.system.tier(kAppTier).provisioning_vms(), 1u);
  ASSERT_EQ(agent.events().size(), 1u);
  EXPECT_EQ(agent.events()[0].tier, "Tomcat");
  EXPECT_EQ(agent.events()[0].action, "scale-out");
  EXPECT_DOUBLE_EQ(agent.events()[0].value, 2.0);
}

TEST(HardwareAgent, ScaleOutFailsAtMax) {
  ScenarioParams p = testing::small_scenario();
  p.app_max = 1;
  Harness h(p);
  h.sim.run_until(0.1);
  HardwareAgent agent(h.sim, h.system);
  EXPECT_FALSE(agent.scale_out(kAppTier));
  EXPECT_TRUE(agent.events().empty());
}

TEST(HardwareAgent, ScaleInFailsAtMin) {
  Harness h;
  h.sim.run_until(0.1);
  HardwareAgent agent(h.sim, h.system);
  EXPECT_FALSE(agent.scale_in(kDbTier));
}

TEST(HardwareAgent, ScaleInDrainsNewest) {
  Harness h;
  h.sim.run_until(0.1);
  HardwareAgent agent(h.sim, h.system);
  agent.scale_out(kDbTier);
  h.sim.run_until(10.0);
  EXPECT_EQ(h.system.tier(kDbTier).running_vms(), 2u);
  EXPECT_TRUE(agent.scale_in(kDbTier));
  h.sim.run_until(11.0);
  EXPECT_EQ(h.system.tier(kDbTier).running_vms(), 1u);
  EXPECT_EQ(agent.events().back().action, "scale-in");
}

TEST(HardwareAgent, VerticalScalingEventAndEffect) {
  Harness h;
  h.sim.run_until(0.1);
  HardwareAgent agent(h.sim, h.system);
  EXPECT_TRUE(agent.scale_vertical(kDbTier, 2));
  EXPECT_EQ(h.system.tier(kDbTier).cores(), 2);
  ASSERT_EQ(agent.events().size(), 1u);
  EXPECT_EQ(agent.events()[0].action, "scale-vertical");
  EXPECT_DOUBLE_EQ(agent.events()[0].value, 2.0);
  EXPECT_FALSE(agent.scale_vertical(kDbTier, 0));
}

TEST(SoftwareAgent, ThreadResizeAppliesAfterActuationDelay) {
  Harness h;
  h.sim.run_until(0.1);
  SoftwareAgent agent(h.sim, h.system);
  agent.set_tier_threads(kAppTier, 25);
  // Not yet applied: the JMX call is in flight.
  EXPECT_NE(h.system.tier(kAppTier).thread_pool_size(), 25u);
  h.sim.run_until(0.3);
  EXPECT_EQ(h.system.tier(kAppTier).thread_pool_size(), 25u);
  ASSERT_EQ(agent.events().size(), 1u);
  EXPECT_EQ(agent.events()[0].action, "threads");
  EXPECT_DOUBLE_EQ(agent.events()[0].value, 25.0);
}

TEST(SoftwareAgent, DownstreamPoolResize) {
  Harness h;
  h.sim.run_until(0.1);
  SoftwareAgent agent(h.sim, h.system);
  agent.set_tier_downstream_pool(kAppTier, 12);
  h.sim.run_until(0.3);
  EXPECT_EQ(h.system.tier(kAppTier).downstream_pool_size(), 12u);
  EXPECT_EQ(agent.events()[0].action, "dbconn");
}

TEST(SoftwareAgent, IdempotentSettingsProduceNoEvents) {
  Harness h;
  h.sim.run_until(0.1);
  SoftwareAgent agent(h.sim, h.system);
  const std::size_t current = h.system.tier(kAppTier).thread_pool_size();
  agent.set_tier_threads(kAppTier, current);
  EXPECT_TRUE(agent.events().empty());
}

}  // namespace
}  // namespace conscale
