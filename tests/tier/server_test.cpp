#include "tier/server.h"
#include "common/stats.h"
#include <vector>
#include <functional>
#include <algorithm>

#include <gtest/gtest.h>

namespace conscale {
namespace {

// A request class with configurable demands on one tier.
RequestClass make_class(PhaseDemand demand, int tier = 0, double cv = 0.0) {
  RequestClass c;
  c.name = "test";
  c.demand_cv = cv;
  c.tiers.resize(static_cast<std::size_t>(tier) + 1);
  c.tiers[static_cast<std::size_t>(tier)] = demand;
  return c;
}

RequestContext make_ctx(const RequestClass& cls, std::uint64_t id = 1) {
  RequestContext ctx;
  ctx.id = id;
  ctx.request_class = &cls;
  return ctx;
}

Server::Params base_params() {
  Server::Params p;
  p.name = "srv";
  p.cores = 1;
  p.thread_pool_size = 4;
  return p;
}

TEST(Server, CpuOnlyRequestTiming) {
  Simulation sim;
  Server server(sim, base_params());
  PhaseDemand d;
  d.cpu_pre = 1.0;
  d.cpu_post = 0.5;
  const RequestClass cls = make_class(d);
  double done_at = -1;
  server.handle(make_ctx(cls), [&] { done_at = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(done_at, 1.5);
  EXPECT_EQ(server.completed_requests(), 1u);
  EXPECT_EQ(server.in_flight(), 0u);
}

TEST(Server, PureDelayHoldsThreadWithoutCpu) {
  Simulation sim;
  Server server(sim, base_params());
  PhaseDemand d;
  d.pure_delay = 2.0;
  const RequestClass cls = make_class(d);
  double done_at = -1;
  server.handle(make_ctx(cls), [&] { done_at = sim.now(); });
  sim.run_until(1.0);
  EXPECT_EQ(server.processing(), 1u);
  EXPECT_NEAR(server.cpu_busy_core_seconds(), 0.0, 1e-9);
  sim.run_all();
  EXPECT_DOUBLE_EQ(done_at, 2.0);
}

TEST(Server, DiskPhaseUsesFcfs) {
  Simulation sim;
  Server::Params p = base_params();
  p.disk_channels = 1;
  Server server(sim, p);
  PhaseDemand d;
  d.disk = 1.0;
  const RequestClass cls = make_class(d);
  std::vector<double> done;
  server.handle(make_ctx(cls, 1), [&] { done.push_back(sim.now()); });
  server.handle(make_ctx(cls, 2), [&] { done.push_back(sim.now()); });
  sim.run_all();
  // Disk serializes: completions at 1 and 2.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_NEAR(server.disk_busy_seconds(), 2.0, 1e-9);
}

TEST(Server, ThreadPoolCapsProcessingConcurrency) {
  Simulation sim;
  Server::Params p = base_params();
  p.thread_pool_size = 2;
  Server server(sim, p);
  PhaseDemand d;
  d.pure_delay = 1.0;
  const RequestClass cls = make_class(d);
  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    server.handle(make_ctx(cls, static_cast<std::uint64_t>(i)),
                  [&] { ++completions; });
  }
  EXPECT_EQ(server.processing(), 2u);
  EXPECT_EQ(server.queued(), 3u);
  EXPECT_EQ(server.in_flight(), 5u);
  sim.run_all();
  EXPECT_EQ(completions, 5);
  // 5 pure delays of 1 s through 2 threads: ceil(5/2) rounds = 3 s.
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Server, ResponseTimeIncludesQueueing) {
  Simulation sim;
  Server::Params p = base_params();
  p.thread_pool_size = 1;
  Server server(sim, p);
  PhaseDemand d;
  d.pure_delay = 1.0;
  const RequestClass cls = make_class(d);
  std::vector<double> rts;
  Server::Hooks hooks;
  hooks.on_departed = [&](SimTime, double rt) { rts.push_back(rt); };
  server.add_hooks(std::move(hooks));
  server.handle(make_ctx(cls, 1), [] {});
  server.handle(make_ctx(cls, 2), [] {});
  sim.run_all();
  ASSERT_EQ(rts.size(), 2u);
  EXPECT_DOUBLE_EQ(rts[0], 1.0);
  EXPECT_DOUBLE_EQ(rts[1], 2.0);  // waited 1 s for the thread
}

TEST(Server, DownstreamCallsAreSequentialAndHoldThread) {
  Simulation sim;
  Server server(sim, base_params());
  PhaseDemand d;
  d.downstream_calls = 3;
  const RequestClass cls = make_class(d);
  int downstream_seen = 0;
  std::size_t processing_during_downstream = 0;
  server.set_downstream(
      [&](const RequestContext&, Server::Completion reply) {
        ++downstream_seen;
        processing_during_downstream = server.processing();
        sim.schedule_after(1.0, std::move(reply));
      });
  double done_at = -1;
  server.handle(make_ctx(cls), [&] { done_at = sim.now(); });
  sim.run_all();
  EXPECT_EQ(downstream_seen, 3);
  EXPECT_EQ(processing_during_downstream, 1u);  // thread held throughout
  EXPECT_DOUBLE_EQ(done_at, 3.0);               // sequential, not parallel
}

TEST(Server, ConnectionPoolGatesDownstreamConcurrency) {
  Simulation sim;
  Server::Params p = base_params();
  p.thread_pool_size = 8;
  p.downstream_pool_size = 2;
  Server server(sim, p);
  PhaseDemand d;
  d.downstream_calls = 1;
  const RequestClass cls = make_class(d);
  int concurrent = 0, max_concurrent = 0;
  server.set_downstream(
      [&](const RequestContext&, Server::Completion reply) {
        ++concurrent;
        max_concurrent = std::max(max_concurrent, concurrent);
        sim.schedule_after(1.0, [&concurrent, reply = std::move(reply)] {
          --concurrent;
          reply();
        });
      });
  for (int i = 0; i < 6; ++i) {
    server.handle(make_ctx(cls, static_cast<std::uint64_t>(i)), [] {});
  }
  sim.run_all();
  EXPECT_EQ(max_concurrent, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // 6 calls through 2 connections
}

TEST(Server, ThreadPoolResizeTakesEffect) {
  Simulation sim;
  Server::Params p = base_params();
  p.thread_pool_size = 1;
  Server server(sim, p);
  PhaseDemand d;
  d.pure_delay = 1.0;
  const RequestClass cls = make_class(d);
  for (int i = 0; i < 4; ++i) {
    server.handle(make_ctx(cls, static_cast<std::uint64_t>(i)), [] {});
  }
  sim.schedule_at(0.5, [&] { server.set_thread_pool_size(4); });
  sim.run_all();
  // First request alone [0,1]; at 0.5 the pool grows and the other three
  // start together, completing at 1.5.
  EXPECT_DOUBLE_EQ(sim.now(), 1.5);
  EXPECT_EQ(server.thread_pool_size(), 4u);
}

TEST(Server, DownstreamPoolResizeLive) {
  Simulation sim;
  Server::Params p = base_params();
  p.thread_pool_size = 8;
  p.downstream_pool_size = 1;
  Server server(sim, p);
  EXPECT_EQ(server.downstream_pool_size(), 1u);
  server.set_downstream_pool_size(5);
  EXPECT_EQ(server.downstream_pool_size(), 5u);
}

TEST(Server, VerticalScalingSpeedsService) {
  Simulation sim;
  Server::Params p = base_params();
  p.cores = 1;
  Server server(sim, p);
  PhaseDemand d;
  d.cpu_pre = 1.0;
  const RequestClass cls = make_class(d);
  std::vector<double> done;
  server.handle(make_ctx(cls, 1), [&] { done.push_back(sim.now()); });
  server.handle(make_ctx(cls, 2), [&] { done.push_back(sim.now()); });
  server.set_cores(2);
  EXPECT_EQ(server.cores(), 2);
  sim.run_all();
  // Two cores: no sharing; both finish at 1.0.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
}

TEST(Server, InterferenceSlowsCpuOnly) {
  Simulation sim;
  Server server(sim, base_params());
  EXPECT_DOUBLE_EQ(server.cpu_speed(), 1.0);
  server.set_cpu_speed(0.5);  // noisy neighbour takes half the cycles
  PhaseDemand d;
  d.cpu_pre = 1.0;
  const RequestClass cls = make_class(d);
  double done_at = -1;
  server.handle(make_ctx(cls), [&] { done_at = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(done_at, 2.0);  // same work, half the speed
}

TEST(Server, HooksFireOnAdmissionAndDeparture) {
  Simulation sim;
  Server server(sim, base_params());
  PhaseDemand d;
  d.cpu_pre = 0.5;
  const RequestClass cls = make_class(d);
  int admitted = 0, departed = 0;
  Server::Hooks hooks;
  hooks.on_admitted = [&](SimTime) { ++admitted; };
  hooks.on_departed = [&](SimTime, double) { ++departed; };
  server.add_hooks(std::move(hooks));
  server.handle(make_ctx(cls), [] {});
  EXPECT_EQ(admitted, 1);
  EXPECT_EQ(departed, 0);
  sim.run_all();
  EXPECT_EQ(departed, 1);
}

TEST(Server, MissingTierDemandThrows) {
  Simulation sim;
  Server::Params p = base_params();
  p.tier_index = 2;
  Server server(sim, p);
  const RequestClass cls = make_class(PhaseDemand{}, 0);  // only tier 0
  EXPECT_THROW(server.handle(make_ctx(cls), [] {}), std::logic_error);
}

TEST(Server, DemandSamplingRespectsCv) {
  Simulation sim;
  Server server(sim, base_params());
  PhaseDemand d;
  d.cpu_pre = 0.01;
  RequestClass cls = make_class(d);
  cls.demand_cv = 0.5;
  std::vector<double> rts;
  Server::Hooks hooks;
  hooks.on_departed = [&](SimTime, double rt) { rts.push_back(rt); };
  server.add_hooks(std::move(hooks));
  // Serial requests (pool 4, one at a time) so RT == sampled demand.
  std::function<void(int)> submit = [&](int remaining) {
    if (remaining == 0) return;
    server.handle(make_ctx(cls), [&, remaining] { submit(remaining - 1); });
  };
  submit(2000);
  sim.run_all();
  RunningStats s;
  for (double rt : rts) s.add(rt);
  EXPECT_NEAR(s.mean(), 0.01, 0.001);
  EXPECT_NEAR(s.stddev() / s.mean(), 0.5, 0.06);
}

}  // namespace
}  // namespace conscale
