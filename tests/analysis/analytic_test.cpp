#include "experiments/analytic.h"

#include <gtest/gtest.h>

#include "experiments/runner.h"

namespace conscale {
namespace {

TEST(AnalyticBridge, StationsCoverAllResources) {
  const ScenarioParams params = ScenarioParams::paper_default();
  const auto stations = stations_for_tier_profile(params, kDbTier);
  // web cpu, web net, app cpu, app net, db cpu, db net (browse-only: no disk).
  ASSERT_EQ(stations.size(), 6u);
  bool has_db_cpu = false;
  for (const auto& s : stations) {
    EXPECT_GE(s.demand, 0.0);
    if (s.name == "db.cpu") {
      has_db_cpu = true;
      // Two queries per request at 0.13 ms each.
      EXPECT_NEAR(s.demand, 2.0 * params.mix.db_cpu_browse, 0.3e-3);
    }
  }
  EXPECT_TRUE(has_db_cpu);
}

TEST(AnalyticBridge, ReadWriteMixAddsDiskStation) {
  ScenarioParams params = ScenarioParams::paper_default();
  params.mode = WorkloadMode::kReadWriteMix;
  const auto stations = stations_for_tier_profile(params, kDbTier);
  bool has_disk = false;
  for (const auto& s : stations) has_disk |= s.name == "db.disk";
  EXPECT_TRUE(has_disk);
}

TEST(AnalyticBridge, TargetTierGetsOneVmHelpersAreWide) {
  const ScenarioParams params = ScenarioParams::paper_default();
  const auto db_target = stations_for_tier_profile(params, kDbTier, 4, 4);
  const auto app_target = stations_for_tier_profile(params, kAppTier, 4, 4);
  auto servers_of = [](const std::vector<MvaStation>& stations,
                       const std::string& name) {
    for (const auto& s : stations) {
      if (s.name == name) return s.servers;
    }
    return -1;
  };
  EXPECT_EQ(servers_of(db_target, "db.cpu"), params.db_cores);
  EXPECT_EQ(servers_of(db_target, "app.cpu"), 4 * params.app_cores);
  EXPECT_EQ(servers_of(app_target, "app.cpu"), params.app_cores);
  EXPECT_EQ(servers_of(app_target, "db.cpu"), 4 * params.db_cores);
}

TEST(AnalyticTrainer, ProducesBothTierOptima) {
  const DcmProfile profile =
      train_dcm_profile_analytical(ScenarioParams::paper_default());
  ASSERT_EQ(profile.tier_optimal_concurrency.size(), 2u);
  EXPECT_GE(profile.tier_optimal_concurrency.at(kAppTier), 5);
  EXPECT_GE(profile.tier_optimal_concurrency.at(kDbTier), 5);
}

TEST(AnalyticTrainer, AgreesWithMeasuredTrainingWithinFactor) {
  // The analytical knee and the simulation-profiled knee describe the same
  // system; they should land in the same neighbourhood (the paper's DCM
  // uses the analytical one, ConScale measures — both target one truth).
  const ScenarioParams params = ScenarioParams::paper_default();
  const DcmProfile analytical = train_dcm_profile_analytical(params);
  const DcmProfile measured = train_dcm_profile(params);
  for (std::size_t tier : {kAppTier, kDbTier}) {
    ASSERT_TRUE(measured.tier_optimal_concurrency.count(tier));
    const double a = analytical.tier_optimal_concurrency.at(tier);
    const double m = measured.tier_optimal_concurrency.at(tier);
    EXPECT_GT(a, 0.45 * m) << "tier " << tier;
    EXPECT_LT(a, 2.2 * m) << "tier " << tier;
  }
}

TEST(AnalyticTrainer, VerticalScalingRaisesDbOptimum) {
  // The analytical model reproduces the direction of Fig 7(a)->(d): more
  // cores, higher optimal concurrency. (The simulation-measured doubling is
  // asserted in the integration suite; the analytic knee under contention +
  // the Seidmann multi-server approximation lands slightly lower.)
  ScenarioParams one = ScenarioParams::paper_default();
  ScenarioParams two = ScenarioParams::paper_default();
  two.db_cores = 2;
  const int q1 =
      train_dcm_profile_analytical(one).tier_optimal_concurrency.at(kDbTier);
  const int q2 =
      train_dcm_profile_analytical(two).tier_optimal_concurrency.at(kDbTier);
  EXPECT_GT(q2, static_cast<int>(1.25 * q1));
  EXPECT_LT(q2, static_cast<int>(2.8 * q1));
}

TEST(AnalyticTrainer, DatasetGrowthLowersAppOptimum) {
  ScenarioParams original = ScenarioParams::paper_default();
  ScenarioParams enlarged = ScenarioParams::paper_default();
  enlarged.mix.dataset_scale = 1.6;
  const int q1 = train_dcm_profile_analytical(original)
                     .tier_optimal_concurrency.at(kAppTier);
  const int q2 = train_dcm_profile_analytical(enlarged)
                     .tier_optimal_concurrency.at(kAppTier);
  EXPECT_LT(q2, q1);
}

TEST(AnalyticTrainer, IoBoundWorkloadLowersDbOptimum) {
  ScenarioParams cpu_bound = ScenarioParams::paper_default();
  ScenarioParams io_bound = ScenarioParams::paper_default();
  io_bound.mode = WorkloadMode::kReadWriteMix;
  const int q1 = train_dcm_profile_analytical(cpu_bound)
                     .tier_optimal_concurrency.at(kDbTier);
  const int q2 = train_dcm_profile_analytical(io_bound)
                     .tier_optimal_concurrency.at(kDbTier);
  EXPECT_LT(q2, q1);
}

}  // namespace
}  // namespace conscale
