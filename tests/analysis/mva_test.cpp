#include "analysis/mva.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "resources/ps_resource.h"
#include "simcore/simulation.h"

namespace conscale {
namespace {

MvaStation queueing(const std::string& name, double demand, int servers = 1) {
  MvaStation s;
  s.name = name;
  s.demand = demand;
  s.servers = servers;
  return s;
}

MvaStation delay(const std::string& name, double demand) {
  MvaStation s;
  s.name = name;
  s.kind = MvaStation::Kind::kDelay;
  s.demand = demand;
  return s;
}

TEST(Mva, RejectsDegenerateInput) {
  EXPECT_THROW(solve_mva({}, 5), std::invalid_argument);
  EXPECT_THROW(solve_mva({queueing("x", 1.0)}, 0), std::invalid_argument);
  EXPECT_THROW(solve_mva({queueing("x", -1.0)}, 5), std::invalid_argument);
  EXPECT_THROW(solve_mva({queueing("x", 0.0)}, 5), std::invalid_argument);
}

TEST(Mva, SingleStationSingleJob) {
  // One job, one queueing station: X = 1/D, R = D.
  const MvaPoint p = solve_mva_at({queueing("cpu", 0.25)}, 1);
  EXPECT_NEAR(p.throughput, 4.0, 1e-9);
  EXPECT_NEAR(p.response_time, 0.25, 1e-9);
  EXPECT_NEAR(p.queue_lengths[0], 1.0, 1e-9);
}

TEST(Mva, SingleStationSaturates) {
  // n jobs at one queueing station: X = 1/D for all n >= 1, R = n*D.
  const auto curve = solve_mva({queueing("cpu", 0.5)}, 10);
  for (const auto& p : curve) {
    EXPECT_NEAR(p.throughput, 2.0, 1e-9) << p.population;
    EXPECT_NEAR(p.response_time, 0.5 * p.population, 1e-9);
  }
}

TEST(Mva, ClassicTwoStationTextbookValues) {
  // Lazowska-style check: D1=0.2, D2=0.1 (no delay).
  // n=1: R=0.3, X=3.333..., Q1=2/3, Q2=1/3.
  // n=2: R1=0.2(1+2/3)=1/3, R2=0.1(1+1/3)=2/15, R=7/15, X=30/7.
  const std::vector<MvaStation> stations = {queueing("a", 0.2),
                                            queueing("b", 0.1)};
  const auto curve = solve_mva(stations, 2);
  EXPECT_NEAR(curve[0].throughput, 10.0 / 3.0, 1e-9);
  EXPECT_NEAR(curve[0].queue_lengths[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(curve[1].throughput, 30.0 / 7.0, 1e-9);
  EXPECT_NEAR(curve[1].response_time, 7.0 / 15.0, 1e-9);
}

TEST(Mva, DelayStationAddsNoQueueing) {
  // Classic interactive system: think time Z as a delay station.
  // X(n) = n / (R(n) + Z); at saturation X -> 1/D.
  const std::vector<MvaStation> stations = {queueing("cpu", 0.1),
                                            delay("think", 0.9)};
  const auto curve = solve_mva(stations, 50);
  EXPECT_NEAR(curve[0].throughput, 1.0, 1e-9);  // 1/(0.1+0.9)
  EXPECT_NEAR(curve.back().throughput, 10.0, 0.01);  // saturated at 1/D
}

TEST(Mva, ThroughputMonotoneWithoutContention) {
  const std::vector<MvaStation> stations = {
      queueing("cpu", 0.02), delay("net", 0.2), queueing("disk", 0.01)};
  const auto curve = solve_mva(stations, 60);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].throughput, curve[i - 1].throughput - 1e-9);
  }
}

TEST(Mva, AsymptoticBoundsRespected) {
  const std::vector<MvaStation> stations = {
      queueing("cpu", 0.02), delay("net", 0.2), queueing("disk", 0.035)};
  const auto bounds = asymptotic_bounds(stations);
  EXPECT_NEAR(bounds.max_throughput, 1.0 / 0.035, 1e-9);
  const auto curve = solve_mva(stations, 200);
  for (const auto& p : curve) {
    EXPECT_LE(p.throughput, bounds.max_throughput + 1e-9);
    EXPECT_LE(p.throughput,
              static_cast<double>(p.population) / (0.02 + 0.2 + 0.035) + 1e-9);
  }
  // Far past the knee the bound is tight.
  EXPECT_NEAR(curve.back().throughput, bounds.max_throughput, 0.05);
}

TEST(Mva, MultiServerRaisesCapacity) {
  const auto one = solve_mva_at({queueing("cpu", 0.1, 1), delay("z", 0.5)}, 40);
  const auto two = solve_mva_at({queueing("cpu", 0.1, 2), delay("z", 0.5)}, 40);
  EXPECT_NEAR(one.throughput, 10.0, 0.2);
  EXPECT_NEAR(two.throughput, 20.0, 0.8);  // Seidmann is approximate
}

TEST(Mva, ContentionCreatesDescendingStage) {
  MvaStation cpu = queueing("cpu", 0.01);
  cpu.contention = ContentionModel{10.0, 0.05, 1.0};
  const std::vector<MvaStation> stations = {cpu, delay("z", 0.09)};
  const auto curve = solve_mva(stations, 80);
  double tp_max = 0.0;
  int peak = 0;
  for (const auto& p : curve) {
    if (p.throughput > tp_max) {
      tp_max = p.throughput;
      peak = p.population;
    }
  }
  // Peak is interior and the tail is clearly below it.
  EXPECT_GT(peak, 5);
  EXPECT_LT(peak, 50);
  EXPECT_LT(curve.back().throughput, 0.9 * tp_max);
}

TEST(Mva, AnalyticalRangeMatchesKneeIntuition) {
  // D_bottleneck = 0.01, Z = 0.09: knee ~ (0.01+0.09)/0.01 = 10.
  const std::vector<MvaStation> stations = {queueing("cpu", 0.01),
                                            delay("z", 0.09)};
  const AnalyticalRange range = analytical_range(stations, 100, 0.05);
  EXPECT_NEAR(range.q_lower, 10, 5);
  EXPECT_EQ(range.q_upper, 100);  // no contention: plateau runs to the edge
  EXPECT_NEAR(range.tp_max, 100.0, 2.0);
  const auto bounds = asymptotic_bounds(stations);
  EXPECT_NEAR(bounds.knee_population, 10.0, 1e-9);
}

// Cross-validation: MVA predictions vs the event-driven simulator on the
// same closed network (N jobs looping over a PS station plus a pure delay).
class MvaVsSimulation : public ::testing::TestWithParam<int> {};

TEST_P(MvaVsSimulation, ThroughputAgreesWithSimulator) {
  const int population = GetParam();
  const double demand = 0.004;
  const double think = 0.04;

  // Analytical.
  const MvaPoint predicted =
      solve_mva_at({queueing("cpu", demand), delay("z", think)}, population);

  // Simulated: N jobs cycling deterministically-seeded exponential demands.
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  Rng rng(42);
  long completions = 0;
  std::function<void()> cycle = [&] {
    ++completions;
    sim.schedule_after(rng.exponential(think), [&] {
      cpu.submit(rng.exponential(demand), cycle);
    });
  };
  for (int i = 0; i < population; ++i) {
    sim.schedule_after(rng.exponential(think),
                       [&] { cpu.submit(rng.exponential(demand), cycle); });
  }
  sim.run_until(50.0);
  const double measured =
      static_cast<double>(completions) / 50.0;

  // Exponential service under PS matches product-form MVA: agreement within
  // a few percent of sampling noise.
  EXPECT_NEAR(measured, predicted.throughput, 0.06 * predicted.throughput)
      << "population=" << population;
}

INSTANTIATE_TEST_SUITE_P(Populations, MvaVsSimulation,
                         ::testing::Values(1, 2, 5, 10, 20, 40));

}  // namespace
}  // namespace conscale
