"""Golden-fixture suite for tools/detlint.py.

The fixtures under tests/tools/fixtures/ carry EXPECT markers naming every
violation detlint must report (file, line, rule) — 100% of seeded violations
must be caught, nothing else may be reported, and waiver semantics must hold.
The fixtures are copied into a temporary directory before linting because
the unordered-iter rule is deliberately disabled under tests/ paths.
"""

import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
DETLINT = os.path.join(REPO, "tools", "detlint.py")
FIXTURES = os.path.join(HERE, "fixtures")

EXPECT_RE = re.compile(r"EXPECT(-PREV)?:\s*([a-z-]+)")
OUTPUT_RE = re.compile(r"^(.*):(\d+): \[([a-z-]+)\]")


def run_detlint(*args):
    return subprocess.run(
        [sys.executable, DETLINT, *args],
        capture_output=True, text=True, check=False)


def expected_violations(fixture_dir):
    expected = set()
    for name in sorted(os.listdir(fixture_dir)):
        path = os.path.join(fixture_dir, name)
        if not os.path.isfile(path):
            continue
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                for match in EXPECT_RE.finditer(line):
                    at = lineno - 1 if match.group(1) else lineno
                    expected.add((name, at, match.group(2)))
    return expected


def reported_violations(stdout):
    reported = set()
    for line in stdout.splitlines():
        match = OUTPUT_RE.match(line)
        if match:
            reported.add((os.path.basename(match.group(1)),
                          int(match.group(2)), match.group(3)))
    return reported


class DetlintGoldenFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.tmp = tempfile.mkdtemp(prefix="detlint_fix_")
        cls.fixture_dir = os.path.join(cls.tmp, "fixsrc")
        shutil.copytree(FIXTURES, cls.fixture_dir)

    @classmethod
    def tearDownClass(cls):
        shutil.rmtree(cls.tmp, ignore_errors=True)

    def test_catches_every_seeded_violation_and_nothing_else(self):
        result = run_detlint(self.fixture_dir, "--engine=tokens")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        expected = expected_violations(FIXTURES)
        self.assertTrue(expected, "fixtures carry no EXPECT markers?")
        reported = reported_violations(result.stdout)
        missed = expected - reported
        spurious = reported - expected
        self.assertFalse(missed, f"detlint went blind to: {sorted(missed)}")
        self.assertFalse(spurious,
                         f"detlint over-reported: {sorted(spurious)}")

    def test_clean_file_exits_zero(self):
        result = run_detlint(os.path.join(self.fixture_dir, "clean.cpp"),
                             "--engine=tokens")
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)
        self.assertEqual(reported_violations(result.stdout), set())

    def test_github_annotation_format(self):
        result = run_detlint(self.fixture_dir, "--github",
                             "--engine=tokens")
        self.assertEqual(result.returncode, 1)
        lines = [l for l in result.stdout.splitlines() if l]
        self.assertTrue(lines)
        for line in lines:
            self.assertRegex(
                line, r"^::error file=.+,line=\d+,title=detlint\([a-z-]+\)::")

    def test_list_waivers_prints_reasons_and_usage(self):
        result = run_detlint(self.fixture_dir, "--list-waivers",
                             "--engine=tokens")
        self.assertIn("commutative sum", result.stdout)
        self.assertIn("[used]", result.stdout)
        self.assertIn("[UNUSED]", result.stdout)

    def test_missing_path_is_usage_error(self):
        result = run_detlint(os.path.join(self.tmp, "no_such_dir"))
        self.assertEqual(result.returncode, 2)


class DetlintOnRealTree(unittest.TestCase):
    def test_src_bench_examples_are_clean(self):
        result = subprocess.run(
            [sys.executable, DETLINT, "src", "bench", "examples"],
            capture_output=True, text=True, check=False, cwd=REPO)
        self.assertEqual(result.returncode, 0,
                         "determinism contract violated:\n" + result.stdout)


if __name__ == "__main__":
    unittest.main()
