// Golden fixture: the unordered-name table pairs foo.h with foo.cpp, the
// common shape where a member is declared in the header and iterated in the
// source file.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace fixture {

class Population {
 public:
  double total() const;
  double keyed_total() const;

 private:
  std::unordered_map<std::uint64_t, double> members_;
};

}  // namespace fixture
