#include "pairing.h"

#include <algorithm>
#include <vector>

namespace fixture {

double Population::total() const {
  double sum = 0.0;
  for (const auto& [id, value] : members_) {  // EXPECT: unordered-iter
    sum += value;
  }
  return sum;
}

double Population::keyed_total() const {
  // The sanctioned pattern: collect keys (waived — collection order cannot
  // affect the result once sorted), sort, then iterate the sorted view.
  std::vector<std::uint64_t> ids;
  ids.reserve(members_.size());
  for (const auto& [id, value] : members_) {  // detlint: allow(unordered-iter) keys only collected, then sorted below
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  double sum = 0.0;
  for (std::uint64_t id : ids) sum += members_.at(id);
  return sum;
}

}  // namespace fixture
