// Golden fixture: every line tagged `EXPECT: <rule>` must be reported by
// detlint, at that line, with that rule. The test driver copies this file
// outside any tests/ directory (so the unordered-iter rule is live) and
// diffs detlint's output against the EXPECT markers; a rule that goes
// blind fails the suite.
//
// This file is never compiled; it only has to lex like C++.
#include <chrono>  // EXPECT: banned-api
#include <random>  // EXPECT: banned-api
#include <ctime>   // EXPECT: banned-api
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Server {};

struct State {
  std::unordered_map<int, double> table_;
  std::unordered_set<int> seen_;
  std::unordered_map<const Server*, int> by_server_;  // EXPECT: pointer-key
  std::map<Server*, int> ordered_by_server_;          // EXPECT: pointer-key
  std::vector<int> fine_;
};

inline double wall_clock_now() {
  auto t = std::chrono::steady_clock::now();  // EXPECT: banned-api
  (void)t;
  long stamp = time(nullptr);  // EXPECT: banned-api
  (void)clock();               // EXPECT: banned-api
  return static_cast<double>(stamp) + rand();  // EXPECT: banned-api
}

inline int ambient_rng() {
  std::random_device device;  // EXPECT: banned-api
  std::mt19937 engine(device());  // EXPECT: banned-api
  thread_local int counter = 0;   // EXPECT: banned-api
  return static_cast<int>(engine()) + counter++;
}

inline double sum_table(State& s) {
  double total = 0.0;
  for (auto& [key, value] : s.table_) {  // EXPECT: unordered-iter
    total += value;
  }
  for (auto it = s.seen_.begin(); it != s.seen_.end(); ++it) {  // EXPECT: unordered-iter
    total += *it;
  }
  // Iterating a vector is always fine.
  for (int v : s.fine_) total += v;
  return total;
}

inline int* leak_some_memory() {
  int* p = new int[4];  // EXPECT: raw-new
  delete[] p;           // EXPECT: raw-new
  return new int(7);    // EXPECT: raw-new
}

// Deterministic look-alikes that must NOT fire: member calls named like libc
// time functions, identifiers merely containing the banned substrings, and
// deleted special members.
struct Sim {
  double time() const { return 0.0; }
  Sim(const Sim&) = delete;
  Sim& operator=(const Sim&) = delete;
};
inline double stretch_time(const Sim& sim) { return sim.time(); }
inline double runtime_of(const Sim& sim) { return sim.time(); }

}  // namespace fixture
