// Golden fixture: a fully clean file — detlint must report nothing here.
// Exercises the look-alikes that a sloppy grep would flag: identifiers
// containing banned substrings, member functions named like libc calls,
// ordered containers with value keys, and deleted special members.
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Simulation {
  double now() const { return t_; }
  double time() const { return t_; }
  double t_ = 0.0;
};

class Runtime {
 public:
  Runtime() = default;
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  double stretch_time(double factor) const { return sim_.time() * factor; }
  double randomize_nothing() const { return 0.0; }  // name only, no RNG

 private:
  Simulation sim_;
  std::map<std::string, std::uint64_t> per_state_;  // value key: fine
  std::vector<std::unique_ptr<int>> owned_;
};

inline double iterate_ordered(const Runtime&,
                              const std::map<std::string, double>& m) {
  double sum = 0.0;
  for (const auto& [key, value] : m) sum += value;  // ordered: fine
  return sum;
}

}  // namespace fixture
