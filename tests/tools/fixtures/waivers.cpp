// Golden fixture: waiver semantics. Correct waivers silence their own line
// and the line below; a waiver without a reason, a waiver naming an unknown
// rule, and a waiver that suppresses nothing are themselves violations.
//
// Markers read by the test driver:
//   EXPECT: <rule>       — detlint must report <rule> at this line
//   EXPECT-PREV: <rule>  — detlint must report <rule> at the previous line
#include <unordered_map>

namespace fixture {

struct Counters {
  std::unordered_map<int, long> hits_;
};

inline long drain(Counters& c) {
  long total = 0;
  // detlint: allow(unordered-iter) summation is commutative; order cannot matter
  for (auto& [key, value] : c.hits_) total += value;
  return total;
}

inline long drain_same_line(Counters& c) {
  long total = 0;
  for (auto& [key, value] : c.hits_) total += value;  // detlint: allow(unordered-iter) commutative sum
  return total;
}

inline long naked_waiver(Counters& c) {
  long total = 0;
  // detlint: allow(unordered-iter)
  // EXPECT-PREV: bad-waiver
  for (auto& [key, value] : c.hits_) total += value;  // EXPECT: unordered-iter
  return total;
}

// detlint: allow(made-up-rule) this rule does not exist
// EXPECT-PREV: bad-waiver

// detlint: allow(raw-new) nothing below ever allocates
// EXPECT-PREV: unused-waiver
inline int harmless() { return 42; }

}  // namespace fixture
