"""Tests for tools/check_bench_ratios.py, the CI complexity gate.

Synthetic google-benchmark JSON covers the three behaviours the gate must
have: pass when per-item cost is flat, fail loudly when a hot path regresses
to O(n), and fail loudly when an expected benchmark is missing or renamed
(a renamed benchmark must not silently skip the gate).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
TOOL = os.path.join(REPO, "tools", "check_bench_ratios.py")


def bench(name, items_per_second, run_type="iteration"):
    return {"name": name, "run_type": run_type,
            "items_per_second": items_per_second}


def run_gate(benchmarks):
    with tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False) as f:
        json.dump({"benchmarks": benchmarks}, f)
        path = f.name
    try:
        return subprocess.run([sys.executable, TOOL, path],
                              capture_output=True, text=True, check=False)
    finally:
        os.unlink(path)


def healthy():
    """A run where every gated ratio sits comfortably inside its bound."""
    return [
        bench("BM_PsResourceChurn/4", 1.0e7),
        bench("BM_PsResourceChurn/2048", 2.5e6),        # 4x (bound 10x)
        bench("BM_WarehouseIngestQuery/3600", 5.0e6),
        bench("BM_WarehouseIngestQuery/14400", 2.0e6),  # 2.5x (bound 6x)
        bench("BM_LaneSessionChurn/4096", 1.1e7),
        bench("BM_LaneSessionChurn/65536", 8.8e6),      # 1.25x (bound 5x)
        bench("BM_LaneTierChurn/4096", 1.0e7),
        bench("BM_LaneTierChurn/65536", 8.5e6),         # ~1.2x (bound 5x)
    ]


class CheckBenchRatios(unittest.TestCase):
    def test_flat_hot_paths_pass(self):
        result = run_gate(healthy())
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)
        self.assertIn("OK", result.stdout)
        self.assertNotIn("FAIL", result.stdout)

    def test_regressed_ratio_fails(self):
        rows = healthy()
        rows[1] = bench("BM_PsResourceChurn/2048", 1.6e4)  # ~625x: O(n) back
        result = run_gate(rows)
        self.assertEqual(result.returncode, 1)
        self.assertIn("FAIL", result.stdout)
        self.assertIn("no longer flat", result.stderr)

    def test_missing_benchmark_fails_not_skips(self):
        rows = [r for r in healthy()
                if r["name"] != "BM_PsResourceChurn/2048"]
        result = run_gate(rows)
        self.assertEqual(result.returncode, 1)
        self.assertIn("missing benchmark", result.stderr)

    def test_renamed_benchmark_fails_not_skips(self):
        rows = healthy()
        rows[3]["name"] = "BM_WarehouseIngestQuery/14400_new"
        result = run_gate(rows)
        self.assertEqual(result.returncode, 1)
        self.assertIn("missing benchmark", result.stderr)

    def test_aggregate_rows_do_not_satisfy_the_gate(self):
        # Aggregate rows (mean/median when repetitions are on) must be
        # ignored: if only aggregates carry a name, the gate treats the
        # benchmark as missing rather than gating on a smoothed number.
        rows = healthy()
        rows[1]["run_type"] = "aggregate"
        result = run_gate(rows)
        self.assertEqual(result.returncode, 1)
        self.assertIn("missing benchmark", result.stderr)

    def test_usage_error_without_argument(self):
        result = subprocess.run([sys.executable, TOOL],
                                capture_output=True, text=True, check=False)
        self.assertEqual(result.returncode, 2)


if __name__ == "__main__":
    unittest.main()
