// Pins the two contracts the graph experiments layer rides on:
//
//  * Linear equivalence — the paper's 3-tier chain expressed as the trivial
//    DAG must replay the NTierSystem event sequence byte-identically, for
//    every controller family (threshold, profile-driven, SCT).
//  * Run determinism — graph runs (fan-out DAG with a shared backend, cache
//    chain with churn, admission shedding) are bit-identical across serial
//    repeats and jobs=4 thread fan-out.
#include "experiments/graph_runner.h"

#include <gtest/gtest.h>

#include <vector>

#include "experiments/parallel.h"

namespace conscale {
namespace {

ScenarioParams quick_params() {
  ScenarioParams p = ScenarioParams::paper_default();
  p.work_scale = 16.0;
  p.seed = 4242;
  return p;
}

ScalingRunOptions quick_options() {
  ScalingRunOptions options;
  options.duration = 60.0;
  return options;
}

TEST(LinearEquivalence, ChainAsDagMatchesNTierSystemByteForByte) {
  const ScenarioParams params = quick_params();
  const GraphScenario linear = make_linear_scenario(params);
  // One controller per family: threshold scale-out (ec2), the paper's SCT
  // loop (conscale), and a zoo feedback policy (pi). All three must see the
  // exact same world through either system implementation.
  for (const char* framework : {"ec2", "conscale", "pi"}) {
    const ScalingRunResult chain =
        run_scaling(params, TraceKind::kBigSpike, framework, quick_options());
    const GraphRunResult graph = run_graph_scaling(
        linear, TraceKind::kBigSpike, framework, quick_options());
    std::string diff;
    EXPECT_TRUE(results_equivalent(chain, graph.run, &diff))
        << framework << ": " << diff;
    // No graph feature may activate on the trivial DAG.
    EXPECT_EQ(graph.run.requests_rejected, 0u) << framework;
    EXPECT_TRUE(graph.caches.empty()) << framework;
  }
}

TEST(LinearEquivalence, LinearScenarioMirrorsChainTopology) {
  const GraphScenario linear = make_linear_scenario(quick_params());
  const SystemConfig chain = quick_params().system_config();
  ASSERT_EQ(linear.graph.nodes.size(), chain.tiers.size());
  for (std::size_t i = 0; i < chain.tiers.size(); ++i) {
    EXPECT_EQ(linear.graph.nodes[i].tier.name, chain.tiers[i].name);
    EXPECT_EQ(linear.graph.nodes[i].initial_vms, chain.initial_vms[i]);
    EXPECT_FALSE(linear.graph.nodes[i].cache.enabled);
  }
  EXPECT_FALSE(linear.graph.admission.enabled);
}

TEST(GraphDeterminism, FanoutSerialRepeatIsBitIdentical) {
  const GraphScenario scenario = make_fanout_scenario(quick_params());
  const GraphRunResult first = run_graph_scaling(
      scenario, TraceKind::kBigSpike, "conscale", quick_options());
  const GraphRunResult second = run_graph_scaling(
      scenario, TraceKind::kBigSpike, "conscale", quick_options());
  std::string diff;
  EXPECT_TRUE(graph_results_equivalent(first, second, &diff)) << diff;
}

TEST(GraphDeterminism, CacheChurnReplaysAcrossJobs4) {
  // The cache RNG stream is the one graph-only randomness consumer; four
  // concurrent copies of the churning-cache run must reproduce the serial
  // baseline exactly.
  const GraphScenario scenario = make_cache_scenario(quick_params());
  const GraphRunResult baseline = run_graph_scaling(
      scenario, TraceKind::kDualPhase, "conscale", quick_options());
  ASSERT_FALSE(baseline.caches.empty());
  EXPECT_GT(baseline.caches[0].second.hits, 0u);

  const std::vector<GraphRunResult> results =
      parallel_map<GraphRunResult>(4, 4, [&scenario](std::size_t) {
        return run_graph_scaling(scenario, TraceKind::kDualPhase, "conscale",
                                 quick_options());
      });
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::string diff;
    EXPECT_TRUE(graph_results_equivalent(results[i], baseline, &diff))
        << "jobs=4 copy " << i << ": " << diff;
  }
}

TEST(GraphDeterminism, SheddingRunAccountsEveryRequest) {
  // 2x overload on the fan-out DAG with admission on: rejections must be
  // deterministic, folded into the monitor's per-second series, and every
  // issued request must be served, shed, or still in flight at cutoff.
  ScenarioParams params = quick_params();
  params.max_users *= 2.0;
  GraphScenario scenario = make_fanout_scenario(params);
  scenario.graph.admission.enabled = true;
  scenario.graph.admission.queue_limit = 40;
  scenario.graph.admission.max_queue_age = 2.0;

  const GraphRunResult first = run_graph_scaling(
      scenario, TraceKind::kBigSpike, "ec2", quick_options());
  const GraphRunResult second = run_graph_scaling(
      scenario, TraceKind::kBigSpike, "ec2", quick_options());
  std::string diff;
  EXPECT_TRUE(graph_results_equivalent(first, second, &diff)) << diff;

  EXPECT_GT(first.run.requests_rejected, 0u);
  EXPECT_EQ(first.run.requests_rejected, first.admission.rejected());
  EXPECT_EQ(first.admission.admitted + first.admission.rejected(),
            first.run.requests_issued);
  EXPECT_GE(first.run.requests_issued,
            first.run.requests_completed + first.run.requests_rejected);
  std::uint64_t series_rejections = 0;
  for (const SystemSample& s : first.run.system) {
    series_rejections += s.rejected;
  }
  EXPECT_GT(series_rejections, 0u);
  EXPECT_LE(series_rejections, first.run.requests_rejected);
}

TEST(GraphRunner, RejectsSessionWorkloads) {
  const GraphScenario scenario = make_linear_scenario(quick_params());
  ScalingRunOptions options = quick_options();
  options.session_workload = true;
  EXPECT_THROW(run_graph_scaling(scenario, TraceKind::kBigSpike, "conscale",
                                 options),
               std::invalid_argument);
}

}  // namespace
}  // namespace conscale
