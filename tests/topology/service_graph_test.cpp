// Unit tests for the ServiceGraph subsystem: config validation, DAG routing
// with join-on-all fan-out, the deterministic cache model, and entry-point
// admission control. Demands use demand_cv = 0 so every service time is
// exact and completion instants can be asserted analytically.
#include "topology/service_graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "simcore/simulation.h"
#include "workload/request.h"

namespace conscale::topology {
namespace {

GraphNodeConfig leaf(const std::string& name, std::uint64_t seed,
                     std::size_t threads = 64) {
  GraphNodeConfig node;
  node.tier.name = name;
  node.tier.server_template.cores = 1;
  node.tier.server_template.thread_pool_size = threads;
  node.tier.server_template.seed = seed;
  node.tier.vm_prep_delay = 0.0;
  node.tier.min_vms = 1;
  node.tier.max_vms = 4;
  node.initial_vms = 1;
  return node;
}

/// Pure-delay demand: holds a thread for exactly `delay` (no CPU, so no
/// processor-sharing interaction) and then issues `calls` downstream RPCs.
PhaseDemand hold(double delay, int calls = 0) {
  PhaseDemand d;
  d.pure_delay = delay;
  d.downstream_calls = calls;
  return d;
}

/// A single deterministic request class over `demands` (demand_cv = 0).
RequestClass exact_class(std::vector<PhaseDemand> demands) {
  RequestClass c;
  c.name = "exact";
  c.demand_cv = 0.0;
  c.tiers = std::move(demands);
  return c;
}

RequestContext request_for(const RequestClass& cls, std::uint64_t id,
                           SimTime issued) {
  RequestContext ctx;
  ctx.id = id;
  ctx.request_class = &cls;
  ctx.issued_at = issued;
  return ctx;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(GraphValidation, RejectsEmptyGraph) {
  Simulation sim;
  ServiceGraphConfig config;
  EXPECT_THROW(ServiceGraph(sim, config), std::invalid_argument);
}

TEST(GraphValidation, RejectsDuplicateNames) {
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("A", 1), leaf("A", 2)};
  config.nodes[0].route = {RouteStage{{{1}}}};
  EXPECT_THROW(ServiceGraph(sim, config), std::invalid_argument);
}

TEST(GraphValidation, RejectsOutOfRangeRoute) {
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("A", 1)};
  config.nodes[0].route = {RouteStage{{{7}}}};
  EXPECT_THROW(ServiceGraph(sim, config), std::invalid_argument);
}

TEST(GraphValidation, RejectsSelfCall) {
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("A", 1)};
  config.nodes[0].route = {RouteStage{{{0}}}};
  EXPECT_THROW(ServiceGraph(sim, config), std::invalid_argument);
}

TEST(GraphValidation, RejectsCycle) {
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("A", 1), leaf("B", 2), leaf("C", 3)};
  config.nodes[0].route = {RouteStage{{{1}}}};
  config.nodes[1].route = {RouteStage{{{2}}}};
  config.nodes[2].route = {RouteStage{{{1}}}};
  EXPECT_THROW(ServiceGraph(sim, config), std::invalid_argument);
}

TEST(GraphValidation, RejectsUnreachableNode) {
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("A", 1), leaf("B", 2), leaf("Orphan", 3)};
  config.nodes[0].route = {RouteStage{{{1}}}};
  EXPECT_THROW(ServiceGraph(sim, config), std::invalid_argument);
}

TEST(GraphValidation, AcceptsSharedBackendDag) {
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("Gw", 1), leaf("A", 2), leaf("B", 3), leaf("Db", 4)};
  config.nodes[0].route = {RouteStage{{{1}, {2}}}};
  config.nodes[1].route = {RouteStage{{{3}}}};
  config.nodes[2].route = {RouteStage{{{3}}}};
  EXPECT_NO_THROW(ServiceGraph(sim, config));
}

// ---------------------------------------------------------------------------
// Routing and joins
// ---------------------------------------------------------------------------

TEST(GraphRouting, ParallelFanOutJoinsOnAllReplies) {
  // Gw fans out to {A (1 s), B (2 s)} in one stage: the route continues only
  // when BOTH replies are in, so the request completes at t = 2 s, and each
  // child sees exactly one visit.
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("Gw", 1), leaf("A", 2), leaf("B", 3)};
  config.nodes[0].route = {RouteStage{{{1}, {2}}}};
  ServiceGraph graph(sim, config);

  const RequestClass cls =
      exact_class({hold(0.0, 1), hold(1.0), hold(2.0)});
  SimTime done_at = -1.0;
  int done_count = 0;
  sim.schedule_after(0.0, [&] {
    graph.submit(request_for(cls, 1, sim.now()),
                 [&](RequestOutcome outcome) {
                   EXPECT_EQ(outcome, RequestOutcome::kServed);
                   done_at = sim.now();
                   ++done_count;
                 });
  });
  sim.run_until(10.0);

  EXPECT_EQ(done_count, 1);
  EXPECT_DOUBLE_EQ(done_at, 2.0);
  EXPECT_EQ(graph.tier(1).all_vms()[0]->server().completed_requests(), 1u);
  EXPECT_EQ(graph.tier(2).all_vms()[0]->server().completed_requests(), 1u);
}

TEST(GraphRouting, SequentialStagesRunInOrder) {
  // Same children, but as two sequential stages: 1 s + 2 s = 3 s.
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("Gw", 1), leaf("A", 2), leaf("B", 3)};
  config.nodes[0].route = {RouteStage{{{1}}}, RouteStage{{{2}}}};
  ServiceGraph graph(sim, config);

  const RequestClass cls =
      exact_class({hold(0.0, 1), hold(1.0), hold(2.0)});
  SimTime done_at = -1.0;
  sim.schedule_after(0.0, [&] {
    graph.submit(request_for(cls, 1, sim.now()),
                 [&](RequestOutcome) { done_at = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(done_at, 3.0);
}

TEST(GraphRouting, DownstreamCallsRepeatTheWholeRoute) {
  // downstream_calls = 2 on the entry: the route runs twice sequentially
  // (two 1 s queries into A), completing at t = 2 s with 2 visits on A.
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("Svc", 1), leaf("A", 2)};
  config.nodes[0].route = {RouteStage{{{1}}}};
  ServiceGraph graph(sim, config);

  const RequestClass cls = exact_class({hold(0.0, 2), hold(1.0)});
  SimTime done_at = -1.0;
  sim.schedule_after(0.0, [&] {
    graph.submit(request_for(cls, 1, sim.now()),
                 [&](RequestOutcome) { done_at = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(done_at, 2.0);
  EXPECT_EQ(graph.tier(1).all_vms()[0]->server().completed_requests(), 2u);
}

TEST(GraphRouting, SharedBackendSeesCrossTraffic) {
  // Gw -> {A || B} -> Db: one submit produces one visit on A and B and two
  // on the shared Db (one per parent).
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("Gw", 1), leaf("A", 2), leaf("B", 3), leaf("Db", 4)};
  config.nodes[0].route = {RouteStage{{{1}, {2}}}};
  config.nodes[1].route = {RouteStage{{{3}}}};
  config.nodes[2].route = {RouteStage{{{3}}}};
  ServiceGraph graph(sim, config);

  const RequestClass cls = exact_class(
      {hold(0.0, 1), hold(0.5, 1), hold(1.0, 1), hold(0.25)});
  int done_count = 0;
  sim.schedule_after(0.0, [&] {
    graph.submit(request_for(cls, 1, sim.now()),
                 [&](RequestOutcome) { ++done_count; });
  });
  sim.run_until(10.0);
  EXPECT_EQ(done_count, 1);
  EXPECT_EQ(graph.tier(3).all_vms()[0]->server().completed_requests(), 2u);
}

// ---------------------------------------------------------------------------
// Cache model
// ---------------------------------------------------------------------------

TEST(CacheModel, HitRatioFollowsWorkingSetChurn) {
  CacheModel cache;
  cache.base_hit_ratio = 0.8;
  cache.capacity = 1.0;
  cache.working_set = 1.0;
  cache.churn_period = 100.0;
  cache.churn_amplitude = 0.5;
  // Period edge: working set at its smallest (0.5), fully covered.
  EXPECT_DOUBLE_EQ(cache.hit_ratio_at(0.0), 0.8);
  EXPECT_DOUBLE_EQ(cache.hit_ratio_at(100.0), 0.8);
  // Quarter period: triangle wave crosses zero, nominal working set.
  EXPECT_DOUBLE_EQ(cache.hit_ratio_at(25.0), 0.8);
  // Mid-period peak: working set 1.5, coverage 2/3.
  EXPECT_NEAR(cache.hit_ratio_at(50.0), 0.8 * (1.0 / 1.5), 1e-12);
}

TEST(CacheModel, StaticWhenChurnDisabled) {
  CacheModel cache;
  cache.base_hit_ratio = 0.6;
  cache.capacity = 2.0;
  cache.working_set = 1.0;  // over-provisioned cache: coverage clamps to 1
  EXPECT_DOUBLE_EQ(cache.hit_ratio_at(0.0), 0.6);
  EXPECT_DOUBLE_EQ(cache.hit_ratio_at(1234.5), 0.6);
}

ServiceGraphConfig cache_chain(double base_hit_ratio, std::uint64_t seed) {
  ServiceGraphConfig config;
  config.seed = seed;
  config.nodes = {leaf("F", 1), leaf("C", 2), leaf("D", 3)};
  config.nodes[0].route = {RouteStage{{{1}}}};
  config.nodes[1].route = {RouteStage{{{2}}}};
  config.nodes[1].cache.enabled = true;
  config.nodes[1].cache.base_hit_ratio = base_hit_ratio;
  return config;
}

struct CacheDriveResult {
  CacheStats stats;
  std::uint64_t backend_visits = 0;
};

CacheDriveResult drive_cache_chain(double base_hit_ratio,
                                   std::uint64_t seed, int requests) {
  Simulation sim;
  ServiceGraph graph(sim, cache_chain(base_hit_ratio, seed));
  const RequestClass cls =
      exact_class({hold(0.0, 1), hold(0.1, 1), hold(0.1)});
  for (int i = 0; i < requests; ++i) {
    sim.schedule_after(i * 0.5, [&graph, &cls, &sim, i] {
      graph.submit(request_for(cls, static_cast<std::uint64_t>(i + 1),
                               sim.now()),
                   [](RequestOutcome) {});
    });
  }
  sim.run_until(requests * 0.5 + 5.0);
  CacheDriveResult result;
  result.stats = graph.cache_stats(1);
  result.backend_visits =
      graph.tier(2).all_vms()[0]->server().completed_requests();
  return result;
}

TEST(CacheNode, CertainHitShortCircuitsSubtree) {
  const CacheDriveResult r = drive_cache_chain(1.0, 42, 20);
  EXPECT_EQ(r.stats.hits, 20u);
  EXPECT_EQ(r.stats.misses, 0u);
  EXPECT_EQ(r.backend_visits, 0u);
}

TEST(CacheNode, CertainMissAlwaysReachesBackend) {
  const CacheDriveResult r = drive_cache_chain(0.0, 42, 20);
  EXPECT_EQ(r.stats.hits, 0u);
  EXPECT_EQ(r.stats.misses, 20u);
  EXPECT_EQ(r.backend_visits, 20u);
}

TEST(CacheNode, HitMissStreamReplaysByteIdentically) {
  const CacheDriveResult a = drive_cache_chain(0.5, 42, 60);
  const CacheDriveResult b = drive_cache_chain(0.5, 42, 60);
  EXPECT_EQ(a.stats.hits, b.stats.hits);
  EXPECT_EQ(a.stats.misses, b.stats.misses);
  EXPECT_EQ(a.backend_visits, b.backend_visits);
  EXPECT_EQ(a.stats.hits + a.stats.misses, 60u);
  // Both outcomes occur at p = 0.5 over 60 draws (probability of a
  // degenerate all-one-side stream is 2^-59).
  EXPECT_GT(a.stats.hits, 0u);
  EXPECT_GT(a.stats.misses, 0u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(Admission, OccupancyBoundShedsExcessArrivals) {
  // One server, one worker thread, 10 s service time, queue_limit = 2.
  // Five back-to-back submits: #1 takes the thread, #2 and #3 queue
  // (depths 0 and 1 at admission time), #4 and #5 see depth 2 and shed.
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("S", 1, /*threads=*/1)};
  config.admission.enabled = true;
  config.admission.queue_limit = 2;
  ServiceGraph graph(sim, config);

  const RequestClass cls = exact_class({hold(10.0)});
  int served = 0;
  int rejected = 0;
  sim.schedule_after(0.5, [&] {
    for (int i = 0; i < 5; ++i) {
      graph.submit(request_for(cls, static_cast<std::uint64_t>(i + 1),
                               sim.now()),
                   [&](RequestOutcome outcome) {
                     if (outcome == RequestOutcome::kServed) {
                       ++served;
                     } else {
                       ++rejected;
                     }
                   });
    }
    // Rejections fire synchronously at submit time.
    EXPECT_EQ(rejected, 2);
  });
  sim.run_until(60.0);

  EXPECT_EQ(served, 3);
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(graph.admission_stats().admitted, 3u);
  EXPECT_EQ(graph.admission_stats().rejected_occupancy, 2u);
  EXPECT_EQ(graph.admission_stats().rejected_age, 0u);
  EXPECT_EQ(graph.tier(0).all_vms()[0]->server().completed_requests(), 3u);
}

TEST(Admission, QueueAgeBoundShedsWhenResponsesStall) {
  // Plenty of threads but 10 s service: the oldest in-flight request ages
  // past max_queue_age = 1 s, so a submit at t = 2 is shed; once the early
  // requests complete, admission opens again.
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("S", 1, /*threads=*/8)};
  config.admission.enabled = true;
  config.admission.max_queue_age = 1.0;
  ServiceGraph graph(sim, config);

  const RequestClass cls = exact_class({hold(10.0)});
  std::vector<RequestOutcome> outcomes;
  auto submit_one = [&](std::uint64_t id) {
    graph.submit(request_for(cls, id, sim.now()),
                 [&outcomes](RequestOutcome outcome) {
                   outcomes.push_back(outcome);
                 });
  };
  sim.schedule_after(0.5, [&] { submit_one(1); });
  sim.schedule_after(2.0, [&] { submit_one(2); });   // aged out: shed
  sim.schedule_after(12.0, [&] { submit_one(3); });  // #1 done: admitted
  sim.run_until(60.0);

  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0], RequestOutcome::kRejected);  // #2, synchronous
  EXPECT_EQ(outcomes[1], RequestOutcome::kServed);    // #1 at t = 10.5
  EXPECT_EQ(outcomes[2], RequestOutcome::kServed);    // #3 at t = 22
  EXPECT_EQ(graph.admission_stats().admitted, 2u);
  EXPECT_EQ(graph.admission_stats().rejected_age, 1u);
  EXPECT_EQ(graph.admission_stats().rejected_occupancy, 0u);
}

TEST(Admission, DisabledPolicyNeverSheds) {
  Simulation sim;
  ServiceGraphConfig config;
  config.nodes = {leaf("S", 1, /*threads=*/1)};
  ServiceGraph graph(sim, config);

  const RequestClass cls = exact_class({hold(10.0)});
  int rejected = 0;
  int served = 0;
  sim.schedule_after(0.5, [&] {
    for (int i = 0; i < 20; ++i) {
      graph.submit(request_for(cls, static_cast<std::uint64_t>(i + 1),
                               sim.now()),
                   [&](RequestOutcome outcome) {
                     outcome == RequestOutcome::kServed ? ++served
                                                        : ++rejected;
                   });
    }
  });
  sim.run_until(500.0);
  EXPECT_EQ(rejected, 0);
  EXPECT_EQ(served, 20);
  EXPECT_EQ(graph.admission_stats().rejected(), 0u);
}

}  // namespace
}  // namespace conscale::topology
