#include "metrics/monitor.h"

#include <gtest/gtest.h>

#include "experiments/scenario.h"
#include "workload/client.h"

namespace conscale {
namespace {

struct MonitorFixture : ::testing::Test {
  MonitorFixture()
      : params(make_params()), mix(params.make_mix()),
        system(sim, params.system_config()),
        monitor(sim, system, warehouse) {}

  static ScenarioParams make_params() {
    ScenarioParams p = ScenarioParams::test_scale();
    p.vm_prep_delay = 2.0;
    return p;
  }

  void drive(double users, double duration) {
    trace = std::make_unique<WorkloadTrace>(
        make_constant_trace(users, duration + 1.0));
    ClientPopulation::Params cp;
    cp.think_time_mean = 0.2;
    clients = std::make_unique<ClientPopulation>(
        sim, *trace, mix,
        [this](const RequestContext& ctx, std::function<void()> done) {
          system.submit(ctx, std::move(done));
        },
        cp);
    clients->set_completion_hook(
        [this](SimTime issued, double rt, const RequestClass&) {
          monitor.on_client_completion(issued, rt);
        });
    sim.run_until(duration);
  }

  Simulation sim;
  ScenarioParams params;
  RequestMix mix;
  NTierSystem system;
  MetricsWarehouse warehouse;
  MonitoringAgent monitor;
  std::unique_ptr<WorkloadTrace> trace;
  std::unique_ptr<ClientPopulation> clients;
};

TEST_F(MonitorFixture, FineSeriesForEveryBootstrapServer) {
  drive(20.0, 5.0);
  for (const auto* name : {"Apache1", "Tomcat1", "MySQL1"}) {
    const auto& series = warehouse.server_series(name);
    EXPECT_FALSE(series.empty()) << name;
    // Default fine period 50 ms -> ~100 samples in 5 s. (Experiment
    // runners scale the period with work_scale; the raw agent does not.)
    EXPECT_NEAR(static_cast<double>(series.size()), 100.0, 5.0) << name;
  }
}

TEST_F(MonitorFixture, TierSamplesEverySecond) {
  drive(20.0, 10.0);
  const auto& series = warehouse.tier_series("MySQL");
  EXPECT_NEAR(static_cast<double>(series.size()), 10.0, 1.0);
  for (const auto& s : series) {
    EXPECT_EQ(s.running_vms, 1u);
    EXPECT_GE(s.avg_cpu_utilization, 0.0);
    EXPECT_LE(s.avg_cpu_utilization, 1.0);
  }
}

TEST_F(MonitorFixture, SystemSamplesAggregateClientCompletions) {
  drive(20.0, 10.0);
  const auto& series = warehouse.system_series();
  ASSERT_FALSE(series.empty());
  double total = 0.0;
  for (const auto& s : series) {
    total += s.throughput;  // 1 s samples: throughput == completions
    EXPECT_GE(s.max_rt, s.mean_rt);
    EXPECT_EQ(s.total_vms, 3u);
  }
  EXPECT_NEAR(total, static_cast<double>(clients->requests_completed()),
              static_cast<double>(clients->requests_completed()) * 0.15);
}

TEST_F(MonitorFixture, ScaleOutVmGetsMonitoredAutomatically) {
  drive(20.0, 3.0);
  system.tier(kDbTier).scale_out();
  sim.run_until(10.0);
  EXPECT_FALSE(warehouse.server_series("MySQL2").empty());
}

TEST_F(MonitorFixture, ThroughputSamplesMatchServerCompletions) {
  drive(20.0, 10.0);
  const auto& series = warehouse.server_series("Tomcat1");
  double sampled = 0.0;
  for (const auto& s : series) {
    sampled += static_cast<double>(s.completions);
  }
  const auto actual = static_cast<double>(
      system.tier(kAppTier).running_servers()[0]->completed_requests());
  // The last partial window may not have been emitted yet.
  EXPECT_NEAR(sampled, actual, actual * 0.1 + 20.0);
}

}  // namespace
}  // namespace conscale
