#include "metrics/warehouse.h"

#include <gtest/gtest.h>

namespace conscale {
namespace {

IntervalSample sample_at(SimTime t, double q = 1.0) {
  IntervalSample s;
  s.t_end = t;
  s.concurrency = q;
  s.throughput = 100.0;
  s.completions = 5;
  return s;
}

TEST(Warehouse, EmptySeriesForUnknownServer) {
  MetricsWarehouse w;
  EXPECT_TRUE(w.server_series("nope").empty());
  EXPECT_TRUE(w.tier_series("nope").empty());
  EXPECT_TRUE(w.server_names().empty());
}

TEST(Warehouse, RecordsAndListsServers) {
  MetricsWarehouse w;
  w.record_server("MySQL1", sample_at(0.05));
  w.record_server("Tomcat1", sample_at(0.05));
  w.record_server("MySQL1", sample_at(0.10));
  EXPECT_EQ(w.server_series("MySQL1").size(), 2u);
  EXPECT_EQ(w.server_names(), (std::vector<std::string>{"MySQL1", "Tomcat1"}));
}

TEST(Warehouse, WindowSelectsHalfOpenInterval) {
  MetricsWarehouse w;
  for (int i = 1; i <= 10; ++i) {
    w.record_server("s", sample_at(static_cast<double>(i)));
  }
  // Window (now - 3, now] with now = 10 -> samples at 8, 9, 10.
  const auto window = w.server_window("s", 3.0, 10.0);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window.front().t_end, 8.0);
  EXPECT_DOUBLE_EQ(window.back().t_end, 10.0);
}

TEST(Warehouse, WindowExcludesFutureSamples) {
  MetricsWarehouse w;
  for (int i = 1; i <= 10; ++i) {
    w.record_server("s", sample_at(static_cast<double>(i)));
  }
  const auto window = w.server_window("s", 100.0, 5.0);
  ASSERT_EQ(window.size(), 5u);
  EXPECT_DOUBLE_EQ(window.back().t_end, 5.0);
}

TEST(Warehouse, WindowOnEmptySeries) {
  MetricsWarehouse w;
  EXPECT_TRUE(w.server_window("s", 10.0, 100.0).empty());
}

TEST(Warehouse, LatestTierDefaultsWhenEmpty) {
  MetricsWarehouse w;
  const TierSample s = w.latest_tier("Tomcat");
  EXPECT_DOUBLE_EQ(s.avg_cpu_utilization, 0.0);
  EXPECT_EQ(s.billed_vms, 0u);
}

TEST(Warehouse, LatestTierReturnsNewest) {
  MetricsWarehouse w;
  TierSample a;
  a.t = 1.0;
  a.avg_cpu_utilization = 0.5;
  TierSample b;
  b.t = 2.0;
  b.avg_cpu_utilization = 0.9;
  w.record_tier("Tomcat", a);
  w.record_tier("Tomcat", b);
  EXPECT_DOUBLE_EQ(w.latest_tier("Tomcat").avg_cpu_utilization, 0.9);
}

TEST(Warehouse, SystemSeriesAppends) {
  MetricsWarehouse w;
  SystemSample s;
  s.t = 1.0;
  s.throughput = 1000.0;
  w.record_system(s);
  ASSERT_EQ(w.system_series().size(), 1u);
  EXPECT_DOUBLE_EQ(w.system_series()[0].throughput, 1000.0);
}

TEST(Warehouse, ClearEmptiesEverything) {
  MetricsWarehouse w;
  w.record_server("s", sample_at(1.0));
  w.record_tier("t", TierSample{});
  w.record_system(SystemSample{});
  w.clear();
  EXPECT_TRUE(w.server_series("s").empty());
  EXPECT_TRUE(w.tier_series("t").empty());
  EXPECT_TRUE(w.system_series().empty());
}

}  // namespace
}  // namespace conscale
