#include "metrics/latency_breakdown.h"

#include <gtest/gtest.h>

#include "experiments/scenario.h"
#include "workload/client.h"

namespace conscale {
namespace {

struct BreakdownFixture : ::testing::Test {
  BreakdownFixture()
      : params(make_params()), mix(params.make_mix()),
        system(sim, params.system_config()), breakdown(system) {}

  static ScenarioParams make_params() {
    ScenarioParams p = ScenarioParams::test_scale();
    p.db_init = 2;
    p.vm_prep_delay = 2.0;
    return p;
  }

  void drive(double users, double duration) {
    trace = std::make_unique<WorkloadTrace>(
        make_constant_trace(users, duration + 1.0));
    ClientPopulation::Params cp;
    cp.think_time_mean = 0.2;
    clients = std::make_unique<ClientPopulation>(
        sim, *trace, mix,
        [this](const RequestContext& ctx, std::function<void()> done) {
          system.submit(ctx, std::move(done));
        },
        cp);
    sim.run_until(duration);
  }

  Simulation sim;
  ScenarioParams params;
  RequestMix mix;
  NTierSystem system;
  LatencyBreakdown breakdown;
  std::unique_ptr<WorkloadTrace> trace;
  std::unique_ptr<ClientPopulation> clients;
};

TEST_F(BreakdownFixture, CoversEveryActiveServer) {
  drive(30.0, 20.0);
  const auto rows = breakdown.snapshot();
  // 1 Apache + 1 Tomcat + 2 MySQL.
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    EXPECT_GT(r.completions, 0u) << r.server;
    EXPECT_GT(r.mean_ms, 0.0) << r.server;
    EXPECT_LE(r.p50_ms, r.p95_ms) << r.server;
    EXPECT_LE(r.p95_ms, r.p99_ms) << r.server;
    EXPECT_LE(r.p99_ms, r.max_ms + 1e-9) << r.server;
  }
  // Sorted by tier then server.
  EXPECT_EQ(rows[0].tier, "Apache");
  EXPECT_EQ(rows[1].tier, "MySQL");
  EXPECT_EQ(rows[2].tier, "MySQL");
  EXPECT_EQ(rows[3].tier, "Tomcat");
}

TEST_F(BreakdownFixture, TierAggregationMergesReplicas) {
  drive(30.0, 20.0);
  const auto tiers = breakdown.by_tier();
  ASSERT_EQ(tiers.size(), 3u);
  std::uint64_t mysql_total = 0;
  for (const auto& r : breakdown.snapshot()) {
    if (r.tier == "MySQL") mysql_total += r.completions;
  }
  for (const auto& r : tiers) {
    if (r.tier == "MySQL") {
      EXPECT_EQ(r.completions, mysql_total);
    }
  }
}

TEST_F(BreakdownFixture, WebTierResponseDominates) {
  // The web tier's in-server RT includes the full downstream chain
  // (thread-per-request), so it must be the largest.
  drive(30.0, 20.0);
  double web = 0.0, db = 0.0;
  for (const auto& r : breakdown.by_tier()) {
    if (r.tier == "Apache") web = r.mean_ms;
    if (r.tier == "MySQL") db = r.mean_ms;
  }
  EXPECT_GT(web, db);
}

TEST_F(BreakdownFixture, LateVmGetsAttached) {
  drive(30.0, 10.0);
  system.tier(kAppTier).scale_out();
  sim.run_until(15.0);
  // Keep driving so the new Tomcat sees traffic.
  sim.run_until(30.0);
  bool saw_second_tomcat = false;
  for (const auto& r : breakdown.snapshot()) {
    saw_second_tomcat |= r.server == "Tomcat2" && r.completions > 0;
  }
  EXPECT_TRUE(saw_second_tomcat);
}

TEST_F(BreakdownFixture, FormatProducesAlignedTable) {
  drive(10.0, 10.0);
  const std::string table = LatencyBreakdown::format(breakdown.snapshot());
  EXPECT_NE(table.find("tier"), std::string::npos);
  EXPECT_NE(table.find("MySQL1"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

TEST_F(BreakdownFixture, EmptyWhenNoTraffic) {
  sim.run_until(5.0);
  EXPECT_TRUE(breakdown.snapshot().empty());
  EXPECT_TRUE(breakdown.by_tier().empty());
}

}  // namespace
}  // namespace conscale
