#include "metrics/interval.h"

#include <vector>

#include <gtest/gtest.h>

namespace conscale {
namespace {

struct IntervalFixture : ::testing::Test {
  IntervalFixture() {
    Server::Params p;
    p.name = "s";
    p.thread_pool_size = 16;
    server = std::make_unique<Server>(sim, p);
    cls.name = "c";
    cls.demand_cv = 0.0;
    cls.tiers.resize(1);
  }

  void submit(double delay) {
    cls.tiers[0].pure_delay = delay;
    RequestContext ctx;
    ctx.request_class = &cls;
    server->handle(ctx, [] {});
  }

  Simulation sim;
  RequestClass cls;
  std::unique_ptr<Server> server;
  std::vector<IntervalSample> samples;
};

TEST_F(IntervalFixture, ThroughputCountsCompletionsPerInterval) {
  IntervalAggregator agg(sim, *server, 1.0);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  // 4 requests, each 0.5 s, issued at t=0 (pool is wide): all complete in
  // the first interval.
  for (int i = 0; i < 4; ++i) submit(0.5);
  sim.run_until(2.0);
  ASSERT_GE(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].t_end, 1.0);
  EXPECT_EQ(samples[0].completions, 4u);
  EXPECT_DOUBLE_EQ(samples[0].throughput, 4.0);
  EXPECT_EQ(samples[1].completions, 0u);
}

TEST_F(IntervalFixture, MeanRtOfCompletions) {
  IntervalAggregator agg(sim, *server, 1.0);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  submit(0.2);
  submit(0.6);
  sim.run_until(1.0);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NEAR(samples[0].mean_rt, 0.4, 1e-9);
}

TEST_F(IntervalFixture, ConcurrencyIsTimeAveraged) {
  IntervalAggregator agg(sim, *server, 1.0);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  // One request occupying [0, 0.5]: average concurrency over 1 s = 0.5.
  submit(0.5);
  sim.run_until(1.0);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NEAR(samples[0].concurrency, 0.5, 1e-9);
}

TEST_F(IntervalFixture, OverlappingRequestsAddConcurrency) {
  IntervalAggregator agg(sim, *server, 1.0);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  // Two requests covering the whole interval -> concurrency 2.
  submit(1.0);
  submit(1.0);
  sim.run_until(1.0);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NEAR(samples[0].concurrency, 2.0, 1e-6);
}

TEST_F(IntervalFixture, CarriesInFlightAcrossIntervals) {
  IntervalAggregator agg(sim, *server, 1.0);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  submit(2.5);
  sim.run_until(3.0);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_NEAR(samples[0].concurrency, 1.0, 1e-9);
  EXPECT_NEAR(samples[1].concurrency, 1.0, 1e-9);
  EXPECT_NEAR(samples[2].concurrency, 0.5, 1e-9);
  EXPECT_EQ(samples[2].completions, 1u);
}

TEST_F(IntervalFixture, FiftyMsGranularity) {
  IntervalAggregator agg(sim, *server, 0.050);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  // Run marginally past 1.0 s: accumulated 0.05 steps land the 20th tick a
  // few ulps after 1.0.
  sim.run_until(1.001);
  EXPECT_EQ(samples.size(), 20u);
}

TEST_F(IntervalFixture, StopCeasesEmission) {
  IntervalAggregator agg(sim, *server, 1.0);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  sim.run_until(2.0);
  agg.stop();
  sim.run_until(10.0);
  EXPECT_EQ(samples.size(), 2u);
}

TEST_F(IntervalFixture, UnmatchedDepartureCountsAsUnderflow) {
  IntervalAggregator agg(sim, *server, 1.0);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  // A departure with no prior admission is a wiring bug; it must be counted,
  // not silently absorbed into the concurrency integral.
  agg.note_departed(0.0, 0.1);
  EXPECT_EQ(agg.hook_underflows(), 1u);
  agg.note_aborted(0.0);
  EXPECT_EQ(agg.hook_underflows(), 2u);
  sim.run_until(1.0);
  ASSERT_EQ(samples.size(), 1u);
  // The integral stays at zero concurrency — underflows never drive it
  // negative or offset later admissions.
  EXPECT_NEAR(samples[0].concurrency, 0.0, 1e-12);
  // The bogus departure still registers as a completion (it carried an RT),
  // which is exactly why the underflow counter must flag the imbalance.
  EXPECT_EQ(samples[0].completions, 1u);
}

TEST_F(IntervalFixture, BalancedHooksNeverUnderflow) {
  IntervalAggregator agg(sim, *server, 1.0);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  for (int i = 0; i < 8; ++i) submit(0.25);
  sim.run_until(2.0);
  EXPECT_EQ(agg.hook_underflows(), 0u);
}

TEST_F(IntervalFixture, UnderflowDoesNotMaskLaterAdmissions) {
  IntervalAggregator agg(sim, *server, 1.0);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  // Old behavior decremented only when current_ > 0, so a stray departure
  // after an admission would shave real occupancy. Now: stray *before* any
  // admission is counted and the subsequent request integrates at full
  // weight.
  agg.note_aborted(0.0);
  submit(1.0);
  sim.run_until(1.0);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(agg.hook_underflows(), 1u);
  EXPECT_NEAR(samples[0].concurrency, 1.0, 1e-9);
}

TEST_F(IntervalFixture, MidRunAttachmentSeedsInFlight) {
  // Attach the aggregator while a request is already being processed; the
  // integrator must start from the live processing count.
  submit(3.0);
  sim.run_until(1.0);
  IntervalAggregator agg(sim, *server, 1.0);
  agg.start([&](const IntervalSample& s) { samples.push_back(s); });
  sim.run_until(2.0);  // one interval [1, 2]
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NEAR(samples[0].concurrency, 1.0, 1e-9);
}

}  // namespace
}  // namespace conscale
