// Regression tests for the self-contained-run guarantee: the same RunSpec
// must produce bit-identical results whether executed serially, twice in a
// row, or fanned out across RunSet worker threads. Any mutable global state
// creeping back onto the run path (a shared RNG, a logger-owned level gate,
// a static cache) shows up here as a timeline mismatch.
#include "experiments/parallel.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "experiments/json_export.h"
#include "experiments/report.h"

namespace conscale {
namespace {

ScenarioParams quick_params() {
  ScenarioParams p = ScenarioParams::paper_default();
  p.work_scale = 16.0;
  p.seed = 4242;
  return p;
}

RunSpec quick_spec() {
  RunSpec spec;
  spec.params = quick_params();
  spec.trace = TraceKind::kBigSpike;
  spec.framework = "conscale";
  spec.options.duration = 60.0;
  return spec;
}

TEST(Determinism, SerialRepeatIsBitIdentical) {
  const RunSpec spec = quick_spec();
  const ScalingRunResult first = RunSet::run_one(spec);
  const ScalingRunResult second = RunSet::run_one(spec);
  std::string diff;
  EXPECT_TRUE(results_equivalent(first, second, &diff)) << diff;
}

TEST(Determinism, ParallelRunSetMatchesSerial) {
  // Four copies of the same spec on four threads plus a serial baseline:
  // every copy must reproduce the baseline exactly, even while the other
  // copies run concurrently on other threads.
  const RunSpec spec = quick_spec();
  const ScalingRunResult baseline = RunSet::run_one(spec);

  RunSetOptions options;
  options.jobs = 4;
  const RunSet set(options);
  const std::vector<RunSpec> specs(4, spec);
  const std::vector<ScalingRunResult> results = set.run(specs);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::string diff;
    EXPECT_TRUE(results_equivalent(results[i], baseline, &diff))
        << "spec copy " << i << ": " << diff;
  }
}

TEST(Determinism, MixedSpecsKeepSpecOrder) {
  RunSpec a = quick_spec();
  RunSpec b = quick_spec();
  b.framework = "ec2";
  RunSpec c = quick_spec();
  c.trace = TraceKind::kDualPhase;

  RunSetOptions options;
  options.jobs = 3;
  // deterministic mode re-runs each spec serially inside run() and throws
  // on any mismatch — the self-checking path the CI smoke runs use.
  options.deterministic = true;
  const std::vector<ScalingRunResult> results =
      RunSet(options).run({a, b, c});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].framework_name, "ConScale");
  EXPECT_EQ(results[1].framework_name, "EC2-AutoScaling");
  EXPECT_EQ(results[2].trace_name, "dual_phase");
}

TEST(Determinism, RefactoredConScaleArtifactsAreByteIdentical) {
  // The registry refactor must not move a byte of the report artifacts:
  // the flagship "conscale" run is rendered to CSV and JSON once from a
  // serial run and once from a jobs=4 fan-out, and the files must compare
  // equal byte for byte.
  const RunSpec spec = quick_spec();
  const ScalingRunResult serial = RunSet::run_one(spec);
  RunSetOptions options;
  options.jobs = 4;
  const std::vector<ScalingRunResult> results =
      RunSet(options).run(std::vector<RunSpec>(4, spec));
  ASSERT_EQ(results.size(), 4u);

  const auto render = [](const std::string& stem, const ScalingRunResult& r) {
    const std::string base = ::testing::TempDir() + "/" + stem;
    dump_system_csv(base + ".csv", r);
    JsonExportOptions json_options;
    json_options.include_counters = true;
    export_run_json(base + ".json", r, json_options);
    std::string bytes;
    for (const char* ext : {".csv", ".json"}) {
      std::ifstream in(base + ext, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      bytes += buffer.str();
      std::remove((base + ext).c_str());
    }
    return bytes;
  };
  const std::string baseline = render("det_serial", serial);
  ASSERT_FALSE(baseline.empty());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(render("det_par_" + std::to_string(i), results[i]), baseline)
        << "jobs=4 copy " << i << " rendered different bytes";
  }
}

TEST(Determinism, ResultsEquivalentFlagsDifferences) {
  const RunSpec spec = quick_spec();
  RunSpec other = spec;
  other.params.seed = spec.params.seed + 1;
  const ScalingRunResult x = RunSet::run_one(spec);
  const ScalingRunResult y = RunSet::run_one(other);
  std::string diff;
  EXPECT_FALSE(results_equivalent(x, y, &diff));
  EXPECT_FALSE(diff.empty());
}

TEST(ParallelFor, RethrowsLowestFailingIndex) {
  EXPECT_THROW(
      detail::parallel_for(8, 4,
                           [](std::size_t i) {
                             if (i == 2 || i == 5) {
                               throw std::runtime_error("boom " +
                                                        std::to_string(i));
                             }
                           }),
      std::runtime_error);
  try {
    detail::parallel_for(8, 4, [](std::size_t i) {
      if (i == 2 || i == 5) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");
  }
}

TEST(ParallelMap, OrdersResultsByIndex) {
  const auto values = parallel_map<std::size_t>(
      64, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(values.size(), 64u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], i * i);
  }
}

}  // namespace
}  // namespace conscale
