#include "experiments/scenario.h"

#include <gtest/gtest.h>

namespace conscale {
namespace {

TEST(ScenarioParams, DefaultTopologyIsPaper111) {
  const ScenarioParams p = ScenarioParams::paper_default();
  const SystemConfig config = p.system_config();
  ASSERT_EQ(config.tiers.size(), 3u);
  EXPECT_EQ(config.tiers[0].name, "Apache");
  EXPECT_EQ(config.tiers[1].name, "Tomcat");
  EXPECT_EQ(config.tiers[2].name, "MySQL");
  EXPECT_EQ(config.initial_vms, (std::vector<std::size_t>{1, 1, 1}));
}

TEST(ScenarioParams, SoftAllocationIs1000_60_40) {
  // The paper's initial soft resources (§V).
  const ScenarioParams p = ScenarioParams::paper_default();
  const SystemConfig config = p.system_config();
  EXPECT_EQ(config.tiers[0].server_template.thread_pool_size, 1000u);
  EXPECT_EQ(config.tiers[1].server_template.thread_pool_size, 60u);
  EXPECT_EQ(config.tiers[1].server_template.downstream_pool_size, 40u);
}

TEST(ScenarioParams, PrepDelayIsPaper15s) {
  const ScenarioParams p = ScenarioParams::paper_default();
  for (const auto& tier : p.system_config().tiers) {
    EXPECT_DOUBLE_EQ(tier.vm_prep_delay, 15.0);
  }
}

TEST(ScenarioParams, TierIndicesAssignedInOrder) {
  const SystemConfig config = ScenarioParams::paper_default().system_config();
  // tier_index is (re)assigned by NTierSystem, but the template carries the
  // scenario's intent; verify the canonical constants line up.
  EXPECT_EQ(kWebTier, 0u);
  EXPECT_EQ(kAppTier, 1u);
  EXPECT_EQ(kDbTier, 2u);
  EXPECT_EQ(config.tiers.size(), 3u);
}

TEST(ScenarioParams, MakeMixRespectsMode) {
  ScenarioParams p = ScenarioParams::paper_default();
  p.mode = WorkloadMode::kBrowseOnly;
  const RequestMix browse = p.make_mix();
  for (const auto& c : browse.classes()) EXPECT_FALSE(c.is_write);
  p.mode = WorkloadMode::kReadWriteMix;
  const RequestMix rw = p.make_mix();
  bool any_write = false;
  for (const auto& c : rw.classes()) any_write |= c.is_write;
  EXPECT_TRUE(any_write);
}

TEST(ScenarioParams, WorkScaleAffectsMixAndUsers) {
  ScenarioParams p = ScenarioParams::paper_default();
  p.work_scale = 4.0;
  const RequestMix scaled = p.make_mix();
  const RequestMix native = ScenarioParams::paper_default().make_mix();
  EXPECT_NEAR(scaled.classes()[0].tiers[1].cpu_pre,
              4.0 * native.classes()[0].tiers[1].cpu_pre, 1e-12);
  EXPECT_DOUBLE_EQ(p.scaled_users(8000.0), 2000.0);
}

TEST(ScenarioParams, DatasetScaleFlowsIntoMix) {
  ScenarioParams p = ScenarioParams::paper_default();
  p.mix.dataset_scale = 2.0;
  const RequestMix scaled = p.make_mix();
  const RequestMix native = ScenarioParams::paper_default().make_mix();
  EXPECT_NEAR(scaled.classes()[0].tiers[1].cpu_post,
              2.0 * native.classes()[0].tiers[1].cpu_post, 1e-12);
  // cpu_pre is dataset-independent.
  EXPECT_NEAR(scaled.classes()[0].tiers[1].cpu_pre,
              native.classes()[0].tiers[1].cpu_pre, 1e-12);
}

TEST(ScenarioParams, CoreCountsPropagate) {
  ScenarioParams p = ScenarioParams::paper_default();
  p.db_cores = 2;
  p.app_cores = 4;
  const SystemConfig config = p.system_config();
  EXPECT_EQ(config.tiers[kAppTier].server_template.cores, 4);
  EXPECT_EQ(config.tiers[kDbTier].server_template.cores, 2);
}

TEST(ScenarioParams, SeedsDifferPerTier) {
  const SystemConfig config = ScenarioParams::paper_default().system_config();
  EXPECT_NE(config.tiers[0].server_template.seed,
            config.tiers[1].server_template.seed);
  EXPECT_NE(config.tiers[1].server_template.seed,
            config.tiers[2].server_template.seed);
}

}  // namespace
}  // namespace conscale
