// Byte-identity contract of the laned runners (DESIGN.md §6.6): lanes is a
// thread-placement knob, not a model parameter, so lanes=1 and lanes=4 must
// produce bit-identical results — equivalent in-memory payloads AND
// byte-identical rendered CSV/JSON artifacts — for every registry
// controller, on both the linear chain and the fan-out DAG. The runs fan
// out through parallel_map with jobs=4, so laned engines (each with their
// own worker threads) also run concurrently with each other, the way the
// CI smoke drives them.
#include "experiments/laned_runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/analytic.h"
#include "experiments/json_export.h"
#include "experiments/parallel.h"
#include "experiments/report.h"

namespace conscale {
namespace {

const std::vector<std::string> kAllControllers = {
    "ec2", "dcm",      "conscale",     "pi",
    "fuzzy", "vertical", "holt-winters", "hybrid"};

ScenarioParams quick_params() {
  ScenarioParams p = ScenarioParams::paper_default();
  p.work_scale = 16.0;
  p.seed = 4242;
  return p;
}

LanedRunOptions laned_options(const ScenarioParams& params,
                              std::size_t lanes) {
  LanedRunOptions options;
  options.base.duration = 60.0;
  // The chain's default config carries no DCM profile; supply the analytic
  // one so "dcm" assembles (identical on both sides of the comparison).
  FrameworkConfig config = make_framework_config(params);
  config.dcm_profile = train_dcm_profile_analytical(params);
  options.base.framework_config = config;
  options.lanes = lanes;
  return options;
}

std::string slurp_and_remove(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

/// CSV + JSON bytes of a chain result, exactly as reports render them.
std::string render_chain(const std::string& stem,
                         const ScalingRunResult& result) {
  const std::string base = ::testing::TempDir() + "/" + stem;
  dump_system_csv(base + ".csv", result);
  JsonExportOptions json_options;
  json_options.include_counters = true;
  export_run_json(base + ".json", result, json_options);
  return slurp_and_remove(base + ".csv") + slurp_and_remove(base + ".json");
}

/// CSV (system + per-node latency) + JSON bytes of a graph result.
std::string render_graph(const std::string& stem,
                         const GraphRunResult& result) {
  const std::string base = ::testing::TempDir() + "/" + stem;
  dump_graph_system_csv(base + ".csv", result);
  dump_node_latency_csv(base + "_nodes.csv", result);
  JsonExportOptions json_options;
  json_options.include_counters = true;
  export_run_json(base + ".json", result.run, json_options);
  return slurp_and_remove(base + ".csv") +
         slurp_and_remove(base + "_nodes.csv") +
         slurp_and_remove(base + ".json");
}

TEST(LaneDeterminism, ChainLanes4MatchesLanes1ForEveryController) {
  const ScenarioParams params = quick_params();
  // One cell per (controller, lane count); jobs=4 runs them concurrently.
  struct Cell {
    std::string framework;
    std::size_t lanes;
  };
  std::vector<Cell> cells;
  for (const std::string& framework : kAllControllers) {
    cells.push_back({framework, 1});
    cells.push_back({framework, 4});
  }
  const auto results = parallel_map<ScalingRunResult>(
      cells.size(), 4, [&](std::size_t i) {
        return run_scaling_laned(params, TraceKind::kBigSpike,
                                 cells[i].framework,
                                 laned_options(params, cells[i].lanes));
      });
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    SCOPED_TRACE(cells[i].framework);
    std::string diff;
    EXPECT_TRUE(results_equivalent(results[i], results[i + 1], &diff))
        << diff;
    EXPECT_EQ(render_chain("lane_chain_1_" + cells[i].framework, results[i]),
              render_chain("lane_chain_4_" + cells[i].framework,
                           results[i + 1]));
    EXPECT_GT(results[i].requests_completed, 0u);
  }
}

TEST(LaneDeterminism, GraphLanes4MatchesLanes1ForEveryController) {
  const GraphScenario scenario = make_fanout_scenario(quick_params());
  struct Cell {
    std::string framework;
    std::size_t lanes;
  };
  std::vector<Cell> cells;
  for (const std::string& framework : kAllControllers) {
    cells.push_back({framework, 1});
    cells.push_back({framework, 4});
  }
  LanedRunOptions base_options;
  base_options.base.duration = 60.0;
  const auto results = parallel_map<GraphRunResult>(
      cells.size(), 4, [&](std::size_t i) {
        LanedRunOptions options = base_options;
        options.lanes = cells[i].lanes;
        return run_graph_scaling_laned(scenario, TraceKind::kBigSpike,
                                       cells[i].framework, options);
      });
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    SCOPED_TRACE(cells[i].framework);
    std::string diff;
    EXPECT_TRUE(
        graph_results_equivalent(results[i], results[i + 1], &diff))
        << diff;
    EXPECT_EQ(render_graph("lane_dag_1_" + cells[i].framework, results[i]),
              render_graph("lane_dag_4_" + cells[i].framework,
                           results[i + 1]));
    EXPECT_GT(results[i].run.requests_completed, 0u);
  }
}

// ---- tier-laned placements (ISSUE 10) -------------------------------------

LanedRunOptions tier_laned_options(const ScenarioParams& params,
                                   std::size_t tier_lanes,
                                   LanedRunOptions::ProtocolChoice protocol) {
  LanedRunOptions options;
  options.base.duration = 60.0;
  FrameworkConfig config = make_framework_config(params);
  config.dcm_profile = train_dcm_profile_analytical(params);
  options.base.framework_config = config;
  options.tier_lanes = tier_lanes;
  options.lan_delay = 0.010;
  options.protocol = protocol;
  return options;
}

TEST(TierLaneDeterminism, ChainThreads4MatchesThreads1BothProtocols) {
  const ScenarioParams params = quick_params();
  struct Cell {
    std::string framework;
    LanedRunOptions::ProtocolChoice protocol;
    std::size_t threads;
  };
  std::vector<Cell> cells;
  for (const std::string& framework : kAllControllers) {
    for (const auto protocol : {LanedRunOptions::ProtocolChoice::kTimeWindow,
                                LanedRunOptions::ProtocolChoice::kNullMessage}) {
      cells.push_back({framework, protocol, 1});
      cells.push_back({framework, protocol, 4});
    }
  }
  const auto results = parallel_map<ScalingRunResult>(
      cells.size(), 4, [&](std::size_t i) {
        return run_scaling_laned(
            params, TraceKind::kBigSpike, cells[i].framework,
            tier_laned_options(params, cells[i].threads, cells[i].protocol));
      });
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    SCOPED_TRACE(cells[i].framework + (cells[i].protocol ==
                                               LanedRunOptions::
                                                   ProtocolChoice::kTimeWindow
                                           ? " (time-window)"
                                           : " (null-message)"));
    std::string diff;
    EXPECT_TRUE(results_equivalent(results[i], results[i + 1], &diff))
        << diff;
    EXPECT_EQ(
        render_chain("tier_chain_1_" + std::to_string(i), results[i]),
        render_chain("tier_chain_4_" + std::to_string(i), results[i + 1]));
    EXPECT_GT(results[i].requests_completed, 0u);
  }
}

TEST(TierLaneDeterminism, GraphThreads4MatchesThreads1BothProtocols) {
  const GraphScenario scenario = make_fanout_scenario(quick_params());
  struct Cell {
    std::string framework;
    LanedRunOptions::ProtocolChoice protocol;
    std::size_t threads;
  };
  std::vector<Cell> cells;
  for (const std::string& framework : kAllControllers) {
    for (const auto protocol : {LanedRunOptions::ProtocolChoice::kTimeWindow,
                                LanedRunOptions::ProtocolChoice::kNullMessage}) {
      cells.push_back({framework, protocol, 1});
      cells.push_back({framework, protocol, 4});
    }
  }
  const auto results = parallel_map<GraphRunResult>(
      cells.size(), 4, [&](std::size_t i) {
        LanedRunOptions options;
        options.base.duration = 60.0;
        options.tier_lanes = cells[i].threads;
        options.protocol = cells[i].protocol;
        return run_graph_scaling_laned(scenario, TraceKind::kBigSpike,
                                       cells[i].framework, options);
      });
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    SCOPED_TRACE(cells[i].framework);
    std::string diff;
    EXPECT_TRUE(
        graph_results_equivalent(results[i], results[i + 1], &diff))
        << diff;
    EXPECT_EQ(
        render_graph("tier_dag_1_" + std::to_string(i), results[i]),
        render_graph("tier_dag_4_" + std::to_string(i), results[i + 1]));
    EXPECT_GT(results[i].run.requests_completed, 0u);
  }
}

TEST(TierLaneDeterminism, TierLanedRunReportsPlanAndPicksNullMessages) {
  const ScenarioParams params = quick_params();
  LanedRunOptions options = tier_laned_options(
      params, 4, LanedRunOptions::ProtocolChoice::kAuto);
  LaneRunInfo info;
  const ScalingRunResult result = run_scaling_laned(
      params, TraceKind::kBigSpike, "conscale", options, &info);
  EXPECT_GT(result.requests_completed, 0u);
  // net/LAN skew = 0.05/0.010 = 5x > 4x: the analysis must pick CMB.
  EXPECT_EQ(info.protocol, lanes::LookaheadAnalysis::Protocol::kNullMessage);
  EXPECT_DOUBLE_EQ(info.lookahead, options.lan_delay);
  EXPECT_EQ(info.threads, 4u);
  // control + one cell per tier (chain edges all cuttable) + one per shard.
  EXPECT_EQ(info.lanes, 1u + 3u + info.shards);
  EXPECT_FALSE(info.placement.empty());
  EXPECT_GT(info.stats.serial_rounds, 0u);
  EXPECT_GT(info.stats.nulls_announced, 0u);
}

TEST(TierLaneDeterminism, FaultPlansAreRejectedOnTierLanes) {
  const ScenarioParams params = quick_params();
  LanedRunOptions options = tier_laned_options(
      params, 2, LanedRunOptions::ProtocolChoice::kAuto);
  options.base.faults = FaultPlan::parse("crash t=10 tier=app vm=0");
  EXPECT_THROW(run_scaling_laned(params, TraceKind::kBigSpike, "ec2", options),
               std::invalid_argument);
}

TEST(TierLaneDeterminism, LanDelayIsAModelParameter) {
  // The LAN hop is explicit model latency: widening it must slow client
  // response times (two hops per tier edge, round trip), not just reshape
  // the schedule.
  const ScenarioParams params = quick_params();
  LanedRunOptions near = tier_laned_options(
      params, 2, LanedRunOptions::ProtocolChoice::kAuto);
  LanedRunOptions far = near;
  far.lan_delay = 0.050;
  const ScalingRunResult near_run =
      run_scaling_laned(params, TraceKind::kBigSpike, "ec2", near);
  const ScalingRunResult far_run =
      run_scaling_laned(params, TraceKind::kBigSpike, "ec2", far);
  // Two extra LAN hops of 40 ms each way on every app+db leg: the mean
  // must rise by a clearly-visible margin.
  EXPECT_GT(far_run.mean_rt_ms, near_run.mean_rt_ms + 50.0);
}

TEST(AutotuneShards, ScalesWithPeakRateAndClamps) {
  // 1.2M sessions thinking 300 s -> 4000 req/s -> ceil(4000/300) = 14.
  EXPECT_EQ(autotune_shards(1.2e6, 300.0), 14u);
  // Light scenarios collapse to a single shard.
  EXPECT_EQ(autotune_shards(100.0, 1.5), 1u);
  EXPECT_EQ(autotune_shards(0.0, 1.0), 1u);
  // The cap bounds pathological rates.
  EXPECT_EQ(autotune_shards(1e9, 0.001), 64u);
}

TEST(AutotuneShards, ShardsZeroSelectsThePlan) {
  const ScenarioParams params = quick_params();
  LanedRunOptions options = tier_laned_options(
      params, 2, LanedRunOptions::ProtocolChoice::kAuto);
  options.shards = 0;
  LaneRunInfo info;
  const ScalingRunResult result = run_scaling_laned(
      params, TraceKind::kBigSpike, "ec2", options, &info);
  EXPECT_GT(result.requests_completed, 0u);
  EXPECT_TRUE(info.shards_autotuned);
  EXPECT_EQ(info.shards,
            autotune_shards(params.scaled_users(params.max_users),
                            params.think_time));
  EXPECT_GE(info.shards, 1u);
}

TEST(LaneDeterminism, RepeatLanedRunIsBitIdentical) {
  const ScenarioParams params = quick_params();
  const LanedRunOptions options = laned_options(params, 4);
  LaneRunInfo first_info;
  LaneRunInfo second_info;
  const ScalingRunResult first = run_scaling_laned(
      params, TraceKind::kBigSpike, "conscale", options, &first_info);
  const ScalingRunResult second = run_scaling_laned(
      params, TraceKind::kBigSpike, "conscale", options, &second_info);
  std::string diff;
  EXPECT_TRUE(results_equivalent(first, second, &diff)) << diff;
  EXPECT_EQ(first_info.stats.windows, second_info.stats.windows);
  EXPECT_EQ(first_info.stats.messages, second_info.stats.messages);
  EXPECT_EQ(first_info.stats.events, second_info.stats.events);
  EXPECT_GT(first_info.stats.windows, 0u);
  EXPECT_EQ(first_info.protocol,
            lanes::LookaheadAnalysis::Protocol::kTimeWindow);
  EXPECT_DOUBLE_EQ(first_info.lookahead, options.net_delay);
}

}  // namespace
}  // namespace conscale
