// Byte-identity contract of the laned runners (DESIGN.md §6.6): lanes is a
// thread-placement knob, not a model parameter, so lanes=1 and lanes=4 must
// produce bit-identical results — equivalent in-memory payloads AND
// byte-identical rendered CSV/JSON artifacts — for every registry
// controller, on both the linear chain and the fan-out DAG. The runs fan
// out through parallel_map with jobs=4, so laned engines (each with their
// own worker threads) also run concurrently with each other, the way the
// CI smoke drives them.
#include "experiments/laned_runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/analytic.h"
#include "experiments/json_export.h"
#include "experiments/parallel.h"
#include "experiments/report.h"

namespace conscale {
namespace {

const std::vector<std::string> kAllControllers = {
    "ec2", "dcm",      "conscale",     "pi",
    "fuzzy", "vertical", "holt-winters", "hybrid"};

ScenarioParams quick_params() {
  ScenarioParams p = ScenarioParams::paper_default();
  p.work_scale = 16.0;
  p.seed = 4242;
  return p;
}

LanedRunOptions laned_options(const ScenarioParams& params,
                              std::size_t lanes) {
  LanedRunOptions options;
  options.base.duration = 60.0;
  // The chain's default config carries no DCM profile; supply the analytic
  // one so "dcm" assembles (identical on both sides of the comparison).
  FrameworkConfig config = make_framework_config(params);
  config.dcm_profile = train_dcm_profile_analytical(params);
  options.base.framework_config = config;
  options.lanes = lanes;
  return options;
}

std::string slurp_and_remove(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

/// CSV + JSON bytes of a chain result, exactly as reports render them.
std::string render_chain(const std::string& stem,
                         const ScalingRunResult& result) {
  const std::string base = ::testing::TempDir() + "/" + stem;
  dump_system_csv(base + ".csv", result);
  JsonExportOptions json_options;
  json_options.include_counters = true;
  export_run_json(base + ".json", result, json_options);
  return slurp_and_remove(base + ".csv") + slurp_and_remove(base + ".json");
}

/// CSV (system + per-node latency) + JSON bytes of a graph result.
std::string render_graph(const std::string& stem,
                         const GraphRunResult& result) {
  const std::string base = ::testing::TempDir() + "/" + stem;
  dump_graph_system_csv(base + ".csv", result);
  dump_node_latency_csv(base + "_nodes.csv", result);
  JsonExportOptions json_options;
  json_options.include_counters = true;
  export_run_json(base + ".json", result.run, json_options);
  return slurp_and_remove(base + ".csv") +
         slurp_and_remove(base + "_nodes.csv") +
         slurp_and_remove(base + ".json");
}

TEST(LaneDeterminism, ChainLanes4MatchesLanes1ForEveryController) {
  const ScenarioParams params = quick_params();
  // One cell per (controller, lane count); jobs=4 runs them concurrently.
  struct Cell {
    std::string framework;
    std::size_t lanes;
  };
  std::vector<Cell> cells;
  for (const std::string& framework : kAllControllers) {
    cells.push_back({framework, 1});
    cells.push_back({framework, 4});
  }
  const auto results = parallel_map<ScalingRunResult>(
      cells.size(), 4, [&](std::size_t i) {
        return run_scaling_laned(params, TraceKind::kBigSpike,
                                 cells[i].framework,
                                 laned_options(params, cells[i].lanes));
      });
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    SCOPED_TRACE(cells[i].framework);
    std::string diff;
    EXPECT_TRUE(results_equivalent(results[i], results[i + 1], &diff))
        << diff;
    EXPECT_EQ(render_chain("lane_chain_1_" + cells[i].framework, results[i]),
              render_chain("lane_chain_4_" + cells[i].framework,
                           results[i + 1]));
    EXPECT_GT(results[i].requests_completed, 0u);
  }
}

TEST(LaneDeterminism, GraphLanes4MatchesLanes1ForEveryController) {
  const GraphScenario scenario = make_fanout_scenario(quick_params());
  struct Cell {
    std::string framework;
    std::size_t lanes;
  };
  std::vector<Cell> cells;
  for (const std::string& framework : kAllControllers) {
    cells.push_back({framework, 1});
    cells.push_back({framework, 4});
  }
  LanedRunOptions base_options;
  base_options.base.duration = 60.0;
  const auto results = parallel_map<GraphRunResult>(
      cells.size(), 4, [&](std::size_t i) {
        LanedRunOptions options = base_options;
        options.lanes = cells[i].lanes;
        return run_graph_scaling_laned(scenario, TraceKind::kBigSpike,
                                       cells[i].framework, options);
      });
  for (std::size_t i = 0; i < cells.size(); i += 2) {
    SCOPED_TRACE(cells[i].framework);
    std::string diff;
    EXPECT_TRUE(
        graph_results_equivalent(results[i], results[i + 1], &diff))
        << diff;
    EXPECT_EQ(render_graph("lane_dag_1_" + cells[i].framework, results[i]),
              render_graph("lane_dag_4_" + cells[i].framework,
                           results[i + 1]));
    EXPECT_GT(results[i].run.requests_completed, 0u);
  }
}

TEST(LaneDeterminism, RepeatLanedRunIsBitIdentical) {
  const ScenarioParams params = quick_params();
  const LanedRunOptions options = laned_options(params, 4);
  LaneRunInfo first_info;
  LaneRunInfo second_info;
  const ScalingRunResult first = run_scaling_laned(
      params, TraceKind::kBigSpike, "conscale", options, &first_info);
  const ScalingRunResult second = run_scaling_laned(
      params, TraceKind::kBigSpike, "conscale", options, &second_info);
  std::string diff;
  EXPECT_TRUE(results_equivalent(first, second, &diff)) << diff;
  EXPECT_EQ(first_info.stats.windows, second_info.stats.windows);
  EXPECT_EQ(first_info.stats.messages, second_info.stats.messages);
  EXPECT_EQ(first_info.stats.events, second_info.stats.events);
  EXPECT_GT(first_info.stats.windows, 0u);
  EXPECT_EQ(first_info.protocol,
            lanes::LookaheadAnalysis::Protocol::kTimeWindow);
  EXPECT_DOUBLE_EQ(first_info.lookahead, options.net_delay);
}

}  // namespace
}  // namespace conscale
