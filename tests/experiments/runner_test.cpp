#include "experiments/runner.h"

#include <gtest/gtest.h>

namespace conscale {
namespace {

ScenarioParams quick_params() {
  ScenarioParams p = ScenarioParams::paper_default();
  p.work_scale = 16.0;
  p.seed = 99;
  return p;
}

TEST(RunScaling, PopulatesAllResultFields) {
  ScalingRunOptions options;
  options.duration = 60.0;
  const ScalingRunResult result =
      run_scaling(quick_params(), TraceKind::kDualPhase,
                  "ec2", options);
  EXPECT_EQ(result.framework_name, "EC2-AutoScaling");
  EXPECT_EQ(result.trace_name, "dual_phase");
  EXPECT_FALSE(result.system.empty());
  EXPECT_EQ(result.tiers.size(), 3u);
  EXPECT_GT(result.requests_completed, 0u);
  EXPECT_GT(result.p99_ms, 0.0);
  ASSERT_TRUE(result.warehouse != nullptr);
  EXPECT_FALSE(result.warehouse->server_names().empty());
}

TEST(RunScaling, SystemSeriesCoversDuration) {
  ScalingRunOptions options;
  options.duration = 45.0;
  const ScalingRunResult result =
      run_scaling(quick_params(), TraceKind::kSlowlyVarying,
                  "ec2", options);
  // One 1 s sample per second (within rounding at the edges).
  EXPECT_NEAR(static_cast<double>(result.system.size()), 45.0, 2.0);
}

TEST(RunScaling, RuntimeDatasetScaleChangesServiceTimes) {
  ScalingRunOptions heavy;
  heavy.duration = 60.0;
  heavy.runtime_dataset_scale = 3.0;
  const auto big = run_scaling(quick_params(), TraceKind::kSlowlyVarying,
                               "ec2", heavy);
  ScalingRunOptions light;
  light.duration = 60.0;
  light.runtime_dataset_scale = 0.5;
  const auto small = run_scaling(quick_params(), TraceKind::kSlowlyVarying,
                                 "ec2", light);
  // A 6x heavier app tier must show clearly higher median latency.
  EXPECT_GT(big.p50_ms, small.p50_ms);
}

TEST(RunScaling, SessionWorkloadDrivesTheSystem) {
  ScalingRunOptions options;
  options.duration = 90.0;
  options.session_workload = true;
  const ScalingRunResult result =
      run_scaling(quick_params(), TraceKind::kBigSpike,
                  "conscale", options);
  EXPECT_GT(result.requests_completed, 100u);
  EXPECT_GT(result.p99_ms, 0.0);
  // Deterministic like the i.i.d. path.
  const ScalingRunResult again =
      run_scaling(quick_params(), TraceKind::kBigSpike,
                  "conscale", options);
  EXPECT_EQ(result.requests_completed, again.requests_completed);
}

TEST(RunSweep, LevelsMapOneToOne) {
  const std::vector<int> levels = {3, 9};
  SweepOptions options;
  options.settle = 2.0;
  options.measure = 6.0;
  ScenarioParams p = quick_params();
  p.work_scale = 1.0;
  const auto points = run_concurrency_sweep(p, kDbTier, levels, options);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].concurrency, 3);
  EXPECT_EQ(points[1].concurrency, 9);
  EXPECT_GT(points[0].throughput, 0.0);
  // More offered concurrency in the ascending stage -> more throughput.
  EXPECT_GT(points[1].throughput, points[0].throughput);
}

TEST(CollectScatter, ProducesSamplesAndScatter) {
  ScenarioParams p = quick_params();
  p.work_scale = 1.0;
  ScatterRunOptions options;
  options.duration = 40.0;
  options.max_users = 60.0;
  const ScatterRunResult result = collect_scatter(p, kDbTier, options);
  EXPECT_FALSE(result.raw_samples.empty());
  EXPECT_GT(result.scatter.total_samples(), 100u);
  EXPECT_GT(result.scatter.max_q(), 5);
}

TEST(MakeFrameworkConfig, TargetsAppAndDbTiers) {
  const FrameworkConfig config = make_framework_config(quick_params());
  ASSERT_EQ(config.targets.thread_adapt_tiers.size(), 1u);
  EXPECT_EQ(config.targets.thread_adapt_tiers[0], kAppTier);
  ASSERT_EQ(config.targets.conn_adapt.size(), 1u);
  EXPECT_EQ(config.targets.conn_adapt[0].first, kAppTier);
  EXPECT_EQ(config.targets.conn_adapt[0].second, kDbTier);
  EXPECT_GT(config.estimator.window, 0.0);
}

}  // namespace
}  // namespace conscale
