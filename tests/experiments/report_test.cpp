#include "experiments/report.h"
#include "experiments/json_export.h"

#include <algorithm>

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace conscale {
namespace {

ScalingRunResult tiny_result() {
  ScalingRunResult r;
  r.framework_name = "ConScale";
  r.trace_name = "big_spike";
  for (int t = 1; t <= 30; ++t) {
    SystemSample s;
    s.t = t;
    s.throughput = 1000.0 + 20.0 * t;
    s.mean_rt = 0.050 + 0.001 * t;
    s.max_rt = s.mean_rt * 3.0;
    s.total_vms = 3 + t / 10;
    r.system.push_back(s);
    TierSample ts;
    ts.t = t;
    ts.avg_cpu_utilization = 0.5;
    ts.billed_vms = 1;
    ts.running_vms = 1;
    r.tiers["Tomcat"].push_back(ts);
  }
  r.events.push_back({12.0, "Tomcat", "scale-out", 2.0});
  r.events.push_back({13.0, "Tomcat", "threads", 24.0});
  r.mean_rt_ms = 60.0;
  r.p50_ms = 55.0;
  r.p95_ms = 80.0;
  r.p99_ms = 95.0;
  r.max_rt_ms = 200.0;
  r.requests_completed = 12345;
  return r;
}

TEST(Report, PerformanceTimelineMentionsKeyNumbers) {
  std::ostringstream out;
  print_performance_timeline(out, "test panel", tiny_result());
  const std::string s = out.str();
  EXPECT_NE(s.find("test panel"), std::string::npos);
  EXPECT_NE(s.find("ConScale"), std::string::npos);
  EXPECT_NE(s.find("p99=95ms"), std::string::npos);
  EXPECT_NE(s.find("Response Time"), std::string::npos);
  EXPECT_NE(s.find("Throughput"), std::string::npos);
}

TEST(Report, ScalingTimelineShowsTiersAndVms) {
  std::ostringstream out;
  print_scaling_timeline(out, "scaling", tiny_result());
  const std::string s = out.str();
  EXPECT_NE(s.find("Tomcat CPU"), std::string::npos);
  EXPECT_NE(s.find("# of VMs"), std::string::npos);
}

TEST(Report, EventsListEveryAction) {
  std::ostringstream out;
  print_events(out, tiny_result().events);
  const std::string s = out.str();
  EXPECT_NE(s.find("scale-out"), std::string::npos);
  EXPECT_NE(s.find("threads"), std::string::npos);
  EXPECT_NE(s.find("12.0s"), std::string::npos);
}

TEST(Report, TailTableFormatsRows) {
  std::ostringstream out;
  print_tail_table(out, "Table I",
                   {{"EC2-AutoScaling", "big_spike", 687.0, 3981.0},
                    {"ConScale", "big_spike", 179.0, 479.0}});
  const std::string s = out.str();
  EXPECT_NE(s.find("Table I"), std::string::npos);
  EXPECT_NE(s.find("3981"), std::string::npos);
  EXPECT_NE(s.find("479"), std::string::npos);
}

TEST(Report, SweepPrintsAllLevels) {
  std::ostringstream out;
  print_sweep(out, "fig3", {{5, 400.0, 8.0}, {10, 900.0, 9.0},
                            {20, 1000.0, 15.0}});
  const std::string s = out.str();
  EXPECT_NE(s.find("fig3"), std::string::npos);
  EXPECT_NE(s.find(" 5 10 20"), std::string::npos);
}

TEST(Report, ScatterAnalysisWithAndWithoutEstimate) {
  ScatterRunResult with;
  IntervalSample sample;
  sample.concurrency = 10.0;
  sample.throughput = 500.0;
  sample.completions = 3;
  sample.mean_rt = 0.02;
  with.raw_samples.assign(50, sample);
  RationalRange range;
  range.q_lower = 8;
  range.q_upper = 20;
  range.tp_max = 520.0;
  range.optimal = 8;
  with.range = range;
  std::ostringstream out;
  print_scatter_analysis(out, "scatter", with);
  EXPECT_NE(out.str().find("Q_lower=8"), std::string::npos);

  ScatterRunResult without;
  without.raw_samples.assign(5, sample);
  std::ostringstream out2;
  print_scatter_analysis(out2, "scatter2", without);
  EXPECT_NE(out2.str().find("not enough dense samples"), std::string::npos);
}

TEST(JsonExport, RunExportContainsAllSections) {
  std::ostringstream out;
  export_run_json(out, tiny_result());
  const std::string doc = out.str();
  for (const char* needle :
       {"\"framework\":\"ConScale\"", "\"summary\"", "\"p99_ms\":95",
        "\"system_series\"", "\"tiers\"", "\"Tomcat\"", "\"events\"",
        "\"action\":\"scale-out\"", "\"sct_history\""}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
  }
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
}

TEST(JsonExport, FileVariantWritesDocument) {
  const std::string path = ::testing::TempDir() + "/run_export.json";
  export_run_json(path, tiny_result());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"requests_completed\":12345"),
            std::string::npos);
  std::remove(path.c_str());
  EXPECT_THROW(export_run_json("/no/dir/x.json", tiny_result()),
               std::runtime_error);
}

TEST(Report, CsvDumpsRoundTrip) {
  const std::string sys_path = ::testing::TempDir() + "/report_sys.csv";
  dump_system_csv(sys_path, tiny_result());
  std::ifstream in(sys_path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,throughput_rps,mean_rt_ms,max_rt_ms,total_vms");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 30);
  std::remove(sys_path.c_str());
}

}  // namespace
}  // namespace conscale
