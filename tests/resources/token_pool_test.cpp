#include "resources/token_pool.h"
#include <functional>

#include <vector>

#include <gtest/gtest.h>

namespace conscale {
namespace {

TEST(TokenPool, GrantsSynchronouslyWhenAvailable) {
  TokenPool pool("p", 2);
  bool granted = false;
  pool.acquire([&] { granted = true; });
  EXPECT_TRUE(granted);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.available(), 1u);
}

TEST(TokenPool, QueuesWhenExhausted) {
  TokenPool pool("p", 1);
  int grants = 0;
  pool.acquire([&] { ++grants; });
  pool.acquire([&] { ++grants; });
  EXPECT_EQ(grants, 1);
  EXPECT_EQ(pool.waiting(), 1u);
  pool.release();
  EXPECT_EQ(grants, 2);
  EXPECT_EQ(pool.waiting(), 0u);
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(TokenPool, FifoGrantOrder) {
  TokenPool pool("p", 1);
  std::vector<int> order;
  pool.acquire([] {});
  for (int i = 0; i < 5; ++i) {
    pool.acquire([&order, i] { order.push_back(i); });
  }
  for (int i = 0; i < 5; ++i) pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TokenPool, CancelQueuedRequest) {
  TokenPool pool("p", 1);
  pool.acquire([] {});
  bool fired = false;
  const auto ticket = pool.acquire([&] { fired = true; });
  EXPECT_TRUE(pool.cancel(ticket));
  EXPECT_FALSE(pool.cancel(ticket));  // already removed
  pool.release();
  EXPECT_FALSE(fired);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(TokenPool, CannotCancelGrantedRequest) {
  TokenPool pool("p", 1);
  const auto ticket = pool.acquire([] {});
  EXPECT_FALSE(pool.cancel(ticket));
}

TEST(TokenPool, ResizeGrowGrantsWaiters) {
  TokenPool pool("p", 1);
  int grants = 0;
  for (int i = 0; i < 4; ++i) pool.acquire([&] { ++grants; });
  EXPECT_EQ(grants, 1);
  pool.resize(3);
  EXPECT_EQ(grants, 3);
  EXPECT_EQ(pool.in_use(), 3u);
  EXPECT_EQ(pool.waiting(), 1u);
}

TEST(TokenPool, ResizeShrinkIsLazy) {
  TokenPool pool("p", 3);
  int grants = 0;
  for (int i = 0; i < 3; ++i) pool.acquire([&] { ++grants; });
  pool.resize(1);
  EXPECT_EQ(pool.in_use(), 3u);  // holders keep their tokens
  EXPECT_EQ(pool.capacity(), 1u);
  bool late = false;
  pool.acquire([&] { late = true; });
  pool.release();  // in_use 2, still over capacity
  EXPECT_FALSE(late);
  pool.release();  // in_use 1, still at capacity... 0 free
  EXPECT_FALSE(late);
  pool.release();  // in_use 0 -> grant
  EXPECT_TRUE(late);
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST(TokenPool, AvailableClampsAtZeroWhenOverCapacity) {
  TokenPool pool("p", 2);
  pool.acquire([] {});
  pool.acquire([] {});
  pool.resize(1);
  EXPECT_EQ(pool.available(), 0u);
}

TEST(TokenPool, GrantCallbackCanRelease) {
  TokenPool pool("p", 1);
  std::vector<int> order;
  pool.acquire([&] {
    order.push_back(1);
    pool.release();  // release from inside the grant
  });
  pool.acquire([&] { order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TokenPool, GrantCallbackCanAcquire) {
  TokenPool pool("p", 2);
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 4) pool.acquire(recurse);
  };
  pool.acquire(recurse);
  // capacity 2: two immediate grants, the rest queue.
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(pool.waiting(), 1u);
  pool.release();
  EXPECT_EQ(depth, 3);
}

TEST(TokenPool, LifetimeCounters) {
  TokenPool pool("p", 1);
  pool.acquire([] {});
  pool.acquire([] {});
  pool.acquire([] {});
  EXPECT_EQ(pool.total_grants(), 1u);
  EXPECT_EQ(pool.total_queued(), 2u);
  pool.release();
  pool.release();
  EXPECT_EQ(pool.total_grants(), 3u);
}

TEST(TokenPool, NameIsPreserved) {
  TokenPool pool("Tomcat1.dbconn", 40);
  EXPECT_EQ(pool.name(), "Tomcat1.dbconn");
  EXPECT_EQ(pool.capacity(), 40u);
}

}  // namespace
}  // namespace conscale
