// Old-vs-new equivalence harness for the processor-sharing station: the
// virtual-time ProcessorSharingResource (O(log n) hot paths) must reproduce
// the per-job-decrement ReferencePsResource bit-for-bit in completion
// *order* and within 1e-9 relative tolerance in completion *time*, across
// randomized schedules of submits, aborts, resizes, speed changes,
// contention swaps, mass aborts, and callback-driven resubmission chains.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "reference_ps_resource.h"
#include "resources/ps_resource.h"

namespace conscale {
namespace {

enum class OpKind {
  kSubmit,
  kAbort,
  kAbortAll,
  kSetCores,
  kSetSpeed,
  kSetContention
};

struct Op {
  double t = 0.0;
  OpKind kind = OpKind::kSubmit;
  double work = 0.0;            // kSubmit
  std::size_t target = 0;       // kAbort: submit index to kill
  int cores = 1;                // kSetCores
  double speed = 1.0;           // kSetSpeed
  double onset = 8.0, alpha = 0.01, power = 1.0;  // kSetContention
};

struct Schedule {
  int initial_cores = 1;
  double initial_speed = 1.0;
  ContentionModel contention = ContentionModel::none();
  std::vector<Op> ops;                  // sorted by time
  std::vector<double> resubmit_works;   // demand for chained submissions
};

/// Deterministic 30 % resubmit-on-completion decision, by submission index.
bool resubmits(std::size_t index) {
  return (index * 2654435761ULL) % 10ULL < 3ULL;
}

Schedule make_schedule(std::uint64_t seed) {
  Rng rng(seed);
  Schedule sched;
  sched.initial_cores = 1 + static_cast<int>(rng.uniform_index(4));
  sched.initial_speed = rng.uniform(0.5, 3.0);
  if (rng.uniform() < 0.5) {
    sched.contention = ContentionModel{rng.uniform(2.0, 12.0),
                                       rng.uniform(0.005, 0.05), 1.0};
  }
  std::vector<double> times;
  for (int i = 0; i < 300; ++i) times.push_back(rng.uniform(0.0, 60.0));
  std::sort(times.begin(), times.end());
  std::size_t submitted = 0;
  for (double t : times) {
    Op op;
    op.t = t;
    const double pick = rng.uniform();
    if (pick < 0.60 || submitted == 0) {
      op.kind = OpKind::kSubmit;
      // Mostly short exponential demands, a few heavy ones, rare zero-work.
      const double u = rng.uniform();
      op.work = u < 0.02   ? 0.0
                : u < 0.90 ? rng.exponential(0.3)
                           : rng.uniform(2.0, 8.0);
      ++submitted;
    } else if (pick < 0.75) {
      op.kind = OpKind::kAbort;
      op.target = static_cast<std::size_t>(rng.uniform_index(submitted));
    } else if (pick < 0.83) {
      op.kind = OpKind::kSetCores;
      op.cores = 1 + static_cast<int>(rng.uniform_index(4));
    } else if (pick < 0.91) {
      op.kind = OpKind::kSetSpeed;
      op.speed = rng.uniform(0.5, 4.0);
    } else if (pick < 0.98) {
      op.kind = OpKind::kSetContention;
      op.onset = rng.uniform(2.0, 12.0);
      op.alpha = rng.uniform(0.005, 0.05);
      op.power = rng.uniform() < 0.5 ? 1.0 : 1.5;
    } else {
      op.kind = OpKind::kAbortAll;
    }
    sched.ops.push_back(op);
  }
  for (int i = 0; i < 4096; ++i) {
    sched.resubmit_works.push_back(rng.exponential(0.2));
  }
  return sched;
}

struct CompletionRecord {
  std::size_t index = 0;  ///< submission index (schedule + chained)
  double time = 0.0;
};

struct RunOutcome {
  std::vector<CompletionRecord> completions;
  std::size_t active_at_end = 0;
  double work_done = 0.0;
  double busy_core_seconds = 0.0;
  double end_time = 0.0;
};

template <class Resource>
RunOutcome run_schedule(const Schedule& sched) {
  Simulation sim;
  Resource cpu(sim, sched.initial_cores, sched.initial_speed,
               sched.contention);
  RunOutcome out;
  std::vector<typename Resource::JobId> ids;  // by submission index
  std::size_t next_index = 0;

  // Chained resubmission must stop eventually; the works table is the cap.
  std::function<void(std::size_t)> on_complete =
      [&](std::size_t index) {
        out.completions.push_back({index, sim.now()});
        if (resubmits(index) &&
            next_index < sched.resubmit_works.size()) {
          const std::size_t idx = next_index++;
          ids.push_back(cpu.submit(sched.resubmit_works[idx],
                                   [&on_complete, idx] { on_complete(idx); }));
        }
      };

  for (const Op& op : sched.ops) {
    sim.schedule_at(op.t, [&, op] {
      switch (op.kind) {
        case OpKind::kSubmit: {
          const std::size_t idx = next_index++;
          ids.push_back(cpu.submit(
              op.work, [&on_complete, idx] { on_complete(idx); }));
          break;
        }
        case OpKind::kAbort:
          if (op.target < ids.size()) cpu.abort(ids[op.target]);
          break;
        case OpKind::kAbortAll:
          cpu.abort_all();
          break;
        case OpKind::kSetCores:
          cpu.set_cores(op.cores);
          break;
        case OpKind::kSetSpeed:
          cpu.set_speed(op.speed);
          break;
        case OpKind::kSetContention:
          cpu.set_contention(ContentionModel{op.onset, op.alpha, op.power});
          break;
      }
    });
  }
  sim.run_all();
  out.active_at_end = cpu.active_jobs();
  out.work_done = cpu.work_done();
  out.busy_core_seconds = cpu.busy_core_seconds();
  out.end_time = sim.now();
  return out;
}

void expect_equivalent(const RunOutcome& vt, const RunOutcome& ref,
                       std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  ASSERT_EQ(vt.completions.size(), ref.completions.size());
  for (std::size_t i = 0; i < vt.completions.size(); ++i) {
    SCOPED_TRACE("completion #" + std::to_string(i));
    // Identical order: the virtual-time rewrite must not reorder anything,
    // including ties (both implementations break ties in submission order).
    ASSERT_EQ(vt.completions[i].index, ref.completions[i].index);
    const double tol =
        1e-9 * std::max(1.0, std::abs(ref.completions[i].time));
    EXPECT_NEAR(vt.completions[i].time, ref.completions[i].time, tol);
  }
  EXPECT_EQ(vt.active_at_end, ref.active_at_end);
  EXPECT_NEAR(vt.work_done, ref.work_done,
              1e-9 * std::max(1.0, ref.work_done));
  EXPECT_NEAR(vt.busy_core_seconds, ref.busy_core_seconds,
              1e-9 * std::max(1.0, ref.busy_core_seconds));
}

TEST(PsEquivalence, RandomizedSchedulesMatchReference) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Schedule sched = make_schedule(seed * 7919);
    const RunOutcome vt = run_schedule<ProcessorSharingResource>(sched);
    const RunOutcome ref = run_schedule<ReferencePsResource>(sched);
    ASSERT_GT(vt.completions.size(), 50u) << "degenerate schedule";
    expect_equivalent(vt, ref, seed);
  }
}

TEST(PsEquivalence, TiesCompleteTogetherInSubmissionOrder) {
  // Five identical jobs submitted at t=0 finish at the same instant; both
  // implementations must report them in submission order.
  auto run = [](auto* tag) {
    using Resource = std::remove_pointer_t<decltype(tag)>;
    Simulation sim;
    Resource cpu(sim, 2, 1.0, ContentionModel{2.0, 0.05, 1.0});
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
      cpu.submit(1.0, [&order, i] { order.push_back(i); });
    }
    sim.run_all();
    return order;
  };
  const auto vt = run(static_cast<ProcessorSharingResource*>(nullptr));
  const auto ref = run(static_cast<ReferencePsResource*>(nullptr));
  ASSERT_EQ(vt.size(), 5u);
  EXPECT_EQ(vt, ref);
  EXPECT_EQ(vt, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(PsEquivalence, LongBusyPeriodHighConcurrency) {
  // Paper-scale regime: a single busy period that climbs to ~256 in-flight
  // jobs, with completions resubmitting — the regime the O(log n) rewrite
  // targets. Times here grow past 10^2 s, so relative tolerance matters.
  for (std::uint64_t seed : {3ULL, 17ULL}) {
    Schedule sched;
    Rng rng(seed);
    sched.initial_cores = 2;
    sched.contention = ContentionModel{8.0, 0.01, 1.0};
    for (int i = 0; i < 256; ++i) {
      Op op;
      op.t = rng.uniform(0.0, 0.5);
      op.kind = OpKind::kSubmit;
      op.work = rng.exponential(0.05);
      sched.ops.push_back(op);
    }
    std::sort(sched.ops.begin(), sched.ops.end(),
              [](const Op& a, const Op& b) { return a.t < b.t; });
    for (int i = 0; i < 2048; ++i) {
      sched.resubmit_works.push_back(rng.exponential(0.05));
    }
    const RunOutcome vt = run_schedule<ProcessorSharingResource>(sched);
    const RunOutcome ref = run_schedule<ReferencePsResource>(sched);
    expect_equivalent(vt, ref, seed);
  }
}

}  // namespace
}  // namespace conscale
