#include "resources/fcfs_resource.h"
#include <functional>

#include <vector>

#include <gtest/gtest.h>

namespace conscale {
namespace {

TEST(FcfsResource, SingleChannelServesInOrder) {
  Simulation sim;
  FcfsResource disk(sim, 1);
  std::vector<int> order;
  std::vector<double> times;
  disk.submit(1.0, [&] { order.push_back(1); times.push_back(sim.now()); });
  disk.submit(2.0, [&] { order.push_back(2); times.push_back(sim.now()); });
  disk.submit(0.5, [&] { order.push_back(3); times.push_back(sim.now()); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
  EXPECT_DOUBLE_EQ(times[2], 3.5);
}

TEST(FcfsResource, NoPreemptionUnlikePs) {
  Simulation sim;
  FcfsResource disk(sim, 1);
  double long_done = -1, short_done = -1;
  disk.submit(2.0, [&] { long_done = sim.now(); });
  sim.schedule_at(0.5, [&] {
    disk.submit(0.1, [&] { short_done = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(long_done, 2.0);    // keeps the channel
  EXPECT_DOUBLE_EQ(short_done, 2.1);   // waits its turn
}

TEST(FcfsResource, MultiChannelParallelism) {
  Simulation sim;
  FcfsResource disk(sim, 2);
  std::vector<double> times;
  for (int i = 0; i < 4; ++i) {
    disk.submit(1.0, [&] { times.push_back(sim.now()); });
  }
  sim.run_all();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  EXPECT_DOUBLE_EQ(times[2], 2.0);
  EXPECT_DOUBLE_EQ(times[3], 2.0);
}

TEST(FcfsResource, SpeedDividesServiceTime) {
  Simulation sim;
  FcfsResource disk(sim, 1, 4.0);
  double done = -1;
  disk.submit(1.0, [&] { done = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(done, 0.25);
}

TEST(FcfsResource, QueueAndBusyCounters) {
  Simulation sim;
  FcfsResource disk(sim, 1);
  disk.submit(1.0, [] {});
  disk.submit(1.0, [] {});
  disk.submit(1.0, [] {});
  EXPECT_EQ(disk.busy_channels(), 1u);
  EXPECT_EQ(disk.queued(), 2u);
  EXPECT_EQ(disk.active_jobs(), 3u);
  sim.run_until(1.5);
  EXPECT_EQ(disk.busy_channels(), 1u);
  EXPECT_EQ(disk.queued(), 1u);
  sim.run_all();
  EXPECT_EQ(disk.active_jobs(), 0u);
}

TEST(FcfsResource, BusyChannelSecondsIntegration) {
  Simulation sim;
  FcfsResource disk(sim, 1);
  disk.submit(2.0, [] {});
  disk.submit(3.0, [] {});
  sim.run_all();
  EXPECT_NEAR(disk.busy_channel_seconds(), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(FcfsResource, BusyAccountingMidService) {
  Simulation sim;
  FcfsResource disk(sim, 1);
  disk.submit(10.0, [] {});
  sim.run_until(4.0);
  EXPECT_NEAR(disk.busy_channel_seconds(), 4.0, 1e-9);
}

TEST(FcfsResource, AddChannelsDrainsQueue) {
  Simulation sim;
  FcfsResource disk(sim, 1);
  std::vector<double> times;
  for (int i = 0; i < 3; ++i) {
    disk.submit(2.0, [&] { times.push_back(sim.now()); });
  }
  sim.schedule_at(1.0, [&] { disk.set_channels(3); });
  sim.run_all();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);  // started at 0
  EXPECT_DOUBLE_EQ(times[1], 3.0);  // started at 1 after expansion
  EXPECT_DOUBLE_EQ(times[2], 3.0);
}

TEST(FcfsResource, CompletionCallbackMayResubmit) {
  Simulation sim;
  FcfsResource disk(sim, 1);
  int count = 0;
  std::function<void()> next = [&] {
    if (++count < 3) disk.submit(1.0, next);
  };
  disk.submit(1.0, next);
  sim.run_all();
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(FcfsResource, ZeroWorkStillFifo) {
  Simulation sim;
  FcfsResource disk(sim, 1);
  std::vector<int> order;
  disk.submit(0.0, [&] { order.push_back(1); });
  disk.submit(0.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace conscale
