// ReferencePsResource: the pre-virtual-time ProcessorSharingResource kept
// verbatim as a *test-only* oracle. It stores per-job remaining work and, at
// every event, decrements all of it (O(n) advance) and rescans for the next
// completion (O(n) reschedule) — the textbook formulation whose correctness
// is easy to audit line by line. The production class replaces both loops
// with a virtual service clock and a finish-tag heap (DESIGN.md §6.5); the
// randomized equivalence suite in ps_equivalence_test.cpp drives identical
// schedules through both and asserts identical completion order and times.
//
// One deliberate deviation from the historical code: jobs live in a std::map
// (not unordered_map), so tied completions fire in JobId (= submission)
// order — the same tie-break the virtual-time implementation guarantees.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "resources/contention.h"
#include "simcore/simulation.h"

namespace conscale {

class ReferencePsResource {
 public:
  using JobId = std::uint64_t;
  using CompletionCallback = std::function<void()>;

  ReferencePsResource(Simulation& sim, int cores, double speed = 1.0,
                      ContentionModel contention = ContentionModel::none())
      : sim_(sim), cores_(cores), speed_(speed), contention_(contention),
        last_update_(sim.now()) {
    assert(cores_ >= 1);
    assert(speed_ > 0.0);
  }
  ~ReferencePsResource() { completion_event_.cancel(); }
  ReferencePsResource(const ReferencePsResource&) = delete;
  ReferencePsResource& operator=(const ReferencePsResource&) = delete;

  JobId submit(double work, CompletionCallback on_complete) {
    advance_to_now();
    const JobId id = next_id_++;
    jobs_.emplace(id, Job{std::max(work, 0.0), std::move(on_complete)});
    reschedule_completion();
    return id;
  }

  bool abort(JobId id) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    advance_to_now();
    jobs_.erase(it);
    reschedule_completion();
    return true;
  }

  std::size_t abort_all() {
    advance_to_now();
    const std::size_t killed = jobs_.size();
    jobs_.clear();
    reschedule_completion();
    return killed;
  }

  void set_cores(int cores) {
    assert(cores >= 1);
    advance_to_now();
    cores_ = cores;
    reschedule_completion();
  }

  void set_speed(double speed) {
    assert(speed > 0.0);
    advance_to_now();
    speed_ = speed;
    reschedule_completion();
  }

  void set_contention(ContentionModel contention) {
    advance_to_now();
    contention_ = contention;
    reschedule_completion();
  }

  int cores() const { return cores_; }
  double speed() const { return speed_; }
  std::size_t active_jobs() const { return jobs_.size(); }
  double work_done() const { return work_done_; }

  double busy_core_seconds() const {
    double busy = busy_core_seconds_;
    if (!jobs_.empty()) {
      const double elapsed = sim_.now() - last_update_;
      const auto n = static_cast<double>(jobs_.size());
      busy += std::max(elapsed, 0.0) * std::min(n, static_cast<double>(cores_));
    }
    return busy;
  }

 private:
  struct Job {
    double remaining = 0.0;
    CompletionCallback on_complete;
  };

  static constexpr double kWorkEpsilon = 1e-12;

  double per_job_rate() const {
    const auto n = static_cast<double>(jobs_.size());
    if (n == 0.0) return 0.0;
    const double share = std::min(1.0, static_cast<double>(cores_) / n);
    return speed_ * share * contention_.efficiency(n);
  }

  void advance_to_now() {
    const SimTime now = sim_.now();
    const double elapsed = now - last_update_;
    last_update_ = now;
    if (elapsed <= 0.0 || jobs_.empty()) return;
    const auto n = static_cast<double>(jobs_.size());
    busy_core_seconds_ += elapsed * std::min(n, static_cast<double>(cores_));
    const double served = elapsed * per_job_rate();
    if (served <= 0.0) return;
    for (auto& [id, job] : jobs_) {
      const double delta = std::min(job.remaining, served);
      job.remaining -= delta;
      work_done_ += delta;
    }
  }

  void reschedule_completion() {
    completion_event_.cancel();
    if (jobs_.empty()) return;
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto& [id, job] : jobs_) {
      min_remaining = std::min(min_remaining, job.remaining);
    }
    const double rate = per_job_rate();
    assert(rate > 0.0);
    const double delay = std::max(min_remaining, 0.0) / rate;
    completion_event_ =
        sim_.schedule_after(delay, [this] { on_completion_event(); });
  }

  void on_completion_event() {
    advance_to_now();
    double threshold = kWorkEpsilon;
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const auto& [id, job] : jobs_) {
      min_remaining = std::min(min_remaining, job.remaining);
    }
    if (min_remaining > threshold && min_remaining < 1e-9) {
      threshold = min_remaining;
    }
    std::vector<CompletionCallback> callbacks;
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->second.remaining <= threshold) {
        callbacks.push_back(std::move(it->second.on_complete));
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    reschedule_completion();
    for (auto& callback : callbacks) callback();
  }

  Simulation& sim_;
  int cores_;
  double speed_;
  ContentionModel contention_;

  std::map<JobId, Job> jobs_;
  JobId next_id_ = 1;
  SimTime last_update_ = 0.0;
  EventHandle completion_event_;

  double busy_core_seconds_ = 0.0;
  double work_done_ = 0.0;
};

}  // namespace conscale
