#include "resources/ps_resource.h"
#include "common/rng.h"
#include <functional>

#include <vector>

#include <gtest/gtest.h>

namespace conscale {
namespace {

TEST(PsResource, SingleJobRunsAtFullSpeed) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  double completed_at = -1.0;
  cpu.submit(2.0, [&] { completed_at = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(completed_at, 2.0);
  EXPECT_NEAR(cpu.work_done(), 2.0, 1e-9);
}

TEST(PsResource, SpeedScalesServiceTime) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1, 4.0);
  double completed_at = -1.0;
  cpu.submit(2.0, [&] { completed_at = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(completed_at, 0.5);
}

TEST(PsResource, TwoJobsOnOneCoreShareEqually) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  std::vector<double> completions;
  cpu.submit(1.0, [&] { completions.push_back(sim.now()); });
  cpu.submit(1.0, [&] { completions.push_back(sim.now()); });
  sim.run_all();
  // Both jobs progress at rate 1/2 -> both finish at t=2.
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 2.0);
  EXPECT_DOUBLE_EQ(completions[1], 2.0);
}

TEST(PsResource, UnequalJobsPsExactness) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  double short_done = -1, long_done = -1;
  cpu.submit(1.0, [&] { short_done = sim.now(); });
  cpu.submit(2.0, [&] { long_done = sim.now(); });
  sim.run_all();
  // Shared until t=2 (each has 1.0 served); short completes at 2;
  // long has 1.0 left, alone at rate 1 -> completes at 3.
  EXPECT_DOUBLE_EQ(short_done, 2.0);
  EXPECT_DOUBLE_EQ(long_done, 3.0);
}

TEST(PsResource, MultiCoreNoSharingBelowCoreCount) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 4);
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    cpu.submit(1.0, [&] { completions.push_back(sim.now()); });
  }
  sim.run_all();
  for (double t : completions) EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(PsResource, MultiCoreSharingAboveCoreCount) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 2);
  std::vector<double> completions;
  for (int i = 0; i < 4; ++i) {
    cpu.submit(1.0, [&] { completions.push_back(sim.now()); });
  }
  sim.run_all();
  // 4 jobs on 2 cores: per-job rate 1/2 -> all done at t=2.
  for (double t : completions) EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(PsResource, LateArrivalSharesRemainder) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  double first_done = -1, second_done = -1;
  cpu.submit(2.0, [&] { first_done = sim.now(); });
  sim.schedule_at(1.0, [&] {
    cpu.submit(0.5, [&] { second_done = sim.now(); });
  });
  sim.run_all();
  // First runs alone [0,1): 1.0 served, 1.0 left. Then shared at rate 1/2:
  // second (0.5 work) finishes at t=2.0; first has 0.5 left at t=2, alone ->
  // finishes at 2.5.
  EXPECT_DOUBLE_EQ(second_done, 2.0);
  EXPECT_DOUBLE_EQ(first_done, 2.5);
}

TEST(PsResource, ContentionSlowsEveryone) {
  Simulation sim;
  // onset 1, alpha 1, power 1: efficiency(2) = 1/(1+1) = 0.5.
  ProcessorSharingResource cpu(sim, 2, 1.0, ContentionModel{1.0, 1.0, 1.0});
  std::vector<double> completions;
  cpu.submit(1.0, [&] { completions.push_back(sim.now()); });
  cpu.submit(1.0, [&] { completions.push_back(sim.now()); });
  sim.run_all();
  // 2 cores, 2 jobs -> each would run at rate 1, but efficiency halves it.
  for (double t : completions) EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(PsResource, ContentionModelEfficiencyShape) {
  ContentionModel m{10.0, 0.02, 1.0};
  EXPECT_DOUBLE_EQ(m.efficiency(5.0), 1.0);
  EXPECT_DOUBLE_EQ(m.efficiency(10.0), 1.0);
  EXPECT_NEAR(m.efficiency(60.0), 1.0 / 2.0, 1e-12);
  EXPECT_GT(m.efficiency(20.0), m.efficiency(40.0));
  EXPECT_DOUBLE_EQ(ContentionModel::none().efficiency(1e6), 1.0);
}

TEST(PsResource, AbortDiscardsJob) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  bool fired = false;
  const auto id = cpu.submit(5.0, [&] { fired = true; });
  sim.run_until(1.0);
  EXPECT_TRUE(cpu.abort(id));
  EXPECT_FALSE(cpu.abort(id));  // already gone
  sim.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(cpu.active_jobs(), 0u);
}

TEST(PsResource, AbortSpeedsUpRemainingJobs) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  double done = -1;
  const auto doomed = cpu.submit(100.0, [] {});
  cpu.submit(1.0, [&] { done = sim.now(); });
  sim.schedule_at(1.0, [&] { cpu.abort(doomed); });
  sim.run_all();
  // Shared [0,1): survivor has 0.5 served; alone afterwards -> done at 1.5.
  EXPECT_DOUBLE_EQ(done, 1.5);
}

TEST(PsResource, SetCoresMidFlight) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  std::vector<double> completions;
  cpu.submit(2.0, [&] { completions.push_back(sim.now()); });
  cpu.submit(2.0, [&] { completions.push_back(sim.now()); });
  sim.schedule_at(2.0, [&] { cpu.set_cores(2); });  // each has 1.0 served
  sim.run_all();
  // After t=2 both run at full rate -> finish at t=3 (vertical scaling).
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 3.0);
  EXPECT_DOUBLE_EQ(completions[1], 3.0);
}

TEST(PsResource, SetSpeedMidFlight) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1, 1.0);
  double done = -1;
  cpu.submit(2.0, [&] { done = sim.now(); });
  sim.schedule_at(1.0, [&] { cpu.set_speed(2.0); });  // 1.0 work left
  sim.run_all();
  // Remaining 1.0 at double speed -> +0.5 s.
  EXPECT_DOUBLE_EQ(done, 1.5);
}

TEST(PsResource, SetContentionMidFlight) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  std::vector<double> completions;
  cpu.submit(2.0, [&] { completions.push_back(sim.now()); });
  cpu.submit(2.0, [&] { completions.push_back(sim.now()); });
  // At t=2 each job has 1.0 served; contention then halves the efficiency
  // at 2 jobs: per-job rate 0.5 -> 0.25.
  sim.schedule_at(2.0, [&] {
    cpu.set_contention(ContentionModel{1.0, 1.0, 1.0});
  });
  sim.run_all();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 6.0);  // 1.0 left at rate 0.25
  EXPECT_DOUBLE_EQ(completions[1], 6.0);
}

TEST(PsResource, BusyCoreSecondsIntegration) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 2);
  cpu.submit(1.0, [] {});
  cpu.submit(1.0, [] {});
  cpu.submit(1.0, [] {});  // 3 jobs on 2 cores
  sim.run_all();
  // All three share 2 cores: total work 3.0 at total rate 2 -> 1.5 s
  // elapsed, busy-core integral = 2 * 1.5 = 3.0.
  EXPECT_NEAR(cpu.busy_core_seconds(), 3.0, 1e-9);
  EXPECT_NEAR(cpu.work_done(), 3.0, 1e-9);
}

TEST(PsResource, BusyAccountingIncludesCurrentInterval) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  cpu.submit(10.0, [] {});
  sim.run_until(4.0);
  EXPECT_NEAR(cpu.busy_core_seconds(), 4.0, 1e-9);
}

TEST(PsResource, ZeroWorkCompletesImmediately) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  double done = -1;
  cpu.submit(0.0, [&] { done = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

// Work conservation property: across random arrivals/demands, total work
// done equals total demand and the busy integral never exceeds elapsed*cores.
TEST(PsResource, WorkConservationProperty) {
  for (int cores : {1, 2, 4}) {
    Simulation sim;
    ProcessorSharingResource cpu(sim, cores);
    Rng rng(1000 + static_cast<unsigned>(cores));
    double total_demand = 0.0;
    int completions = 0;
    for (int i = 0; i < 200; ++i) {
      const double at = rng.uniform(0.0, 50.0);
      const double work = rng.exponential(0.5);
      total_demand += work;
      sim.schedule_at(at, [&cpu, &completions, work] {
        cpu.submit(work, [&completions] { ++completions; });
      });
    }
    sim.run_all();
    EXPECT_EQ(completions, 200);
    EXPECT_NEAR(cpu.work_done(), total_demand, 1e-6);
    EXPECT_LE(cpu.busy_core_seconds(),
              sim.now() * static_cast<double>(cores) + 1e-9);
    EXPECT_GE(cpu.busy_core_seconds(), total_demand - 1e-6);  // eff <= 1
  }
}

TEST(PsResource, CallbackMayResubmit) {
  Simulation sim;
  ProcessorSharingResource cpu(sim, 1);
  int rounds = 0;
  std::function<void()> again = [&] {
    if (++rounds < 3) cpu.submit(1.0, again);
  };
  cpu.submit(1.0, again);
  sim.run_all();
  EXPECT_EQ(rounds, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

}  // namespace
}  // namespace conscale
