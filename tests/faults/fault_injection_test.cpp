// Tests for the deterministic fault-injection subsystem (src/faults):
// FaultPlan parsing, FaultInjector arming against a live NTierSystem, the
// interaction with metrics/estimation during monitoring dropouts, and the
// determinism guarantees (same plan + seed -> identical runs, empty plan ->
// indistinguishable from a fault-free run).
#include <gtest/gtest.h>

#include "conscale/estimator_service.h"
#include "experiments/parallel.h"
#include "experiments/runner.h"
#include "experiments/scenario.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "metrics/warehouse.h"

namespace conscale {
namespace {

// ---- FaultPlan parsing ----------------------------------------------------

TEST(FaultPlan, ParsesEveryKindAndRoundTrips) {
  const std::string text =
      "# schedule\n"
      "crash t=120 tier=app vm=0 restart=30\n"
      "cpu t=200 dur=60 tier=db vm=all factor=0.4; boot t=0 dur=720 factor=3\n"
      "drop t=240 dur=30\n";
  const FaultPlan plan = FaultPlan::parse(text);
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kVmCrash);
  EXPECT_DOUBLE_EQ(plan.events[0].at, 120.0);
  EXPECT_EQ(plan.events[0].tier, "app");
  EXPECT_DOUBLE_EQ(plan.events[0].restart_delay, 30.0);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kCpuInterference);
  EXPECT_TRUE(plan.events[1].all_vms);
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 0.4);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kBootJitter);
  EXPECT_TRUE(plan.events[2].tier.empty());  // boot with no tier = all tiers
  EXPECT_EQ(plan.events[3].kind, FaultKind::kMonitoringDropout);
  EXPECT_DOUBLE_EQ(plan.events[3].duration, 30.0);

  // Canonical text re-parses to the same plan.
  const FaultPlan again = FaultPlan::parse(plan.to_text());
  ASSERT_EQ(again.events.size(), plan.events.size());
  EXPECT_EQ(again.to_text(), plan.to_text());
}

TEST(FaultPlan, EmptyAndCommentOnlyTextIsEmpty) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("# nothing\n\n  # more\n").empty());
}

TEST(FaultPlan, RejectsMalformedEntries) {
  // Unknown kind, unknown key, missing required fields, bad values: every
  // one must fail loudly instead of silently not injecting.
  EXPECT_THROW(FaultPlan::parse("explode t=1 tier=app"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash t=1 tier=app vmm=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash tier=app vm=0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash t=1"), std::invalid_argument);  // tier
  EXPECT_THROW(FaultPlan::parse("crash t=1 tier=app vm=all"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("cpu t=1 tier=db vm=all factor=0.5"),
               std::invalid_argument);  // dur missing
  EXPECT_THROW(FaultPlan::parse("cpu t=1 dur=10 tier=db vm=all factor=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("boot t=1 factor=3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop t=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop t=-5 dur=10"), std::invalid_argument);
}

// ---- FaultInjector against a live system ----------------------------------

struct InjectorFixture : ::testing::Test {
  InjectorFixture()
      : params(make_params()), mix(params.make_mix()),
        system(sim, params.system_config()) {}

  static ScenarioParams make_params() {
    ScenarioParams p = ScenarioParams::test_scale();
    p.web_init = 1;
    p.app_init = 2;
    p.db_init = 1;
    return p;
  }

  RequestContext ctx() {
    RequestContext c;
    c.id = next_id++;
    c.request_class = &mix.classes().front();
    c.issued_at = sim.now();
    return c;
  }

  FaultInjector make(const std::string& plan_text,
                     MetricsWarehouse* wh = nullptr) {
    return FaultInjector(sim, system, wh, FaultPlan::parse(plan_text));
  }

  Simulation sim;
  ScenarioParams params;
  RequestMix mix;
  NTierSystem system;
  MetricsWarehouse warehouse;
  std::uint64_t next_id = 1;
};

TEST_F(InjectorFixture, UnresolvableTierFailsAtConstruction) {
  EXPECT_THROW(make("crash t=1 tier=NoSuchTier vm=0"), std::invalid_argument);
  EXPECT_THROW(make("crash t=1 tier=9 vm=0"), std::invalid_argument);
  // Dropout without a metrics layer is invalid too.
  EXPECT_THROW(make("drop t=1 dur=5"), std::invalid_argument);
}

TEST_F(InjectorFixture, TierAliasesResolveToStandardLayout) {
  // web/app/db, exact names, and numeric indices all address the 3 tiers;
  // construction validates them eagerly, so not throwing is the assertion.
  EXPECT_NO_THROW(make("crash t=1 tier=web vm=0"));
  EXPECT_NO_THROW(make("crash t=1 tier=Tomcat vm=0"));
  EXPECT_NO_THROW(make("crash t=1 tier=2 vm=0"));
}

TEST_F(InjectorFixture, ArmIsOneShot) {
  FaultInjector injector = make("boot t=1 dur=5 factor=2");
  injector.arm();
  EXPECT_THROW(injector.arm(), std::logic_error);
}

TEST_F(InjectorFixture, CrashAbortsInFlightAndKeepsLbAwayUntilRestart) {
  FaultInjector injector = make("crash t=1 tier=app vm=0 restart=2");
  injector.arm();
  sim.run_until(0.5);  // bootstrap online
  TierGroup& app = system.tier(1);
  ASSERT_EQ(app.running_vms(), 2u);
  Server* victim = app.running_servers()[0];

  // Saturate the doomed VM so the crash catches work in flight.
  int done = 0;
  for (int i = 0; i < 40; ++i) system.submit(ctx(), [&] { ++done; });
  sim.run_until(1.5);  // crash fired at t=1

  EXPECT_EQ(app.failed_vms(), 1u);
  EXPECT_EQ(app.lb().backend_count(), 1u);
  EXPECT_EQ(victim->in_flight(), 0u);  // errored, not leaked
  EXPECT_EQ(app.total_aborted_requests(), victim->aborted_requests());
  EXPECT_EQ(injector.stats().crashes_injected, 1u);
  ASSERT_EQ(injector.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(injector.windows()[0].start, 1.0);
  EXPECT_DOUBLE_EQ(injector.windows()[0].end, 3.0);
  EXPECT_EQ(injector.windows()[0].tier, "Tomcat");

  // While one VM is down, new work only reaches the survivor.
  const std::uint64_t before = victim->completed_requests();
  for (int i = 0; i < 20; ++i) system.submit(ctx(), [&] { ++done; });
  sim.run_until(2.9);
  EXPECT_EQ(victim->completed_requests(), before);
  EXPECT_EQ(victim->in_flight(), 0u);

  // After restart + prep delay the VM rejoins the LB.
  sim.run_until(3.0 + params.system_config().tiers[1].vm_prep_delay + 1.0);
  EXPECT_EQ(app.running_vms(), 2u);
  EXPECT_EQ(app.lb().backend_count(), 2u);
  EXPECT_EQ(app.failed_vms(), 0u);

  // Every submitted request got a response: completed or errored, no hangs.
  sim.run_until(60.0);
  EXPECT_EQ(done, 60);
}

TEST_F(InjectorFixture, CrashOnEmptyOrdinalCountsAsMissed) {
  FaultInjector injector = make("crash t=1 tier=app vm=7 restart=2");
  injector.arm();
  sim.run_until(2.0);
  EXPECT_EQ(injector.stats().crashes_injected, 0u);
  EXPECT_EQ(injector.stats().crashes_missed, 1u);
  EXPECT_EQ(system.tier(1).failed_vms(), 0u);
}

TEST_F(InjectorFixture, InterferenceWindowDegradesAndRestoresSpeed) {
  FaultInjector injector = make("cpu t=1 dur=2 tier=db vm=all factor=0.25");
  injector.arm();
  sim.run_until(0.5);
  TierGroup& db = system.tier(2);
  const double nominal = db.running_servers()[0]->cpu_speed();
  sim.run_until(1.5);  // inside the window
  for (Server* s : db.running_servers()) {
    EXPECT_DOUBLE_EQ(s->cpu_speed(), nominal * 0.25);
  }
  sim.run_until(3.5);  // window closed at t=3
  for (Server* s : db.running_servers()) {
    EXPECT_DOUBLE_EQ(s->cpu_speed(), nominal);
  }
  EXPECT_EQ(injector.stats().interference_windows, 1u);
}

TEST_F(InjectorFixture, BootJitterOnlyInsideWindow) {
  FaultInjector injector = make("boot t=1 dur=5 tier=app factor=4");
  injector.arm();
  sim.run_until(2.0);
  TierGroup& app = system.tier(1);
  EXPECT_DOUBLE_EQ(app.prep_delay_factor(), 4.0);
  sim.run_until(6.5);  // window closed at t=6
  EXPECT_DOUBLE_EQ(app.prep_delay_factor(), 1.0);
  // Untargeted tiers were never touched.
  EXPECT_DOUBLE_EQ(system.tier(0).prep_delay_factor(), 1.0);
  EXPECT_EQ(injector.stats().boot_jitter_windows, 1u);
}

TEST_F(InjectorFixture, DropoutGatesWarehouseIngestion) {
  FaultInjector injector = make("drop t=1 dur=2", &warehouse);
  injector.arm();
  SystemSample sample;
  sample.t = 0.5;
  warehouse.record_system(sample);
  sim.run_until(1.5);
  EXPECT_FALSE(warehouse.ingestion_enabled());
  sample.t = 1.5;
  warehouse.record_system(sample);  // dropped
  sample.t = 1.6;
  warehouse.record_tier("Tomcat", TierSample{});  // dropped
  sim.run_until(3.5);
  EXPECT_TRUE(warehouse.ingestion_enabled());
  sample.t = 3.5;
  warehouse.record_system(sample);
  EXPECT_EQ(warehouse.system_series().size(), 2u);
  EXPECT_EQ(warehouse.dropped_samples(), 2u);
  EXPECT_EQ(injector.stats().dropout_windows, 1u);
}

// The estimator's dropout guard: a blackout shorter than max_staleness does
// not interrupt estimation; one that pushes the newest sample past the bound
// makes the service hold its cached range instead of re-estimating.
TEST_F(InjectorFixture, EstimatorHoldsCacheOnlyWhenWindowGoesStale) {
  EstimatorServiceParams ep;
  ep.window = 50.0;
  ep.refresh = 5.0;
  ep.max_staleness = 10.0;
  ConcurrencyEstimatorService service(sim, system, warehouse, ep);

  // Feed one synthetic fine-grained sample per second to every app server.
  for (int k = 0; k < 60; ++k) {
    sim.schedule_at(k + 0.5, [this, k] {
      IntervalSample s;
      s.t_end = k + 0.5;
      s.concurrency = 4.0;
      s.throughput = 100.0;
      for (Server* server : system.tier(1).running_servers()) {
        warehouse.record_server(server->name(), s);
      }
    });
  }

  // Two blackouts: 8 s (< max_staleness, must not trip the guard) and 15 s
  // (staleness reaches 10.5 s at the t=50 refresh, must trip it).
  FaultInjector injector = make("drop t=20 dur=8; drop t=40 dur=15",
                                &warehouse);
  injector.arm();

  sim.run_until(35.0);
  EXPECT_EQ(service.stale_skip_count(), 0u);
  sim.run_until(56.0);
  EXPECT_GE(service.stale_skip_count(), 1u);
  const std::uint64_t skips_during = service.stale_skip_count();
  // Ingestion resumed at t=55: fresh samples end the hold.
  sim.run_until(60.0);
  EXPECT_EQ(service.stale_skip_count(), skips_during);
}

// ---- end-to-end determinism ----------------------------------------------

ScenarioParams quick_params() {
  ScenarioParams p = ScenarioParams::paper_default();
  p.work_scale = 16.0;
  p.seed = 99;
  return p;
}

TEST(FaultRuns, EmptyPlanMatchesFaultFreeRunExactly) {
  ScalingRunOptions plain;
  plain.duration = 45.0;
  ScalingRunOptions with_empty_plan = plain;
  with_empty_plan.faults = FaultPlan::parse("# no events\n");
  const auto a = run_scaling(quick_params(), TraceKind::kDualPhase,
                             "conscale", plain);
  const auto b = run_scaling(quick_params(), TraceKind::kDualPhase,
                             "conscale", with_empty_plan);
  std::string diff;
  EXPECT_TRUE(results_equivalent(a, b, &diff)) << diff;
  EXPECT_TRUE(b.fault_plan_text.empty());
  EXPECT_EQ(b.requests_aborted, 0u);
}

TEST(FaultRuns, CrashRunPopulatesFaultOutcome) {
  ScalingRunOptions options;
  options.duration = 60.0;
  options.faults =
      FaultPlan::parse("crash t=20 tier=app vm=0 restart=10");
  const auto result = run_scaling(quick_params(), TraceKind::kDualPhase,
                                  "conscale", options);
  EXPECT_EQ(result.fault_stats.crashes_injected, 1u);
  EXPECT_FALSE(result.fault_plan_text.empty());
  ASSERT_EQ(result.fault_windows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.fault_windows[0].start, 20.0);
  EXPECT_DOUBLE_EQ(result.fault_windows[0].end, 30.0);
  EXPECT_GT(result.requests_completed, 0u);
}

TEST(FaultRuns, DropoutRunCountsDroppedSamples) {
  ScalingRunOptions options;
  options.duration = 60.0;
  options.faults = FaultPlan::parse("drop t=20 dur=10");
  const auto result = run_scaling(quick_params(), TraceKind::kDualPhase,
                                  "conscale", options);
  EXPECT_EQ(result.fault_stats.dropout_windows, 1u);
  EXPECT_GT(result.dropped_samples, 0u);
}

TEST(FaultRuns, FaultedRunsAreDeterministicUnderParallelFanOut) {
  RunSpec spec;
  spec.params = quick_params();
  spec.trace = TraceKind::kBigSpike;
  spec.framework = "conscale";
  spec.options.duration = 45.0;
  spec.options.faults = FaultPlan::parse(
      "crash t=15 tier=app vm=0 restart=8\n"
      "cpu t=25 dur=10 tier=db vm=all factor=0.5\n"
      "drop t=30 dur=5\n");
  RunSetOptions rs;
  rs.jobs = 2;
  rs.deterministic = true;  // serial re-run must be bit-identical
  const auto results = RunSet(rs).run({spec, spec});
  ASSERT_EQ(results.size(), 2u);
  std::string diff;
  EXPECT_TRUE(results_equivalent(results[0], results[1], &diff)) << diff;
  EXPECT_EQ(results[0].fault_stats.crashes_injected, 1u);
}

}  // namespace
}  // namespace conscale
