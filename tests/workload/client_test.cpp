#include "workload/client.h"
#include <vector>

#include <gtest/gtest.h>

namespace conscale {
namespace {

RequestMix trivial_mix() {
  RequestClass c;
  c.name = "only";
  c.weight = 1.0;
  c.tiers.resize(3);
  return RequestMix({c});
}

// An instant-response "system": completes every request immediately.
ClientPopulation::SubmitFn instant_system() {
  return [](const RequestContext&, std::function<void()> done) { done(); };
}

// A system that responds after a fixed delay.
ClientPopulation::SubmitFn delayed_system(Simulation& sim, double delay) {
  return [&sim, delay](const RequestContext&, std::function<void()> done) {
    sim.schedule_after(delay, std::move(done));
  };
}

TEST(ClientPopulation, TracksConstantTrace) {
  Simulation sim;
  const WorkloadTrace trace = make_constant_trace(25.0, 100.0);
  const RequestMix mix = trivial_mix();
  ClientPopulation::Params params;
  params.think_time_mean = 1.0;
  ClientPopulation clients(sim, trace, mix, instant_system(), params);
  sim.run_until(10.0);
  EXPECT_EQ(clients.active_users(), 25u);
}

TEST(ClientPopulation, FollowsRampUpAndDown) {
  Simulation sim;
  const WorkloadTrace trace = make_ramp_trace(0.0, 100.0, 100.0);
  const RequestMix mix = trivial_mix();
  ClientPopulation::Params params;
  params.think_time_mean = 0.05;  // fast cycles so retirement is prompt
  params.adjust_period = 0.5;
  ClientPopulation clients(sim, trace, mix, instant_system(), params);
  sim.run_until(50.0);
  EXPECT_NEAR(static_cast<double>(clients.active_users()), 100.0, 6.0);
  sim.run_until(99.5);
  EXPECT_LT(clients.active_users(), 12u);
}

TEST(ClientPopulation, ZeroThinkTimeKeepsUsersBusy) {
  Simulation sim;
  const WorkloadTrace trace = make_constant_trace(10.0, 50.0);
  const RequestMix mix = trivial_mix();
  ClientPopulation::Params params;
  params.think_time_mean = 0.0;
  // With instant responses and zero think, users loop as fast as the event
  // queue allows — bound the run by time, not events.
  ClientPopulation clients(sim, trace, mix, delayed_system(sim, 0.01),
                           params);
  sim.run_until(10.0);
  // 10 users each completing one request per 10 ms -> ~1000 req/s.
  EXPECT_NEAR(static_cast<double>(clients.requests_completed()), 10000.0,
              500.0);
}

TEST(ClientPopulation, CompletionHookObservesResponseTimes) {
  Simulation sim;
  const WorkloadTrace trace = make_constant_trace(5.0, 20.0);
  const RequestMix mix = trivial_mix();
  ClientPopulation::Params params;
  params.think_time_mean = 0.5;
  ClientPopulation clients(sim, trace, mix, delayed_system(sim, 0.2), params);
  int hook_calls = 0;
  clients.set_completion_hook(
      [&](SimTime, double rt, const RequestClass& cls) {
        ++hook_calls;
        EXPECT_NEAR(rt, 0.2, 1e-9);
        EXPECT_EQ(cls.name, "only");
      });
  sim.run_until(20.0);
  EXPECT_GT(hook_calls, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(hook_calls),
            clients.requests_completed());
}

TEST(ClientPopulation, HistogramMatchesCompletions) {
  Simulation sim;
  const WorkloadTrace trace = make_constant_trace(8.0, 30.0);
  const RequestMix mix = trivial_mix();
  ClientPopulation::Params params;
  params.think_time_mean = 0.3;
  ClientPopulation clients(sim, trace, mix, delayed_system(sim, 0.05),
                           params);
  sim.run_until(30.0);
  EXPECT_EQ(clients.response_times().total(), clients.requests_completed());
  EXPECT_NEAR(clients.response_times().mean(), 0.05, 0.005);
}

TEST(ClientPopulation, IssuedAtLeastCompleted) {
  Simulation sim;
  const WorkloadTrace trace = make_constant_trace(20.0, 10.0);
  const RequestMix mix = trivial_mix();
  ClientPopulation::Params params;
  ClientPopulation clients(sim, trace, mix, delayed_system(sim, 0.5), params);
  sim.run_until(10.0);
  EXPECT_GE(clients.requests_issued(), clients.requests_completed());
  EXPECT_LE(clients.requests_issued() - clients.requests_completed(), 21u);
}

TEST(ClientPopulation, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulation sim;
    const WorkloadTrace trace = make_constant_trace(15.0, 30.0);
    const RequestMix mix = trivial_mix();
    ClientPopulation::Params params;
    params.seed = 4242;
    ClientPopulation clients(sim, trace, mix, delayed_system(sim, 0.1),
                             params);
    sim.run_until(30.0);
    return clients.requests_completed();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ClientPopulation, PopulationShrinksToZero) {
  Simulation sim;
  // Step down to zero halfway through.
  std::vector<double> samples(101, 50.0);
  for (std::size_t i = 50; i < samples.size(); ++i) samples[i] = 0.0;
  const WorkloadTrace trace("step", 1.0, std::move(samples));
  const RequestMix mix = trivial_mix();
  ClientPopulation::Params params;
  params.think_time_mean = 0.2;
  ClientPopulation clients(sim, trace, mix, instant_system(), params);
  sim.run_until(49.0);
  EXPECT_GT(clients.active_users(), 0u);
  sim.run_until(70.0);
  EXPECT_EQ(clients.active_users(), 0u);
}

}  // namespace
}  // namespace conscale
