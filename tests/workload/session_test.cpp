#include "workload/session.h"
#include "workload/session_population.h"

#include <gtest/gtest.h>

namespace conscale {
namespace {

SessionModel two_state_model() {
  SessionModel::State a;
  a.name = "a";
  a.class_index = 0;
  a.think_mean = 0.1;
  a.transitions = {0.0, 1.0};  // a -> b always
  a.exit_weight = 0.0;
  SessionModel::State b;
  b.name = "b";
  b.class_index = 1;
  b.think_mean = 0.1;
  b.transitions = {0.0, 0.0};
  b.exit_weight = 1.0;  // b always exits
  return SessionModel({a, b}, {1.0, 0.0});
}

TEST(SessionModel, RejectsMalformedChains) {
  SessionModel::State s;
  s.transitions = {0.0};
  s.exit_weight = 0.0;  // absorbing without exit
  EXPECT_THROW(SessionModel({s}, {1.0}), std::invalid_argument);
  SessionModel::State ok = s;
  ok.exit_weight = 1.0;
  EXPECT_THROW(SessionModel({ok}, {}), std::invalid_argument);    // shape
  EXPECT_THROW(SessionModel({ok}, {0.0}), std::invalid_argument);  // zero entry
  EXPECT_THROW(SessionModel({}, {}), std::invalid_argument);
}

TEST(SessionModel, DeterministicChainWalk) {
  const SessionModel model = two_state_model();
  Rng rng(1);
  EXPECT_EQ(model.pick_entry(rng), 0u);
  const auto next = model.next(0, rng);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 1u);
  EXPECT_FALSE(model.next(1, rng).has_value());  // b always exits
}

TEST(SessionModel, ExpectedLengthOfDeterministicChain) {
  // a -> b -> exit: exactly two requests per session.
  EXPECT_NEAR(two_state_model().expected_session_length(), 2.0, 1e-9);
}

TEST(SessionModel, ExpectedLengthOfGeometricChain) {
  // Single state repeating w.p. 3/4: mean length = 4.
  SessionModel::State s;
  s.name = "loop";
  s.transitions = {3.0};
  s.exit_weight = 1.0;
  const SessionModel model({s}, {1.0});
  EXPECT_NEAR(model.expected_session_length(), 4.0, 1e-9);
}

TEST(SessionModel, VisitFractionsSumToOne) {
  const RequestMix mix = make_browse_only_mix(MixParams{});
  const SessionModel model = SessionModel::rubbos_browse(mix);
  const auto fractions = model.visit_fractions();
  double total = 0.0;
  for (double f : fractions) {
    EXPECT_GE(f, 0.0);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Browsing states dominate; search is the rare expensive one.
  EXPECT_LT(fractions[3], 0.2);
  EXPECT_GT(fractions[1], 0.3);  // ViewStory is the hub
}

TEST(SessionModel, RubbosSessionLengthIsModerate) {
  const RequestMix mix = make_browse_only_mix(MixParams{});
  const SessionModel model = SessionModel::rubbos_browse(mix);
  const double length = model.expected_session_length();
  EXPECT_GT(length, 3.0);
  EXPECT_LT(length, 20.0);
}

TEST(SessionModel, EmpiricalVisitsMatchAnalyticalFractions) {
  const RequestMix mix = make_browse_only_mix(MixParams{});
  const SessionModel model = SessionModel::rubbos_browse(mix);
  Rng rng(99);
  std::vector<int> counts(model.states().size(), 0);
  int total = 0;
  for (int session = 0; session < 20000; ++session) {
    std::optional<std::size_t> state = model.pick_entry(rng);
    while (state) {
      ++counts[*state];
      ++total;
      state = model.next(*state, rng);
    }
  }
  const auto fractions = model.visit_fractions();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / total, fractions[i], 0.01)
        << model.states()[i].name;
  }
}

TEST(SessionPopulation, DrivesRequestsThroughStates) {
  Simulation sim;
  const RequestMix mix = make_browse_only_mix(MixParams{});
  const SessionModel model = SessionModel::rubbos_browse(mix);
  const WorkloadTrace trace = make_constant_trace(30.0, 60.0);
  SessionPopulation::Params params;
  params.inter_session_gap_mean = 0.5;
  SessionPopulation clients(
      sim, trace, mix, model,
      [&sim](const RequestContext&, std::function<void()> done) {
        sim.schedule_after(0.01, std::move(done));
      },
      params);
  sim.run_until(60.0);
  EXPECT_EQ(clients.active_users(), 30u);
  EXPECT_GT(clients.requests_completed(), 200u);
  EXPECT_GT(clients.sessions_finished(), 20u);
  EXPECT_GE(clients.sessions_started(), clients.sessions_finished());
  // All four states were exercised.
  EXPECT_EQ(clients.per_state_completions().size(), 4u);
  EXPECT_EQ(clients.response_times().total(), clients.requests_completed());
}

TEST(SessionPopulation, TracksShrinkingTrace) {
  Simulation sim;
  const RequestMix mix = make_browse_only_mix(MixParams{});
  const SessionModel model = SessionModel::rubbos_browse(mix);
  std::vector<double> samples(121, 40.0);
  for (std::size_t i = 60; i < samples.size(); ++i) samples[i] = 5.0;
  const WorkloadTrace trace("step", 1.0, std::move(samples));
  SessionPopulation::Params params;
  params.inter_session_gap_mean = 0.2;
  SessionPopulation clients(
      sim, trace, mix, model,
      [&sim](const RequestContext&, std::function<void()> done) {
        sim.schedule_after(0.005, std::move(done));
      },
      params);
  sim.run_until(59.0);
  EXPECT_EQ(clients.active_users(), 40u);
  sim.run_until(120.0);
  EXPECT_LE(clients.active_users(), 8u);
}

TEST(SessionPopulation, DeterministicWithSeed) {
  auto run_once = [] {
    Simulation sim;
    const RequestMix mix = make_browse_only_mix(MixParams{});
    const SessionModel model = SessionModel::rubbos_browse(mix);
    const WorkloadTrace trace = make_constant_trace(15.0, 30.0);
    SessionPopulation::Params params;
    params.seed = 77;
    SessionPopulation clients(
        sim, trace, mix, model,
        [&sim](const RequestContext&, std::function<void()> done) {
          sim.schedule_after(0.01, std::move(done));
        },
        params);
    sim.run_until(30.0);
    return clients.requests_completed();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace conscale
