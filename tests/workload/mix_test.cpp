#include "workload/mix.h"

#include <map>

#include <gtest/gtest.h>

namespace conscale {
namespace {

RequestClass simple_class(const std::string& name, double weight) {
  RequestClass c;
  c.name = name;
  c.weight = weight;
  c.tiers.resize(3);
  return c;
}

TEST(RequestMix, PickRespectsWeights) {
  RequestMix mix({simple_class("a", 3.0), simple_class("b", 1.0)});
  Rng rng(21);
  std::map<std::string, int> counts;
  for (int i = 0; i < 40000; ++i) ++counts[mix.pick(rng).name];
  EXPECT_NEAR(counts["a"] / 40000.0, 0.75, 0.02);
  EXPECT_NEAR(counts["b"] / 40000.0, 0.25, 0.02);
}

TEST(RequestMix, ZeroWeightClassNeverPicked) {
  RequestMix mix({simple_class("never", 0.0), simple_class("always", 1.0)});
  Rng rng(22);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(mix.pick(rng).name, "always");
}

TEST(RequestMix, NegativeWeightThrows) {
  EXPECT_THROW(RequestMix({simple_class("x", -1.0)}), std::invalid_argument);
}

TEST(RequestMix, AllZeroWeightsThrow) {
  EXPECT_THROW(RequestMix({simple_class("x", 0.0)}), std::invalid_argument);
}

TEST(RequestMix, DatasetScaleAffectsAppPostCpu) {
  RequestMix mix = make_browse_only_mix(MixParams{});
  const double before = mix.classes()[0].tiers[1].cpu_post;
  mix.apply_dataset_scale(2.0);
  EXPECT_NEAR(mix.classes()[0].tiers[1].cpu_post, 2.0 * before, 1e-12);
  EXPECT_DOUBLE_EQ(mix.dataset_scale(), 2.0);
  // Scaling is absolute, not compounding: 2.0 then 1.0 restores original.
  mix.apply_dataset_scale(1.0);
  EXPECT_NEAR(mix.classes()[0].tiers[1].cpu_post, before, 1e-12);
}

TEST(RequestMix, DatasetScaleRejectsNonPositive) {
  RequestMix mix = make_browse_only_mix(MixParams{});
  EXPECT_THROW(mix.apply_dataset_scale(0.0), std::invalid_argument);
  EXPECT_THROW(mix.apply_dataset_scale(-1.0), std::invalid_argument);
}

TEST(BrowseOnlyMix, StructureMatchesThreeTiers) {
  const RequestMix mix = make_browse_only_mix(MixParams{});
  ASSERT_FALSE(mix.empty());
  for (const auto& c : mix.classes()) {
    ASSERT_EQ(c.tiers.size(), 3u) << c.name;
    EXPECT_FALSE(c.is_write) << c.name;
    EXPECT_EQ(c.tiers[0].downstream_calls, 1) << c.name;
    EXPECT_GT(c.tiers[1].downstream_calls, 0) << c.name;
    EXPECT_EQ(c.tiers[2].downstream_calls, 0) << c.name;
    // Browse-only mode is CPU-bound at the DB: no disk demand.
    EXPECT_DOUBLE_EQ(c.tiers[2].disk, 0.0) << c.name;
    EXPECT_GT(c.tiers[2].cpu_pre, 0.0) << c.name;
  }
}

TEST(ReadWriteMix, DiskIsTheCriticalResource) {
  const RequestMix mix = make_read_write_mix(MixParams{});
  double disk_weight = 0.0, total_weight = 0.0;
  bool has_write = false;
  for (const auto& c : mix.classes()) {
    total_weight += c.weight;
    if (c.tiers[2].disk > 0.0) disk_weight += c.weight;
    has_write |= c.is_write;
  }
  EXPECT_TRUE(has_write);
  // Every class touches the disk in I/O-intensive mode (uncached reads).
  EXPECT_DOUBLE_EQ(disk_weight, total_weight);
}

TEST(MixParams, WorkScaleMultipliesDemands) {
  MixParams base;
  MixParams scaled = base;
  scaled.work_scale = 4.0;
  const RequestMix m1 = make_browse_only_mix(base);
  const RequestMix m2 = make_browse_only_mix(scaled);
  for (std::size_t i = 0; i < m1.classes().size(); ++i) {
    for (std::size_t t = 0; t < 3; ++t) {
      EXPECT_NEAR(m2.classes()[i].tiers[t].cpu_pre,
                  4.0 * m1.classes()[i].tiers[t].cpu_pre, 1e-12);
      EXPECT_NEAR(m2.classes()[i].tiers[t].pure_delay,
                  4.0 * m1.classes()[i].tiers[t].pure_delay, 1e-12);
    }
  }
}

TEST(MixParams, WorkScalePreservesDemandRatios) {
  // The concurrency optimum depends only on (cpu + delay + wait) / cpu, so
  // work_scale must not change any demand ratio.
  MixParams base;
  MixParams scaled = base;
  scaled.work_scale = 8.0;
  const RequestMix mix_a = make_browse_only_mix(base);
  const RequestMix mix_b = make_browse_only_mix(scaled);
  const RequestClass& a = mix_a.classes()[0];
  const RequestClass& b = mix_b.classes()[0];
  const double ratio_a = a.tiers[1].pure_delay / a.tiers[1].total_cpu();
  const double ratio_b = b.tiers[1].pure_delay / b.tiers[1].total_cpu();
  EXPECT_NEAR(ratio_a, ratio_b, 1e-9);
}

TEST(PhaseDemand, TotalCpu) {
  PhaseDemand d;
  d.cpu_pre = 1.0;
  d.cpu_post = 2.0;
  EXPECT_DOUBLE_EQ(d.total_cpu(), 3.0);
}

}  // namespace
}  // namespace conscale
