#include "workload/trace.h"

#include <gtest/gtest.h>

namespace conscale {
namespace {

TraceParams default_params() {
  TraceParams p;
  p.duration = 720.0;
  p.max_users = 7500.0;
  p.noise_fraction = 0.0;  // deterministic shape for assertions
  return p;
}

class AllTraceKinds : public ::testing::TestWithParam<TraceKind> {};

TEST_P(AllTraceKinds, PeaksAtMaxUsers) {
  const WorkloadTrace trace = make_trace(GetParam(), default_params());
  EXPECT_NEAR(trace.peak_users(), 7500.0, 1.0);
}

TEST_P(AllTraceKinds, StaysWithinBounds) {
  TraceParams p = default_params();
  p.noise_fraction = 0.05;
  const WorkloadTrace trace = make_trace(GetParam(), p);
  for (double users : trace.samples()) {
    EXPECT_GE(users, 0.0);
    EXPECT_LE(users, p.max_users * 1.05);
  }
}

TEST_P(AllTraceKinds, StartsWellBelowPeak) {
  // Every run begins with a 1/1/1 topology; the traces must not open at
  // full burst (the paper's Fig 9 shapes all ramp in).
  const WorkloadTrace trace = make_trace(GetParam(), default_params());
  EXPECT_LT(trace.samples().front(), 0.55 * trace.peak_users());
}

TEST_P(AllTraceKinds, RespectsFloorFraction) {
  const TraceParams p = default_params();
  const WorkloadTrace trace = make_trace(GetParam(), p);
  for (double users : trace.samples()) {
    EXPECT_GE(users, p.min_users_fraction * p.max_users * 0.99);
  }
}

TEST_P(AllTraceKinds, DurationMatches) {
  const WorkloadTrace trace = make_trace(GetParam(), default_params());
  EXPECT_NEAR(trace.duration(), 720.0, 1.0);
}

TEST_P(AllTraceKinds, HasMeaningfulVariation) {
  const WorkloadTrace trace = make_trace(GetParam(), default_params());
  double lo = 1e18, hi = 0.0;
  for (double users : trace.samples()) {
    lo = std::min(lo, users);
    hi = std::max(hi, users);
  }
  EXPECT_GT(hi, 2.0 * lo) << "bursty traces should at least double";
}

TEST_P(AllTraceKinds, DeterministicForSameSeed) {
  const WorkloadTrace a = make_trace(GetParam(), default_params());
  const WorkloadTrace b = make_trace(GetParam(), default_params());
  EXPECT_EQ(a.samples(), b.samples());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllTraceKinds, ::testing::ValuesIn(all_trace_kinds()),
    [](const ::testing::TestParamInfo<TraceKind>& param_info) {
      return to_string(param_info.param);
    });

TEST(WorkloadTrace, InterpolatesBetweenSamples) {
  const WorkloadTrace trace("t", 1.0, {0.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(trace.users_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.users_at(0.5), 5.0);
  EXPECT_DOUBLE_EQ(trace.users_at(1.5), 15.0);
  EXPECT_DOUBLE_EQ(trace.users_at(2.0), 20.0);
}

TEST(WorkloadTrace, ClampsOutsideRange) {
  const WorkloadTrace trace("t", 1.0, {5.0, 10.0});
  EXPECT_DOUBLE_EQ(trace.users_at(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(trace.users_at(100.0), 10.0);
}

TEST(WorkloadTrace, RejectsDegenerateConstruction) {
  EXPECT_THROW(WorkloadTrace("t", 1.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(WorkloadTrace("t", 0.0, {1.0, 2.0}), std::invalid_argument);
}

TEST(ConstantTrace, IsFlat) {
  const WorkloadTrace trace = make_constant_trace(42.0, 100.0);
  EXPECT_DOUBLE_EQ(trace.users_at(0.0), 42.0);
  EXPECT_DOUBLE_EQ(trace.users_at(50.0), 42.0);
  EXPECT_DOUBLE_EQ(trace.users_at(100.0), 42.0);
}

TEST(RampTrace, TriangleShape) {
  const WorkloadTrace trace = make_ramp_trace(10.0, 110.0, 100.0);
  EXPECT_NEAR(trace.users_at(0.0), 10.0, 1e-9);
  EXPECT_NEAR(trace.users_at(50.0), 110.0, 3.0);
  EXPECT_NEAR(trace.users_at(100.0), 10.0, 1e-9);
  // Monotone on the way up.
  EXPECT_LT(trace.users_at(10.0), trace.users_at(30.0));
  // Monotone on the way down.
  EXPECT_GT(trace.users_at(60.0), trace.users_at(90.0));
}

TEST(TraceKindNames, RoundTripStrings) {
  EXPECT_EQ(to_string(TraceKind::kLargeVariations), "large_variations");
  EXPECT_EQ(to_string(TraceKind::kBigSpike), "big_spike");
  EXPECT_EQ(all_trace_kinds().size(), 6u);
}

}  // namespace
}  // namespace conscale
