#include "workload/trace_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace conscale {
namespace {

std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem;
}

TEST(TraceIo, SaveLoadRoundTrip) {
  TraceParams params;
  params.duration = 120.0;
  params.noise_fraction = 0.0;
  const WorkloadTrace original = make_trace(TraceKind::kBigSpike, params);
  const std::string path = temp_path("trace_roundtrip.csv");
  save_trace_csv(original, path);
  const WorkloadTrace loaded = load_trace_csv(path, "copy");
  EXPECT_EQ(loaded.name(), "copy");
  EXPECT_DOUBLE_EQ(loaded.sample_period(), original.sample_period());
  ASSERT_EQ(loaded.samples().size(), original.samples().size());
  for (std::size_t i = 0; i < loaded.samples().size(); ++i) {
    EXPECT_NEAR(loaded.samples()[i], original.samples()[i],
                1e-4 * original.samples()[i] + 1e-6);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsMalformedFiles) {
  EXPECT_THROW(load_trace_csv("/no/such/trace.csv"), std::runtime_error);

  const std::string path = temp_path("bad_trace.csv");
  {
    std::ofstream out(path);
    out << "t,users\n0,100\n1,200\nnot,numeric\n";
  }
  EXPECT_THROW(load_trace_csv(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "t,users\n0,100\n";  // single sample
  }
  EXPECT_THROW(load_trace_csv(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "t,users\n0,100\n1,200\n5,300\n";  // uneven spacing
  }
  EXPECT_THROW(load_trace_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, ScaleUsersMultiplies) {
  const WorkloadTrace base = make_constant_trace(100.0, 10.0);
  const WorkloadTrace scaled = scale_users(base, 2.5);
  EXPECT_DOUBLE_EQ(scaled.users_at(5.0), 250.0);
  EXPECT_DOUBLE_EQ(scaled.sample_period(), base.sample_period());
}

TEST(TraceIo, NormalizePeakHitsTarget) {
  TraceParams params;
  params.noise_fraction = 0.0;
  const WorkloadTrace base = make_trace(TraceKind::kDualPhase, params);
  const WorkloadTrace normalized = normalize_peak(base, 1234.0);
  EXPECT_NEAR(normalized.peak_users(), 1234.0, 1e-6);
  EXPECT_THROW(
      normalize_peak(make_constant_trace(0.0, 10.0), 100.0),
      std::invalid_argument);
}

TEST(TraceIo, StretchTimeChangesDurationOnly) {
  const WorkloadTrace base = make_ramp_trace(0.0, 100.0, 100.0);
  const WorkloadTrace slow = stretch_time(base, 2.0);
  EXPECT_NEAR(slow.duration(), 2.0 * base.duration(), 1e-9);
  EXPECT_NEAR(slow.peak_users(), base.peak_users(), 1e-9);
  // Shape preserved: the peak is still halfway through.
  EXPECT_NEAR(slow.users_at(slow.duration() / 2.0), 100.0, 3.0);
  EXPECT_THROW(stretch_time(base, 0.0), std::invalid_argument);
}

TEST(TraceIo, ConcatPlaysBackToBack) {
  const WorkloadTrace low = make_constant_trace(10.0, 50.0);
  const WorkloadTrace high = make_constant_trace(90.0, 50.0);
  const WorkloadTrace both = concat(low, high);
  EXPECT_DOUBLE_EQ(both.users_at(10.0), 10.0);
  EXPECT_DOUBLE_EQ(both.users_at(both.duration() - 5.0), 90.0);
  EXPECT_GT(both.samples().size(), low.samples().size());
  const WorkloadTrace mismatched("x", 2.0, {1.0, 2.0});
  EXPECT_THROW(concat(low, mismatched), std::invalid_argument);
}

TEST(TraceIo, AddNoiseIsDeterministicAndNonNegative) {
  const WorkloadTrace base = make_constant_trace(100.0, 60.0);
  const WorkloadTrace a = add_noise(base, 0.1, 42);
  const WorkloadTrace b = add_noise(base, 0.1, 42);
  EXPECT_EQ(a.samples(), b.samples());
  bool any_different = false;
  double mean = 0.0;
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_GE(a.samples()[i], 0.0);
    any_different |= a.samples()[i] != base.samples()[i];
    mean += a.samples()[i];
  }
  mean /= static_cast<double>(a.samples().size());
  EXPECT_TRUE(any_different);
  EXPECT_NEAR(mean, 100.0, 5.0);  // unbiased jitter
}

TEST(TraceIo, ClampBoundsEverySample) {
  const WorkloadTrace base = make_ramp_trace(0.0, 100.0, 100.0);
  const WorkloadTrace clamped = clamp_users(base, 20.0, 80.0);
  for (double s : clamped.samples()) {
    EXPECT_GE(s, 20.0);
    EXPECT_LE(s, 80.0);
  }
}

TEST(TraceIo, TransformsCompose) {
  // A realistic pipeline: load a recorded shape, normalize, stretch, jitter.
  TraceParams params;
  params.noise_fraction = 0.0;
  const WorkloadTrace recorded = make_trace(TraceKind::kBigSpike, params);
  const std::string path = temp_path("composed.csv");
  save_trace_csv(recorded, path);
  const WorkloadTrace ready = add_noise(
      stretch_time(normalize_peak(load_trace_csv(path), 5000.0), 0.5), 0.02,
      7);
  EXPECT_NEAR(ready.peak_users(), 5000.0, 400.0);
  EXPECT_NEAR(ready.duration(), recorded.duration() / 2.0, 1.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace conscale
