#include "workload/open_loop.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace conscale {
namespace {

RequestMix trivial_mix() {
  RequestClass c;
  c.name = "only";
  c.weight = 1.0;
  c.tiers.resize(1);
  return RequestMix({c});
}

OpenLoopGenerator::SubmitFn instant() {
  return [](const RequestContext&, std::function<void()> done) { done(); };
}

TEST(OpenLoop, ConstantRateArrivalCount) {
  Simulation sim;
  const WorkloadTrace rate = make_constant_trace(200.0, 100.0);
  const RequestMix mix = trivial_mix();
  OpenLoopGenerator gen(sim, rate, mix, instant(), {});
  sim.run_until(100.0);
  // Poisson(200 * 100): mean 20000, sd ~141.
  EXPECT_NEAR(static_cast<double>(gen.requests_issued()), 20000.0, 600.0);
  EXPECT_EQ(gen.requests_issued(), gen.requests_completed());
}

TEST(OpenLoop, InterArrivalsAreExponential) {
  Simulation sim;
  const WorkloadTrace rate = make_constant_trace(100.0, 200.0);
  const RequestMix mix = trivial_mix();
  std::vector<double> arrivals;
  OpenLoopGenerator gen(
      sim, rate, mix,
      [&](const RequestContext&, std::function<void()> done) {
        arrivals.push_back(sim.now());
        done();
      },
      {});
  sim.run_until(200.0);
  RunningStats gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.add(arrivals[i] - arrivals[i - 1]);
  }
  // Exponential(rate 100): mean = sd = 0.01.
  EXPECT_NEAR(gaps.mean(), 0.01, 0.001);
  EXPECT_NEAR(gaps.stddev(), 0.01, 0.001);
}

TEST(OpenLoop, TimeVaryingRateFollowsTrace) {
  Simulation sim;
  // 50 req/s for the first half, 400 req/s for the second.
  std::vector<double> samples(201, 50.0);
  for (std::size_t i = 100; i < samples.size(); ++i) samples[i] = 400.0;
  const WorkloadTrace rate("step", 1.0, std::move(samples));
  const RequestMix mix = trivial_mix();
  std::uint64_t first_half = 0, second_half = 0;
  OpenLoopGenerator gen(
      sim, rate, mix,
      [&](const RequestContext&, std::function<void()> done) {
        (sim.now() < 100.0 ? first_half : second_half) += 1;
        done();
      },
      {});
  sim.run_until(200.0);
  EXPECT_NEAR(static_cast<double>(first_half), 5000.0, 400.0);
  EXPECT_NEAR(static_cast<double>(second_half), 40000.0, 1200.0);
}

TEST(OpenLoop, StopsAtTraceEnd) {
  Simulation sim;
  const WorkloadTrace rate = make_constant_trace(100.0, 10.0);
  const RequestMix mix = trivial_mix();
  OpenLoopGenerator gen(sim, rate, mix, instant(), {});
  sim.run_until(100.0);
  const auto at_end = gen.requests_issued();
  sim.run_until(200.0);
  EXPECT_EQ(gen.requests_issued(), at_end);
  EXPECT_NEAR(static_cast<double>(at_end), 1000.0, 150.0);
}

TEST(OpenLoop, StopCancelsFutureArrivals) {
  Simulation sim;
  const WorkloadTrace rate = make_constant_trace(1000.0, 100.0);
  const RequestMix mix = trivial_mix();
  OpenLoopGenerator gen(sim, rate, mix, instant(), {});
  sim.run_until(1.0);
  gen.stop();
  const auto at_stop = gen.requests_issued();
  sim.run_until(50.0);
  EXPECT_EQ(gen.requests_issued(), at_stop);
}

TEST(OpenLoop, DeterministicWithSeed) {
  auto run_once = [] {
    Simulation sim;
    const WorkloadTrace rate = make_constant_trace(500.0, 20.0);
    const RequestMix mix = trivial_mix();
    OpenLoopGenerator::Params p;
    p.seed = 99;
    OpenLoopGenerator gen(sim, rate, mix, instant(), p);
    sim.run_until(20.0);
    return gen.requests_issued();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(OpenLoop, ZeroRateIssuesNothing) {
  Simulation sim;
  const WorkloadTrace rate = make_constant_trace(0.0, 10.0);
  const RequestMix mix = trivial_mix();
  OpenLoopGenerator gen(sim, rate, mix, instant(), {});
  sim.run_until(10.0);
  EXPECT_EQ(gen.requests_issued(), 0u);
}

}  // namespace
}  // namespace conscale
