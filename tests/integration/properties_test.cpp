// System-wide property tests: conservation, determinism, and monotonicity
// invariants that must hold for any configuration.
#include <gtest/gtest.h>

#include "experiments/runner.h"
#include "workload/client.h"

namespace conscale {
namespace {

ScenarioParams fast_params(std::uint64_t seed = 1) {
  ScenarioParams p = ScenarioParams::paper_default();
  p.work_scale = 16.0;
  p.seed = seed;
  return p;
}

TEST(Properties, RequestConservationUnderLoad) {
  // issued = completed + in-flight at any stopping point.
  ScenarioParams params = fast_params();
  Simulation sim;
  RequestMix mix = params.make_mix();
  NTierSystem system(sim, params.system_config());
  const WorkloadTrace trace = make_constant_trace(80.0, 60.0);
  ClientPopulation::Params cp;
  cp.think_time_mean = 0.5;
  ClientPopulation clients(
      sim, trace, mix,
      [&system](const RequestContext& ctx, std::function<void()> done) {
        system.submit(ctx, std::move(done));
      },
      cp);
  sim.run_until(30.0);
  std::size_t in_flight = 0;
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    for (Vm* vm : system.tier(i).all_vms()) {
      in_flight += vm->server().in_flight();
    }
  }
  // Web-tier in-flight equals client-visible outstanding (each request is in
  // exactly one web-server visit end-to-end).
  std::size_t web_in_flight = 0;
  for (Vm* vm : system.tier(0).all_vms()) {
    web_in_flight += vm->server().in_flight();
  }
  EXPECT_EQ(clients.requests_issued() - clients.requests_completed(),
            web_in_flight);
}

TEST(Properties, DeterministicScalingRuns) {
  // Bit-for-bit reproducibility: identical seeds give identical results.
  ScalingRunOptions options;
  options.duration = 120.0;
  const auto a = run_scaling(fast_params(33), TraceKind::kBigSpike,
                             "conscale", options);
  const auto b = run_scaling(fast_params(33), TraceKind::kBigSpike,
                             "conscale", options);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events[i].t, b.events[i].t);
    EXPECT_EQ(a.events[i].action, b.events[i].action);
  }
}

TEST(Properties, DifferentSeedsDiverge) {
  ScalingRunOptions options;
  options.duration = 120.0;
  const auto a = run_scaling(fast_params(1), TraceKind::kBigSpike,
                             "ec2", options);
  const auto b = run_scaling(fast_params(2), TraceKind::kBigSpike,
                             "ec2", options);
  EXPECT_NE(a.requests_completed, b.requests_completed);
}

TEST(Properties, MoreHardwareNeverHurtsThroughputMuch) {
  // A 1/2/2 system must complete at least as much as 1/1/1 under the same
  // saturating load (weak monotonicity; small tolerance for stochastic
  // variation).
  auto run_with = [](std::size_t app, std::size_t db) {
    ScenarioParams p = fast_params(77);
    p.app_init = p.app_min = p.app_max = app;
    p.db_init = p.db_min = p.db_max = db;
    p.web_max = 1;
    Simulation sim;
    RequestMix mix = p.make_mix();
    NTierSystem system(sim, p.system_config());
    const WorkloadTrace trace = make_constant_trace(150.0, 60.0);
    ClientPopulation::Params cp;
    cp.think_time_mean = 0.0;
    ClientPopulation clients(
        sim, trace, mix,
        [&system](const RequestContext& ctx, std::function<void()> done) {
          system.submit(ctx, std::move(done));
        },
        cp);
    sim.run_until(60.0);
    return clients.requests_completed();
  };
  const auto small = run_with(1, 1);
  const auto large = run_with(2, 2);
  EXPECT_GE(large, small * 95 / 100);
}

TEST(Properties, SystemTimeSeriesMonotone) {
  ScalingRunOptions options;
  options.duration = 100.0;
  const auto result = run_scaling(fast_params(5), TraceKind::kDualPhase,
                                  "ec2", options);
  SimTime last = -1.0;
  for (const auto& s : result.system) {
    EXPECT_GT(s.t, last);
    last = s.t;
    EXPECT_GE(s.throughput, 0.0);
    EXPECT_GE(s.mean_rt, 0.0);
    EXPECT_LE(s.mean_rt, s.max_rt + 1e-9);
    EXPECT_GE(s.total_vms, 3u);  // never below the 1/1/1 minimum
  }
}

TEST(Properties, TierCpuUtilizationBounded) {
  ScalingRunOptions options;
  options.duration = 100.0;
  const auto result = run_scaling(fast_params(6), TraceKind::kSlowlyVarying,
                                  "conscale", options);
  for (const auto& [tier, series] : result.tiers) {
    for (const auto& s : series) {
      EXPECT_GE(s.avg_cpu_utilization, 0.0) << tier;
      EXPECT_LE(s.avg_cpu_utilization, 1.0 + 1e-9) << tier;
      EXPECT_GE(s.running_vms, 1u) << tier;
      EXPECT_LE(s.billed_vms, 8u) << tier;
    }
  }
}

TEST(Properties, PercentilesAreOrdered) {
  ScalingRunOptions options;
  options.duration = 150.0;
  const auto result = run_scaling(fast_params(7), TraceKind::kQuicklyVarying,
                                  "conscale", options);
  EXPECT_LE(result.p50_ms, result.p95_ms);
  EXPECT_LE(result.p95_ms, result.p99_ms);
  EXPECT_LE(result.p99_ms, result.max_rt_ms + 1e-9);
  EXPECT_GT(result.requests_completed, 0u);
}

}  // namespace
}  // namespace conscale
