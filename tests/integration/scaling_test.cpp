// End-to-end integration tests: compressed versions of the paper's headline
// experiments. These run the full stack (workload -> n-tier system ->
// monitoring -> SCT -> scaling frameworks) at work_scale 8-16 so they stay
// fast, and assert the *shape* results of the paper:
//   - the three-stage concurrency-throughput curve emerges,
//   - Q_lower shifts with cores / dataset / workload type (Fig 3, 7),
//   - ConScale beats hardware-only EC2-AutoScaling on tail latency under a
//     bursty crunch (Fig 10, Table I).
#include <gtest/gtest.h>

#include "experiments/runner.h"
#include "metrics/monitor.h"
#include "workload/client.h"

namespace conscale {
namespace {

ScenarioParams fast_params() {
  ScenarioParams p = ScenarioParams::paper_default();
  p.work_scale = 8.0;
  p.seed = 20260705;
  return p;
}

// Profiling (scatter/sweep) experiments run at the paper's native scale:
// they are short and cheap, and compressing the demands would require
// stretching the measurement window and the run length by the same factor —
// no savings, only lost resolution.
ScenarioParams profiling_params() {
  ScenarioParams p = fast_params();
  p.work_scale = 1.0;
  return p;
}

TEST(SctIntegration, ThreeStageCurveEmergesForMySql) {
  ScatterRunOptions options;
  options.duration = 180.0;  // the paper's Fig 6 uses a 12-minute scatter
  options.max_users = 160.0;
  options.fixed_app_vms = 4;  // enough upstream capacity to saturate MySQL
  const ScatterRunResult run =
      collect_scatter(profiling_params(), kDbTier, options);
  ASSERT_TRUE(run.range.has_value());
  EXPECT_TRUE(run.range->descending_observed);
  EXPECT_GT(run.range->q_lower, 5);
  EXPECT_LT(run.range->q_lower, 35);
  EXPECT_GE(run.range->q_upper, run.range->q_lower);
  // All three stages present in the classification.
  bool ascending = false, stable = false, descending = false;
  for (const auto& p : run.stages) {
    ascending |= p.stage == SctStage::kAscending;
    stable |= p.stage == SctStage::kStable;
    descending |= p.stage == SctStage::kDescending;
  }
  EXPECT_TRUE(ascending && stable && descending);
}

TEST(SctIntegration, VerticalScalingRaisesQlower) {
  // Fig 7(a) vs 7(d): doubling MySQL cores roughly doubles Q_lower.
  ScatterRunOptions options;
  options.duration = 180.0;
  options.max_users = 260.0;  // 2-core MySQL needs twice the pressure
  options.fixed_app_vms = 10;  // keep the app tier out of the way
  ScenarioParams one_core = profiling_params();
  ScenarioParams two_core = profiling_params();
  two_core.db_cores = 2;
  const auto r1 = collect_scatter(one_core, kDbTier, options);
  const auto r2 = collect_scatter(two_core, kDbTier, options);
  ASSERT_TRUE(r1.range && r2.range);
  EXPECT_GT(r2.range->q_lower, static_cast<int>(1.4 * r1.range->q_lower))
      << "1-core Q_lower=" << r1.range->q_lower
      << " 2-core Q_lower=" << r2.range->q_lower;
}

TEST(SctIntegration, LargerDatasetLowersTomcatQlower) {
  // Fig 7(b) vs 7(e): enlarging the dataset lowers the app-tier optimum.
  ScatterRunOptions options;
  options.duration = 180.0;
  options.max_users = 120.0;
  options.fixed_db_vms = 4;  // Tomcat is the bottleneck (1/1/4)
  ScenarioParams original = profiling_params();
  ScenarioParams enlarged = profiling_params();
  enlarged.mix.dataset_scale = 1.6;
  const auto r1 = collect_scatter(original, kAppTier, options);
  const auto r2 = collect_scatter(enlarged, kAppTier, options);
  ASSERT_TRUE(r1.range && r2.range);
  EXPECT_LT(r2.range->q_lower, r1.range->q_lower)
      << "original Q_lower=" << r1.range->q_lower
      << " enlarged Q_lower=" << r2.range->q_lower;
}

TEST(SctIntegration, IoIntensiveWorkloadLowersMySqlQlower) {
  // Fig 7(c) vs 7(f): CPU-bound -> disk-bound drops the optimum sharply.
  ScatterRunOptions options;
  options.duration = 180.0;
  options.max_users = 140.0;
  options.fixed_app_vms = 4;
  ScenarioParams cpu_bound = profiling_params();
  ScenarioParams io_bound = profiling_params();
  io_bound.mode = WorkloadMode::kReadWriteMix;
  const auto r1 = collect_scatter(cpu_bound, kDbTier, options);
  const auto r2 = collect_scatter(io_bound, kDbTier, options);
  ASSERT_TRUE(r1.range && r2.range);
  EXPECT_LT(2 * r2.range->q_lower, r1.range->q_lower + 4)
      << "cpu Q_lower=" << r1.range->q_lower
      << " io Q_lower=" << r2.range->q_lower;
}

TEST(SctIntegration, PerformanceInterferenceLowersTpMax) {
  // A noisy neighbour stealing ~40% of MySQL's cycles is a "system state"
  // change in the paper's sense: service demand effectively grows, so the
  // peak throughput drops and the SCT model re-detects the curve online.
  ScatterRunOptions options;
  options.duration = 180.0;
  options.max_users = 140.0;
  options.fixed_app_vms = 4;
  ScenarioParams clean = profiling_params();
  const auto r_clean = collect_scatter(clean, kDbTier, options);

  // Same scenario, but the DB CPU only delivers 60% of its cycles.
  ScenarioParams p = profiling_params();
  p.web_init = p.web_min = p.web_max = 1;
  p.app_init = p.app_min = p.app_max = 4;
  p.db_init = p.db_min = p.db_max = 1;
  p.web_threads = 4096;
  p.app_threads = 1024;
  p.app_dbconn = 1024;
  Simulation sim;
  RequestMix mix = p.make_mix();
  NTierSystem system(sim, p.system_config());
  auto warehouse = std::make_shared<MetricsWarehouse>();
  MonitoringAgent monitor(sim, system, *warehouse);
  sim.run_until(0.01);
  for (Server* s : system.tier(kDbTier).running_servers()) {
    s->set_cpu_speed(0.6);
  }
  ClientPopulation::Params cp;
  cp.think_time_mean = 0.0;
  cp.seed = p.seed ^ 0x1f;
  const WorkloadTrace trace = make_ramp_trace(1.0, 140.0, 180.0);
  ClientPopulation clients(
      sim, trace, mix,
      [&system](const RequestContext& ctx, std::function<void()> done) {
        system.submit(ctx, std::move(done));
      },
      cp);
  sim.run_until(180.0);
  ScatterSet scatter;
  for (Vm* vm : system.tier(kDbTier).all_vms()) {
    scatter.add_all(warehouse->server_series(vm->name()));
  }
  const auto r_noisy = SctEstimator().estimate(scatter);

  ASSERT_TRUE(r_clean.range && r_noisy);
  EXPECT_LT(r_noisy->tp_max, 0.75 * r_clean.range->tp_max);
  EXPECT_LT(r_noisy->q_lower, r_clean.range->q_lower + 3);
}

TEST(SweepIntegration, ThroughputPeaksAtModerateConcurrency) {
  // Fig 3 shape: throughput rises, peaks, and degrades; RT grows with
  // concurrency throughout.
  const std::vector<int> levels = {2, 5, 10, 20, 40, 80};
  SweepOptions options;
  options.settle = 3.0;
  options.measure = 12.0;
  options.fixed_db_vms = 4;
  const auto points =
      run_concurrency_sweep(profiling_params(), kAppTier, levels, options);
  ASSERT_EQ(points.size(), levels.size());
  // Peak is interior: higher than both ends.
  double peak_tp = 0.0;
  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].throughput > peak_tp) {
      peak_tp = points[i].throughput;
      peak_idx = i;
    }
  }
  EXPECT_GT(peak_idx, 0u);
  EXPECT_LT(peak_idx, points.size() - 1);
  EXPECT_GT(peak_tp, 1.15 * points.front().throughput);
  EXPECT_GT(peak_tp, 1.1 * points.back().throughput);
  // Response time grows monotonically (within tolerance) with concurrency.
  EXPECT_LT(points.front().mean_rt_ms, points.back().mean_rt_ms);
}

TEST(ScalingIntegration, ConScaleBeatsEc2OnTailLatency) {
  // The headline result (Fig 10 / Table I) on the Large Variation trace.
  ScenarioParams params = fast_params();
  ScalingRunOptions options;
  options.duration = 400.0;  // the first two crests are enough
  const auto ec2 = run_scaling(params, TraceKind::kLargeVariations,
                               "ec2", options);
  const auto con = run_scaling(params, TraceKind::kLargeVariations,
                               "conscale", options);
  EXPECT_LT(con.p99_ms, 0.7 * ec2.p99_ms)
      << "EC2 p99=" << ec2.p99_ms << "ms ConScale p99=" << con.p99_ms << "ms";
  EXPECT_GE(con.requests_completed, ec2.requests_completed * 95 / 100);
  // Hook accounting must balance: any unmatched departure/abort would have
  // silently skewed the concurrency integral before PR 5 made it countable.
  EXPECT_EQ(ec2.hook_underflows, 0u);
  EXPECT_EQ(con.hook_underflows, 0u);
}

TEST(ScalingIntegration, BothFrameworksScaleHardwareIdentically) {
  // The hardware rule is shared; ConScale's edge is soft resources only.
  ScenarioParams params = fast_params();
  ScalingRunOptions options;
  options.duration = 200.0;
  const auto ec2 = run_scaling(params, TraceKind::kBigSpike,
                               "ec2", options);
  int ec2_hw = 0;
  for (const auto& e : ec2.events) {
    ec2_hw += (e.action == "scale-out" || e.action == "scale-in") ? 1 : 0;
  }
  EXPECT_GT(ec2_hw, 0);
  // And EC2 must never emit soft-resource events.
  for (const auto& e : ec2.events) {
    EXPECT_NE(e.action, "threads");
    EXPECT_NE(e.action, "dbconn");
  }
}

TEST(ScalingIntegration, ConScaleAdaptsSoftResources) {
  ScenarioParams params = fast_params();
  ScalingRunOptions options;
  options.duration = 400.0;
  const auto con = run_scaling(params, TraceKind::kLargeVariations,
                               "conscale", options);
  bool adapted = false;
  for (const auto& e : con.events) {
    adapted |= e.action == "threads" || e.action == "dbconn";
  }
  EXPECT_TRUE(adapted);
  EXPECT_FALSE(con.sct_history.empty());
}

TEST(ScalingIntegration, DcmWithStaleProfileUnderperformsConScale) {
  // Fig 11: DCM trained on the original dataset, run on a reduced one.
  ScenarioParams params = fast_params();
  // Milder compression for this test: the online estimator's sample budget
  // per window shrinks with work_scale, and Fig 11 turns on estimate quality.
  params.work_scale = 4.0;
  // Lighter requests (smaller dataset) -> more users for the same pressure.
  params.max_users = 7500.0 / 0.55;
  const DcmProfile profile = train_dcm_profile(params);
  ASSERT_FALSE(profile.tier_optimal_concurrency.empty());

  ScalingRunOptions dcm_options;
  dcm_options.duration = 720.0;
  dcm_options.runtime_dataset_scale = 0.4;  // far smaller dataset than trained
  FrameworkConfig config = make_framework_config(params);
  config.dcm_profile = profile;
  dcm_options.framework_config = config;
  const auto dcm = run_scaling(params, TraceKind::kLargeVariations,
                               "dcm", dcm_options);

  ScalingRunOptions con_options = dcm_options;
  con_options.framework_config = make_framework_config(params);
  const auto con = run_scaling(params, TraceKind::kLargeVariations,
                               "conscale", con_options);
  // At this compressed scale the headline latency gap of Fig 11 is noise-
  // level; the bench (bench_fig11_dcm_vs_conscale, native scale) checks the
  // magnitude. Here we assert the *mechanism*: ConScale must not be
  // meaningfully worse, and its online estimate must adapt the Tomcat
  // allocation away from DCM's stale trained value (the paper's 20 -> 30).
  EXPECT_LT(con.p99_ms, dcm.p99_ms)
      << "DCM p99=" << dcm.p99_ms << "ms ConScale p99=" << con.p99_ms << "ms";
  EXPECT_GT(con.requests_completed, dcm.requests_completed)
      << "online adaptation should also win on throughput (Fig 11)";
  // ConScale must have acted on *live* evidence: at least one soft-resource
  // adaptation driven by an online estimate (DCM's values, in contrast, are
  // frozen at training time no matter what the dataset became).
  bool adapted = false;
  for (const auto& e : con.events) {
    adapted |= e.action == "threads" || e.action == "dbconn";
  }
  EXPECT_TRUE(adapted);
  EXPECT_FALSE(con.sct_history.empty());
}

}  // namespace
}  // namespace conscale
