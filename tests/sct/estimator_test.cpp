#include "sct/estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace conscale {
namespace {

// Synthetic three-stage curve: linear ascent to tp_max at q_knee, flat until
// q_fall, then linear descent. This is the ground truth the estimator must
// recover from noisy samples.
struct CurveSpec {
  int q_knee = 10;
  int q_fall = 30;
  int q_max = 60;       // largest observed concurrency
  double tp_max = 1000.0;
  double fall_slope = 15.0;  // throughput lost per step beyond q_fall
  double noise_cv = 0.05;
  int samples_per_bucket = 30;
};

double true_tp(const CurveSpec& spec, int q) {
  if (q <= spec.q_knee) {
    return spec.tp_max * static_cast<double>(q) /
           static_cast<double>(spec.q_knee);
  }
  if (q <= spec.q_fall) return spec.tp_max;
  return std::max(spec.tp_max - spec.fall_slope * (q - spec.q_fall), 0.0);
}

ScatterSet synthesize(const CurveSpec& spec, std::uint64_t seed = 1234) {
  Rng rng(seed);
  ScatterSet scatter;
  for (int q = 1; q <= spec.q_max; ++q) {
    for (int i = 0; i < spec.samples_per_bucket; ++i) {
      IntervalSample s;
      s.concurrency = q;
      const double tp = true_tp(spec, q);
      s.throughput = spec.noise_cv > 0.0
                         ? rng.normal(tp, spec.noise_cv * spec.tp_max)
                         : tp;
      s.mean_rt = q / std::max(s.throughput, 1.0);
      s.completions = 5;
      scatter.add(s);
    }
  }
  return scatter;
}

TEST(SctEstimator, RecoversCleanThreeStageCurve) {
  const CurveSpec spec;
  const ScatterSet scatter = synthesize(spec);
  SctEstimator estimator;
  const auto range = estimator.estimate(scatter);
  ASSERT_TRUE(range.has_value());
  EXPECT_NEAR(range->q_lower, spec.q_knee, 2);
  EXPECT_NEAR(range->q_upper, spec.q_fall, 4);
  EXPECT_NEAR(range->tp_max, spec.tp_max, 0.05 * spec.tp_max);
  EXPECT_EQ(range->optimal, range->q_lower);
  EXPECT_TRUE(range->descending_observed);
}

TEST(SctEstimator, NotEnoughBucketsReturnsNullopt) {
  CurveSpec spec;
  spec.q_max = 3;
  const ScatterSet scatter = synthesize(spec);
  SctEstimator estimator;
  EXPECT_FALSE(estimator.estimate(scatter).has_value());
}

TEST(SctEstimator, EmptyScatterReturnsNullopt) {
  SctEstimator estimator;
  EXPECT_FALSE(estimator.estimate(ScatterSet{}).has_value());
  EXPECT_TRUE(estimator.classify(ScatterSet{}).empty());
}

TEST(SctEstimator, RightCensoredPlateauNotMarkedDescending) {
  // The window never pushed past the plateau (q_max == q_fall): q_upper is
  // right-censored and descending must NOT be reported as observed.
  CurveSpec spec;
  spec.q_fall = 40;
  spec.q_max = 35;
  const ScatterSet scatter = synthesize(spec);
  SctEstimator estimator;
  const auto range = estimator.estimate(scatter);
  ASSERT_TRUE(range.has_value());
  EXPECT_FALSE(range->descending_observed);
  EXPECT_LE(range->q_upper, 35);
}

TEST(SctEstimator, ShallowNoiseDipIsNotDescending) {
  // A flat plateau all the way to q_max with noise: the last bucket dipping
  // by chance must not count as an observed descending stage (the anti-
  // ratchet guard).
  CurveSpec spec;
  spec.q_fall = 100;  // never falls within observation
  spec.q_max = 40;
  spec.noise_cv = 0.06;
  const ScatterSet scatter = synthesize(spec, 777);
  SctEstimator estimator;
  const auto range = estimator.estimate(scatter);
  ASSERT_TRUE(range.has_value());
  EXPECT_FALSE(range->descending_observed);
}

TEST(SctEstimator, RtSlaSelectsLargestCompliantPlateauLevel) {
  // Build a curve whose plateau spans Q=10..30 with RT growing linearly;
  // an SLA of 0.02 s is met up to Q ~ 20.
  Rng rng(55);
  ScatterSet scatter;
  for (int q = 1; q <= 45; ++q) {
    const double tp = q <= 10 ? 1000.0 * q / 10.0
                     : q <= 30 ? 1000.0
                               : 1000.0 - 40.0 * (q - 30);
    for (int i = 0; i < 30; ++i) {
      IntervalSample s;
      s.concurrency = q;
      s.throughput = rng.normal(tp, 25.0);
      s.mean_rt = 0.001 * q;  // 1 ms per concurrency level
      s.completions = 5;
      scatter.add(s);
    }
  }
  SctParams with_sla;
  with_sla.rt_sla = 0.020;
  const auto range = SctEstimator(with_sla).estimate(scatter);
  ASSERT_TRUE(range.has_value());
  EXPECT_NEAR(range->optimal, 20, 3);
  EXPECT_GE(range->optimal, range->q_lower);
  EXPECT_LE(range->optimal, range->q_upper);

  // Infeasible SLA: falls back to Q_lower (throughput first, as the paper).
  SctParams strict;
  strict.rt_sla = 0.001;
  const auto fallback = SctEstimator(strict).estimate(scatter);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->optimal, fallback->q_lower);

  // Disabled SLA: optimal == Q_lower.
  const auto plain = SctEstimator().estimate(scatter);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->optimal, plain->q_lower);
}

TEST(SctEstimator, ContiguousKneeTopIsNotCensored) {
  // Clean curve observed straight through the knee: q_upper is measured.
  const CurveSpec spec;
  const ScatterSet scatter = synthesize(spec);
  SctEstimator estimator;
  const auto range = estimator.estimate(scatter);
  ASSERT_TRUE(range.has_value());
  EXPECT_FALSE(range->q_upper_censored);
}

TEST(SctEstimator, GapAfterPlateauIsCensoredButDescendingObserved) {
  // A bursty production window: ascending + narrow plateau, a wide gap, and
  // a dense deeply-degraded blob where concurrency pinned at the old
  // allocation. Descending IS observed (strong evidence far out), but the
  // plateau's right edge is just where data stops — censored.
  Rng rng(2024);
  ScatterSet scatter;
  auto add_bucket = [&](int q, double tp, int n) {
    for (int i = 0; i < n; ++i) {
      IntervalSample s;
      s.concurrency = q;
      s.throughput = rng.normal(tp, 0.03 * 1000.0);
      s.completions = 5;
      scatter.add(s);
    }
  };
  for (int q = 1; q <= 15; ++q) {
    add_bucket(q, 1000.0 * std::min(q, 12) / 12.0, 30);
  }
  add_bucket(80, 420.0, 120);  // the pinned melt blob
  SctEstimator estimator;
  const auto range = estimator.estimate(scatter);
  ASSERT_TRUE(range.has_value());
  EXPECT_TRUE(range->descending_observed);
  EXPECT_TRUE(range->q_upper_censored);
  EXPECT_LE(range->q_upper, 16);
}

TEST(SctEstimator, NoiseDipNearPlateauIsNotDescendingEvidence) {
  // A bucket just below the practical floor but statistically weak (high
  // variance, few samples) must not count as a descending observation.
  Rng rng(77);
  ScatterSet scatter;
  for (int q = 1; q <= 20; ++q) {
    const double tp = 1000.0 * std::min(q, 10) / 10.0;
    for (int i = 0; i < 30; ++i) {
      IntervalSample s;
      s.concurrency = q;
      s.throughput = rng.normal(tp, 30.0);
      s.completions = 5;
      scatter.add(s);
    }
  }
  // Sparse, wildly noisy tail bucket.
  for (int i = 0; i < 4; ++i) {
    IntervalSample s;
    s.concurrency = 22;
    s.throughput = rng.normal(840.0, 400.0);
    s.completions = 5;
    scatter.add(s);
  }
  SctEstimator estimator;
  const auto range = estimator.estimate(scatter);
  ASSERT_TRUE(range.has_value());
  EXPECT_FALSE(range->descending_observed);
}

TEST(SctEstimator, ClassifyLabelsAllThreeStages) {
  const CurveSpec spec;
  const ScatterSet scatter = synthesize(spec);
  SctEstimator estimator;
  const auto stages = estimator.classify(scatter);
  ASSERT_FALSE(stages.empty());
  bool saw_ascending = false, saw_stable = false, saw_descending = false;
  SctStage last = SctStage::kAscending;
  for (const auto& p : stages) {
    // Stages must be monotone: ascending -> stable -> descending.
    EXPECT_GE(static_cast<int>(p.stage), static_cast<int>(last));
    last = p.stage;
    saw_ascending |= p.stage == SctStage::kAscending;
    saw_stable |= p.stage == SctStage::kStable;
    saw_descending |= p.stage == SctStage::kDescending;
  }
  EXPECT_TRUE(saw_ascending);
  EXPECT_TRUE(saw_stable);
  EXPECT_TRUE(saw_descending);
}

TEST(SctEstimator, PlateauToleranceWidensRange) {
  const CurveSpec spec;
  const ScatterSet scatter = synthesize(spec);
  SctParams tight;
  tight.plateau_tolerance = 0.02;
  SctParams loose;
  loose.plateau_tolerance = 0.15;
  const auto r_tight = SctEstimator(tight).estimate(scatter);
  const auto r_loose = SctEstimator(loose).estimate(scatter);
  ASSERT_TRUE(r_tight && r_loose);
  EXPECT_LE(r_loose->q_lower, r_tight->q_lower);
  EXPECT_GE(r_loose->q_upper, r_tight->q_upper);
}

// Parameterized sweep across curve shapes and noise levels: the estimator
// must land near the true knee for all of them.
struct EstimatorCase {
  const char* name;
  CurveSpec spec;
  int knee_tolerance;
};

class EstimatorSweep : public ::testing::TestWithParam<EstimatorCase> {};

TEST_P(EstimatorSweep, FindsKnee) {
  const auto& param = GetParam();
  const ScatterSet scatter = synthesize(param.spec, 42);
  SctEstimator estimator;
  const auto range = estimator.estimate(scatter);
  ASSERT_TRUE(range.has_value()) << param.name;
  EXPECT_NEAR(range->q_lower, param.spec.q_knee, param.knee_tolerance)
      << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EstimatorSweep,
    ::testing::Values(
        EstimatorCase{"early_knee", {5, 25, 60, 800.0, 12.0, 0.04, 30}, 2},
        EstimatorCase{"late_knee", {30, 45, 80, 1200.0, 20.0, 0.04, 30}, 4},
        EstimatorCase{"narrow_plateau", {15, 20, 50, 600.0, 10.0, 0.03, 30}, 3},
        EstimatorCase{"wide_plateau", {8, 50, 90, 900.0, 18.0, 0.04, 30}, 2},
        EstimatorCase{"noisy", {12, 30, 60, 1000.0, 15.0, 0.10, 60}, 4},
        EstimatorCase{"steep_fall", {10, 30, 60, 1000.0, 60.0, 0.05, 30}, 2},
        EstimatorCase{"high_throughput",
                      {10, 30, 60, 50000.0, 800.0, 0.05, 30},
                      2}),
    [](const ::testing::TestParamInfo<EstimatorCase>& param_info) {
      return param_info.param.name;
    });

TEST(SctEstimator, SparseBucketsAreIgnored) {
  CurveSpec spec;
  spec.samples_per_bucket = 2;  // below the default min of 4
  const ScatterSet scatter = synthesize(spec);
  SctEstimator estimator;
  EXPECT_FALSE(estimator.estimate(scatter).has_value());
}

TEST(SctStageNames, ToString) {
  EXPECT_EQ(to_string(SctStage::kAscending), "ascending");
  EXPECT_EQ(to_string(SctStage::kStable), "stable");
  EXPECT_EQ(to_string(SctStage::kDescending), "descending");
}

}  // namespace
}  // namespace conscale
