#include "sct/scatter.h"

#include <gtest/gtest.h>

namespace conscale {
namespace {

IntervalSample sample(double q, double tp, double rt = 0.01,
                      std::uint64_t completions = 5) {
  IntervalSample s;
  s.concurrency = q;
  s.throughput = tp;
  s.mean_rt = rt;
  s.completions = completions;
  return s;
}

TEST(ScatterSet, BucketsByRoundedConcurrency) {
  ScatterSet scatter;
  scatter.add(sample(9.6, 100.0));
  scatter.add(sample(10.2, 110.0));
  scatter.add(sample(10.4, 120.0));
  EXPECT_EQ(scatter.bucket_count(), 1u);  // all round to 10
  const auto ordered = scatter.ordered();
  ASSERT_EQ(ordered.size(), 1u);
  EXPECT_EQ(ordered[0].q, 10);
  EXPECT_EQ(ordered[0].throughput.count(), 3u);
  EXPECT_NEAR(ordered[0].throughput.mean(), 110.0, 1e-9);
}

TEST(ScatterSet, SkipsIdleSamples) {
  ScatterSet scatter;
  scatter.add(sample(0.2, 0.0));
  scatter.add(sample(0.49, 50.0));
  EXPECT_TRUE(scatter.empty());
  EXPECT_EQ(scatter.total_samples(), 0u);
}

TEST(ScatterSet, ZeroCompletionIntervalsCountForThroughputOnly) {
  ScatterSet scatter;
  scatter.add(sample(5.0, 0.0, 0.0, 0));
  const auto ordered = scatter.ordered();
  ASSERT_EQ(ordered.size(), 1u);
  EXPECT_EQ(ordered[0].throughput.count(), 1u);
  EXPECT_EQ(ordered[0].response_time.count(), 0u);
}

TEST(ScatterSet, OrderedIsSortedByQ) {
  ScatterSet scatter;
  scatter.add(sample(30.0, 1.0));
  scatter.add(sample(10.0, 1.0));
  scatter.add(sample(20.0, 1.0));
  const auto ordered = scatter.ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[0].q, 10);
  EXPECT_EQ(ordered[1].q, 20);
  EXPECT_EQ(ordered[2].q, 30);
}

TEST(ScatterSet, DenseFilterDropsThinBuckets) {
  ScatterSet scatter;
  for (int i = 0; i < 5; ++i) scatter.add(sample(10.0, 100.0));
  scatter.add(sample(20.0, 100.0));  // single observation
  EXPECT_EQ(scatter.ordered_dense(3).size(), 1u);
  EXPECT_EQ(scatter.ordered_dense(1).size(), 2u);
}

TEST(ScatterSet, MaxQAndClear) {
  ScatterSet scatter;
  EXPECT_EQ(scatter.max_q(), 0);
  scatter.add(sample(7.0, 1.0));
  scatter.add(sample(42.0, 1.0));
  EXPECT_EQ(scatter.max_q(), 42);
  scatter.clear();
  EXPECT_TRUE(scatter.empty());
  EXPECT_EQ(scatter.max_q(), 0);
}

TEST(ScatterSet, AddAllFoldsVector) {
  ScatterSet scatter;
  std::vector<IntervalSample> samples = {sample(1.0, 1.0), sample(2.0, 2.0),
                                         sample(0.1, 9.0)};
  scatter.add_all(samples);
  EXPECT_EQ(scatter.total_samples(), 2u);  // idle sample skipped
}

}  // namespace
}  // namespace conscale
