#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/config.h"
#include "common/csv.h"

namespace conscale {
namespace {

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({1.0, 2.5});
  csv.row({3.0, 4.0});
  EXPECT_EQ(out.str(), "a,b\n1,2.5\n3,4\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.raw_row({"plain", "has,comma", "has\"quote", "multi\nline"});
  EXPECT_EQ(out.str(),
            "plain,\"has,comma\",\"has\"\"quote\",\"multi\nline\"\n");
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(Csv, WritesToFile) {
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"x"});
    csv.row({42.0});
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "x\n42\n");
  std::remove(path.c_str());
}

TEST(Config, ParsesKeyValueArgs) {
  const char* argv[] = {"prog", "alpha=1.5", "--name=test", "positional"};
  const Config c = Config::from_args(4, argv);
  EXPECT_DOUBLE_EQ(c.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(c.get_string("name"), "test");
  ASSERT_EQ(c.positional().size(), 1u);
  EXPECT_EQ(c.positional()[0], "positional");
}

TEST(Config, FallbacksWhenMissing) {
  const Config c;
  EXPECT_EQ(c.get_string("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(c.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_TRUE(c.get_bool("missing", true));
  EXPECT_FALSE(c.contains("missing"));
}

TEST(Config, BoolParsing) {
  Config c;
  c.set("t1", "true");
  c.set("t2", "Yes");
  c.set("t3", "1");
  c.set("f1", "off");
  c.set("bad", "maybe");
  EXPECT_TRUE(c.get_bool("t1", false));
  EXPECT_TRUE(c.get_bool("t2", false));
  EXPECT_TRUE(c.get_bool("t3", false));
  EXPECT_FALSE(c.get_bool("f1", true));
  EXPECT_THROW(c.get_bool("bad", false), std::runtime_error);
}

TEST(Config, NumericParseErrors) {
  Config c;
  c.set("x", "notanumber");
  EXPECT_THROW(c.get_double("x", 0.0), std::runtime_error);
  EXPECT_THROW(c.get_int("x", 0), std::runtime_error);
}

TEST(Config, FileParsingWithComments) {
  const std::string path = ::testing::TempDir() + "/config_test.ini";
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "duration = 720   # trailing comment\n"
        << "\n"
        << "trace=big_spike\n";
  }
  const Config c = Config::from_file(path);
  EXPECT_EQ(c.get_int("duration", 0), 720);
  EXPECT_EQ(c.get_string("trace"), "big_spike");
  std::remove(path.c_str());
}

TEST(Config, FileMissingThrows) {
  EXPECT_THROW(Config::from_file("/no/such/file.ini"), std::runtime_error);
}

TEST(Config, MalformedFileLineThrows) {
  const std::string path = ::testing::TempDir() + "/bad_config.ini";
  {
    std::ofstream out(path);
    out << "this line has no equals\n";
  }
  EXPECT_THROW(Config::from_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Config, RequireKnownKeysPassesOnKnownSubset) {
  Config c;
  c.set("work_scale", "16");
  c.set("seed", "7");
  EXPECT_NO_THROW(c.require_known_keys({"work_scale", "seed", "duration"}));
  EXPECT_NO_THROW(Config().require_known_keys({}));  // empty config, any list
}

TEST(Config, RequireKnownKeysNamesEveryOffender) {
  Config c;
  c.set("durration", "60");  // the classic typo
  c.set("work_scale", "16");
  c.set("zeed", "7");
  try {
    c.require_known_keys({"work_scale", "seed", "duration"});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    // Both unknown keys are listed (sorted), and the known ones are offered.
    EXPECT_NE(message.find("durration"), std::string::npos) << message;
    EXPECT_NE(message.find("zeed"), std::string::npos) << message;
    EXPECT_NE(message.find("duration"), std::string::npos) << message;
    EXPECT_EQ(message.find("work_scale,"), message.rfind("work_scale,"))
        << "valid keys listed once: " << message;
  }
}

TEST(Config, RequireKnownKeysIgnoresPositionals) {
  const char* argv[] = {"prog", "positional", "seed=1"};
  const Config c = Config::from_args(3, argv);
  EXPECT_NO_THROW(c.require_known_keys({"seed"}));
}

TEST(Config, MergeOverrides) {
  Config base, overlay;
  base.set("a", "1");
  base.set("b", "2");
  overlay.set("b", "20");
  overlay.set("c", "30");
  base.merge(overlay);
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 20);
  EXPECT_EQ(base.get_int("c", 0), 30);
}

}  // namespace
}  // namespace conscale
