#include "common/stats.h"
#include <algorithm>

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace conscale {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(99);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 3 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50.0), 0.0);
}

TEST(Percentile, MedianOfOddCount) {
  std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 20.0);
}

TEST(Percentile, ClampsOutOfRangePct) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 140.0), 3.0);
}

// Percentile should agree with a fully sorted computation across many
// random vectors (property check).
TEST(Percentile, MatchesSortedReference) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v;
    const std::size_t n = 1 + rng.uniform_index(200);
    for (std::size_t i = 0; i < n; ++i) v.push_back(rng.uniform(0, 1000));
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (double pct : {5.0, 25.0, 50.0, 90.0, 99.0}) {
      const double rank = pct / 100.0 * static_cast<double>(n - 1);
      const auto lo = static_cast<std::size_t>(rank);
      const double frac = rank - static_cast<double>(lo);
      const double expected =
          frac == 0.0 || lo + 1 >= n
              ? sorted[lo]
              : sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
      EXPECT_NEAR(percentile(v, pct), expected, 1e-9)
          << "n=" << n << " pct=" << pct;
    }
  }
}

TEST(WelchTTest, IdenticalSamplesNotSignificant) {
  RunningStats a, b;
  for (int i = 0; i < 30; ++i) {
    a.add(10.0 + (i % 3));
    b.add(10.0 + (i % 3));
  }
  const TTestResult result = welch_t_test(a, b);
  EXPECT_FALSE(result.significant);
  EXPECT_NEAR(result.t, 0.0, 1e-9);
}

TEST(WelchTTest, ClearlyDifferentMeansSignificant) {
  Rng rng(3);
  RunningStats a, b;
  for (int i = 0; i < 50; ++i) {
    a.add(rng.normal(100.0, 5.0));
    b.add(rng.normal(50.0, 5.0));
  }
  EXPECT_TRUE(welch_t_test(a, b).significant);
}

TEST(WelchTTest, InsufficientSamplesNotSignificant) {
  RunningStats a, b;
  a.add(1.0);
  b.add(100.0);
  EXPECT_FALSE(welch_t_test(a, b).significant);
}

TEST(WelchTTest, ZeroVarianceEqualMeans) {
  RunningStats a, b;
  for (int i = 0; i < 5; ++i) {
    a.add(7.0);
    b.add(7.0);
  }
  EXPECT_FALSE(welch_t_test(a, b).significant);
}

TEST(WelchTTest, ZeroVarianceDifferentMeans) {
  RunningStats a, b;
  for (int i = 0; i < 5; ++i) {
    a.add(7.0);
    b.add(8.0);
  }
  EXPECT_TRUE(welch_t_test(a, b).significant);
}

TEST(TCritical, DecreasesWithDegreesOfFreedom) {
  EXPECT_GT(t_critical_95(1), t_critical_95(5));
  EXPECT_GT(t_critical_95(5), t_critical_95(30));
  EXPECT_GT(t_critical_95(30), t_critical_95(1000));
  EXPECT_NEAR(t_critical_95(1e9), 1.96, 1e-6);
}

TEST(MovingAverage, EmptyInput) {
  EXPECT_TRUE(moving_average(std::vector<double>{}, 2).empty());
}

TEST(MovingAverage, RadiusZeroIsIdentity) {
  std::vector<double> v = {1.0, 5.0, 2.0};
  EXPECT_EQ(moving_average(v, 0), v);
}

TEST(MovingAverage, SmoothsInterior) {
  std::vector<double> v = {0.0, 3.0, 6.0, 9.0, 12.0};
  const auto out = moving_average(v, 1);
  ASSERT_EQ(out.size(), v.size());
  // Edges keep their values (window shrinks to radius 0).
  EXPECT_DOUBLE_EQ(out.front(), 0.0);
  EXPECT_DOUBLE_EQ(out.back(), 12.0);
  EXPECT_DOUBLE_EQ(out[2], 6.0);
}

TEST(MovingAverage, PreservesConstantSeries) {
  std::vector<double> v(50, 4.2);
  for (double x : moving_average(v, 5)) EXPECT_DOUBLE_EQ(x, 4.2);
}

TEST(LinearFit, RecoverLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LinearFit, DegenerateInput) {
  std::vector<double> x = {1.0};
  std::vector<double> y = {2.0};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

}  // namespace
}  // namespace conscale
