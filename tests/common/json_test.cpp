#include "common/json.h"

#include <sstream>

#include <gtest/gtest.h>

namespace conscale {
namespace {

std::string build(const std::function<void(JsonWriter&)>& body) {
  std::ostringstream out;
  JsonWriter json(out);
  body(json);
  return out.str();
}

TEST(Json, SimpleObject) {
  const std::string doc = build([](JsonWriter& j) {
    j.begin_object();
    j.key("name").value("run");
    j.key("count").value(std::uint64_t{3});
    j.key("ok").value(true);
    j.key("missing").null();
    j.end_object();
  });
  EXPECT_EQ(doc, R"({"name":"run","count":3,"ok":true,"missing":null})");
}

TEST(Json, NestedContainers) {
  const std::string doc = build([](JsonWriter& j) {
    j.begin_object();
    j.key("points").begin_array();
    j.value(1.5);
    j.begin_object();
    j.key("x").value(2);
    j.end_object();
    j.end_array();
    j.end_object();
  });
  EXPECT_EQ(doc, R"({"points":[1.5,{"x":2}]})");
}

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  const std::string doc = build([](JsonWriter& j) {
    j.begin_array();
    j.value(std::numeric_limits<double>::quiet_NaN());
    j.value(std::numeric_limits<double>::infinity());
    j.end_array();
  });
  EXPECT_EQ(doc, "[null,null]");
}

TEST(Json, RootScalarCompletesDocument) {
  std::ostringstream out;
  JsonWriter json(out);
  json.value(42);
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(out.str(), "42");
  EXPECT_THROW(json.value(1), std::logic_error);
}

TEST(Json, MisuseThrows) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    j.begin_object();
    EXPECT_THROW(j.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter j(out);
    j.begin_array();
    EXPECT_THROW(j.key("x"), std::logic_error);  // key in array
  }
  {
    JsonWriter j(out);
    j.begin_object();
    j.key("x");
    EXPECT_THROW(j.key("y"), std::logic_error);  // key after key
    EXPECT_THROW(j.end_object(), std::logic_error);  // dangling key
  }
  {
    JsonWriter j(out);
    j.begin_object();
    EXPECT_THROW(j.end_array(), std::logic_error);  // mismatched close
  }
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(build([](JsonWriter& j) {
              j.begin_object();
              j.end_object();
            }),
            "{}");
  EXPECT_EQ(build([](JsonWriter& j) {
              j.begin_array();
              j.end_array();
            }),
            "[]");
}

}  // namespace
}  // namespace conscale
