#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace conscale {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent1(7), parent2(7);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  // Children from identical parents agree...
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child1.next(), child2.next());
  // ...and consuming a child does not change the parent's stream.
  EXPECT_EQ(parent1.next(), parent2.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(8);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.uniform_index(n), n);
    }
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(9);
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.uniform_index(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, ExponentialMoments) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.05);
  EXPECT_NEAR(s.stddev(), 2.5, 0.08);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, ExponentialNonPositiveMeanIsZero) {
  Rng rng(11);
  EXPECT_DOUBLE_EQ(rng.exponential(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMeanCvMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.lognormal_mean_cv(4.0, 0.5));
  EXPECT_NEAR(s.mean(), 4.0, 0.05);
  EXPECT_NEAR(s.stddev() / s.mean(), 0.5, 0.02);
  EXPECT_GT(s.min(), 0.0);
}

TEST(Rng, LognormalDegenerateCases) {
  Rng rng(14);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(0.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(3.0, 0.0), 3.0);
}

TEST(Rng, PoissonMoments) {
  Rng rng(15);
  RunningStats small, large;
  for (int i = 0; i < 50000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(100.0)));  // normal approx path
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.05);
  EXPECT_NEAR(small.variance(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 0.3);
  EXPECT_NEAR(large.variance(), 100.0, 3.0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(16);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace conscale
