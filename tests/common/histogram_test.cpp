#include "common/histogram.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace conscale {
namespace {

TEST(LinearHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LinearHistogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LinearHistogram, CountsAndMean) {
  LinearHistogram h(0.0, 10.0, 10);
  h.add(1.0);
  h.add(5.0);
  h.add(9.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(LinearHistogram, ClampsOutOfRange) {
  LinearHistogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(25.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(LinearHistogram, PercentileApproximatesExact) {
  Rng rng(11);
  LinearHistogram h(0.0, 100.0, 1000);
  std::vector<double> exact;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    h.add(v);
    exact.push_back(v);
  }
  for (double pct : {10.0, 50.0, 95.0, 99.0}) {
    EXPECT_NEAR(h.percentile(pct), percentile(exact, pct), 0.5) << pct;
  }
}

TEST(LinearHistogram, ResetClears) {
  LinearHistogram h(0.0, 1.0, 4);
  h.add(0.5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(LogHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 8), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 0), std::invalid_argument);
}

TEST(LogHistogram, EmptyPercentileIsZero) {
  LogHistogram h;
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, SingleValue) {
  LogHistogram h;
  h.add(0.125);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_NEAR(h.percentile(50.0), 0.125, 0.125 * 0.1);
  EXPECT_DOUBLE_EQ(h.max_recorded(), 0.125);
}

// Relative error of percentiles must stay within the sub-bucket resolution
// across several orders of magnitude (latencies from 0.1 ms to minutes).
TEST(LogHistogram, PercentileRelativeErrorBounded) {
  Rng rng(13);
  LogHistogram h(1e-4, 32);
  std::vector<double> exact;
  for (int i = 0; i < 30000; ++i) {
    const double v = rng.lognormal_mean_cv(0.05, 2.0);  // heavy-tailed RTs
    h.add(v);
    exact.push_back(v);
  }
  for (double pct : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double reference = percentile(exact, pct);
    EXPECT_NEAR(h.percentile(pct), reference, reference * 0.08) << pct;
  }
}

TEST(LogHistogram, FractionBelowThreshold) {
  LogHistogram h;
  for (int i = 1; i <= 100; ++i) h.add(0.01 * i);  // 10ms .. 1s
  EXPECT_DOUBLE_EQ(h.fraction_below(10.0), 1.0);
  EXPECT_NEAR(h.fraction_below(0.5), 0.5, 0.04);
  EXPECT_NEAR(h.fraction_below(0.25), 0.25, 0.04);
  EXPECT_DOUBLE_EQ(h.fraction_below(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(LogHistogram().fraction_below(1.0), 0.0);
}

TEST(LogHistogram, PercentileNeverExceedsMax) {
  LogHistogram h;
  h.add(1.0);
  h.add(2.0);
  h.add(3.0);
  EXPECT_LE(h.percentile(100.0), 3.0);
  EXPECT_LE(h.percentile(99.0), 3.0);
}

TEST(LogHistogram, NegativeValuesClampToZeroBucket) {
  LogHistogram h;
  h.add(-1.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_GE(h.percentile(50.0), 0.0);
}

TEST(LogHistogram, MergeEqualsUnion) {
  Rng rng(17);
  LogHistogram a, b, all;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.exponential(0.2);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), all.total());
  EXPECT_DOUBLE_EQ(a.percentile(95.0), all.percentile(95.0));
  EXPECT_DOUBLE_EQ(a.max_recorded(), all.max_recorded());
}

TEST(LogHistogram, MergeLayoutMismatchThrows) {
  LogHistogram a(1e-4, 32);
  LogHistogram b(1e-3, 32);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace conscale
