#include "common/ascii_chart.h"
#include <limits>

#include <gtest/gtest.h>

namespace conscale {
namespace {

Series make_series(const std::string& name) {
  Series s;
  s.name = name;
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * i);
  }
  return s;
}

TEST(AsciiChart, LinesRenderWithLegendAndLabels) {
  ChartOptions options;
  options.x_label = "time";
  options.y_label = "value";
  const std::string out = render_lines({make_series("parabola")}, options);
  EXPECT_NE(out.find("parabola"), std::string::npos);
  EXPECT_NE(out.find("time"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, EmptySeriesHandled) {
  EXPECT_EQ(render_lines({}, {}), "(no data)\n");
  Series empty;
  empty.name = "empty";
  EXPECT_EQ(render_scatter(empty, {}), "(no data)\n");
}

TEST(AsciiChart, MultipleSeriesGetDistinctGlyphs) {
  Series a = make_series("first");
  Series b = make_series("second");
  for (auto& y : b.y) y += 5.0;
  ChartOptions options;
  const std::string out = render_lines({a, b}, options);
  EXPECT_NE(out.find("[*] first"), std::string::npos);
  EXPECT_NE(out.find("[+] second"), std::string::npos);
}

TEST(AsciiChart, NonFiniteValuesSkipped) {
  Series s;
  s.name = "gappy";
  s.x = {0.0, 1.0, 2.0};
  s.y = {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
  const std::string out = render_lines({s}, {});
  EXPECT_NE(out.find('*'), std::string::npos);  // finite points still plotted
}

TEST(AsciiChart, ScatterShowsSampleCount) {
  Series s;
  s.name = "cloud";
  for (int i = 0; i < 100; ++i) {
    s.x.push_back(i % 10);
    s.y.push_back(i / 10);
  }
  const std::string out = render_scatter(s, {});
  EXPECT_NE(out.find("n=100"), std::string::npos);
}

TEST(AsciiChart, FixedYMaxRespected) {
  ChartOptions options;
  options.y_max = 1000.0;
  const std::string out = render_lines({make_series("s")}, options);
  EXPECT_NE(out.find("1000"), std::string::npos);
}

TEST(AsciiChart, BarsScaleToMax) {
  const std::string out = render_bars(
      {{"short", 10.0}, {"long", 100.0}}, 20, "ms");
  EXPECT_NE(out.find("short"), std::string::npos);
  EXPECT_NE(out.find("long"), std::string::npos);
  EXPECT_NE(out.find("ms"), std::string::npos);
  // The max bar fills the full width.
  EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);
}

TEST(AsciiChart, BarsHandleAllZero) {
  const std::string out = render_bars({{"a", 0.0}, {"b", 0.0}}, 10);
  EXPECT_NE(out.find('a'), std::string::npos);
}

}  // namespace
}  // namespace conscale
