#include "cluster/load_balancer.h"

#include <map>
#include <memory>

#include <gtest/gtest.h>

namespace conscale {
namespace {

struct LbFixture : ::testing::Test {
  LbFixture() {
    cls.name = "c";
    cls.demand_cv = 0.0;
    cls.tiers.resize(1);
    cls.tiers[0].pure_delay = 1.0;
  }

  Server* add_server(const std::string& name) {
    Server::Params p;
    p.name = name;
    p.thread_pool_size = 100;
    servers.push_back(std::make_unique<Server>(sim, p));
    return servers.back().get();
  }

  RequestContext ctx() {
    RequestContext c;
    c.id = next_id++;
    c.request_class = &cls;
    return c;
  }

  Simulation sim;
  RequestClass cls;
  std::vector<std::unique_ptr<Server>> servers;
  std::uint64_t next_id = 1;
};

TEST_F(LbFixture, ThrowsWithoutBackends) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  EXPECT_THROW(lb.dispatch(ctx(), [] {}), std::runtime_error);
}

TEST_F(LbFixture, RoundRobinCyclesEvenly) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  Server* a = add_server("a");
  Server* b = add_server("b");
  Server* c = add_server("c");
  lb.add_backend(a);
  lb.add_backend(b);
  lb.add_backend(c);
  for (int i = 0; i < 9; ++i) lb.dispatch(ctx(), [] {});
  EXPECT_EQ(a->in_flight(), 3u);
  EXPECT_EQ(b->in_flight(), 3u);
  EXPECT_EQ(c->in_flight(), 3u);
  EXPECT_EQ(lb.total_dispatched(), 9u);
}

TEST_F(LbFixture, LeastConnectionsPrefersIdle) {
  LoadBalancer lb("lb", LbPolicy::kLeastConnections);
  Server* a = add_server("a");
  Server* b = add_server("b");
  lb.add_backend(a);
  lb.add_backend(b);
  // Four requests: leastconn alternates because outstanding counts grow.
  for (int i = 0; i < 4; ++i) lb.dispatch(ctx(), [] {});
  EXPECT_EQ(lb.outstanding(a), 2u);
  EXPECT_EQ(lb.outstanding(b), 2u);
}

TEST_F(LbFixture, LeastConnectionsRebalancesAfterCompletion) {
  LoadBalancer lb("lb", LbPolicy::kLeastConnections);
  Server* a = add_server("a");
  lb.add_backend(a);
  lb.dispatch(ctx(), [] {});
  lb.dispatch(ctx(), [] {});
  Server* b = add_server("b");
  lb.add_backend(b);
  // New server has 0 outstanding: next dispatches go there first.
  lb.dispatch(ctx(), [] {});
  lb.dispatch(ctx(), [] {});
  EXPECT_EQ(lb.outstanding(a), 2u);
  EXPECT_EQ(lb.outstanding(b), 2u);
}

TEST_F(LbFixture, OutstandingDecrementsOnCompletion) {
  LoadBalancer lb("lb", LbPolicy::kLeastConnections);
  Server* a = add_server("a");
  lb.add_backend(a);
  int done = 0;
  lb.dispatch(ctx(), [&] { ++done; });
  EXPECT_EQ(lb.outstanding(a), 1u);
  sim.run_all();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(lb.outstanding(a), 0u);
}

TEST_F(LbFixture, RemovedBackendGetsNoNewWork) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  Server* a = add_server("a");
  Server* b = add_server("b");
  lb.add_backend(a);
  lb.add_backend(b);
  lb.dispatch(ctx(), [] {});
  lb.remove_backend(a);
  EXPECT_EQ(lb.backend_count(), 1u);
  for (int i = 0; i < 4; ++i) lb.dispatch(ctx(), [] {});
  EXPECT_LE(a->in_flight(), 1u);  // only the pre-removal request
  EXPECT_GE(b->in_flight(), 4u);
}

TEST_F(LbFixture, InFlightCompletionAfterRemovalStillAccounted) {
  LoadBalancer lb("lb", LbPolicy::kLeastConnections);
  Server* a = add_server("a");
  lb.add_backend(a);
  int done = 0;
  lb.dispatch(ctx(), [&] { ++done; });
  lb.remove_backend(a);
  sim.run_all();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(lb.outstanding(a), 0u);
}

TEST_F(LbFixture, DuplicateAddIsIgnored) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  Server* a = add_server("a");
  lb.add_backend(a);
  lb.add_backend(a);
  EXPECT_EQ(lb.backend_count(), 1u);
}

TEST_F(LbFixture, PolicySwitchAtRuntime) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  EXPECT_EQ(lb.policy(), LbPolicy::kRoundRobin);
  lb.set_policy(LbPolicy::kLeastConnections);
  EXPECT_EQ(lb.policy(), LbPolicy::kLeastConnections);
}

TEST_F(LbFixture, ParksRequestsWhileAllBackendsGone) {
  // HAProxy-style surge queue: once a backend has *ever* existed, losing all
  // of them (crash windows) parks new work instead of throwing.
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  Server* a = add_server("a");
  lb.add_backend(a);
  lb.remove_backend(a);
  int done = 0;
  lb.dispatch(ctx(), [&] { ++done; });
  lb.dispatch(ctx(), [&] { ++done; });
  EXPECT_EQ(lb.surge_queued(), 2u);
  EXPECT_EQ(lb.total_dispatched(), 0u);
  // A backend coming back (restart) flushes the queue in FIFO order.
  Server* b = add_server("b");
  lb.add_backend(b);
  EXPECT_EQ(lb.surge_queued(), 0u);
  EXPECT_EQ(lb.total_dispatched(), 2u);
  sim.run_all();
  EXPECT_EQ(done, 2);
}

TEST_F(LbFixture, NeverHadBackendStillThrows) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  EXPECT_THROW(lb.dispatch(ctx(), [] {}), std::runtime_error);
  EXPECT_EQ(lb.surge_queued(), 0u);
}

// Determinism regression: the pick sequence must depend only on the logical
// registration order, never on where the Server objects happen to live in
// memory. The old implementation keyed outstanding-connection counts by
// Server* in an unordered_map — iteration order (and any future tie-break
// someone might write against it) would have followed allocation addresses.
// Two topologies whose servers are *allocated* in shuffled order (with heap
// padding so addresses genuinely differ) but *registered* identically must
// produce byte-identical pick sequences under both policies.
TEST(LbDeterminism, PickSequenceIndependentOfAllocationOrder) {
  struct Topology {
    Simulation sim;
    std::vector<std::unique_ptr<Server>> owners;
    std::vector<Server*> ordered;  // logical registration order a,b,c,d

    explicit Topology(const std::vector<int>& allocation_order) {
      ordered.resize(4, nullptr);
      std::vector<std::unique_ptr<int[]>> padding;
      for (int which : allocation_order) {
        // Perturb heap layout between server allocations.
        padding.push_back(std::make_unique<int[]>(
            64 * static_cast<std::size_t>(which + 1)));
        Server::Params p;
        p.name = std::string(1, static_cast<char>('a' + which));
        p.thread_pool_size = 100;
        owners.push_back(std::make_unique<Server>(sim, p));
        ordered[static_cast<std::size_t>(which)] = owners.back().get();
      }
    }
  };

  RequestClass cls;
  cls.name = "c";
  cls.demand_cv = 0.0;
  cls.tiers.resize(1);
  cls.tiers[0].pure_delay = 1.0;

  for (LbPolicy policy :
       {LbPolicy::kLeastConnections, LbPolicy::kRoundRobin}) {
    auto pick_sequence = [&cls, policy](const std::vector<int>& alloc_order) {
      Topology topo(alloc_order);
      LoadBalancer lb("lb", policy);
      for (Server* s : topo.ordered) lb.add_backend(s);
      std::string picks;
      std::uint64_t id = 1;
      for (int i = 0; i < 32; ++i) {
        RequestContext ctx;
        ctx.id = id++;
        ctx.request_class = &cls;
        // Track which server the dispatch landed on via in_flight deltas.
        std::vector<std::size_t> before;
        before.reserve(topo.ordered.size());
        for (Server* s : topo.ordered) before.push_back(s->in_flight());
        lb.dispatch(ctx, [] {});
        for (std::size_t k = 0; k < topo.ordered.size(); ++k) {
          if (topo.ordered[k]->in_flight() != before[k]) {
            picks += static_cast<char>('a' + static_cast<char>(k));
          }
        }
        // Drain a request midway so leastconn ties re-form.
        if (i == 15) topo.sim.run_all();
      }
      topo.sim.run_all();
      return picks;
    };

    const std::string forward = pick_sequence({0, 1, 2, 3});
    const std::string shuffled = pick_sequence({3, 1, 0, 2});
    const std::string reversed = pick_sequence({2, 3, 1, 0});
    EXPECT_EQ(forward, shuffled) << to_string(policy);
    EXPECT_EQ(forward, reversed) << to_string(policy);
    EXPECT_EQ(forward.size(), 32u) << to_string(policy);
  }
}

TEST(LbPolicyNames, ToString) {
  EXPECT_EQ(to_string(LbPolicy::kRoundRobin), "roundrobin");
  EXPECT_EQ(to_string(LbPolicy::kLeastConnections), "leastconn");
}

}  // namespace
}  // namespace conscale
