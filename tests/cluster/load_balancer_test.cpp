#include "cluster/load_balancer.h"

#include <map>
#include <memory>

#include <gtest/gtest.h>

namespace conscale {
namespace {

struct LbFixture : ::testing::Test {
  LbFixture() {
    cls.name = "c";
    cls.demand_cv = 0.0;
    cls.tiers.resize(1);
    cls.tiers[0].pure_delay = 1.0;
  }

  Server* add_server(const std::string& name) {
    Server::Params p;
    p.name = name;
    p.thread_pool_size = 100;
    servers.push_back(std::make_unique<Server>(sim, p));
    return servers.back().get();
  }

  RequestContext ctx() {
    RequestContext c;
    c.id = next_id++;
    c.request_class = &cls;
    return c;
  }

  Simulation sim;
  RequestClass cls;
  std::vector<std::unique_ptr<Server>> servers;
  std::uint64_t next_id = 1;
};

TEST_F(LbFixture, ThrowsWithoutBackends) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  EXPECT_THROW(lb.dispatch(ctx(), [] {}), std::runtime_error);
}

TEST_F(LbFixture, RoundRobinCyclesEvenly) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  Server* a = add_server("a");
  Server* b = add_server("b");
  Server* c = add_server("c");
  lb.add_backend(a);
  lb.add_backend(b);
  lb.add_backend(c);
  for (int i = 0; i < 9; ++i) lb.dispatch(ctx(), [] {});
  EXPECT_EQ(a->in_flight(), 3u);
  EXPECT_EQ(b->in_flight(), 3u);
  EXPECT_EQ(c->in_flight(), 3u);
  EXPECT_EQ(lb.total_dispatched(), 9u);
}

TEST_F(LbFixture, LeastConnectionsPrefersIdle) {
  LoadBalancer lb("lb", LbPolicy::kLeastConnections);
  Server* a = add_server("a");
  Server* b = add_server("b");
  lb.add_backend(a);
  lb.add_backend(b);
  // Four requests: leastconn alternates because outstanding counts grow.
  for (int i = 0; i < 4; ++i) lb.dispatch(ctx(), [] {});
  EXPECT_EQ(lb.outstanding(a), 2u);
  EXPECT_EQ(lb.outstanding(b), 2u);
}

TEST_F(LbFixture, LeastConnectionsRebalancesAfterCompletion) {
  LoadBalancer lb("lb", LbPolicy::kLeastConnections);
  Server* a = add_server("a");
  lb.add_backend(a);
  lb.dispatch(ctx(), [] {});
  lb.dispatch(ctx(), [] {});
  Server* b = add_server("b");
  lb.add_backend(b);
  // New server has 0 outstanding: next dispatches go there first.
  lb.dispatch(ctx(), [] {});
  lb.dispatch(ctx(), [] {});
  EXPECT_EQ(lb.outstanding(a), 2u);
  EXPECT_EQ(lb.outstanding(b), 2u);
}

TEST_F(LbFixture, OutstandingDecrementsOnCompletion) {
  LoadBalancer lb("lb", LbPolicy::kLeastConnections);
  Server* a = add_server("a");
  lb.add_backend(a);
  int done = 0;
  lb.dispatch(ctx(), [&] { ++done; });
  EXPECT_EQ(lb.outstanding(a), 1u);
  sim.run_all();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(lb.outstanding(a), 0u);
}

TEST_F(LbFixture, RemovedBackendGetsNoNewWork) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  Server* a = add_server("a");
  Server* b = add_server("b");
  lb.add_backend(a);
  lb.add_backend(b);
  lb.dispatch(ctx(), [] {});
  lb.remove_backend(a);
  EXPECT_EQ(lb.backend_count(), 1u);
  for (int i = 0; i < 4; ++i) lb.dispatch(ctx(), [] {});
  EXPECT_LE(a->in_flight(), 1u);  // only the pre-removal request
  EXPECT_GE(b->in_flight(), 4u);
}

TEST_F(LbFixture, InFlightCompletionAfterRemovalStillAccounted) {
  LoadBalancer lb("lb", LbPolicy::kLeastConnections);
  Server* a = add_server("a");
  lb.add_backend(a);
  int done = 0;
  lb.dispatch(ctx(), [&] { ++done; });
  lb.remove_backend(a);
  sim.run_all();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(lb.outstanding(a), 0u);
}

TEST_F(LbFixture, DuplicateAddIsIgnored) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  Server* a = add_server("a");
  lb.add_backend(a);
  lb.add_backend(a);
  EXPECT_EQ(lb.backend_count(), 1u);
}

TEST_F(LbFixture, PolicySwitchAtRuntime) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  EXPECT_EQ(lb.policy(), LbPolicy::kRoundRobin);
  lb.set_policy(LbPolicy::kLeastConnections);
  EXPECT_EQ(lb.policy(), LbPolicy::kLeastConnections);
}

TEST_F(LbFixture, ParksRequestsWhileAllBackendsGone) {
  // HAProxy-style surge queue: once a backend has *ever* existed, losing all
  // of them (crash windows) parks new work instead of throwing.
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  Server* a = add_server("a");
  lb.add_backend(a);
  lb.remove_backend(a);
  int done = 0;
  lb.dispatch(ctx(), [&] { ++done; });
  lb.dispatch(ctx(), [&] { ++done; });
  EXPECT_EQ(lb.surge_queued(), 2u);
  EXPECT_EQ(lb.total_dispatched(), 0u);
  // A backend coming back (restart) flushes the queue in FIFO order.
  Server* b = add_server("b");
  lb.add_backend(b);
  EXPECT_EQ(lb.surge_queued(), 0u);
  EXPECT_EQ(lb.total_dispatched(), 2u);
  sim.run_all();
  EXPECT_EQ(done, 2);
}

TEST_F(LbFixture, NeverHadBackendStillThrows) {
  LoadBalancer lb("lb", LbPolicy::kRoundRobin);
  EXPECT_THROW(lb.dispatch(ctx(), [] {}), std::runtime_error);
  EXPECT_EQ(lb.surge_queued(), 0u);
}

TEST(LbPolicyNames, ToString) {
  EXPECT_EQ(to_string(LbPolicy::kRoundRobin), "roundrobin");
  EXPECT_EQ(to_string(LbPolicy::kLeastConnections), "leastconn");
}

}  // namespace
}  // namespace conscale
