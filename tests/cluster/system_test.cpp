#include "cluster/ntier_system.h"

#include <gtest/gtest.h>

#include "experiments/scenario.h"

namespace conscale {
namespace {

// A small 3-tier system built from the standard scenario.
struct SystemFixture : ::testing::Test {
  SystemFixture()
      : params(make_params()), mix(params.make_mix()),
        system(sim, params.system_config()) {
    sim.run_until(0.01);  // let bootstrap VMs come online
  }

  static ScenarioParams make_params() {
    ScenarioParams p = ScenarioParams::test_scale();
    p.web_init = 1;
    p.app_init = 1;
    p.db_init = 2;
    return p;
  }

  RequestContext ctx() {
    RequestContext c;
    c.id = next_id++;
    c.request_class = &mix.classes().front();
    c.issued_at = sim.now();
    return c;
  }

  Simulation sim;
  ScenarioParams params;
  RequestMix mix;
  NTierSystem system;
  std::uint64_t next_id = 1;
};

TEST_F(SystemFixture, TopologyMatchesConfig) {
  ASSERT_EQ(system.tier_count(), 3u);
  EXPECT_EQ(system.tier(0).name(), "Apache");
  EXPECT_EQ(system.tier(1).name(), "Tomcat");
  EXPECT_EQ(system.tier(2).name(), "MySQL");
  EXPECT_EQ(system.tier(0).running_vms(), 1u);
  EXPECT_EQ(system.tier(2).running_vms(), 2u);
  EXPECT_EQ(system.total_billed_vms(), 4u);
}

TEST_F(SystemFixture, TierByNameLookup) {
  EXPECT_EQ(&system.tier_by_name("MySQL"), &system.tier(2));
  EXPECT_THROW(system.tier_by_name("NoSuch"), std::out_of_range);
}

TEST_F(SystemFixture, RequestFlowsThroughAllTiers) {
  bool done = false;
  system.submit(ctx(), [&] { done = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(done);
  // Every tier saw work: the request visited web -> app -> db (twice).
  EXPECT_EQ(system.tier(0).running_servers()[0]->completed_requests(), 1u);
  EXPECT_EQ(system.tier(1).running_servers()[0]->completed_requests(), 1u);
  std::uint64_t db_queries = 0;
  for (Server* s : system.tier(2).running_servers()) {
    db_queries += s->completed_requests();
  }
  EXPECT_EQ(db_queries, 2u);  // app_db_queries = 2
}

TEST_F(SystemFixture, ManyRequestsAllComplete) {
  int done = 0;
  for (int i = 0; i < 200; ++i) system.submit(ctx(), [&] { ++done; });
  sim.run_until(30.0);
  EXPECT_EQ(done, 200);
}

TEST_F(SystemFixture, ScaledOutVmReceivesTraffic) {
  system.tier(1).scale_out();
  sim.run_until(20.0);
  ASSERT_EQ(system.tier(1).running_vms(), 2u);
  int done = 0;
  for (int i = 0; i < 100; ++i) system.submit(ctx(), [&] { ++done; });
  sim.run_until(40.0);
  EXPECT_EQ(done, 100);
  // leastconn should spread requests across both Tomcats.
  for (Server* s : system.tier(1).running_servers()) {
    EXPECT_GT(s->completed_requests(), 20u) << s->name();
  }
}

TEST_F(SystemFixture, VmReadyCallbacksMulticast) {
  int calls_a = 0, calls_b = 0;
  system.add_vm_ready_callback([&](std::size_t, Vm&) { ++calls_a; });
  system.add_vm_ready_callback([&](std::size_t, Vm&) { ++calls_b; });
  system.tier(2).scale_out();
  sim.run_until(20.0);
  EXPECT_EQ(calls_a, 1);
  EXPECT_EQ(calls_b, 1);
}

// The tier chain is generic: a 4-tier deployment (e.g. web -> app ->
// microservice -> db) wires and serves end to end.
TEST(NTierSystem, FourTierChainWorks) {
  Simulation sim;
  SystemConfig config;
  for (int i = 0; i < 4; ++i) {
    TierConfig tc;
    tc.name = "T" + std::to_string(i);
    tc.server_template.thread_pool_size = 64;
    tc.server_template.seed = 100 + static_cast<std::uint64_t>(i);
    config.tiers.push_back(tc);
  }
  config.initial_vms = {1, 1, 2, 1};
  NTierSystem system(sim, config);

  RequestClass cls;
  cls.name = "deep";
  cls.demand_cv = 0.0;
  cls.tiers.resize(4);
  for (int i = 0; i < 3; ++i) {
    cls.tiers[static_cast<std::size_t>(i)].cpu_pre = 0.001;
    cls.tiers[static_cast<std::size_t>(i)].downstream_calls = 1;
  }
  cls.tiers[3].cpu_pre = 0.002;

  int done = 0;
  sim.run_until(0.01);
  for (int i = 0; i < 50; ++i) {
    RequestContext ctx;
    ctx.id = static_cast<std::uint64_t>(i);
    ctx.request_class = &cls;
    system.submit(ctx, [&] { ++done; });
  }
  sim.run_until(10.0);
  EXPECT_EQ(done, 50);
  // Every tier processed every request (tier 2 split across 2 replicas).
  for (std::size_t t = 0; t < 4; ++t) {
    std::uint64_t completed = 0;
    for (Server* s : system.tier(t).running_servers()) {
      completed += s->completed_requests();
    }
    EXPECT_EQ(completed, 50u) << "tier " << t;
  }
}

TEST(NTierSystem, RejectsBadConfig) {
  Simulation sim;
  SystemConfig empty;
  EXPECT_THROW(NTierSystem(sim, empty), std::invalid_argument);
  SystemConfig mismatched;
  mismatched.tiers.resize(2);
  mismatched.initial_vms = {1};
  EXPECT_THROW(NTierSystem(sim, mismatched), std::invalid_argument);
}

}  // namespace
}  // namespace conscale
