#include <gtest/gtest.h>

#include "cluster/tier_group.h"
#include "cluster/vm.h"

namespace conscale {
namespace {

Server::Params server_template() {
  Server::Params p;
  p.cores = 1;
  p.thread_pool_size = 10;
  return p;
}

RequestClass delay_class() {
  RequestClass c;
  c.name = "d";
  c.demand_cv = 0.0;
  c.tiers.resize(1);
  c.tiers[0].pure_delay = 1.0;
  return c;
}

TEST(Vm, ProvisioningDelayBeforeReady) {
  Simulation sim;
  bool ready = false;
  Vm vm(sim, server_template(), 15.0, [&](Vm&) { ready = true; });
  EXPECT_EQ(vm.state(), VmState::kProvisioning);
  EXPECT_TRUE(vm.billed());
  sim.run_until(14.9);
  EXPECT_FALSE(ready);
  sim.run_until(15.1);
  EXPECT_TRUE(ready);
  EXPECT_EQ(vm.state(), VmState::kRunning);
}

TEST(Vm, ZeroDelayStillAsync) {
  Simulation sim;
  bool ready = false;
  Vm vm(sim, server_template(), 0.0, [&](Vm&) { ready = true; });
  EXPECT_FALSE(ready);  // not synchronous in the constructor
  sim.run_until(0.1);
  EXPECT_TRUE(ready);
}

TEST(Vm, DrainWaitsForInFlightWork) {
  Simulation sim;
  Vm vm(sim, server_template(), 0.0, [](Vm&) {});
  sim.run_until(0.1);
  const RequestClass cls = delay_class();
  RequestContext ctx;
  ctx.request_class = &cls;
  vm.server().handle(ctx, [] {});
  bool stopped = false;
  vm.drain([&](Vm&) { stopped = true; });
  EXPECT_EQ(vm.state(), VmState::kDraining);
  EXPECT_TRUE(vm.billed());
  sim.run_until(0.5);
  EXPECT_FALSE(stopped);
  sim.run_until(2.0);
  EXPECT_TRUE(stopped);
  EXPECT_EQ(vm.state(), VmState::kStopped);
  EXPECT_FALSE(vm.billed());
}

TEST(Vm, DrainIdleStopsImmediately) {
  Simulation sim;
  Vm vm(sim, server_template(), 0.0, [](Vm&) {});
  sim.run_until(0.1);
  bool stopped = false;
  vm.drain([&](Vm&) { stopped = true; });
  EXPECT_TRUE(stopped);
}

TEST(CpuMeter, FirstSamplePrimes) {
  CpuMeter meter;
  EXPECT_DOUBLE_EQ(meter.sample(1.0, 0.5, 1), 0.0);
  EXPECT_DOUBLE_EQ(meter.sample(2.0, 1.0, 1), 0.5);
  EXPECT_DOUBLE_EQ(meter.sample(3.0, 2.0, 1), 1.0);
}

TEST(CpuMeter, ClampsToUnitRange) {
  CpuMeter meter;
  meter.sample(0.0, 0.0, 1);
  EXPECT_DOUBLE_EQ(meter.sample(1.0, 5.0, 1), 1.0);
  EXPECT_DOUBLE_EQ(meter.sample(2.0, 4.0, 1), 0.0);  // negative delta clamps
}

TierConfig tier_config(std::size_t min_vms = 1, std::size_t max_vms = 4) {
  TierConfig tc;
  tc.name = "App";
  tc.server_template = server_template();
  tc.vm_prep_delay = 5.0;
  tc.min_vms = min_vms;
  tc.max_vms = max_vms;
  return tc;
}

TEST(TierGroup, BootstrapIsImmediatelyProvisioning) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  tier.bootstrap(2);
  EXPECT_EQ(tier.billed_vms(), 2u);
  sim.run_until(0.1);  // zero prep delay for bootstrap VMs
  EXPECT_EQ(tier.running_vms(), 2u);
  EXPECT_EQ(tier.lb().backend_count(), 2u);
}

TEST(TierGroup, ScaleOutTakesPrepDelay) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  tier.bootstrap(1);
  sim.run_until(1.0);
  EXPECT_TRUE(tier.scale_out());
  EXPECT_EQ(tier.provisioning_vms(), 1u);
  EXPECT_EQ(tier.billed_vms(), 2u);
  EXPECT_EQ(tier.running_vms(), 1u);
  sim.run_until(6.5);  // 1.0 + 5.0 prep
  EXPECT_EQ(tier.running_vms(), 2u);
  EXPECT_EQ(tier.provisioning_vms(), 0u);
}

TEST(TierGroup, ScaleOutRespectsMax) {
  Simulation sim;
  TierGroup tier(sim, tier_config(1, 2));
  tier.bootstrap(2);
  sim.run_until(0.1);
  EXPECT_FALSE(tier.scale_out());
}

TEST(TierGroup, ScaleInRespectsMin) {
  Simulation sim;
  TierGroup tier(sim, tier_config(2, 4));
  tier.bootstrap(2);
  sim.run_until(0.1);
  EXPECT_FALSE(tier.scale_in());
  tier.scale_out();
  sim.run_until(6.0);
  EXPECT_TRUE(tier.scale_in());
}

TEST(TierGroup, ScaleInRemovesNewestAndDeregisters) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  tier.bootstrap(1);
  sim.run_until(0.1);
  tier.scale_out();
  sim.run_until(6.0);
  EXPECT_EQ(tier.lb().backend_count(), 2u);
  EXPECT_TRUE(tier.scale_in());
  EXPECT_EQ(tier.lb().backend_count(), 1u);
  sim.run_until(7.0);
  EXPECT_EQ(tier.billed_vms(), 1u);
  // The survivor is the original VM (LIFO retirement).
  EXPECT_EQ(tier.running_servers().front()->name(), "App1");
}

TEST(TierGroup, VmReadyCallbackFires) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  std::vector<std::string> ready_names;
  tier.set_vm_ready_callback(
      [&](Vm& vm) { ready_names.push_back(vm.name()); });
  tier.bootstrap(1);
  sim.run_until(0.1);
  tier.scale_out();
  sim.run_until(10.0);
  ASSERT_EQ(ready_names.size(), 2u);
  EXPECT_EQ(ready_names[0], "App1");
  EXPECT_EQ(ready_names[1], "App2");
}

TEST(TierGroup, SoftResourcesApplyToAllAndFutureVms) {
  Simulation sim;
  TierConfig tc = tier_config();
  tc.server_template.downstream_pool_size = 40;
  TierGroup tier(sim, tc);
  tier.bootstrap(1);
  sim.run_until(0.1);
  tier.set_thread_pool_size(25);
  tier.set_downstream_pool_size(12);
  EXPECT_EQ(tier.running_servers()[0]->thread_pool_size(), 25u);
  EXPECT_EQ(tier.running_servers()[0]->downstream_pool_size(), 12u);
  // A VM added later inherits the tier-wide setting.
  tier.scale_out();
  sim.run_until(6.0);
  for (Server* s : tier.running_servers()) {
    EXPECT_EQ(s->thread_pool_size(), 25u);
    EXPECT_EQ(s->downstream_pool_size(), 12u);
  }
}

TEST(TierGroup, CpuUtilizationPollAveragesRunningVms) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  tier.bootstrap(2);
  sim.run_until(0.1);
  tier.poll_avg_cpu_utilization();  // prime meters
  // Load one server with CPU work.
  RequestClass cls;
  cls.name = "cpu";
  cls.demand_cv = 0.0;
  cls.tiers.resize(1);
  cls.tiers[0].cpu_pre = 0.9;
  RequestContext ctx;
  ctx.request_class = &cls;
  tier.running_servers()[0]->handle(ctx, [] {});
  sim.run_until(1.1);
  const double util = tier.poll_avg_cpu_utilization();
  // One of two servers ~90% busy for the interval -> average ~45%.
  EXPECT_NEAR(util, 0.45, 0.05);
}

TEST(TierGroup, VerticalScalingAppliesToRunningAndFutureVms) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  tier.bootstrap(1);
  sim.run_until(0.1);
  EXPECT_EQ(tier.cores(), 1);
  EXPECT_TRUE(tier.set_cores(2));
  EXPECT_EQ(tier.cores(), 2);
  EXPECT_EQ(tier.running_servers()[0]->cores(), 2);
  // A VM provisioned after the change boots with the new core count.
  tier.scale_out();
  sim.run_until(6.0);
  for (Server* s : tier.running_servers()) EXPECT_EQ(s->cores(), 2);
}

TEST(TierGroup, VerticalScalingRejectsBadCoreCount) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  tier.bootstrap(1);
  EXPECT_FALSE(tier.set_cores(0));
  EXPECT_EQ(tier.cores(), 1);
}

// ---- Vm state-machine guards + failure lifecycle --------------------------

TEST(VmTransitions, DrainFromStoppedThrows) {
  Simulation sim;
  Vm vm(sim, server_template(), 0.0, [](Vm&) {});
  sim.run_until(0.1);
  vm.drain([](Vm&) {});
  ASSERT_EQ(vm.state(), VmState::kStopped);
  EXPECT_THROW(vm.drain([](Vm&) {}), std::logic_error);
}

TEST(VmTransitions, DrainWhileProvisioningThrows) {
  Simulation sim;
  Vm vm(sim, server_template(), 5.0, [](Vm&) {});
  ASSERT_EQ(vm.state(), VmState::kProvisioning);
  EXPECT_THROW(vm.drain([](Vm&) {}), std::logic_error);
}

TEST(VmTransitions, DrainIsIdempotentWhileDraining) {
  Simulation sim;
  Vm vm(sim, server_template(), 0.0, [](Vm&) {});
  sim.run_until(0.1);
  const RequestClass cls = delay_class();
  RequestContext ctx;
  ctx.request_class = &cls;
  vm.server().handle(ctx, [] {});
  int stops = 0;
  vm.drain([&](Vm&) { ++stops; });
  ASSERT_EQ(vm.state(), VmState::kDraining);
  EXPECT_NO_THROW(vm.drain([&](Vm&) { ++stops; }));
  sim.run_until(2.0);
  EXPECT_EQ(stops, 1);  // the second callback was dropped, not queued
}

TEST(VmTransitions, FailFromTerminalStatesThrows) {
  Simulation sim;
  Vm stopped(sim, server_template(), 0.0, [](Vm&) {});
  sim.run_until(0.1);
  stopped.drain([](Vm&) {});
  ASSERT_EQ(stopped.state(), VmState::kStopped);
  EXPECT_THROW(stopped.fail(1.0, 1.0), std::logic_error);

  Vm failed(sim, server_template(), 0.0, [](Vm&) {});
  sim.run_until(0.2);
  failed.fail(-1.0, 1.0);  // permanent crash
  ASSERT_EQ(failed.state(), VmState::kFailed);
  EXPECT_THROW(failed.fail(1.0, 1.0), std::logic_error);
}

TEST(VmFail, AbortsInFlightAndStopsBilling) {
  Simulation sim;
  Vm vm(sim, server_template(), 0.0, [](Vm&) {});
  sim.run_until(0.1);
  const RequestClass cls = delay_class();
  RequestContext ctx;
  ctx.request_class = &cls;
  bool done = false;
  vm.server().handle(ctx, [&] { done = true; });
  EXPECT_EQ(vm.server().in_flight(), 1u);
  const std::size_t aborted = vm.fail(-1.0, 1.0);
  EXPECT_EQ(aborted, 1u);
  EXPECT_TRUE(done);  // errored immediately, not hung
  EXPECT_EQ(vm.state(), VmState::kFailed);
  EXPECT_TRUE(vm.failed());
  EXPECT_FALSE(vm.billed());
  EXPECT_EQ(vm.server().in_flight(), 0u);
  EXPECT_EQ(vm.server().aborted_requests(), 1u);
  EXPECT_EQ(vm.crash_count(), 1u);
  sim.run_until(10.0);
  EXPECT_EQ(vm.state(), VmState::kFailed);  // permanent: never restarts
}

TEST(VmFail, RestartReentersProvisioningAndRefiresReady) {
  Simulation sim;
  int ready_count = 0;
  Vm vm(sim, server_template(), 0.0, [&](Vm&) { ++ready_count; });
  sim.run_until(0.1);
  ASSERT_EQ(ready_count, 1);
  vm.fail(2.0, 3.0);  // restart at t=2.1, ready at t=5.1
  EXPECT_EQ(vm.state(), VmState::kFailed);
  sim.run_until(2.5);
  EXPECT_EQ(vm.state(), VmState::kProvisioning);
  EXPECT_TRUE(vm.billed());  // billed again once restarting
  sim.run_until(5.5);
  EXPECT_EQ(vm.state(), VmState::kRunning);
  EXPECT_EQ(ready_count, 2);
}

TEST(VmFail, CrashDuringProvisioningCancelsBoot) {
  Simulation sim;
  int ready_count = 0;
  Vm vm(sim, server_template(), 5.0, [&](Vm&) { ++ready_count; });
  sim.run_until(1.0);
  ASSERT_EQ(vm.state(), VmState::kProvisioning);
  vm.fail(-1.0, 5.0);
  sim.run_until(10.0);
  EXPECT_EQ(ready_count, 0);  // the original boot event must not fire
  EXPECT_EQ(vm.state(), VmState::kFailed);
}

TEST(TierGroupFaults, InjectVmCrashDeregistersAndRestarts) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  tier.bootstrap(2);
  sim.run_until(0.1);
  ASSERT_EQ(tier.lb().backend_count(), 2u);
  EXPECT_TRUE(tier.inject_vm_crash(0, 2.0));
  EXPECT_EQ(tier.lb().backend_count(), 1u);
  EXPECT_EQ(tier.running_vms(), 1u);
  EXPECT_EQ(tier.failed_vms(), 1u);
  EXPECT_EQ(tier.billed_vms(), 1u);
  EXPECT_EQ(tier.total_crashes(), 1u);
  // Restart at ~2.1, then the tier's 5 s prep delay -> running by ~7.5.
  sim.run_until(8.0);
  EXPECT_EQ(tier.running_vms(), 2u);
  EXPECT_EQ(tier.lb().backend_count(), 2u);
  EXPECT_EQ(tier.failed_vms(), 0u);
}

TEST(TierGroupFaults, InjectVmCrashWithNoTargetReturnsFalse) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  tier.bootstrap(1);
  sim.run_until(0.1);
  EXPECT_FALSE(tier.inject_vm_crash(5, 1.0));  // only ordinal 0 exists
  EXPECT_EQ(tier.total_crashes(), 0u);
}

TEST(TierGroupFaults, PrepDelayFactorStretchesScaleOut) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  tier.bootstrap(1);
  sim.run_until(0.1);
  tier.set_prep_delay_factor(3.0);
  EXPECT_TRUE(tier.scale_out());  // 5 s * 3 = 15 s prep
  sim.run_until(6.0);
  EXPECT_EQ(tier.running_vms(), 1u);  // nominal delay would have finished
  sim.run_until(16.0);
  EXPECT_EQ(tier.running_vms(), 2u);
}

TEST(TierGroupFaults, CpuSpeedFactorAppliesAndRestores) {
  Simulation sim;
  TierGroup tier(sim, tier_config());
  tier.bootstrap(2);
  sim.run_until(0.1);
  const auto touched = tier.set_vm_cpu_speed_factor(TierGroup::kAllVms, 0.5);
  ASSERT_EQ(touched.size(), 2u);
  for (Server* s : tier.running_servers()) {
    EXPECT_DOUBLE_EQ(s->cpu_speed(), 0.5);
  }
  // A VM created inside the window inherits the degraded speed.
  tier.scale_out();
  sim.run_until(6.0);
  ASSERT_EQ(tier.running_vms(), 3u);
  for (Server* s : tier.running_servers()) {
    EXPECT_DOUBLE_EQ(s->cpu_speed(), 0.5);
  }
  tier.set_vm_cpu_speed_factor(TierGroup::kAllVms, 1.0);
  for (Server* s : tier.running_servers()) {
    EXPECT_DOUBLE_EQ(s->cpu_speed(), 1.0);
  }
}

TEST(ToStringHelpers, VmState) {
  EXPECT_EQ(to_string(VmState::kProvisioning), "provisioning");
  EXPECT_EQ(to_string(VmState::kRunning), "running");
  EXPECT_EQ(to_string(VmState::kDraining), "draining");
  EXPECT_EQ(to_string(VmState::kStopped), "stopped");
  EXPECT_EQ(to_string(VmState::kFailed), "failed");
}

}  // namespace
}  // namespace conscale
