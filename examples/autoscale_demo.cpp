// autoscale_demo: run the full ConScale scaling pipeline against one of the
// six bursty workload traces and compare it (optionally) with
// EC2-AutoScaling on the same trace — a minimal version of the paper's §V
// evaluation for interactive use.
//
// Usage:
//   autoscale_demo [trace=large_variations|quickly_varying|slowly_varying|
//                   big_spike|dual_phase|steep_tri_phase]
//                  [framework=<registry ref>|both] [duration=720]
//                  [work_scale=4] [max_users=7500] [seed=12345]
#include <iostream>
#include <string>

#include "common/config.h"
#include "experiments/report.h"
#include "experiments/runner.h"

using namespace conscale;

namespace {

TraceKind parse_trace(const std::string& name) {
  for (TraceKind kind : all_trace_kinds()) {
    if (to_string(kind) == name) return kind;
  }
  throw std::runtime_error("unknown trace: " + name);
}

void run_one(const ScenarioParams& params, TraceKind trace,
             const std::string& framework, SimDuration duration) {
  ScalingRunOptions options;
  options.duration = duration;
  const ScalingRunResult result =
      run_scaling(params, trace, framework, options);
  print_performance_timeline(std::cout,
                             result.framework_name + " on " + result.trace_name,
                             result);
  print_scaling_timeline(std::cout, result.framework_name + " scaling activity",
                         result);
  print_events(std::cout, result.events);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) try {
  const Config config = Config::from_args(argc, argv);

  ScenarioParams params = ScenarioParams::paper_default();
  params.work_scale = config.get_double("work_scale", 4.0);
  params.max_users = config.get_double("max_users", 7500.0);
  params.seed = static_cast<std::uint64_t>(config.get_int("seed", 12345));

  const TraceKind trace =
      parse_trace(config.get_string("trace", "large_variations"));
  const SimDuration duration = config.get_double("duration", 720.0);
  const std::string framework = config.get_string("framework", "both");

  if (framework == "both") {
    run_one(params, trace, "ec2", duration);
    run_one(params, trace, "conscale", duration);
  } else {
    // Any registered controller reference works here ("pi", "holt-winters",
    // "conscale(headroom=1.2)", ...); unknown names abort with the list.
    run_one(params, trace, framework, duration);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
