// sct_explorer: interactive exploration of the Scatter-Concurrency-Throughput
// model on a single target tier — the §III workflow as a standalone tool.
//
// Ramps offered concurrency through the target tier's whole operating range,
// collects 50 ms {Q, TP, RT} samples, prints the scatter graph, the detected
// stages, and the estimated rational concurrency range [Q_lower, Q_upper].
//
// Usage:
//   sct_explorer [tier=db|app|web] [cores=1] [mode=browse|readwrite]
//                [dataset_scale=1.0] [max_users=120] [duration=120]
//                [app_vms=1] [db_vms=1] [work_scale=1] [seed=12345]
//
// Examples (reproducing the paper's factor studies):
//   sct_explorer tier=db cores=1            # Fig 7(a): Q_lower ~ 10
//   sct_explorer tier=db cores=2            # Fig 7(d): Q_lower doubles
//   sct_explorer tier=app db_vms=4          # Fig 7(b): Tomcat bottleneck
//   sct_explorer tier=app db_vms=4 dataset_scale=1.5   # Fig 7(e)
//   sct_explorer tier=db app_vms=4 mode=readwrite      # Fig 7(f)
#include <iostream>
#include <string>

#include "common/config.h"
#include "experiments/report.h"
#include "experiments/runner.h"

using namespace conscale;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);

  ScenarioParams params = ScenarioParams::paper_default();
  params.work_scale = config.get_double("work_scale", 1.0);
  params.seed = static_cast<std::uint64_t>(config.get_int("seed", 12345));
  params.mix.dataset_scale = config.get_double("dataset_scale", 1.0);
  const std::string mode = config.get_string("mode", "browse");
  params.mode = mode == "readwrite" ? WorkloadMode::kReadWriteMix
                                    : WorkloadMode::kBrowseOnly;

  const std::string tier_name = config.get_string("tier", "db");
  std::size_t tier = kDbTier;
  if (tier_name == "app") tier = kAppTier;
  if (tier_name == "web") tier = kWebTier;

  const int cores = static_cast<int>(config.get_int("cores", 1));
  if (tier == kDbTier) params.db_cores = cores;
  if (tier == kAppTier) params.app_cores = cores;

  ScatterRunOptions options;
  options.duration = config.get_double("duration", 120.0);
  options.max_users = config.get_double("max_users", 120.0);
  options.fixed_app_vms =
      static_cast<std::size_t>(config.get_int("app_vms", 1));
  options.fixed_db_vms = static_cast<std::size_t>(config.get_int("db_vms", 1));

  std::cout << "SCT exploration: tier=" << tier_name << " cores=" << cores
            << " mode=" << mode
            << " dataset_scale=" << params.mix.dataset_scale
            << " topology=1/" << options.fixed_app_vms << "/"
            << options.fixed_db_vms << "\n\n";

  const ScatterRunResult result = collect_scatter(params, tier, options);
  print_scatter_analysis(std::cout, "SCT scatter analysis", result);

  const std::string csv = config.get_string("csv", "");
  if (!csv.empty()) {
    dump_scatter_csv(csv, result);
    std::cout << "  raw samples written to " << csv << "\n";
  }
  return 0;
}
