// mva_vs_sim: analytical prediction versus simulated measurement.
//
// Solves the closed queueing network of the profiling topology with exact
// MVA (the math DCM-style offline frameworks use) and overlays it with the
// simulator's measured concurrency sweep — the same comparison a modeling
// paper would show to validate its simulator, here in one terminal chart.
//
// Usage:
//   mva_vs_sim [tier=db|app] [cores=1] [mode=browse|readwrite]
//              [dataset_scale=1.0] [max_q=80]
#include <iostream>

#include "common/ascii_chart.h"
#include "common/config.h"
#include "experiments/analytic.h"
#include "experiments/runner.h"

using namespace conscale;

int main(int argc, char** argv) try {
  const Config config = Config::from_args(argc, argv);
  ScenarioParams params = ScenarioParams::paper_default();
  params.mix.dataset_scale = config.get_double("dataset_scale", 1.0);
  params.mode = config.get_string("mode", "browse") == "readwrite"
                    ? WorkloadMode::kReadWriteMix
                    : WorkloadMode::kBrowseOnly;
  const std::string tier_name = config.get_string("tier", "db");
  const std::size_t tier = tier_name == "app" ? kAppTier : kDbTier;
  const int cores = static_cast<int>(config.get_int("cores", 1));
  if (tier == kDbTier) params.db_cores = cores;
  if (tier == kAppTier) params.app_cores = cores;
  const int max_q = static_cast<int>(config.get_int("max_q", 80));

  // Analytical curve: system population swept 1..N, reported against the
  // target tier's local concurrency (what the soft resource actually caps).
  const auto stations = stations_for_tier_profile(params, tier);
  const auto curve = solve_mva(stations, 4 * max_q);
  Series analytic;
  analytic.name = "MVA prediction";
  for (const auto& point : curve) {
    double local = 0.0;
    for (std::size_t i = 0; i < stations.size(); ++i) {
      const std::string& name = stations[i].name;
      const bool db_side = name.rfind("db.", 0) == 0;
      const bool app_side = name.rfind("app.", 0) == 0;
      if (tier == kDbTier && db_side) local += point.queue_lengths[i];
      if (tier == kAppTier && (db_side || app_side)) {
        local += point.queue_lengths[i];
      }
    }
    if (local > max_q) break;
    analytic.x.push_back(local);
    analytic.y.push_back(point.throughput *
                         (tier == kDbTier ? 2.0 : 1.0));  // queries/s for DB
  }

  // Simulated sweep at the same concurrency levels.
  std::vector<int> levels;
  for (int q = 2; q <= max_q; q += (q < 20 ? 2 : 10)) levels.push_back(q);
  SweepOptions options;
  if (tier == kDbTier) options.fixed_app_vms = 4;
  if (tier == kAppTier) options.fixed_db_vms = 4;
  const auto points = run_concurrency_sweep(params, tier, levels, options);
  Series simulated;
  simulated.name = "simulated sweep";
  for (const auto& p : points) {
    simulated.x.push_back(p.concurrency);
    // The sweep reports per-request completions at the target tier; for the
    // DB tier a request is one query already.
    simulated.y.push_back(p.throughput);
  }

  std::cout << "Analytical MVA vs simulation for the "
            << (tier == kDbTier ? "MySQL" : "Tomcat") << " tier ("
            << cores << " core(s))\n";
  ChartOptions co;
  co.x_label = "Concurrency [#]";
  co.y_label = tier == kDbTier ? "Throughput [queries/s]"
                               : "Throughput [requests/s]";
  co.height = 16;
  std::cout << render_lines({analytic, simulated}, co);

  const AnalyticalRange range = analytical_range(stations, 4 * max_q);
  const DcmProfile analytic_profile = train_dcm_profile_analytical(params);
  std::cout << "  analytical TPmax=" << static_cast<int>(range.tp_max)
            << "/s; optimal local concurrency (analytical) = "
            << analytic_profile.tier_optimal_concurrency.at(tier) << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
