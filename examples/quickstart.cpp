// quickstart: the smallest end-to-end use of the library.
//
// Builds the RUBBoS-like 3-tier system (1 Apache / 1 Tomcat / 1 MySQL),
// attaches 50 ms monitoring, serves a constant closed-loop workload, runs
// the SCT model over the collected samples, and prints what it learned.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "conscale/estimator_service.h"
#include "experiments/scenario.h"
#include "metrics/monitor.h"
#include "workload/client.h"

using namespace conscale;

int main() {
  // 1. A deterministic simulation and the standard scenario parameters
  //    (hardware, demands, contention — see experiments/scenario.h).
  Simulation sim;
  ScenarioParams params = ScenarioParams::paper_default();
  params.app_init = 2;  // start 1/2/1 so MySQL is the bottleneck tier

  // 2. The three-tier system and its workload mix.
  NTierSystem system(sim, params.system_config());
  RequestMix mix = params.make_mix();

  // 3. Monitoring: per-server 50 ms {concurrency, throughput, RT} tuples
  //    plus 1 s tier CPU samples, all landing in the warehouse.
  MetricsWarehouse warehouse;
  MonitoringAgent monitor(sim, system, warehouse);

  // 4. A closed-loop population of 2,500 users with 1.5 s think time.
  const WorkloadTrace trace = make_constant_trace(2500.0, 300.0);
  ClientPopulation::Params client_params;
  client_params.think_time_mean = 1.5;
  ClientPopulation clients(
      sim, trace, mix,
      [&system](const RequestContext& ctx, std::function<void()> done) {
        system.submit(ctx, std::move(done));
      },
      client_params);
  clients.set_completion_hook(
      [&monitor](SimTime issued, double rt, const RequestClass&) {
        monitor.on_client_completion(issued, rt);
      });

  // 5. The online Optimal Concurrency Estimator (SCT model, §III).
  ConcurrencyEstimatorService estimator(sim, system, warehouse,
                                        EstimatorServiceParams{});

  // 6. Run five simulated minutes.
  sim.run_until(300.0);

  // 7. Report.
  std::cout << "Ran " << clients.requests_completed() << " requests in "
            << sim.now() << " simulated seconds\n";
  const LogHistogram& rts = clients.response_times();
  std::cout << "End-to-end RT: mean=" << to_ms(rts.mean())
            << " ms, p95=" << to_ms(rts.percentile(95.0))
            << " ms, p99=" << to_ms(rts.percentile(99.0)) << " ms\n";

  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    const TierGroup& tier = system.tier(i);
    const TierSample latest = warehouse.latest_tier(tier.name());
    std::cout << tier.name() << ": " << latest.running_vms
              << " VM(s), CPU " << static_cast<int>(
                     latest.avg_cpu_utilization * 100.0)
              << "%\n";
  }

  for (const auto& name : {"Tomcat", "MySQL"}) {
    if (auto range = estimator.tier_estimate(name)) {
      std::cout << "SCT estimate for " << name << ": rational range ["
                << range->q_lower << ", " << range->q_upper
                << "], optimal concurrency " << range->optimal << "\n";
    } else {
      std::cout << "SCT estimate for " << name
                << ": not available (the tier never showed its descending "
                   "stage under this steady load — expected; see §III)\n";
    }
  }
  return 0;
}
