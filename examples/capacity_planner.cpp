// capacity_planner: uses the simulator as a what-if tool — the offline
// counterpart of the paper's online problem. Given a target peak workload
// and an SLA (p99 bound), it searches topology space (#App/#DB) and, for
// each hardware plan, compares the out-of-the-box soft allocation with the
// SCT-recommended one. Shows that "enough VMs" still misses the SLA when
// soft resources are wrong — the paper's core observation, §I.
//
// Usage:
//   capacity_planner [peak_users=6000] [sla_p99_ms=500] [work_scale=1]
//                    [duration=180] [max_app=5] [max_db=4]
#include <iostream>
#include <optional>

#include "common/config.h"
#include "experiments/runner.h"
#include "workload/client.h"

using namespace conscale;

namespace {

struct PlanResult {
  double p99_ms = 0.0;
  double throughput = 0.0;
};

PlanResult evaluate(const ScenarioParams& base, std::size_t app_vms,
                    std::size_t db_vms, double users, SimDuration duration,
                    std::optional<DcmProfile> soft_plan) {
  ScenarioParams p = base;
  p.app_init = p.app_min = p.app_max = app_vms;
  p.db_init = p.db_min = p.db_max = db_vms;

  Simulation sim;
  RequestMix mix = p.make_mix();
  NTierSystem system(sim, p.system_config());
  if (soft_plan) {
    // Apply the SCT-derived soft allocation before the run begins.
    auto it = soft_plan->tier_optimal_concurrency.find(kAppTier);
    if (it != soft_plan->tier_optimal_concurrency.end()) {
      system.tier(kAppTier).set_thread_pool_size(
          static_cast<std::size_t>(it->second));
    }
    it = soft_plan->tier_optimal_concurrency.find(kDbTier);
    if (it != soft_plan->tier_optimal_concurrency.end()) {
      const double per_app = static_cast<double>(it->second) *
                             static_cast<double>(db_vms) /
                             static_cast<double>(app_vms);
      system.tier(kAppTier).set_downstream_pool_size(
          static_cast<std::size_t>(per_app > 1.0 ? per_app : 1.0));
    }
  }

  const WorkloadTrace trace = make_constant_trace(users, duration + 1.0);
  ClientPopulation::Params cp;
  cp.think_time_mean = 1.5;
  cp.seed = p.seed ^ (app_vms * 131 + db_vms);
  ClientPopulation clients(
      sim, trace, mix,
      [&system](const RequestContext& ctx, std::function<void()> done) {
        system.submit(ctx, std::move(done));
      },
      cp);
  sim.run_until(duration);

  PlanResult result;
  result.p99_ms = to_ms(clients.response_times().percentile(99.0));
  result.throughput =
      static_cast<double>(clients.requests_completed()) / duration;
  return result;
}

}  // namespace

int main(int argc, char** argv) try {
  const Config config = Config::from_args(argc, argv);
  ScenarioParams params = ScenarioParams::paper_default();
  params.work_scale = config.get_double("work_scale", 1.0);
  const double peak_users =
      config.get_double("peak_users", 6000.0) / params.work_scale;
  const double sla = config.get_double("sla_p99_ms", 500.0);
  const SimDuration duration = config.get_double("duration", 180.0);
  const auto max_app = static_cast<std::size_t>(config.get_int("max_app", 5));
  const auto max_db = static_cast<std::size_t>(config.get_int("max_db", 4));

  std::cout << "Capacity planning for " << peak_users << " users, SLA p99 <= "
            << sla << " ms\n";
  std::cout << "Profiling soft-resource optima with the SCT model...\n";
  const DcmProfile sct_plan = train_dcm_profile(params);
  for (const auto& [tier, optimum] : sct_plan.tier_optimal_concurrency) {
    std::cout << "  tier " << tier << " optimal concurrency: " << optimum
              << "\n";
  }

  std::cout << "\n  #App #DB | default soft (1000-60-40) | SCT-tuned soft\n";
  std::cout << "           |  p99[ms]  tp[req/s]  SLA   |  p99[ms]  "
               "tp[req/s]  SLA\n";
  bool found = false;
  for (std::size_t app = 1; app <= max_app; ++app) {
    for (std::size_t db = 1; db <= max_db; ++db) {
      const PlanResult plain =
          evaluate(params, app, db, peak_users, duration, std::nullopt);
      const PlanResult tuned =
          evaluate(params, app, db, peak_users, duration, sct_plan);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "  %4zu %3zu | %8.0f %9.0f  %-4s | %8.0f %9.0f  %-4s\n",
                    app, db, plain.p99_ms, plain.throughput,
                    plain.p99_ms <= sla ? "MET" : "miss", tuned.p99_ms,
                    tuned.throughput, tuned.p99_ms <= sla ? "MET" : "miss");
      std::cout << buf;
      if (!found && tuned.p99_ms <= sla) {
        found = true;
        std::cout << "  ^ smallest plan meeting the SLA with SCT-tuned soft "
                     "resources\n";
      }
    }
  }
  if (!found) {
    std::cout << "  no plan within the search bounds met the SLA\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
