// flash_crowd: a Slashdot-effect scenario (the paper's motivating workload
// class, §I). A quiet bulletin-board site gets linked from a high-traffic
// aggregator: traffic multiplies within seconds. The example runs the same
// flash crowd against all three scaling frameworks and prints a side-by-side
// comparison, including the soft-resource decisions ConScale makes.
//
// Usage:
//   flash_crowd [spike_users=9000] [base_users=900] [duration=480]
//               [work_scale=1] [seed=7]
#include <iostream>
#include <vector>

#include "common/config.h"
#include "experiments/report.h"
#include "experiments/runner.h"

using namespace conscale;

namespace {

// A hand-built flash-crowd trace: quiet, then a near-instant surge that
// holds for two minutes, then a slow drain-off.
WorkloadTrace make_flash_crowd(double base, double spike,
                               SimDuration duration) {
  const auto count = static_cast<std::size_t>(duration) + 1;
  std::vector<double> users(count, base);
  const std::size_t hit = count / 3;            // the link goes live
  const std::size_t hold = hit + 120;           // two minutes of pile-on
  for (std::size_t i = hit; i < count; ++i) {
    if (i < hit + 20) {
      // 20-second pile-on ramp: far faster than any VM can boot.
      users[i] = base + (spike - base) *
                            static_cast<double>(i - hit) / 20.0;
    } else if (i < hold) {
      users[i] = spike;
    } else {
      // Exponential-ish decay back toward base.
      const double frac = static_cast<double>(i - hold) /
                          static_cast<double>(count - hold);
      users[i] = base + (spike - base) * (1.0 - frac) * (1.0 - frac);
    }
  }
  return WorkloadTrace("flash_crowd", 1.0, std::move(users));
}

}  // namespace

int main(int argc, char** argv) try {
  const Config config = Config::from_args(argc, argv);
  ScenarioParams params = ScenarioParams::paper_default();
  params.work_scale = config.get_double("work_scale", 1.0);
  params.seed = static_cast<std::uint64_t>(config.get_int("seed", 7));
  const double base =
      config.get_double("base_users", 900.0) / params.work_scale;
  const double spike =
      config.get_double("spike_users", 9000.0) / params.work_scale;
  const SimDuration duration = config.get_double("duration", 480.0);

  const WorkloadTrace trace = make_flash_crowd(base, spike, duration);
  std::cout << "Flash crowd: " << base << " -> " << spike
            << " users in 20 s, holding 120 s\n\n";

  ScalingRunOptions options;
  options.duration = duration;

  struct Row {
    std::string name;
    double p95, p99, max;
    std::uint64_t completed;
  };
  std::vector<Row> rows;
  for (const std::string framework : {"ec2", "dcm", "conscale"}) {
    ScalingRunOptions run_options = options;
    if (framework == "dcm") {
      // Give DCM a profile trained on exactly these conditions — its best
      // case (no staleness in this example).
      FrameworkConfig fc = make_framework_config(params);
      fc.dcm_profile = train_dcm_profile(params);
      run_options.framework_config = fc;
    }
    const ScalingRunResult result =
        run_scaling(params, trace, framework, run_options);
    rows.push_back({result.framework_name, result.p95_ms, result.p99_ms,
                    result.max_rt_ms, result.requests_completed});
    print_performance_timeline(std::cout, result.framework_name, result);
    if (framework == "conscale") {
      print_events(std::cout, result.events);
    }
    std::cout << '\n';
  }

  std::cout << "=== flash-crowd summary ===\n";
  char buf[160];
  for (const auto& r : rows) {
    std::snprintf(buf, sizeof(buf),
                  "  %-16s p95=%7.0fms p99=%7.0fms max=%7.0fms completed=%llu\n",
                  r.name.c_str(), r.p95, r.p99, r.max,
                  static_cast<unsigned long long>(r.completed));
    std::cout << buf;
  }
  std::cout <<
      "\nReading the result: a single, never-before-seen surge is the one "
      "case where a\nfreshly trained offline profile (DCM, trained on these "
      "exact conditions) can beat\nonline estimation — ConScale has no "
      "measurements of the overload regime until the\noverload itself. Its "
      "advantage appears when bursts recur or conditions drift\n(see "
      "bench_fig10/bench_fig11): there DCM's profile is stale and "
      "EC2-AutoScaling\nnever adapts pools at all.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
