// Figure 7: "The comparison between server throughput-concurrency scatter
// graphs after vertical scaling, RUBBoS dataset size change, and workload
// characteristics change" — six scatter panels showing how Q_lower moves:
//   (a) MySQL 1-core           vs (d) MySQL 2-core       : Q_lower ~doubles
//   (b) Tomcat, original data  vs (e) enlarged dataset   : Q_lower drops
//   (c) MySQL, CPU-intensive   vs (f) read/write I/O mix : Q_lower drops hard
// Plus the paper's "interesting phenomenon" (§III-C.1): horizontal scaling
// does NOT move Q_lower — included here as panels (g)/(h).
#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

namespace {

int run_panel(const BenchEnv& env, const std::string& title,
              std::size_t target_tier, int db_cores, double dataset_scale,
              WorkloadMode mode, std::size_t app_vms, std::size_t db_vms,
              double max_users) {
  ScenarioParams params = env.params;
  params.db_cores = db_cores;
  params.mix.dataset_scale = dataset_scale;
  params.mode = mode;
  ScatterRunOptions options;
  options.duration = std::min<SimDuration>(env.duration, 240.0);
  options.max_users = max_users;
  options.fixed_app_vms = app_vms;
  options.fixed_db_vms = db_vms;
  const ScatterRunResult result =
      collect_scatter(params, target_tier, options);
  print_scatter_analysis(std::cout, title, result);
  return result.range ? result.range->q_lower : -1;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Figure 7 — factor study: what moves the optimal concurrency",
         "Paper: (a)->(d) Q_lower 10->20 with 2x cores; (b)->(e) 20->15 with "
         "bigger dataset; (c)->(f) 15->5 with I/O-intensive mix.");

  const int a = run_panel(env, "Fig 7(a): MySQL 1-core (1/4/1, browse-only)",
                          kDbTier, 1, 1.0, WorkloadMode::kBrowseOnly, 4, 1,
                          140.0);
  const int d = run_panel(env, "Fig 7(d): MySQL 2-core (vertical scaling)",
                          kDbTier, 2, 1.0, WorkloadMode::kBrowseOnly, 10, 1,
                          260.0);
  std::cout << "\n  vertical scaling: Q_lower " << a << " -> " << d
            << "  (paper: 10 -> 20; the ratio is the claim)\n";

  const int b = run_panel(env, "Fig 7(b): Tomcat, original dataset (1/1/4)",
                          kAppTier, 1, 1.0, WorkloadMode::kBrowseOnly, 1, 4,
                          120.0);
  const int e = run_panel(env, "Fig 7(e): Tomcat, enlarged dataset (1.6x)",
                          kAppTier, 1, 1.6, WorkloadMode::kBrowseOnly, 1, 4,
                          120.0);
  std::cout << "\n  dataset change: Q_lower " << b << " -> " << e
            << "  (paper: 20 -> 15)\n";

  const int c = run_panel(env, "Fig 7(c): MySQL, CPU-intensive workload",
                          kDbTier, 1, 1.0, WorkloadMode::kBrowseOnly, 4, 1,
                          140.0);
  const int f = run_panel(env, "Fig 7(f): MySQL, read/write I/O-intensive",
                          kDbTier, 1, 1.0, WorkloadMode::kReadWriteMix, 4, 1,
                          140.0);
  std::cout << "\n  workload type: Q_lower " << c << " -> " << f
            << "  (paper: 15 -> 5)\n";

  // Horizontal scaling invariance ("details omitted" in the paper): the
  // per-server optimum should NOT move when replicas are added.
  const int g = run_panel(env, "Fig 7(g)*: MySQL, 1 replica (1/4/1)",
                          kDbTier, 1, 1.0, WorkloadMode::kBrowseOnly, 4, 1,
                          140.0);
  const int h = run_panel(env, "Fig 7(h)*: MySQL, 2 replicas (1/4/2)",
                          kDbTier, 1, 1.0, WorkloadMode::kBrowseOnly, 4, 2,
                          260.0);
  std::cout << "\n  horizontal scaling: per-server Q_lower " << g << " -> "
            << h << "  (paper: unchanged)\n";
  return 0;
}
