// Microbenchmarks (google-benchmark) for the hot paths of the simulator and
// the SCT pipeline: event scheduling, processor-sharing churn, token-pool
// traffic, interval aggregation, scatter folding, and estimation. These
// bound the cost per simulated event — what the wall-clock time of every
// figure bench is made of.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "metrics/interval.h"
#include "metrics/warehouse.h"
#include "resources/ps_resource.h"
#include "resources/token_pool.h"
#include "sct/estimator.h"
#include "sct/scatter.h"
#include "simcore/lanes/actor.h"
#include "simcore/lanes/lane_engine.h"
#include "simcore/simulation.h"
#include "tier/server.h"
#include "workload/trace.h"

namespace conscale {
namespace {

void BM_EventScheduleAndRun(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    Simulation sim;
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_at(rng.uniform(0.0, 100.0), [] {});
    }
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) *
                          state.iterations());
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1024)->Arg(16384);

void BM_EventCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    std::vector<EventHandle> handles;
    handles.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      handles.push_back(sim.schedule_at(static_cast<double>(i), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_EventCancelHeavy);

void BM_EventChurnScheduleCancelFire(benchmark::State& state) {
  // The timer-reschedule pattern every PS resource and monitor runs:
  // schedule a completion, cancel it when the share changes, schedule a
  // replacement — the arena's allocate/release fast path under a live queue.
  const auto live = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  for (auto _ : state) {
    Simulation sim;
    std::vector<EventHandle> handles(live);
    SimTime t = 0.0;
    for (std::size_t i = 0; i < live; ++i) {
      handles[i] = sim.schedule_at(t + rng.uniform(1.0, 2.0), [] {});
    }
    for (int round = 0; round < 64; ++round) {
      for (std::size_t i = 0; i < live; ++i) {
        handles[i].cancel();
        handles[i] = sim.schedule_at(t + rng.uniform(1.0, 2.0), [] {});
      }
      t += 0.5;
      sim.run_until(t);
    }
    sim.run_all();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(live) * 64 *
                          state.iterations());
}
BENCHMARK(BM_EventChurnScheduleCancelFire)->Arg(16)->Arg(256);

void BM_PsResourceChurn(benchmark::State& state) {
  const auto concurrency = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    ProcessorSharingResource cpu(sim, 2, 1.0, ContentionModel{8.0, 0.01, 1.0});
    Rng rng(7);
    int completions = 0;
    // Keep `concurrency` jobs alive; every completion resubmits.
    std::function<void()> resubmit = [&] {
      ++completions;
      if (completions < 2000) {
        cpu.submit(rng.exponential(0.001), resubmit);
      }
    };
    for (int i = 0; i < concurrency; ++i) {
      cpu.submit(rng.exponential(0.001), resubmit);
    }
    sim.run_all();
    benchmark::DoNotOptimize(completions);
  }
  state.SetItemsProcessed(2000 * state.iterations());
}
BENCHMARK(BM_PsResourceChurn)->Arg(4)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

void BM_WarehouseIngestQuery(benchmark::State& state) {
  // The monitoring hot path: 4 servers pushing 50 ms samples into the
  // warehouse with a windowed estimator query every 100 ingests (the 5 s
  // refresh), on top of an already-long series (realistic run lengths).
  const auto prefill = static_cast<std::size_t>(state.range(0));
  constexpr int kServers = 4;
  constexpr int kSteps = 2000;
  const std::vector<std::string> names = {"Tomcat1", "Tomcat2", "MySQL1",
                                          "MySQL2"};
  for (auto _ : state) {
    state.PauseTiming();
    MetricsWarehouse w;
    // The monitor interns each server name once at attach time and records
    // by dense id thereafter — mirror that here so the bench measures the
    // actual per-sample cost, not a string hash per ingest.
    std::vector<MetricsWarehouse::SeriesId> ids;
    for (const auto& name : names) ids.push_back(w.server_id(name));
    IntervalSample s;
    s.throughput = 1000.0;
    s.mean_rt = 0.01;
    s.concurrency = 8.0;
    s.completions = 50;
    for (std::size_t i = 0; i < prefill; ++i) {
      s.t_end = 0.05 * static_cast<double>(i + 1);
      for (auto id : ids) w.record_server(id, s);
    }
    state.ResumeTiming();
    double newest = 0.0;
    for (int step = 0; step < kSteps; ++step) {
      s.t_end = 0.05 * static_cast<double>(prefill + step + 1);
      newest = s.t_end;
      for (auto id : ids) w.record_server(id, s);
      if (step % 100 == 99) {
        for (auto id : ids) {
          const auto window = w.server_window(id, 180.0, newest);
          benchmark::DoNotOptimize(window.size());
        }
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kSteps) * kServers *
                          state.iterations());
}
BENCHMARK(BM_WarehouseIngestQuery)->Arg(3600)->Arg(14400);

void BM_TokenPoolAcquireRelease(benchmark::State& state) {
  TokenPool pool("bench", 16);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      pool.acquire([] {});
    }
    for (int i = 0; i < 64; ++i) pool.release();
  }
  state.SetItemsProcessed(64 * state.iterations());
}
BENCHMARK(BM_TokenPoolAcquireRelease);

void BM_ServerRequestPath(benchmark::State& state) {
  // Full per-request path through one server: thread pool, CPU phase,
  // pure delay, departure hooks.
  RequestClass cls;
  cls.name = "bench";
  cls.demand_cv = 0.2;
  cls.tiers.resize(1);
  cls.tiers[0].cpu_pre = 0.0005;
  cls.tiers[0].pure_delay = 0.002;
  for (auto _ : state) {
    Simulation sim;
    Server::Params params;
    params.thread_pool_size = 32;
    Server server(sim, params);
    int done = 0;
    std::function<void()> feed = [&] {
      if (done >= 1000) return;
      RequestContext ctx;
      ctx.id = static_cast<std::uint64_t>(done);
      ctx.request_class = &cls;
      server.handle(ctx, [&] { ++done; });
    };
    for (int i = 0; i < 1000; ++i) sim.schedule_at(i * 0.0005, feed);
    sim.run_all();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(1000 * state.iterations());
}
BENCHMARK(BM_ServerRequestPath);

void BM_ScatterFold(benchmark::State& state) {
  Rng rng(3);
  std::vector<IntervalSample> samples(10000);
  for (auto& s : samples) {
    s.concurrency = rng.uniform(1.0, 80.0);
    s.throughput = rng.uniform(100.0, 8000.0);
    s.mean_rt = rng.uniform(0.001, 0.2);
    s.completions = 5;
  }
  for (auto _ : state) {
    ScatterSet scatter;
    scatter.add_all(samples);
    benchmark::DoNotOptimize(scatter.bucket_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(samples.size()) *
                          state.iterations());
}
BENCHMARK(BM_ScatterFold);

void BM_SctEstimate(benchmark::State& state) {
  Rng rng(5);
  ScatterSet scatter;
  for (int rep = 0; rep < 40; ++rep) {
    for (int q = 1; q <= 80; ++q) {
      IntervalSample s;
      s.concurrency = q;
      const double tp = q <= 15 ? 5000.0 * q / 15.0
                       : q <= 35 ? 5000.0
                                 : 5000.0 - 40.0 * (q - 35);
      s.throughput = rng.normal(tp, 150.0);
      s.completions = 5;
      scatter.add(s);
    }
  }
  SctEstimator estimator;
  for (auto _ : state) {
    auto range = estimator.estimate(scatter);
    benchmark::DoNotOptimize(range);
  }
}
BENCHMARK(BM_SctEstimate);

// ---- lane engine (src/simcore/lanes) ---------------------------------------

/// System-lane stand-in: receives a request, replies across the channel.
class BenchEchoSink final : public lanes::LaneActor {
 public:
  explicit BenchEchoSink(lanes::LaneEngine& engine) : LaneActor(engine, 0) {}
  void on_request(std::size_t reply_lane, EventCallback reply) {
    post(reply_lane, 0.05, std::move(reply));
  }
};

/// Shard stand-in: `sessions` closed-loop sessions that think (exponential)
/// and round-trip one message through the sink — the SessionShard hot path
/// (keyed timer churn + cross-lane messaging) without the serving system.
/// The sink (on lane 0) only needs on_request(reply_lane, reply).
template <typename Sink>
class BenchShard final : public lanes::LaneActor {
 public:
  BenchShard(lanes::LaneEngine& engine, std::size_t lane, Sink& sink,
             std::size_t sessions, std::uint64_t seed)
      : LaneActor(engine, lane), sink_(&sink), rng_(seed) {
    for (std::size_t i = 0; i < sessions; ++i) think();
  }

 private:
  void think() {
    schedule_after(rng_.exponential(5.0), [this] { submit(); });
  }
  void submit() {
    const std::size_t reply_lane = lane();
    post(0, 0.05, [this, reply_lane] {
      sink_->on_request(reply_lane, [this] { think(); });
    });
  }
  Sink* sink_;
  Rng rng_;
};

void BM_LaneSessionChurn(benchmark::State& state) {
  // Per-event cost must stay near-flat in the session count: the pending
  // think timers live in a binary heap, so 16x more sessions may cost a
  // log factor, never a linear one (check_bench_ratios.py gates the ratio).
  const auto sessions = static_cast<std::size_t>(state.range(0));
  std::int64_t events = 0;
  for (auto _ : state) {
    lanes::LaneEngine::Options options;
    options.lanes = 2;
    options.lookahead = 0.05;
    lanes::LaneEngine engine(options);
    BenchEchoSink sink(engine);
    BenchShard shard(engine, 1, sink, sessions, /*seed=*/29);
    engine.run(10.0);
    events += static_cast<std::int64_t>(engine.stats().events);
    benchmark::DoNotOptimize(engine.stats().messages);
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_LaneSessionChurn)->Arg(4096)->Arg(65536);

/// Backend tier one LAN hop behind the frontend (the tier-laned cut).
class BenchBackendTier final : public lanes::LaneActor {
 public:
  explicit BenchBackendTier(lanes::LaneEngine& engine) : LaneActor(engine, 1) {}
  void on_request(EventCallback reply_to_frontend) {
    post(0, 0.01, std::move(reply_to_frontend));
  }
};

/// Frontend tier: forwards every request across the 10 ms LAN hop to the
/// backend on lane 1 and the reply back over the 50 ms client network.
class BenchFrontendTier final : public lanes::LaneActor {
 public:
  BenchFrontendTier(lanes::LaneEngine& engine, BenchBackendTier& backend)
      : LaneActor(engine, 0), backend_(&backend) {}
  void on_request(std::size_t reply_lane, EventCallback reply) {
    BenchBackendTier* backend = backend_;
    post(1, 0.01, [this, backend, reply_lane,
                   reply = std::move(reply)]() mutable {
      backend->on_request([this, reply_lane, reply = std::move(reply)]() mutable {
        post(reply_lane, 0.05, std::move(reply));
      });
    });
  }

 private:
  BenchBackendTier* backend_;
};

void BM_LaneTierChurn(benchmark::State& state) {
  // The tier-laned bench_scale hot path: skewed declared channels (50 ms
  // client network vs 10 ms LAN hop) run under the null-message protocol,
  // so every round pays the per-channel EOT fixed point and the anti-flood
  // announce pass on top of the keyed timer churn. Like BM_LaneSessionChurn
  // the per-event cost must stay near-flat in the session count
  // (check_bench_ratios.py gates the ratio).
  const auto sessions = static_cast<std::size_t>(state.range(0));
  std::int64_t events = 0;
  for (auto _ : state) {
    lanes::LaneEngine::Options options;
    options.lanes = 3;
    options.lookahead = 0.01;
    options.protocol = lanes::LaneEngine::Protocol::kNullMessage;
    options.null_floor = 0.005;
    lanes::LaneEngine engine(options);
    engine.declare_channel(2, 0, 0.05);  // shard -> frontend (client net)
    engine.declare_channel(0, 2, 0.05);  // frontend -> shard (client net)
    engine.declare_channel(0, 1, 0.01);  // frontend -> backend (LAN hop)
    engine.declare_channel(1, 0, 0.01);  // backend -> frontend (LAN hop)
    BenchBackendTier backend(engine);
    BenchFrontendTier frontend(engine, backend);
    BenchShard shard(engine, 2, frontend, sessions, /*seed=*/31);
    engine.run(10.0);
    events += static_cast<std::int64_t>(engine.stats().events);
    benchmark::DoNotOptimize(engine.stats().nulls_announced);
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_LaneTierChurn)->Arg(4096)->Arg(65536);

void BM_TraceGeneration(benchmark::State& state) {
  TraceParams params;
  for (auto _ : state) {
    for (TraceKind kind : all_trace_kinds()) {
      const WorkloadTrace trace = make_trace(kind, params);
      benchmark::DoNotOptimize(trace.peak_users());
    }
  }
}
BENCHMARK(BM_TraceGeneration);

}  // namespace
}  // namespace conscale

BENCHMARK_MAIN();
