// Figure 10: "Large performance fluctuations of EC2-AutoScaling compared to
// ConScale using the same 'Large Variation' workload trace." Four panels:
//   (a) EC2 RT + throughput      (b) ConScale RT + throughput
//   (c) EC2 tier CPU + #VMs      (d) ConScale tier CPU + #VMs
// Both start 1/1/1 with soft allocation 1000-60-40.
#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Figure 10 — EC2-AutoScaling vs ConScale, Large Variation trace",
         "Paper: EC2 spikes (periods 62-95 s, 244-285 s, 545-570 s) with "
         "throughput drops; ConScale stays stable and low.");

  ScalingRunOptions options;
  options.duration = env.duration;

  std::vector<RunSpec> specs(2);
  specs[0].params = env.params;
  specs[0].trace = TraceKind::kLargeVariations;
  specs[0].framework = "ec2";
  specs[0].options = options;
  specs[1].params = env.params;
  specs[1].trace = TraceKind::kLargeVariations;
  specs[1].framework = "conscale";
  specs[1].options = options;
  const std::vector<ScalingRunResult> results = env.run_all(specs);
  const ScalingRunResult& ec2 = results[0];
  const ScalingRunResult& con = results[1];

  print_performance_timeline(std::cout, "Fig 10(a): EC2-AutoScaling", ec2);
  print_performance_timeline(std::cout, "Fig 10(b): ConScale", con);
  print_scaling_timeline(std::cout, "Fig 10(c): EC2-AutoScaling scaling",
                         ec2);
  print_scaling_timeline(std::cout, "Fig 10(d): ConScale scaling", con);
  std::cout << "-- EC2-AutoScaling events --\n";
  print_events(std::cout, ec2.events);
  std::cout << "-- ConScale events --\n";
  print_events(std::cout, con.events);

  paper_note("Fig 10: same hardware scaling rule; ConScale additionally "
             "adapts Tomcat threads and the per-Tomcat DB connection pool "
             "after each scaling completes.");
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  summary: p99 EC2=%.0f ms vs ConScale=%.0f ms (paper: 2345 "
                "vs 465); completed %llu vs %llu requests\n",
                ec2.p99_ms, con.p99_ms,
                static_cast<unsigned long long>(ec2.requests_completed),
                static_cast<unsigned long long>(con.requests_completed));
  std::cout << buf;
  env.maybe_dump("fig10_ec2", ec2);
  env.maybe_dump("fig10_conscale", con);
  return 0;
}
