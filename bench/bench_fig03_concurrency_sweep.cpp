// Figure 3: "Performance variation at increasing workload concurrency for
// Tomcat in a 3-tier system" — throughput and response time versus a
// precisely controlled concurrency level, for three conditions:
//   (a) Tomcat 1-core                      -> peak at concurrency ~10
//   (b) Tomcat 2-core                      -> peak at concurrency ~20
//   (c) Tomcat 2-core, doubled dataset     -> peak at concurrency ~15
//
// Method follows §II-B: zero-think closed-loop stress with exactly K users
// and pool sizes set to K, per level.
#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

namespace {

void run_panel(const BenchEnv& env, const std::string& title, int cores,
               double dataset_scale, const std::string& expectation) {
  ScenarioParams params = env.params;
  params.app_cores = cores;
  params.mix.dataset_scale = dataset_scale;

  const std::vector<int> levels = {5, 10, 15, 20, 30, 40, 60, 80, 100};
  SweepOptions options;
  options.fixed_db_vms = 4;  // 1/1/4: Tomcat is the single bottleneck
  options.settle = 4.0 * params.work_scale;
  options.measure = 20.0 * params.work_scale;
  const auto points =
      run_concurrency_sweep(params, kAppTier, levels, options);
  print_sweep(std::cout, title, points);
  paper_note(expectation);

  double best_tp = 0.0;
  for (const auto& p : points) best_tp = std::max(best_tp, p.throughput);
  // Report the knee the way the paper does: the *lowest* concurrency whose
  // throughput reaches the maximum (within a 5% plateau tolerance) — beyond
  // it extra concurrency only buys response time.
  int knee = points.empty() ? 0 : points.back().concurrency;
  for (const auto& p : points) {
    if (p.throughput >= 0.95 * best_tp) {
      knee = p.concurrency;
      break;
    }
  }
  std::cout << "  measured: highest throughput " << static_cast<int>(best_tp)
            << " req/s, reached from concurrency " << knee << " on\n";
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Figure 3 — Tomcat throughput/RT vs controlled concurrency",
         "Paper: optimum at ~10 (1-core), ~20 (2-core), ~15 (2-core, bigger "
         "dataset).");
  run_panel(env, "Fig 3(a): Tomcat 1-core", 1, 1.0,
            "Fig 3(a): peak throughput at concurrency 10 (~1300 req/s).");
  run_panel(env, "Fig 3(b): Tomcat 2-core", 2, 1.0,
            "Fig 3(b): peak throughput at concurrency 20 (~2600 req/s).");
  run_panel(env, "Fig 3(c): Tomcat 2-core, enlarged dataset", 2, 1.6,
            "Fig 3(c): peak moves back to concurrency 15 at lower TPmax.");
  return 0;
}
