// Service-graph evaluation: the fan-out DAG (Gateway -> {SvcA || SvcB} ->
// SharedDB, experiments/graph_scenario.h) driven by the six bursty traces
// under every registered controller. The chain benches answer "can the
// framework hold the tail on a pipeline"; this one asks the same question
// when a stage fans out in parallel, joins on all replies, and two
// independently scaled services meet at one shared backend.
//
// Extra keys beyond the common set:
//   frameworks=a,b,...  controller-registry refs (default: every registered
//                       controller)
//   traces=N            first N trace kinds (CI smoke runs use traces=1)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "experiments/graph_runner.h"
#include "metrics/latency_breakdown.h"

using namespace conscale;
using namespace conscale::bench;

namespace {

std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (list_controllers_requested(argc, argv)) {
    print_controller_list(std::cout);
    return 0;
  }
  BenchEnv env = BenchEnv::from_args(argc, argv, {"traces", "frameworks"});
  const Config config = Config::from_args(argc, argv);
  const long trace_limit = config.get_int("traces", 6);
  const std::vector<ControllerRef> frameworks = frameworks_from(
      config, "ec2,dcm,conscale,pi,fuzzy,vertical,holt-winters");
  banner("Service graph — fan-out DAG with a shared backend",
         "Topology generalization beyond the paper: per-node SCT control on "
         "a DAG whose parallel branches join on all replies and share a "
         "database (DESIGN.md §Service graphs).");

  std::vector<TraceKind> traces = all_trace_kinds();
  if (trace_limit > 0 &&
      static_cast<std::size_t>(trace_limit) < traces.size()) {
    traces.resize(static_cast<std::size_t>(trace_limit));
  }

  const GraphScenario scenario = make_fanout_scenario(env.params);
  const ControllerRegistry& registry = ControllerRegistry::global();

  struct Cell {
    ControllerRef framework;
    TraceKind trace;
    std::string label;
  };
  std::vector<Cell> cells;
  for (const ControllerRef& framework : frameworks) {
    for (TraceKind trace : traces) {
      cells.push_back({framework, trace,
                       registry.at(framework.name).display_name + "/" +
                           to_string(trace)});
    }
  }
  std::cout << "  grid: " << frameworks.size() << " frameworks x "
            << traces.size() << " traces = " << cells.size() << " runs\n";

  const std::vector<GraphRunResult> results = env.map<GraphRunResult>(
      cells.size(), [&](std::size_t i) {
        ScalingRunOptions options = env.scaling_options();
        options.context.set_label(cells[i].label);
        return run_graph_scaling(scenario, cells[i].trace,
                                 to_string(cells[i].framework), options);
      });

  std::size_t index = 0;
  for (const ControllerRef& framework : frameworks) {
    (void)framework;
    std::vector<TailRow> rows;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const ScalingRunResult& r = results[index++].run;
      rows.push_back({r.framework_name, r.trace_name, r.p95_ms, r.p99_ms});
    }
    print_tail_table(std::cout, "fanout3 — " + rows.front().framework, rows);
  }

  // Where does the tail live? Per-node in-server latency for the flagship
  // trace under each controller — on this topology the shared DB inherits
  // cross-traffic no single parent's estimator sees alone.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].trace != TraceKind::kLargeVariations) continue;
    std::cout << "\n  per-node latency (" << cells[i].label << "):\n"
              << LatencyBreakdown::format(results[i].node_latency);
  }

  if (!env.csv_dir.empty()) {
    CsvWriter csv(env.csv_dir + "/dag_summary.csv");
    csv.header({"framework", "trace", "p95_ms", "p99_ms", "sla_500ms",
                "completed", "total_vm_seconds"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const ScalingRunResult& r = results[i].run;
      double vm_seconds = 0.0;
      for (const SystemSample& s : r.system) vm_seconds += s.total_vms;
      csv.raw_row({r.framework_key, r.trace_name, fmt(r.p95_ms),
                   fmt(r.p99_ms), fmt(r.sla_500ms),
                   std::to_string(r.requests_completed), fmt(vm_seconds)});
    }
    std::cout << "  (summary written to " << env.csv_dir
              << "/dag_summary.csv)\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].trace != TraceKind::kLargeVariations) continue;
      const std::string stem = "dag_" + cells[i].framework.name;
      dump_graph_system_csv(env.csv_dir + "/" + stem + ".csv", results[i]);
      dump_node_latency_csv(env.csv_dir + "/" + stem + "_nodes.csv",
                            results[i]);
    }
    std::cout << "  (flagship timelines + node breakdowns written to "
              << env.csv_dir << "/dag_*.csv)\n";
  }

  paper_note("No paper counterpart: the paper evaluates a linear chain; "
             "this grid extends Table I to a DAG topology (per-node SCT "
             "wiring in experiments/graph_scenario.cpp).");
  return 0;
}
