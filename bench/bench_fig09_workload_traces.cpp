// Figure 9: "Realistic workload traces used in our experiments" — the six
// bursty user-count shapes (after Gandhi et al.'s categorization).
#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Figure 9 — the six bursty workload traces",
         "Paper: large variations / quickly varying / slowly varying / big "
         "spike / dual phase / steep tri phase; <= 7500 users over 12 min.");

  TraceParams tp;
  tp.duration = env.duration;
  tp.max_users = env.params.scaled_users(env.params.max_users);
  tp.seed = env.params.seed;
  for (TraceKind kind : all_trace_kinds()) {
    const WorkloadTrace trace = make_trace(kind, tp);
    Series s;
    s.name = trace.name();
    for (std::size_t i = 0; i < trace.samples().size(); i += 2) {
      s.x.push_back(static_cast<double>(i) * trace.sample_period());
      s.y.push_back(trace.samples()[i]);
    }
    ChartOptions co;
    co.x_label = "Timeline [s]";
    co.y_label = "Users [#] — " + trace.name();
    co.height = 10;
    std::cout << render_lines({s}, co);
    std::cout << "  peak=" << static_cast<int>(trace.peak_users())
              << " users, start="
              << static_cast<int>(trace.samples().front()) << " users\n\n";
  }
  return 0;
}
