// Figure 9: "Realistic workload traces used in our experiments" — the six
// bursty user-count shapes (after Gandhi et al.'s categorization).
#include <sstream>

#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Figure 9 — the six bursty workload traces",
         "Paper: large variations / quickly varying / slowly varying / big "
         "spike / dual phase / steep tri phase; <= 7500 users over 12 min.");

  TraceParams tp;
  tp.duration = env.duration;
  tp.max_users = env.params.scaled_users(env.params.max_users);
  tp.seed = env.params.seed;
  // Generate + render each trace concurrently; print in trace order so the
  // output is byte-identical to the serial loop.
  const auto kinds = all_trace_kinds();
  const auto panels = env.map<std::string>(kinds.size(), [&](std::size_t i) {
    const WorkloadTrace trace = make_trace(kinds[i], tp);
    Series s;
    s.name = trace.name();
    for (std::size_t j = 0; j < trace.samples().size(); j += 2) {
      s.x.push_back(static_cast<double>(j) * trace.sample_period());
      s.y.push_back(trace.samples()[j]);
    }
    ChartOptions co;
    co.x_label = "Timeline [s]";
    co.y_label = "Users [#] — " + trace.name();
    co.height = 10;
    std::ostringstream panel;
    panel << render_lines({s}, co);
    panel << "  peak=" << static_cast<int>(trace.peak_users())
          << " users, start="
          << static_cast<int>(trace.samples().front()) << " users\n\n";
    return panel.str();
  });
  for (const std::string& panel : panels) std::cout << panel;
  return 0;
}
