// Overload-with-shedding: the fan-out DAG driven at a multiple of the
// calibrated peak population, with and without entry-point admission
// control. Without shedding the closed-loop queues grow without bound and
// the served tail diverges; with the queue-age bound armed the system
// serves what it can at a bounded tail and reports the rest as rejected.
//
// The acceptance bar (ROADMAP topology item): at overload=2 the shedding
// run's served-request p99 stays within 2x of the fault-free ConScale p99
// at nominal load, on every trace where the no-shedding baseline diverges.
//
// Extra keys beyond the common set:
//   frameworks=a,b,...  controller-registry refs (default: every registered
//                       controller)
//   traces=N            first N trace kinds (CI smoke runs use traces=1)
//   overload=F          peak-population multiplier (default 2)
//   queue_limit=N       entry occupancy bound (default 40)
//   max_queue_age=S     queue-age bound in seconds, before work_scale
//                       compression (default 0.1; scaled by work_scale so
//                       compressed runs shed at the same relative point)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "experiments/graph_runner.h"

using namespace conscale;
using namespace conscale::bench;

namespace {

std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (list_controllers_requested(argc, argv)) {
    print_controller_list(std::cout);
    return 0;
  }
  BenchEnv env = BenchEnv::from_args(
      argc, argv,
      {"traces", "frameworks", "overload", "queue_limit", "max_queue_age"});
  const Config config = Config::from_args(argc, argv);
  const long trace_limit = config.get_int("traces", 6);
  const std::vector<ControllerRef> frameworks = frameworks_from(
      config, "ec2,dcm,conscale,pi,fuzzy,vertical,holt-winters");
  const double overload = config.get_double("overload", 2.0);
  const long long queue_limit = config.get_int("queue_limit", 40);
  const double max_queue_age =
      config.get_double("max_queue_age", 0.1) * env.params.work_scale;
  banner("Service graph — overload with admission shedding",
         "2x the calibrated peak population on the fan-out DAG: without "
         "shedding every queue ages out; with the entry bound armed the "
         "served tail stays controlled and the overflow is reported as "
         "rejected, not buried in the histogram.");

  std::vector<TraceKind> traces = all_trace_kinds();
  if (trace_limit > 0 &&
      static_cast<std::size_t>(trace_limit) < traces.size()) {
    traces.resize(static_cast<std::size_t>(trace_limit));
  }

  // Nominal-load reference (fault-free ConScale): the yardstick the shed
  // runs are measured against.
  const GraphScenario nominal = make_fanout_scenario(env.params);
  ScenarioParams overloaded_params = env.params;
  overloaded_params.max_users *= overload;
  GraphScenario noshed = make_fanout_scenario(overloaded_params);
  GraphScenario shed = noshed;
  shed.graph.admission.enabled = true;
  shed.graph.admission.queue_limit =
      queue_limit > 0 ? static_cast<std::size_t>(queue_limit) : 0;
  shed.graph.admission.max_queue_age = max_queue_age;

  struct Cell {
    const GraphScenario* scenario;
    std::string variant;
    ControllerRef framework;
    TraceKind trace;
  };
  std::vector<Cell> cells;
  for (TraceKind trace : traces) {
    cells.push_back({&nominal, "nominal", ControllerRef{"conscale", {}},
                     trace});
  }
  for (const ControllerRef& framework : frameworks) {
    for (TraceKind trace : traces) {
      cells.push_back({&noshed, "noshed", framework, trace});
      cells.push_back({&shed, "shed", framework, trace});
    }
  }
  std::cout << "  grid: " << traces.size() << " nominal + "
            << frameworks.size() << " frameworks x " << traces.size()
            << " traces x {noshed, shed} = " << cells.size() << " runs\n";

  const std::vector<GraphRunResult> results = env.map<GraphRunResult>(
      cells.size(), [&](std::size_t i) {
        ScalingRunOptions options = env.scaling_options();
        options.context.set_label(cells[i].variant + "/" +
                                  cells[i].framework.name + "/" +
                                  to_string(cells[i].trace));
        return run_graph_scaling(*cells[i].scenario, cells[i].trace,
                                 to_string(cells[i].framework), options);
      });

  // Index the nominal references by trace order.
  std::vector<double> nominal_p99(traces.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    nominal_p99[t] = results[t].run.p99_ms;
  }

  std::cout << "\n  served-request p99 [ms] at overload=" << fmt(overload)
            << " (reference: fault-free ConScale at nominal load):\n"
            << "    framework            trace             nominal    "
               "noshed      shed  shed/nom  shed_ratio\n";
  std::size_t index = traces.size();
  std::size_t bounded = 0;
  std::size_t divergent = 0;
  for (std::size_t f = 0; f < frameworks.size(); ++f) {
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const GraphRunResult& no = results[index++];
      const GraphRunResult& yes = results[index++];
      const double rel = yes.run.p99_ms / nominal_p99[t];
      const double issued =
          static_cast<double>(yes.run.requests_issued);
      const double shed_ratio =
          issued > 0.0 ? yes.run.requests_rejected / issued : 0.0;
      if (no.run.p99_ms > 2.0 * nominal_p99[t]) ++divergent;
      if (yes.run.p99_ms < 2.0 * nominal_p99[t]) ++bounded;
      std::printf("    %-20s %-16s %8.1f  %8.1f  %8.1f  %8.2f  %9.3f\n",
                  yes.run.framework_name.c_str(),
                  yes.run.trace_name.c_str(), nominal_p99[t],
                  no.run.p99_ms, yes.run.p99_ms, rel, shed_ratio);
    }
  }
  std::cout << "\n  summary: " << divergent << "/"
            << frameworks.size() * traces.size()
            << " no-shedding runs diverged (p99 > 2x nominal); " << bounded
            << "/" << frameworks.size() * traces.size()
            << " shedding runs stayed within 2x nominal p99\n";

  if (!env.csv_dir.empty()) {
    CsvWriter csv(env.csv_dir + "/shedding.csv");
    csv.header({"variant", "framework", "trace", "p95_ms", "p99_ms",
                "sla_500ms", "issued", "completed", "rejected",
                "rejected_occupancy", "rejected_age"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const GraphRunResult& r = results[i];
      csv.raw_row({cells[i].variant, r.run.framework_key, r.run.trace_name,
                   fmt(r.run.p95_ms), fmt(r.run.p99_ms),
                   fmt(r.run.sla_500ms),
                   std::to_string(r.run.requests_issued),
                   std::to_string(r.run.requests_completed),
                   std::to_string(r.run.requests_rejected),
                   std::to_string(r.admission.rejected_occupancy),
                   std::to_string(r.admission.rejected_age)});
    }
    std::cout << "  (summary written to " << env.csv_dir
              << "/shedding.csv)\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].trace != TraceKind::kLargeVariations ||
          cells[i].framework.name != "conscale") {
        continue;
      }
      dump_graph_system_csv(
          env.csv_dir + "/shedding_" + cells[i].variant + ".csv",
          results[i]);
    }
  }

  paper_note("No paper counterpart: the paper scales out of overload; this "
             "bench adds the regime where capacity cannot arrive in time "
             "and load must be shed to keep the served tail bounded.");
  return 0;
}
