// Resilience under environment perturbations: how each scaling framework's
// tail latency degrades when the cloud misbehaves. The paper evaluates
// ConScale under clean conditions (Table I, Fig 10/11); this bench stresses
// the same 3-framework × 6-trace grid under the four deterministic fault
// kinds of src/faults:
//
//   crash  a running app-tier VM fails mid-run and restarts later
//   cpu    noisy neighbor: the DB tier runs at half speed for a window
//   boot   degraded provisioning: every scale-out takes 3x longer
//   drop   monitoring blackout: the warehouse ingests nothing for a window
//
// plus the fault-free baseline. Staleness guards (controller + estimator)
// are enabled for every framework so the dropout scenario measures "hold
// the last safe decision", not "act on frozen data".
//
// Extra keys beyond the common set: traces=N limits the grid to the first N
// trace kinds (CI smoke runs use traces=1).
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"

using namespace conscale;
using namespace conscale::bench;

namespace {

std::string format_seconds(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// The four fault schedules, expressed as plan text so this bench exercises
/// the same parse path as `faults=` on any other bench. Times scale with
/// the run so compressed CI runs still place every window inside the run.
std::vector<std::pair<std::string, std::string>> fault_scenarios(
    double duration) {
  const auto at = [&](double fraction) {
    return format_seconds(duration * fraction);
  };
  return {
      {"none", ""},
      {"crash", "crash t=" + at(0.30) + " tier=app vm=0 restart=" + at(0.10)},
      {"cpu", "cpu t=" + at(0.35) + " dur=" + at(0.15) +
                  " tier=db vm=all factor=0.5"},
      {"boot", "boot t=0 dur=" + at(1.0) + " factor=3"},
      {"drop", "drop t=" + at(0.40) + " dur=" + at(0.10)},
  };
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv, {"traces", "frameworks"});
  const Config config = Config::from_args(argc, argv);
  const long trace_limit = config.get_int("traces", 6);
  const std::vector<ControllerRef> frameworks =
      frameworks_from(config, "ec2,dcm,conscale");
  banner("Resilience — EC2-AutoScaling vs DCM vs ConScale under faults",
         "Fault injection beyond the paper: the SCT loop must degrade "
         "gracefully when VMs crash, neighbors steal CPU, provisioning "
         "drags, or monitoring goes dark.");

  std::vector<TraceKind> traces = all_trace_kinds();
  if (trace_limit > 0 &&
      static_cast<std::size_t>(trace_limit) < traces.size()) {
    traces.resize(static_cast<std::size_t>(trace_limit));
  }
  const auto scenarios = fault_scenarios(env.duration);

  // One framework config for all runs, with the dropout guards on: hold
  // decisions when the newest tier sample is older than 5 s, and keep the
  // cached SCT range when the fine-grained window goes stale.
  FrameworkConfig base_config = make_framework_config(env.params);
  base_config.controller.metric_staleness_limit = 5.0;
  base_config.estimator.max_staleness = 30.0;
  FrameworkConfig dcm_config = base_config;
  if (std::any_of(frameworks.begin(), frameworks.end(),
                  [](const ControllerRef& ref) { return ref.name == "dcm"; })) {
    // DCM trains offline once, on clean conditions — the profile does not
    // get to see the faults, exactly like a real pre-trained model would not.
    std::cout << "  training DCM offline (clean conditions)...\n";
    dcm_config.dcm_profile = train_dcm_profile(env.params);
  }

  const ControllerRegistry& registry = ControllerRegistry::global();
  std::vector<RunSpec> specs;
  for (const auto& [fault_name, plan_text] : scenarios) {
    for (const ControllerRef& framework : frameworks) {
      for (TraceKind trace : traces) {
        RunSpec spec;
        spec.label = fault_name + "/" +
                     registry.at(framework.name).display_name + "/" +
                     to_string(trace);
        spec.params = env.params;
        spec.trace = trace;
        spec.framework = to_string(framework);
        spec.options.duration = env.duration;
        spec.options.framework_config =
            framework.name == "dcm" ? dcm_config : base_config;
        if (!plan_text.empty()) {
          spec.options.faults = FaultPlan::parse(plan_text);
        }
        specs.push_back(spec);
      }
    }
  }
  std::cout << "  grid: " << scenarios.size() << " fault scenarios x "
            << frameworks.size() << " frameworks x " << traces.size()
            << " traces = " << specs.size() << " runs\n";
  const std::vector<ScalingRunResult> results = env.run_all(specs);

  // ---- per-fault tail tables + worst-case summary --------------------------
  std::map<std::string, std::map<std::string, double>> worst_p99;
  std::size_t index = 0;
  for (const auto& [fault_name, plan_text] : scenarios) {
    std::vector<TailRow> rows;
    for (std::size_t f = 0; f < frameworks.size(); ++f) {
      for (std::size_t t = 0; t < traces.size(); ++t) {
        const ScalingRunResult& result = results[index++];
        rows.push_back({result.framework_name, result.trace_name,
                        result.p95_ms, result.p99_ms});
        auto& worst = worst_p99[fault_name][result.framework_name];
        worst = std::max(worst, result.p99_ms);
      }
    }
    print_tail_table(std::cout, "fault=" + fault_name, rows);
  }

  std::cout << "\n  worst-case p99 by fault scenario [ms]:\n";
  for (const auto& [fault_name, by_framework] : worst_p99) {
    std::cout << "    " << fault_name << ":";
    for (const auto& [framework, p99] : by_framework) {
      std::cout << " " << framework << "=" << static_cast<int>(p99);
    }
    std::cout << "\n";
  }

  // ---- CSV/JSON artifacts --------------------------------------------------
  if (!env.csv_dir.empty()) {
    CsvWriter csv(env.csv_dir + "/resilience.csv");
    csv.header({"fault", "framework", "trace", "p95_ms", "p99_ms",
                "sla_500ms", "requests_aborted", "crashes_injected",
                "dropped_samples"});
    index = 0;
    for (const auto& [fault_name, plan_text] : scenarios) {
      for (std::size_t f = 0; f < frameworks.size(); ++f) {
        for (std::size_t t = 0; t < traces.size(); ++t) {
          const ScalingRunResult& r = results[index++];
          csv.raw_row({fault_name, r.framework_name, r.trace_name,
                       format_seconds(r.p95_ms), format_seconds(r.p99_ms),
                       format_seconds(r.sla_500ms),
                       std::to_string(r.requests_aborted),
                       std::to_string(r.fault_stats.crashes_injected),
                       std::to_string(r.dropped_samples)});
        }
      }
    }
    std::cout << "  (summary written to " << env.csv_dir
              << "/resilience.csv)\n";
    // Timeline + fault-window dumps for the flagship trace, every scenario.
    index = 0;
    for (const auto& [fault_name, plan_text] : scenarios) {
      for (std::size_t f = 0; f < frameworks.size(); ++f) {
        for (std::size_t t = 0; t < traces.size(); ++t) {
          const ScalingRunResult& r = results[index++];
          if (specs[index - 1].trace != TraceKind::kLargeVariations) continue;
          const std::string stem =
              "resilience_" + fault_name + "_" + r.framework_name;
          env.maybe_dump(stem, r);
          dump_fault_windows_csv(env.csv_dir + "/" + stem + "_windows.csv",
                                 r);
        }
      }
    }
  }

  paper_note("No paper counterpart: resilience grid extends Table I with "
             "deterministic fault injection (see DESIGN.md §7).");
  return 0;
}
