// Cache-tier evaluation: the Frontend -> Cache -> Db chain of
// experiments/graph_scenario.h, where the cache node short-circuits its
// subtree on a hit and the hit ratio churns with the working set. Two
// questions:
//
//   1. Grid — can each controller hold the tail while the churn cycle
//      migrates the critical resource between Frontend and Db mid-run?
//      (frameworks x traces, like the chain benches)
//   2. Sweep — how does the tail degrade as the base hit ratio drops from
//      "cache absorbs everything" to "cache is a pass-through"? Run with
//      the first framework of the list on the flagship trace.
//
// Extra keys beyond the common set:
//   frameworks=a,b,...  controller-registry refs (default: every registered
//                       controller)
//   traces=N            first N trace kinds for the grid
//   ratios=r1,r2,...    base hit ratios for the sweep
//                       (default 0.95,0.85,0.7,0.5,0.25,0)
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"
#include "experiments/graph_runner.h"
#include "metrics/latency_breakdown.h"

using namespace conscale;
using namespace conscale::bench;

namespace {

std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::vector<double> parse_ratios(const std::string& text) {
  std::vector<double> ratios;
  std::stringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) ratios.push_back(std::stod(token));
  }
  return ratios;
}

}  // namespace

int main(int argc, char** argv) {
  if (list_controllers_requested(argc, argv)) {
    print_controller_list(std::cout);
    return 0;
  }
  BenchEnv env =
      BenchEnv::from_args(argc, argv, {"traces", "frameworks", "ratios"});
  const Config config = Config::from_args(argc, argv);
  const long trace_limit = config.get_int("traces", 6);
  const std::vector<ControllerRef> frameworks = frameworks_from(
      config, "ec2,dcm,conscale,pi,fuzzy,vertical,holt-winters");
  const std::vector<double> ratios = parse_ratios(
      config.get_string("ratios", "0.95,0.85,0.7,0.5,0.25,0"));
  banner("Service graph — cache tier with working-set churn",
         "A deterministic hit-ratio cache short-circuits the Db subtree; "
         "churn swells the working set mid-run, so misses flood the backend "
         "and the critical resource migrates between nodes.");

  std::vector<TraceKind> traces = all_trace_kinds();
  if (trace_limit > 0 &&
      static_cast<std::size_t>(trace_limit) < traces.size()) {
    traces.resize(static_cast<std::size_t>(trace_limit));
  }

  const GraphScenario scenario = make_cache_scenario(env.params);
  const ControllerRegistry& registry = ControllerRegistry::global();

  // ---- part 1: frameworks x traces grid at the scenario's base ratio ----
  struct Cell {
    ControllerRef framework;
    TraceKind trace;
    std::string label;
  };
  std::vector<Cell> cells;
  for (const ControllerRef& framework : frameworks) {
    for (TraceKind trace : traces) {
      cells.push_back({framework, trace,
                       registry.at(framework.name).display_name + "/" +
                           to_string(trace)});
    }
  }
  std::cout << "  grid: " << frameworks.size() << " frameworks x "
            << traces.size() << " traces = " << cells.size()
            << " runs (base hit ratio "
            << fmt(scenario.graph.nodes[1].cache.base_hit_ratio) << ")\n";
  const std::vector<GraphRunResult> grid = env.map<GraphRunResult>(
      cells.size(), [&](std::size_t i) {
        ScalingRunOptions options = env.scaling_options();
        options.context.set_label(cells[i].label);
        return run_graph_scaling(scenario, cells[i].trace,
                                 to_string(cells[i].framework), options);
      });

  std::size_t index = 0;
  for (const ControllerRef& framework : frameworks) {
    (void)framework;
    std::vector<TailRow> rows;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const ScalingRunResult& r = grid[index++].run;
      rows.push_back({r.framework_name, r.trace_name, r.p95_ms, r.p99_ms});
    }
    print_tail_table(std::cout, "cache — " + rows.front().framework, rows);
  }

  // ---- part 2: hit-ratio sweep (first framework, flagship trace) ----
  const ControllerRef sweep_framework = frameworks.front();
  const std::vector<GraphRunResult> sweep = env.map<GraphRunResult>(
      ratios.size(), [&](std::size_t i) {
        GraphScenario variant = scenario;
        variant.graph.nodes[1].cache.base_hit_ratio = ratios[i];
        ScalingRunOptions options = env.scaling_options();
        options.context.set_label("ratio=" + fmt(ratios[i]));
        return run_graph_scaling(variant, TraceKind::kLargeVariations,
                                 to_string(sweep_framework), options);
      });

  std::cout << "\n  hit-ratio sweep ("
            << registry.at(sweep_framework.name).display_name
            << ", large_variations):\n"
            << "    ratio   observed   p95[ms]   p99[ms]   db_share\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const GraphRunResult& r = sweep[i];
    const topology::CacheStats& cache = r.caches.front().second;
    const double draws =
        static_cast<double>(cache.hits + cache.misses);
    const double observed = draws > 0.0 ? cache.hits / draws : 0.0;
    // Share of cache lookups that continued into the Db subtree.
    const double db_share = draws > 0.0 ? cache.misses / draws : 0.0;
    std::printf("    %5s   %8.3f   %7.1f   %7.1f   %8.3f\n",
                fmt(ratios[i]).c_str(), observed, r.run.p95_ms,
                r.run.p99_ms, db_share);
  }
  std::cout << "\n  per-node latency at the sweep extremes:\n";
  for (std::size_t i : {std::size_t{0}, sweep.size() - 1}) {
    std::cout << "   ratio=" << fmt(ratios[i]) << ":\n"
              << LatencyBreakdown::format(sweep[i].node_latency);
  }

  if (!env.csv_dir.empty()) {
    CsvWriter summary(env.csv_dir + "/cache_grid.csv");
    summary.header({"framework", "trace", "p95_ms", "p99_ms", "sla_500ms",
                    "cache_hits", "cache_misses"});
    for (const GraphRunResult& r : grid) {
      const topology::CacheStats& cache = r.caches.front().second;
      summary.raw_row({r.run.framework_key, r.run.trace_name,
                       fmt(r.run.p95_ms), fmt(r.run.p99_ms),
                       fmt(r.run.sla_500ms), std::to_string(cache.hits),
                       std::to_string(cache.misses)});
    }
    CsvWriter csv(env.csv_dir + "/cache_sweep.csv");
    csv.header({"base_hit_ratio", "observed_hit_ratio", "p95_ms", "p99_ms",
                "sla_500ms", "cache_hits", "cache_misses"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const GraphRunResult& r = sweep[i];
      const topology::CacheStats& cache = r.caches.front().second;
      const double draws = static_cast<double>(cache.hits + cache.misses);
      csv.raw_row({fmt(ratios[i]),
                   fmt(draws > 0.0 ? cache.hits / draws : 0.0),
                   fmt(r.run.p95_ms), fmt(r.run.p99_ms),
                   fmt(r.run.sla_500ms), std::to_string(cache.hits),
                   std::to_string(cache.misses)});
      dump_node_latency_csv(env.csv_dir + "/cache_ratio" +
                                std::to_string(i) + "_nodes.csv",
                            r);
    }
    std::cout << "  (grid + sweep + node breakdowns written to "
              << env.csv_dir << "/cache_*.csv)\n";
  }

  paper_note("No paper counterpart: hit-ratio churn moves the bottleneck "
             "between nodes mid-run — the fast-concurrency-adapting claim "
             "under a migrating critical resource.");
  return 0;
}
