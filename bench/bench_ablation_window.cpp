// Ablation: the estimation window of the Optimal Concurrency Estimator
// (§III-A: "a short time window (e.g., 3 minutes)"). Short windows react
// fast but hold few samples per concurrency level; long windows are stable
// but blend stale pre-change behaviour into the estimate. This sweep runs
// ConScale on the Large Variation trace with different windows and reports
// tail latency and how many estimates the service produced.
#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Ablation — SCT estimation window (paper: 3 minutes)",
         "Expectation: a broad sweet spot around 1-3 min; very short windows "
         "estimate rarely (too thin), very long ones react late.");

  const std::vector<double> windows = {30.0, 60.0, 120.0, 180.0, 300.0};
  std::vector<RunSpec> specs;
  for (double window : windows) {
    FrameworkConfig config = make_framework_config(env.params);
    config.estimator.window = window;
    RunSpec spec;
    spec.params = env.params;
    spec.trace = TraceKind::kLargeVariations;
    spec.framework = "conscale";
    spec.options.duration = env.duration;
    spec.options.framework_config = config;
    specs.push_back(spec);
  }
  const std::vector<ScalingRunResult> results = env.run_all(specs);

  std::cout << "  window[s]  estimates  p95[ms]  p99[ms]  completed\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScalingRunResult& result = results[i];
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %8.0f %10zu %8.0f %8.0f %10llu\n",
                  windows[i], result.sct_history.size(), result.p95_ms,
                  result.p99_ms,
                  static_cast<unsigned long long>(result.requests_completed));
    std::cout << buf;
  }
  return 0;
}
