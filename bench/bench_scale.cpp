// bench_scale: the million-session scale bench of the lane-partitioned PDES
// engine (src/simcore/lanes/, DESIGN.md §6.6).
//
// A constant trace holds `sessions` (default 1.2 million) concurrent
// closed-loop sessions with a long think time against the paper's 3-tier
// chain (or the fan-out DAG with topology=dag), partitioned into `shards`
// SessionShards. Two placements:
//
//   * client-edge (default): system on lane 0, shards on `lanes` worker
//     lanes behind the client<->frontend channel;
//   * tier-laned (tier_lanes=K): the system itself is cut — control cell,
//     tier cells joined by `lan_delay` LAN hops, one cell per shard — and K
//     worker threads execute the cells under the protocol the lookahead
//     analysis picks (protocol=auto|tw|cmb overrides).
//
// With compare=1 (default) every cell also runs single-threaded — the
// serial reference — and the bench checks the results are bit-identical
// before reporting the wall-clock ratio: parallelism that changes a single
// byte of output is a bug, not a speedup. Per-cell rows land in
// csv_dir/scale_summary.csv for tools/plot_results.py --lanes.
//
// Keys: sessions= think= net_delay= shards= topology=chain|dag compare=
// frameworks= tier_lanes= lan_delay= protocol= plus the standard
// work_scale/seed/duration/csv_dir/jobs/lanes (duration defaults to 120 s
// here — the bench measures engine throughput, not a 12-minute control
// trajectory). lanes=auto autotunes the shard count from the scenario.
#include <chrono>  // detlint: allow(banned-api) wall-clock cost of the engine itself; never feeds model time
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "experiments/graph_scenario.h"
#include "experiments/laned_runner.h"

namespace conscale {
namespace {

using bench::BenchEnv;

struct CellReport {
  double wall_seconds = 0.0;
  LaneRunInfo info;
  std::uint64_t completed = 0;
  std::uint64_t issued = 0;
  double p95_ms = 0.0;
};

double seconds_since(
    const std::chrono::steady_clock::time_point start) {  // detlint: allow(banned-api) real-time measurement only
  const auto elapsed =
      std::chrono::steady_clock::now() - start;  // detlint: allow(banned-api) real-time measurement only
  return std::chrono::duration<double>(elapsed).count();
}

void print_cell(const std::string& label, const CellReport& cell) {
  const LaneRunInfo& info = cell.info;
  const double per_event_ns =
      info.stats.events > 0
          ? cell.wall_seconds * 1e9 / static_cast<double>(info.stats.events)
          : 0.0;
  std::cout << "  " << label << ": wall " << std::fixed
            << std::setprecision(2) << cell.wall_seconds << " s, "
            << info.stats.events << " events ("
            << std::setprecision(0)
            << (cell.wall_seconds > 0.0
                    ? static_cast<double>(info.stats.events) /
                          cell.wall_seconds
                    : 0.0)
            << " ev/s, " << std::setprecision(1) << per_event_ns
            << " ns/event), " << info.stats.windows << " windows, "
            << info.stats.messages << " messages\n"
            << "      rounds: serial " << info.stats.serial_rounds
            << ", solo " << info.stats.solo_rounds << "; nulls: announced "
            << info.stats.nulls_announced << ", suppressed "
            << info.stats.nulls_suppressed << "\n"
            << "      sessions active " << info.active_sessions
            << ", issued " << cell.issued << ", completed " << cell.completed
            << ", p95 " << std::setprecision(1) << cell.p95_ms << " ms\n";
}

/// One row per executed cell; tools/plot_results.py --lanes reads this.
void append_summary(const std::string& csv_dir, const std::string& topology,
                    const std::string& framework, const std::string& mode,
                    std::size_t threads, const CellReport& cell) {
  if (csv_dir.empty()) return;
  const std::string path = csv_dir + "/scale_summary.csv";
  bool exists = false;
  {
    std::ifstream probe(path);
    exists = probe.good();
  }
  std::ofstream out(path, std::ios::app);
  if (!exists) {
    out << "topology,framework,mode,threads,wall_s,events,events_per_sec\n";
  }
  const double rate =
      cell.wall_seconds > 0.0
          ? static_cast<double>(cell.info.stats.events) / cell.wall_seconds
          : 0.0;
  out << topology << ',' << framework << ',' << mode << ',' << threads << ','
      << std::fixed << std::setprecision(3) << cell.wall_seconds << ','
      << cell.info.stats.events << ',' << std::setprecision(0) << rate
      << "\n";
}

}  // namespace
}  // namespace conscale

int main(int argc, char** argv) {
  using namespace conscale;
  using bench::frameworks_from;
  if (bench::list_controllers_requested(argc, argv)) {
    bench::print_controller_list(std::cout);
    return 0;
  }
  BenchEnv env = BenchEnv::from_args(
      argc, argv,
      {"sessions", "think", "net_delay", "shards", "topology", "compare",
       "frameworks", "tier_lanes", "lan_delay", "protocol"});
  const Config config = Config::from_args(argc, argv);
  const double sessions = config.get_double("sessions", 1.2e6);
  const double think = config.get_double("think", 300.0);
  const double net_delay = config.get_double("net_delay", 0.05);
  const long long shards = config.get_int("shards", 12);
  const std::string topology = config.get_string("topology", "chain");
  const bool compare = config.get_int("compare", 1) != 0;
  const double duration = config.get_double("duration", 120.0);
  const long long tier_lanes = config.get_int("tier_lanes", 0);
  const double lan_delay = config.get_double("lan_delay", 0.010);
  const std::string protocol_text = config.get_string("protocol", "auto");
  const std::vector<ControllerRef> frameworks =
      frameworks_from(config, "conscale");
  if (topology != "chain" && topology != "dag") {
    std::cerr << "topology= must be chain or dag\n";
    return 1;
  }
  const bool tiered = tier_lanes > 0;

  bench::banner(
      "Lane-partitioned PDES — million-session scale bench",
      "Beyond-paper systems work: conservative synchronization over the "
      "model's network delays (DESIGN.md §6.6). Any thread count must "
      "reproduce the single-threaded run bit-for-bit; only the wall clock "
      "may move.");

  // The serving side needs headroom for the offered load; the bench
  // measures engine throughput, so the tiers start wide instead of making
  // the controllers climb from 1/1/1 for half the run.
  ScenarioParams params = env.params;
  params.max_users = sessions;
  params.think_time = think;
  params.web_init = params.web_max = 4;
  params.app_init = 16;
  params.app_max = 48;
  params.db_init = 16;
  params.db_max = 48;

  const WorkloadTrace trace = make_constant_trace(sessions, duration);
  const GraphScenario graph_scenario = make_fanout_scenario(params);

  LanedRunOptions options;
  options.base.duration = duration;
  options.base.faults = env.faults;
  // lanes=auto (or shards=0) lets the runner autotune the shard plan.
  options.shards = env.lanes_auto
                       ? 0
                       : (shards > 0 ? static_cast<std::size_t>(shards) : 1);
  options.net_delay = net_delay;
  options.lan_delay = lan_delay;
  if (protocol_text == "tw") {
    options.protocol = LanedRunOptions::ProtocolChoice::kTimeWindow;
  } else if (protocol_text == "cmb") {
    options.protocol = LanedRunOptions::ProtocolChoice::kNullMessage;
  } else if (protocol_text != "auto") {
    std::cerr << "protocol= must be auto, tw, or cmb\n";
    return 1;
  }
  if (tiered) options.tier_lanes = static_cast<std::size_t>(tier_lanes);

  // Thread count of the measured cell: tier_lanes in tier-laned mode, the
  // lane count otherwise (lanes=auto -> one lane per autotuned shard + 1).
  // This bench defaults lanes to 4 — unlike the figure benches it exists to
  // measure the parallel engine, so `lanes=` absent must not mean serial.
  const std::size_t shard_plan =
      options.shards > 0 ? options.shards
                         : autotune_shards(sessions, think);
  const std::size_t edge_lanes =
      config.get_string("lanes", "").empty() ? 4 : env.lanes;
  const std::size_t measured_threads =
      tiered ? static_cast<std::size_t>(tier_lanes)
             : (env.lanes_auto ? shard_plan + 1 : edge_lanes);
  const std::string mode = tiered ? "tier-laned" : "client-edge";
  const std::string knob = tiered ? "tier_lanes" : "lanes";

  std::cout << "  grid: " << frameworks.size() << " frameworks x "
            << topology << " (" << mode << "), " << std::fixed
            << std::setprecision(0) << sessions << " sessions, "
            << shard_plan << " shards"
            << (options.shards == 0 ? " (auto)" : "") << ", " << knob << "="
            << measured_threads << ", " << duration << " s simulated\n";
  {
    const lanes::LookaheadAnalysis analysis =
        analyze_lookahead(params, options);
    std::cout << analysis.summary();
  }

  bool all_identical = true;
  for (const ControllerRef& framework : frameworks) {
    const std::string name = to_string(framework);
    std::cout << "\n  == " << name << " / " << topology << " ==\n";

    const auto run_cell = [&](std::size_t threads, CellReport& cell,
                              ScalingRunResult* chain_out,
                              GraphRunResult* graph_out) {
      LanedRunOptions cell_options = options;
      if (tiered) {
        cell_options.tier_lanes = threads;
      } else {
        cell_options.lanes = threads;
      }
      cell_options.base.context.set_label(name + "/" + knob +
                                          std::to_string(threads));
      const auto start =
          std::chrono::steady_clock::now();  // detlint: allow(banned-api) real-time measurement only
      if (topology == "chain") {
        *chain_out = run_scaling_laned(params, trace, name, cell_options,
                                       &cell.info);
        cell.completed = chain_out->requests_completed;
        cell.issued = chain_out->requests_issued;
        cell.p95_ms = chain_out->p95_ms;
      } else {
        *graph_out = run_graph_scaling_laned(graph_scenario, trace, name,
                                             cell_options, &cell.info);
        cell.completed = graph_out->run.requests_completed;
        cell.issued = graph_out->run.requests_issued;
        cell.p95_ms = graph_out->run.p95_ms;
      }
      cell.wall_seconds = seconds_since(start);
    };

    const auto dump_cell = [&](std::size_t threads,
                               const ScalingRunResult& chain_result,
                               const GraphRunResult& graph_result) {
      if (env.csv_dir.empty()) return;
      const std::string stem = "scale_" + topology + "_" + framework.name +
                               "_" + (tiered ? "tlanes" : "lanes") +
                               std::to_string(threads);
      if (topology == "chain") {
        env.maybe_dump(stem, chain_result);
      } else {
        dump_graph_system_csv(env.csv_dir + "/" + stem + ".csv",
                              graph_result);
        dump_node_latency_csv(env.csv_dir + "/" + stem + "_nodes.csv",
                              graph_result);
      }
    };

    ScalingRunResult laned_chain, serial_chain;
    GraphRunResult laned_graph, serial_graph;
    CellReport laned_cell, serial_cell;
    run_cell(measured_threads, laned_cell, &laned_chain, &laned_graph);
    const std::string laned_label =
        knob + "=" + std::to_string(measured_threads) +
        (tiered ? " [" + lanes::to_string(laned_cell.info.protocol) + ", " +
                      laned_cell.info.placement + "]"
                : "");
    print_cell(laned_label, laned_cell);
    dump_cell(measured_threads, laned_chain, laned_graph);
    append_summary(env.csv_dir, topology, framework.name, mode,
                   measured_threads, laned_cell);

    if (!compare) continue;
    run_cell(1, serial_cell, &serial_chain, &serial_graph);
    print_cell(knob + "=1", serial_cell);
    dump_cell(1, serial_chain, serial_graph);
    append_summary(env.csv_dir, topology, framework.name, mode, 1,
                   serial_cell);

    std::string diff;
    const bool identical =
        topology == "chain"
            ? results_equivalent(laned_chain, serial_chain, &diff)
            : graph_results_equivalent(laned_graph, serial_graph, &diff);
    if (!identical) {
      all_identical = false;
      std::cout << "  DETERMINISM VIOLATION (" << knob << "="
                << measured_threads << " vs " << knob << "=1): " << diff
                << "\n";
    } else {
      std::cout << "  determinism: " << knob << "=" << measured_threads
                << " == " << knob << "=1 (bit-identical)\n";
    }
    if (laned_cell.wall_seconds > 0.0) {
      std::cout << "  speedup: " << std::fixed << std::setprecision(2)
                << serial_cell.wall_seconds / laned_cell.wall_seconds
                << "x (serial " << serial_cell.wall_seconds << " s / laned "
                << laned_cell.wall_seconds << " s)\n";
    }
  }

  bench::paper_note(
      "No paper counterpart — scalability infrastructure for the simulator "
      "itself; determinism contract per DESIGN.md §8/§6.6.");
  return all_identical ? 0 : 1;
}
