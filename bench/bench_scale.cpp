// bench_scale: the million-session scale bench of the lane-partitioned PDES
// engine (src/simcore/lanes/, DESIGN.md §6.6).
//
// A constant trace holds `sessions` (default 1.2 million) concurrent
// closed-loop sessions with a long think time against the paper's 3-tier
// chain (or the fan-out DAG with topology=dag), partitioned into `shards`
// SessionShards on `lanes` event-loop lanes. With compare=1 (default) every
// cell also runs at lanes=1 — the serial reference — and the bench checks
// the results are bit-identical before reporting the wall-clock ratio:
// parallelism that changes a single byte of output is a bug, not a speedup.
//
// Keys: sessions= think= net_delay= shards= topology=chain|dag compare=
// frameworks= plus the standard work_scale/seed/duration/csv_dir/jobs/lanes
// (duration defaults to 120 s here — the bench measures engine throughput,
// not a 12-minute control trajectory).
#include <chrono>  // detlint: allow(banned-api) wall-clock cost of the engine itself; never feeds model time
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "experiments/graph_scenario.h"
#include "experiments/laned_runner.h"

namespace conscale {
namespace {

using bench::BenchEnv;

struct CellReport {
  double wall_seconds = 0.0;
  LaneRunInfo info;
  std::uint64_t completed = 0;
  std::uint64_t issued = 0;
  double p95_ms = 0.0;
};

double seconds_since(
    const std::chrono::steady_clock::time_point start) {  // detlint: allow(banned-api) real-time measurement only
  const auto elapsed =
      std::chrono::steady_clock::now() - start;  // detlint: allow(banned-api) real-time measurement only
  return std::chrono::duration<double>(elapsed).count();
}

void print_cell(const std::string& label, const CellReport& cell) {
  const LaneRunInfo& info = cell.info;
  const double per_event_ns =
      info.stats.events > 0
          ? cell.wall_seconds * 1e9 / static_cast<double>(info.stats.events)
          : 0.0;
  std::cout << "  " << label << ": wall " << std::fixed
            << std::setprecision(2) << cell.wall_seconds << " s, "
            << info.stats.events << " events ("
            << std::setprecision(0)
            << (cell.wall_seconds > 0.0
                    ? static_cast<double>(info.stats.events) /
                          cell.wall_seconds
                    : 0.0)
            << " ev/s, " << std::setprecision(1) << per_event_ns
            << " ns/event), " << info.stats.windows << " windows, "
            << info.stats.messages << " messages\n"
            << "      sessions active " << info.active_sessions
            << ", issued " << cell.issued << ", completed " << cell.completed
            << ", p95 " << std::setprecision(1) << cell.p95_ms << " ms\n";
}

}  // namespace
}  // namespace conscale

int main(int argc, char** argv) {
  using namespace conscale;
  using bench::frameworks_from;
  if (bench::list_controllers_requested(argc, argv)) {
    bench::print_controller_list(std::cout);
    return 0;
  }
  BenchEnv env = BenchEnv::from_args(
      argc, argv,
      {"sessions", "think", "net_delay", "shards", "topology", "compare",
       "frameworks"});
  const Config config = Config::from_args(argc, argv);
  const double sessions = config.get_double("sessions", 1.2e6);
  const double think = config.get_double("think", 300.0);
  const double net_delay = config.get_double("net_delay", 0.05);
  const long long shards = config.get_int("shards", 12);
  const long long lanes = config.get_int("lanes", 4);
  const std::string topology = config.get_string("topology", "chain");
  const bool compare = config.get_int("compare", 1) != 0;
  const double duration = config.get_double("duration", 120.0);
  const std::vector<ControllerRef> frameworks =
      frameworks_from(config, "conscale");
  if (topology != "chain" && topology != "dag") {
    std::cerr << "topology= must be chain or dag\n";
    return 1;
  }

  bench::banner(
      "Lane-partitioned PDES — million-session scale bench",
      "Beyond-paper systems work: conservative time-window synchronization "
      "over the client<->frontend latency (DESIGN.md §6.6). lanes=K must "
      "reproduce lanes=1 bit-for-bit; only the wall clock may move.");

  // The serving side needs headroom for the offered load; the bench
  // measures engine throughput, so the tiers start wide instead of making
  // the controllers climb from 1/1/1 for half the run.
  ScenarioParams params = env.params;
  params.max_users = sessions;
  params.think_time = think;
  params.web_init = params.web_max = 4;
  params.app_init = 16;
  params.app_max = 48;
  params.db_init = 16;
  params.db_max = 48;

  const WorkloadTrace trace = make_constant_trace(sessions, duration);
  const GraphScenario graph_scenario = make_fanout_scenario(params);

  LanedRunOptions options;
  options.base.duration = duration;
  options.base.faults = env.faults;
  options.shards = shards > 0 ? static_cast<std::size_t>(shards) : 1;
  options.net_delay = net_delay;

  std::cout << "  grid: " << frameworks.size() << " frameworks x "
            << topology << ", " << std::fixed << std::setprecision(0)
            << sessions << " sessions, " << options.shards << " shards, "
            << lanes << " lanes, " << duration << " s simulated\n";
  {
    const lanes::LookaheadAnalysis analysis =
        analyze_lookahead(params, options);
    std::cout << analysis.summary();
    std::cout << "  protocol: " << lanes::to_string(analysis.recommended())
              << "\n";
  }

  bool all_identical = true;
  for (const ControllerRef& framework : frameworks) {
    const std::string name = to_string(framework);
    std::cout << "\n  == " << name << " / " << topology << " ==\n";

    const auto run_cell = [&](std::size_t lane_count, CellReport& cell,
                              ScalingRunResult* chain_out,
                              GraphRunResult* graph_out) {
      LanedRunOptions cell_options = options;
      cell_options.lanes = lane_count;
      cell_options.base.context.set_label(name + "/lanes" +
                                          std::to_string(lane_count));
      const auto start =
          std::chrono::steady_clock::now();  // detlint: allow(banned-api) real-time measurement only
      if (topology == "chain") {
        *chain_out = run_scaling_laned(params, trace, name, cell_options,
                                       &cell.info);
        cell.completed = chain_out->requests_completed;
        cell.issued = chain_out->requests_issued;
        cell.p95_ms = chain_out->p95_ms;
      } else {
        *graph_out = run_graph_scaling_laned(graph_scenario, trace, name,
                                             cell_options, &cell.info);
        cell.completed = graph_out->run.requests_completed;
        cell.issued = graph_out->run.requests_issued;
        cell.p95_ms = graph_out->run.p95_ms;
      }
      cell.wall_seconds = seconds_since(start);
    };

    ScalingRunResult laned_chain, serial_chain;
    GraphRunResult laned_graph, serial_graph;
    CellReport laned_cell, serial_cell;
    run_cell(static_cast<std::size_t>(lanes), laned_cell, &laned_chain,
             &laned_graph);
    print_cell("lanes=" + std::to_string(lanes), laned_cell);

    if (!env.csv_dir.empty()) {
      const std::string stem = "scale_" + topology + "_" + framework.name +
                               "_lanes" + std::to_string(lanes);
      if (topology == "chain") {
        env.maybe_dump(stem, laned_chain);
      } else {
        dump_graph_system_csv(env.csv_dir + "/" + stem + ".csv", laned_graph);
        dump_node_latency_csv(env.csv_dir + "/" + stem + "_nodes.csv",
                              laned_graph);
      }
    }

    if (!compare) continue;
    run_cell(1, serial_cell, &serial_chain, &serial_graph);
    print_cell("lanes=1", serial_cell);
    if (!env.csv_dir.empty()) {
      const std::string stem =
          "scale_" + topology + "_" + framework.name + "_lanes1";
      if (topology == "chain") {
        env.maybe_dump(stem, serial_chain);
      } else {
        dump_graph_system_csv(env.csv_dir + "/" + stem + ".csv",
                              serial_graph);
        dump_node_latency_csv(env.csv_dir + "/" + stem + "_nodes.csv",
                              serial_graph);
      }
    }

    std::string diff;
    const bool identical =
        topology == "chain"
            ? results_equivalent(laned_chain, serial_chain, &diff)
            : graph_results_equivalent(laned_graph, serial_graph, &diff);
    if (!identical) {
      all_identical = false;
      std::cout << "  DETERMINISM VIOLATION (lanes=" << lanes
                << " vs lanes=1): " << diff << "\n";
    } else {
      std::cout << "  determinism: lanes=" << lanes
                << " == lanes=1 (bit-identical)\n";
    }
    if (laned_cell.wall_seconds > 0.0) {
      std::cout << "  speedup: " << std::fixed << std::setprecision(2)
                << serial_cell.wall_seconds / laned_cell.wall_seconds
                << "x (serial " << serial_cell.wall_seconds << " s / laned "
                << laned_cell.wall_seconds << " s)\n";
    }
  }

  bench::paper_note(
      "No paper counterpart — scalability infrastructure for the simulator "
      "itself; determinism contract per DESIGN.md §8/§6.6.");
  return all_identical ? 0 : 1;
}
