// Ablation: vertical scaling and soft-resource adaptation (§III-C.1).
//
// The paper shows that scaling MySQL from 1 to 2 cores doubles its optimal
// concurrency (Fig 7a vs 7d) — so a framework that adds cores *without*
// adapting the connection pools leaves the new capacity stranded behind a
// concurrency cap sized for the old hardware. This ablation runs a
// MySQL-bound system under sustained load, hot-adds a core at t = T/2, and
// compares throughput and latency with and without SCT-driven re-adaptation.
// Note on method: once a connection-pool cap binds, the production SCT
// window can never observe concurrency beyond it (right-censoring), so the
// new optimum must come from re-profiling — exactly what the SCT model does
// with the ramped measurements it gets after a scaling event in production
// runs. Here we re-profile the 2-core configuration explicitly and apply
// the result, isolating the value of the re-adaptation itself.
#include "bench_common.h"

#include "conscale/agents.h"
#include "conscale/policy.h"
#include "metrics/monitor.h"
#include "workload/client.h"

using namespace conscale;
using namespace conscale::bench;

namespace {

struct Outcome {
  double tp_before = 0.0;  ///< completed req/s in the pre-scaling half
  double tp_after = 0.0;   ///< completed req/s in the post-scaling half
  double p99_after_ms = 0.0;
};

Outcome run_case(const BenchEnv& env, bool adapt_soft,
                 const DcmProfile& two_core_optima) {
  ScenarioParams p = env.params;
  // 1/4/1 with a pool already matched to 1-core MySQL: conn = 5 per Tomcat
  // (4 x 5 = 20 ~ the 1-core optimum), threads at the Tomcat optimum.
  p.web_init = p.web_min = p.web_max = 1;
  p.app_init = p.app_min = p.app_max = 4;
  p.db_init = p.db_min = p.db_max = 1;
  p.app_threads = 30;
  p.app_dbconn = 5;

  Simulation sim;
  RequestMix mix = p.make_mix();
  NTierSystem system(sim, p.system_config());
  MetricsWarehouse warehouse;
  MonitoringAgent monitor(sim, system, warehouse);
  HardwareAgent hw(sim, system);
  SoftwareAgent sw(sim, system);

  const SimDuration duration = std::min<SimDuration>(env.duration, 480.0);
  // Enough demand to saturate even the 2-core MySQL *if* the pools allow
  // it: the frozen caps then visibly strand the new capacity.
  const double users = 9500.0 / p.work_scale;
  const WorkloadTrace trace = make_constant_trace(users, duration + 1.0);
  ClientPopulation::Params cp;
  cp.think_time_mean = 1.5;
  cp.seed = p.seed;
  ClientPopulation clients(
      sim, trace, mix,
      [&system](const RequestContext& ctx, std::function<void()> done) {
        system.submit(ctx, std::move(done));
      },
      cp);
  LogHistogram after_rts;
  const SimTime scale_at = duration / 2.0;
  clients.set_completion_hook(
      [&](SimTime, double rt, const RequestClass&) {
        if (sim.now() >= scale_at) after_rts.add(rt);
      });

  std::uint64_t completed_before = 0;
  sim.schedule_at(scale_at, [&] {
    completed_before = clients.requests_completed();
    hw.scale_vertical(kDbTier, 2);
    if (adapt_soft) {
      SoftAdaptTargets targets;
      targets.thread_adapt_tiers = {kAppTier};
      targets.conn_adapt = {{kAppTier, kDbTier}};
      DcmPolicy policy(system, sw, targets, two_core_optima);
      policy.adapt(sim.now());
    }
  });
  sim.run_until(duration);

  Outcome outcome;
  outcome.tp_before =
      static_cast<double>(completed_before) / scale_at;
  outcome.tp_after = static_cast<double>(clients.requests_completed() -
                                         completed_before) /
                     (duration - scale_at);
  outcome.p99_after_ms = to_ms(after_rts.percentile(99.0));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Ablation — vertical scaling without vs with soft adaptation",
         "Fig 7(a)/(d): 2x cores doubles MySQL's optimal concurrency; a "
         "stale connection-pool cap strands the new capacity.");

  // Re-profile the post-scaling (2-core MySQL) configuration with the SCT
  // model to get the new optima the adaptation will apply.
  std::cout << "  profiling the 2-core MySQL configuration with SCT...\n";
  ScenarioParams two_core = env.params;
  two_core.db_cores = 2;
  two_core.work_scale = 1.0;  // profile at native fidelity
  // Both profiling runs are independent — fan them out.
  const auto profiles = env.map<ScatterRunResult>(2, [&](std::size_t i) {
    ScatterRunOptions po;
    po.duration = 180.0;
    if (i == 0) {
      po.max_users = 260.0;  // a 2-core MySQL needs serious pressure
      po.fixed_app_vms = 10;  // and a wide app tier to deliver it
      return collect_scatter(two_core, kDbTier, po);
    }
    po.fixed_db_vms = 4;
    return collect_scatter(two_core, kAppTier, po);
  });
  DcmProfile two_core_optima;
  if (profiles[0].range) {
    two_core_optima.tier_optimal_concurrency[kDbTier] =
        profiles[0].range->optimal;
  }
  if (profiles[1].range) {
    two_core_optima.tier_optimal_concurrency[kAppTier] =
        profiles[1].range->optimal;
  }
  for (const auto& [tier, optimum] :
       two_core_optima.tier_optimal_concurrency) {
    std::cout << "  tier " << tier << " optimum after scale-up: " << optimum
              << "\n";
  }

  const auto outcomes = env.map<Outcome>(2, [&](std::size_t i) {
    return i == 0 ? run_case(env, /*adapt_soft=*/false, {})
                  : run_case(env, /*adapt_soft=*/true, two_core_optima);
  });
  const Outcome& frozen = outcomes[0];
  const Outcome& adapted = outcomes[1];

  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "  frozen pools : %7.0f -> %7.0f req/s after scale-up "
                "(p99 after: %5.0f ms)\n",
                frozen.tp_before, frozen.tp_after, frozen.p99_after_ms);
  std::cout << buf;
  std::snprintf(buf, sizeof(buf),
                "  SCT adaptation: %7.0f -> %7.0f req/s after scale-up "
                "(p99 after: %5.0f ms)\n",
                adapted.tp_before, adapted.tp_after, adapted.p99_after_ms);
  std::cout << buf;
  const double gain = frozen.tp_after > 0.0
                          ? (adapted.tp_after / frozen.tp_after - 1.0) * 100.0
                          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "  post-scale-up throughput gain from adapting the pools: "
                "%+.0f%%\n", gain);
  std::cout << buf;
  return 0;
}
