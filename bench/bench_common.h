// Shared helpers for the figure/table regeneration benches.
//
// Every bench binary accepts `key=value` overrides (work_scale=, duration=,
// seed=, csv_dir=, jobs=, faults=) so the full-fidelity runs can be sped up
// when needed. All default to the paper's native scale. Unknown keys abort
// with the list of valid ones — a mistyped knob must not silently run the
// default. Multi-run benches fan their independent runs across `jobs`
// worker threads (default: one per hardware thread) through RunSet /
// parallel_map; results and printed output are bit-identical to the serial
// path regardless of `jobs`.
#pragma once

#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ascii_chart.h"
#include "common/config.h"
#include "experiments/json_export.h"
#include "experiments/parallel.h"
#include "experiments/report.h"
#include "experiments/runner.h"

namespace conscale::bench {

struct BenchEnv {
  ScenarioParams params;
  SimDuration duration = 720.0;
  std::string csv_dir;
  /// Worker threads for multi-run fan-out; 0 = one per hardware thread,
  /// 1 = fully serial.
  std::size_t jobs = 0;
  /// Event-loop partitions for benches that run on the lane engine
  /// (experiments/laned_runner.h). 1 = serial reference execution; results
  /// are byte-identical for every value (DESIGN.md §6.6).
  std::size_t lanes = 1;
  /// True when the command line said `lanes=auto`: the bench should let the
  /// laned runner autotune the shard count (LanedRunOptions::shards = 0)
  /// and derive its lane count from the chosen plan.
  bool lanes_auto = false;
  /// Optional fault schedule (faults= inline text, or faults=@file); empty
  /// for the standard fault-free benches. Applied to every scaling run
  /// (run_all / scaling_options); profiling and scatter benches have no
  /// system to perturb and ignore it.
  FaultPlan faults;

  /// Parses and validates the common bench keys. Benches with extra knobs
  /// pass them in `extra_keys`; anything else on the command line aborts
  /// with the list of valid keys.
  static BenchEnv from_args(int argc, char** argv,
                            const std::vector<std::string>& extra_keys = {}) {
    const Config config = Config::from_args(argc, argv);
    std::vector<std::string> known = {"work_scale", "seed",  "duration",
                                      "csv_dir",    "jobs", "faults",
                                      "lanes"};
    known.insert(known.end(), extra_keys.begin(), extra_keys.end());
    config.require_known_keys(known);
    BenchEnv env;
    env.params = ScenarioParams::paper_default();
    env.params.work_scale = config.get_double("work_scale", 1.0);
    env.params.seed = static_cast<std::uint64_t>(config.get_int("seed", 12345));
    env.duration = config.get_double("duration", 720.0);
    env.csv_dir = config.get_string("csv_dir", "");
    const long long jobs = config.get_int("jobs", 0);
    env.jobs = jobs > 0 ? static_cast<std::size_t>(jobs) : 0;
    // `lanes` accepts "auto" (shard/lane plan from the model parameters),
    // so it must be read as a string before any numeric parse.
    const std::string lanes_text = config.get_string("lanes", "1");
    if (lanes_text == "auto") {
      env.lanes_auto = true;
    } else {
      const long long lanes = config.get_int("lanes", 1);
      env.lanes = lanes > 0 ? static_cast<std::size_t>(lanes) : 1;
    }
    const std::string faults = config.get_string("faults", "");
    if (!faults.empty()) {
      if (faults.front() == '@') {
        std::ifstream in(faults.substr(1));
        if (!in) {
          throw std::runtime_error("faults=: cannot open " +
                                   faults.substr(1));
        }
        std::ostringstream text;
        text << in.rdbuf();
        env.faults = FaultPlan::parse(text.str());
      } else {
        env.faults = FaultPlan::parse(faults);
      }
    }
    return env;
  }

  /// The bench's run fan-out, honouring `jobs=`.
  RunSet run_set() const {
    RunSetOptions options;
    options.jobs = jobs;
    return RunSet(options);
  }

  /// Standard per-run options: the bench duration plus the command-line
  /// fault schedule. Benches that build ScalingRunOptions by hand should
  /// start from this so `faults=` works on them too.
  ScalingRunOptions scaling_options() const {
    ScalingRunOptions options;
    options.duration = duration;
    options.faults = faults;
    return options;
  }

  /// Executes the specs (in parallel up to `jobs`) and returns results in
  /// spec order. A `faults=` schedule from the command line is applied to
  /// every spec that does not already carry its own plan (a bench's explicit
  /// plan — e.g. bench_resilience's scenarios — wins).
  std::vector<ScalingRunResult> run_all(std::vector<RunSpec> specs) const {
    if (!faults.empty()) {
      for (RunSpec& spec : specs) {
        if (spec.options.faults.empty()) spec.options.faults = faults;
      }
    }
    return run_set().run(specs);
  }

  /// Generic fan-out for benches whose runs are not scaling runs (scatter
  /// collections, ad-hoc cases); results come back in index order.
  template <typename T>
  std::vector<T> map(std::size_t n,
                     const std::function<T(std::size_t)>& fn) const {
    return parallel_map<T>(n, jobs, fn);
  }

  void maybe_dump(const std::string& stem, const ScalingRunResult& r) const {
    if (csv_dir.empty()) return;
    dump_system_csv(csv_dir + "/" + stem + ".csv", r);
    export_run_json(csv_dir + "/" + stem + ".json", r);
    std::cout << "  (csv+json written to " << csv_dir << "/" << stem
              << ".{csv,json})\n";
  }

  void maybe_dump(const std::string& stem, const ScatterRunResult& r) const {
    if (csv_dir.empty()) return;
    dump_scatter_csv(csv_dir + "/" + stem + ".csv", r);
    std::cout << "  (csv written to " << csv_dir << "/" << stem << ".csv)\n";
  }
};

/// Resolves a bench's `frameworks=` list against the controller registry
/// (falling back to `fallback` when the key is absent). Every name is
/// validated before any run starts — an unknown controller aborts with the
/// registered list, never silently runs a default grid.
inline std::vector<ControllerRef> frameworks_from(
    const Config& config, const std::string& fallback) {
  return ControllerRegistry::global().parse_list(
      config.get_string("frameworks", fallback));
}

/// True when `--list-controllers` appears on the command line (checked
/// before key validation so it works standalone).
inline bool list_controllers_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--list-controllers") return true;
  }
  return false;
}

/// Prints the controller registry as a table (key, display name,
/// description, reference), in registry (alphabetical) order.
inline void print_controller_list(std::ostream& out) {
  out << "registered controllers (frameworks= accepts a comma-separated "
         "list; options via name(k=v;k2=v2)):\n";
  for (const ControllerSpec* spec : ControllerRegistry::global().all()) {
    out << "  " << spec->name << " (" << spec->display_name << ")\n"
        << "      " << spec->description << "\n";
    if (!spec->reference.empty()) {
      out << "      ref: " << spec->reference << "\n";
    }
  }
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n" << paper_ref
            << "\n================================================================\n";
}

/// Paper-vs-measured comparison line for EXPERIMENTS.md bookkeeping.
inline void paper_note(const std::string& note) {
  std::cout << "  [paper] " << note << "\n";
}

}  // namespace conscale::bench
