// Shared helpers for the figure/table regeneration benches.
//
// Every bench binary accepts `key=value` overrides (work_scale=, duration=,
// seed=, csv_dir=, jobs=) so the full-fidelity runs can be sped up when
// needed. All default to the paper's native scale. Multi-run benches fan
// their independent runs across `jobs` worker threads (default: one per
// hardware thread) through RunSet / parallel_map; results and printed
// output are bit-identical to the serial path regardless of `jobs`.
#pragma once

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "common/ascii_chart.h"
#include "common/config.h"
#include "experiments/json_export.h"
#include "experiments/parallel.h"
#include "experiments/report.h"
#include "experiments/runner.h"

namespace conscale::bench {

struct BenchEnv {
  ScenarioParams params;
  SimDuration duration = 720.0;
  std::string csv_dir;
  /// Worker threads for multi-run fan-out; 0 = one per hardware thread,
  /// 1 = fully serial.
  std::size_t jobs = 0;

  static BenchEnv from_args(int argc, char** argv) {
    const Config config = Config::from_args(argc, argv);
    BenchEnv env;
    env.params = ScenarioParams::paper_default();
    env.params.work_scale = config.get_double("work_scale", 1.0);
    env.params.seed = static_cast<std::uint64_t>(config.get_int("seed", 12345));
    env.duration = config.get_double("duration", 720.0);
    env.csv_dir = config.get_string("csv_dir", "");
    const long long jobs = config.get_int("jobs", 0);
    env.jobs = jobs > 0 ? static_cast<std::size_t>(jobs) : 0;
    return env;
  }

  /// The bench's run fan-out, honouring `jobs=`.
  RunSet run_set() const {
    RunSetOptions options;
    options.jobs = jobs;
    return RunSet(options);
  }

  /// Executes the specs (in parallel up to `jobs`) and returns results in
  /// spec order.
  std::vector<ScalingRunResult> run_all(
      const std::vector<RunSpec>& specs) const {
    return run_set().run(specs);
  }

  /// Generic fan-out for benches whose runs are not scaling runs (scatter
  /// collections, ad-hoc cases); results come back in index order.
  template <typename T>
  std::vector<T> map(std::size_t n,
                     const std::function<T(std::size_t)>& fn) const {
    return parallel_map<T>(n, jobs, fn);
  }

  void maybe_dump(const std::string& stem, const ScalingRunResult& r) const {
    if (csv_dir.empty()) return;
    dump_system_csv(csv_dir + "/" + stem + ".csv", r);
    export_run_json(csv_dir + "/" + stem + ".json", r);
    std::cout << "  (csv+json written to " << csv_dir << "/" << stem
              << ".{csv,json})\n";
  }

  void maybe_dump(const std::string& stem, const ScatterRunResult& r) const {
    if (csv_dir.empty()) return;
    dump_scatter_csv(csv_dir + "/" + stem + ".csv", r);
    std::cout << "  (csv written to " << csv_dir << "/" << stem << ".csv)\n";
  }
};

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n" << paper_ref
            << "\n================================================================\n";
}

/// Paper-vs-measured comparison line for EXPERIMENTS.md bookkeeping.
inline void paper_note(const std::string& note) {
  std::cout << "  [paper] " << note << "\n";
}

}  // namespace conscale::bench
