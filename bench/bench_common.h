// Shared helpers for the figure/table regeneration benches.
//
// Every bench binary accepts `key=value` overrides (work_scale=, duration=,
// seed=, csv_dir=) so the full-fidelity runs can be sped up when needed.
// All default to the paper's native scale.
#pragma once

#include <iostream>
#include <string>

#include "common/ascii_chart.h"
#include "common/config.h"
#include "experiments/json_export.h"
#include "experiments/report.h"
#include "experiments/runner.h"

namespace conscale::bench {

struct BenchEnv {
  ScenarioParams params;
  SimDuration duration = 720.0;
  std::string csv_dir;

  static BenchEnv from_args(int argc, char** argv) {
    const Config config = Config::from_args(argc, argv);
    BenchEnv env;
    env.params = ScenarioParams::paper_default();
    env.params.work_scale = config.get_double("work_scale", 1.0);
    env.params.seed = static_cast<std::uint64_t>(config.get_int("seed", 12345));
    env.duration = config.get_double("duration", 720.0);
    env.csv_dir = config.get_string("csv_dir", "");
    return env;
  }

  void maybe_dump(const std::string& stem, const ScalingRunResult& r) const {
    if (csv_dir.empty()) return;
    dump_system_csv(csv_dir + "/" + stem + ".csv", r);
    export_run_json(csv_dir + "/" + stem + ".json", r);
    std::cout << "  (csv+json written to " << csv_dir << "/" << stem
              << ".{csv,json})\n";
  }

  void maybe_dump(const std::string& stem, const ScatterRunResult& r) const {
    if (csv_dir.empty()) return;
    dump_scatter_csv(csv_dir + "/" + stem + ".csv", r);
    std::cout << "  (csv written to " << csv_dir << "/" << stem << ".csv)\n";
  }
};

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n" << paper_ref
            << "\n================================================================\n";
}

/// Paper-vs-measured comparison line for EXPERIMENTS.md bookkeeping.
inline void paper_note(const std::string& note) {
  std::cout << "  [paper] " << note << "\n";
}

}  // namespace conscale::bench
