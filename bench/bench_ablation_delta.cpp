// Ablation: the plateau tolerance δ of the SCT estimation phase — how wide
// "statistically at the peak" is. Small δ narrows the rational range (risking
// under-allocation from noise); large δ widens it (risking an optimum deep in
// the ascending stage). The paper does not publish its δ; 0.05 is our
// default. This sweep shows [Q_lower, Q_upper] as a function of δ.
#include <optional>

#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Ablation — plateau tolerance δ in the SCT estimator",
         "Expectation: Q_lower falls and Q_upper rises monotonically in δ.");

  // One shared sample set so only the estimator parameter varies.
  ScatterRunOptions options;
  options.duration = std::min<SimDuration>(env.duration, 240.0);
  options.max_users = 160.0;
  options.fixed_app_vms = 4;
  const ScatterRunResult base = collect_scatter(env.params, kDbTier, options);

  const std::vector<double> deltas = {0.02, 0.03, 0.05, 0.08, 0.12, 0.20};
  // The estimates only re-fold the shared sample set — cheap, but
  // independent, so they ride the same fan-out helper.
  const auto ranges = env.map<std::optional<RationalRange>>(
      deltas.size(), [&](std::size_t i) {
        SctParams params;
        params.plateau_tolerance = deltas[i];
        SctEstimator estimator(params);
        return estimator.estimate(base.scatter);
      });

  std::cout << "  delta   Q_lower  Q_upper  TPmax    descending\n";
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const double delta = deltas[i];
    const auto& range = ranges[i];
    char buf[120];
    if (range) {
      std::snprintf(buf, sizeof(buf), "  %5.2f  %8d %8d %8.0f   %s\n", delta,
                    range->q_lower, range->q_upper, range->tp_max,
                    range->descending_observed ? "observed" : "censored");
    } else {
      std::snprintf(buf, sizeof(buf), "  %5.2f  (no estimate)\n", delta);
    }
    std::cout << buf;
  }
  return 0;
}
