// Controller zoo: the Table-I grid (tail latency across the six paper
// traces) extended to every registered controller — the three paper
// frameworks plus the four literature-grounded zoo policies (PI-RT,
// Fuzzy-RT, Vertical-Robust, HoltWinters-Pred). One table answers "how does
// a <paradigm> autoscaler behave on the paper's workloads?" for each
// controller paradigm the registry knows about.
//
// Extra keys beyond the common set:
//   frameworks=  controller-registry references (default: every shipped
//                controller); unknown names abort with the registered list
//   traces=N     limit the grid to the first N trace kinds (CI smoke)
// `--list-controllers` prints the registry and exits.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/csv.h"

using namespace conscale;
using namespace conscale::bench;

namespace {

std::string format_seconds(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (list_controllers_requested(argc, argv)) {
    print_controller_list(std::cout);
    return 0;
  }
  BenchEnv env = BenchEnv::from_args(argc, argv, {"traces", "frameworks"});
  const Config config = Config::from_args(argc, argv);
  const long trace_limit = config.get_int("traces", 6);
  const std::vector<ControllerRef> frameworks = frameworks_from(
      config, "ec2,dcm,conscale,pi,fuzzy,vertical,holt-winters,hybrid");
  banner("Controller zoo — every registered controller, six traces",
         "Beyond the paper: reactive (ec2), offline-profiled (dcm), online "
         "SCT (conscale), RT-feedback (pi, fuzzy), vertical (vertical), "
         "predictive (holt-winters) and forecast+SCT (hybrid) paradigms on "
         "the Table-I grid.");

  std::vector<TraceKind> traces = all_trace_kinds();
  if (trace_limit > 0 &&
      static_cast<std::size_t>(trace_limit) < traces.size()) {
    traces.resize(static_cast<std::size_t>(trace_limit));
  }

  ScalingRunOptions options = env.scaling_options();
  ScalingRunOptions dcm_options = options;
  if (std::any_of(frameworks.begin(), frameworks.end(),
                  [](const ControllerRef& ref) { return ref.name == "dcm"; })) {
    std::cout << "  training DCM offline...\n";
    FrameworkConfig dcm_config = make_framework_config(env.params);
    dcm_config.dcm_profile = train_dcm_profile(env.params);
    dcm_options.framework_config = dcm_config;
  }

  std::vector<RunSpec> specs;
  for (TraceKind kind : traces) {
    for (const ControllerRef& framework : frameworks) {
      RunSpec spec;
      spec.params = env.params;
      spec.trace = kind;
      spec.framework = to_string(framework);
      spec.options = framework.name == "dcm" ? dcm_options : options;
      specs.push_back(spec);
    }
  }
  std::cout << "  grid: " << frameworks.size() << " controllers x "
            << traces.size() << " traces = " << specs.size() << " runs\n";
  const std::vector<ScalingRunResult> results = env.run_all(specs);

  std::vector<TailRow> rows;
  std::vector<double> worst_p99(frameworks.size(), 0.0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScalingRunResult& result = results[i];
    rows.push_back({result.framework_name, result.trace_name, result.p95_ms,
                    result.p99_ms});
    worst_p99[i % frameworks.size()] =
        std::max(worst_p99[i % frameworks.size()], result.p99_ms);
  }
  print_tail_table(std::cout, "Controller zoo (measured)", rows);

  std::cout << "\n  worst-case p99 by controller [ms]:\n";
  for (std::size_t f = 0; f < frameworks.size(); ++f) {
    std::cout << "    " << results[f].framework_name << "="
              << static_cast<int>(worst_p99[f]) << "\n";
  }

  // Predictive-vs-reactive headline: on the ramp traces the Holt-Winters
  // forecaster should have capacity booted *before* the ramp lands, where
  // the reactive threshold rule pays the VM preparation delay in p99.
  const auto find_p99 = [&](const std::string& key,
                            TraceKind kind) -> const ScalingRunResult* {
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].framework_key == key && specs[i].trace == kind) {
        return &results[i];
      }
    }
    return nullptr;
  };
  for (TraceKind ramp : {TraceKind::kDualPhase, TraceKind::kSteepTriPhase}) {
    const ScalingRunResult* predictive = find_p99("holt-winters", ramp);
    const ScalingRunResult* reactive = find_p99("ec2", ramp);
    if (predictive == nullptr || reactive == nullptr) continue;
    std::cout << "  predictive vs reactive on " << predictive->trace_name
              << ": " << predictive->framework_name << " p99="
              << static_cast<int>(predictive->p99_ms) << " ms vs "
              << reactive->framework_name << " p99="
              << static_cast<int>(reactive->p99_ms) << " ms\n";
  }

  if (!env.csv_dir.empty()) {
    CsvWriter csv(env.csv_dir + "/zoo.csv");
    csv.header({"controller", "framework", "trace", "p95_ms", "p99_ms",
                "sla_500ms"});
    for (const ScalingRunResult& r : results) {
      csv.raw_row({r.framework_key, r.framework_name, r.trace_name,
                   format_seconds(r.p95_ms), format_seconds(r.p99_ms),
                   format_seconds(r.sla_500ms)});
    }
    dump_counters_csv(env.csv_dir + "/zoo_counters.csv", results);
    std::cout << "  (summary written to " << env.csv_dir
              << "/zoo.{csv,_counters.csv})\n";
    // Full timelines + counters for the flagship trace, every controller.
    JsonExportOptions json_options;
    json_options.include_counters = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (specs[i].trace != TraceKind::kLargeVariations) continue;
      const std::string stem = "zoo_" + results[i].framework_key;
      dump_system_csv(env.csv_dir + "/" + stem + ".csv", results[i]);
      export_run_json(env.csv_dir + "/" + stem + ".json", results[i],
                      json_options);
    }
  }

  paper_note("Table I covers ec2/dcm/conscale only; the zoo rows are new "
             "baselines (see DESIGN.md, controller plug-in architecture).");
  return 0;
}
