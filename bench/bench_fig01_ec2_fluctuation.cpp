// Figure 1: "Large response time fluctuations of a 3-tier system when it
// scales the number of VMs using the EC2-AutoScaling strategy to handle
// bursty workload."
//
// Regenerates the paper's motivating figure: response-time timeline and the
// total-VM-count timeline of a hardware-only autoscaler under the bursty
// Large Variation trace, starting from 1/1/1 with soft resources 1000-60-40.
#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Figure 1 — EC2-AutoScaling response-time fluctuation",
         "Paper: spikes to ~2000+ ms while VMs ramp 3 -> ~8 over 720 s.");

  const ScalingRunOptions options = env.scaling_options();
  const ScalingRunResult result =
      run_scaling(env.params, TraceKind::kLargeVariations,
                  "ec2", options);

  print_performance_timeline(std::cout, "Fig 1: EC2-AutoScaling, RT timeline",
                             result);
  print_scaling_timeline(std::cout, "Fig 1: total # of VMs", result);
  print_events(std::cout, result.events);
  paper_note("Fig 1 shows RT spikes during scale-out phases; measured max RT "
             "= " + std::to_string(static_cast<int>(result.max_rt_ms)) +
             " ms, p99 = " + std::to_string(static_cast<int>(result.p99_ms)) +
             " ms.");
  env.maybe_dump("fig01_ec2", result);
  return 0;
}
