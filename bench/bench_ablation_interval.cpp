// Ablation: the monitoring interval (§III-B "It is important to choose an
// appropriate time interval... too long or too short of the time interval
// would bring side-effects on estimating the optimal concurrency range").
//
// Sweeps the fine-grained measurement interval from 10 ms to 1 s and reports
// the SCT estimate each produces against a high-confidence reference
// (a long 50 ms run). Too short: windows hold too few completions, so each
// {Q,TP} tuple is shot-noise; too long: windows average over concurrency
// swings, smearing Q and flattening the curve.
#include <vector>

#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Ablation — monitoring interval for the SCT metrics (paper: 50 ms)",
         "Expectation: estimates stay accurate in a band around 50 ms and "
         "degrade (or fail) at the extremes.");

  // Reference: long window at the paper's 50 ms. Collected together with the
  // seven swept intervals in one fan-out (index 0 is the reference).
  ScatterRunOptions ref_options;
  ref_options.duration = std::min<SimDuration>(env.duration, 360.0);
  ref_options.max_users = 160.0;
  ref_options.fixed_app_vms = 4;

  const std::vector<double> intervals_ms = {10.0,  25.0,  50.0, 100.0,
                                            250.0, 500.0, 1000.0};
  const std::vector<ScatterRunResult> runs = env.map<ScatterRunResult>(
      intervals_ms.size() + 1, [&](std::size_t i) {
        ScatterRunOptions options = ref_options;
        if (i > 0) {
          options.duration = std::min<SimDuration>(env.duration, 120.0);
          options.fine_period = intervals_ms[i - 1] * 1e-3;
        }
        return collect_scatter(env.params, kDbTier, options);
      });

  const ScatterRunResult& reference = runs[0];
  const int ref_q = reference.range ? reference.range->q_lower : -1;
  std::cout << "  reference (50 ms, " << ref_options.duration
            << " s): Q_lower=" << ref_q << "\n\n";

  std::cout << "  interval[ms]  buckets  samples  Q_lower  Q_upper  note\n";
  for (std::size_t i = 0; i < intervals_ms.size(); ++i) {
    const double interval_ms = intervals_ms[i];
    const ScatterRunResult& run = runs[i + 1];
    char buf[160];
    if (run.range) {
      std::snprintf(buf, sizeof(buf),
                    "  %9.0f %9zu %8zu %8d %8d  %s\n", interval_ms,
                    run.range->buckets_used, run.range->samples_used,
                    run.range->q_lower, run.range->q_upper,
                    std::abs(run.range->q_lower - ref_q) <= 4 ? "ok"
                                                              : "drifted");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  %9.0f        --       --       --       --  no "
                    "estimate (insufficient dense buckets)\n",
                    interval_ms);
    }
    std::cout << buf;
  }
  paper_note("§III-B: 50 ms balances per-window sample mass against "
             "concurrency smearing for sub-millisecond service demands.");
  return 0;
}
