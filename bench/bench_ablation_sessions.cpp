// Ablation: i.i.d. request draws vs Markov-session navigation.
//
// The paper's generator issues Poisson request streams per user; real
// bulletin-board traffic navigates (browse bursts, occasional expensive
// searches), which correlates the request classes over short ranges. This
// ablation runs ConScale under both workload models on the same trace and
// compares tail latency and the SCT estimates — checking that the estimator
// is robust to realistic (non-i.i.d.) inputs.
#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Ablation — i.i.d. request draws vs Markov sessions",
         "Expectation: comparable control quality; sessions shift the class "
         "mix and think-time structure without breaking the SCT estimates.");

  std::vector<RunSpec> specs;
  for (bool sessions : {false, true}) {
    RunSpec spec;
    spec.label = sessions ? "markov-sessions" : "iid-draws";
    spec.params = env.params;
    spec.trace = TraceKind::kLargeVariations;
    spec.framework = "conscale";
    spec.options.duration = env.duration;
    spec.options.session_workload = sessions;
    specs.push_back(spec);
  }
  const std::vector<ScalingRunResult> results = env.run_all(specs);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScalingRunResult& result = results[i];
    char buf[220];
    std::snprintf(buf, sizeof(buf),
                  "  %-16s p50=%6.0fms p95=%6.0fms p99=%6.0fms "
                  "sla(500ms)=%3.0f%% completed=%llu estimates=%zu\n",
                  specs[i].label.c_str(), result.p50_ms,
                  result.p95_ms, result.p99_ms, result.sla_500ms * 100.0,
                  static_cast<unsigned long long>(result.requests_completed),
                  result.sct_history.size());
    std::cout << buf;
  }
  return 0;
}
