// Figure 11: "Our proposed ConScale framework achieves much more stable and
// low response time and higher throughput than that in the DCM case when the
// system state changes (i.e., the dataset size)."
//
// Protocol (§V): DCM's offline model is trained on the ORIGINAL dataset
// (profiling runs -> per-tier optimal concurrency). Both frameworks then
// serve the Large Variation trace against a REDUCED dataset; DCM keeps its
// stale trained allocation (too low for the new optimum — the
// under-allocation effect), while ConScale re-estimates online.
#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Figure 11 — DCM (offline profile) vs ConScale (online SCT)",
         "Paper: DCM spikes at 85-90 s because its trained Tomcat setting "
         "(20) is too low once the dataset shrinks (optimum ~30).");

  std::cout << "  training DCM offline on the original dataset...\n";
  const DcmProfile profile = train_dcm_profile(env.params);
  for (const auto& [tier, optimum] : profile.tier_optimal_concurrency) {
    std::cout << "  trained optimal concurrency, tier " << tier << " ("
              << (tier == kAppTier ? "Tomcat" : "MySQL") << "): " << optimum
              << "\n";
  }

  // The runtime environment differs from training: the dataset shrank to
  // 40% (continuous dataset churn, §V), which makes every query cheaper and
  // roughly *doubles* the concurrency MySQL needs to stay saturated. DCM's
  // frozen per-tier optimum now caps MySQL far below its knee — the paper's
  // under-allocation effect — while ConScale re-estimates the knee online.
  // Users rise correspondingly (lighter requests, same infrastructure
  // pressure).
  ScalingRunOptions options;
  options.duration = env.duration;
  options.runtime_dataset_scale = 0.4;
  ScenarioParams params = env.params;
  params.max_users = env.params.max_users / 0.55;

  FrameworkConfig dcm_config = make_framework_config(params);
  dcm_config.dcm_profile = profile;

  std::vector<RunSpec> specs(2);
  specs[0].params = params;
  specs[0].trace = TraceKind::kLargeVariations;
  specs[0].framework = "dcm";
  specs[0].options = options;
  specs[0].options.framework_config = dcm_config;
  specs[1].params = params;
  specs[1].trace = TraceKind::kLargeVariations;
  specs[1].framework = "conscale";
  specs[1].options = options;
  const std::vector<ScalingRunResult> results = env.run_all(specs);
  const ScalingRunResult& dcm = results[0];
  const ScalingRunResult& con = results[1];

  print_performance_timeline(std::cout, "Fig 11(a): DCM", dcm);
  print_performance_timeline(std::cout, "Fig 11(b): ConScale", con);
  print_scaling_timeline(std::cout, "Fig 11(c): DCM scaling", dcm);
  print_scaling_timeline(std::cout, "Fig 11(d): ConScale scaling", con);
  std::cout << "-- DCM events --\n";
  print_events(std::cout, dcm.events);
  std::cout << "-- ConScale events --\n";
  print_events(std::cout, con.events);

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  summary: p99 DCM=%.0f ms vs ConScale=%.0f ms; throughput "
                "%llu vs %llu completed requests\n",
                dcm.p99_ms, con.p99_ms,
                static_cast<unsigned long long>(dcm.requests_completed),
                static_cast<unsigned long long>(con.requests_completed));
  std::cout << buf;
  paper_note("Fig 11: ConScale estimates the new optimum online; DCM's "
             "pre-trained setting under-allocates after the dataset change.");
  env.maybe_dump("fig11_dcm", dcm);
  env.maybe_dump("fig11_conscale", con);
  return 0;
}
