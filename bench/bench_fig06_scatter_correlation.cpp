// Figure 6: "The correlations between MySQL concurrency, throughput, and
// response time measured at 50 ms granularity during a 12-minute
// experiment" — the scatter graphs that motivate the SCT model, with the
// three stages and the rational concurrency range annotated.
#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Figure 6 — MySQL TP-vs-Q and RT-vs-Q scatter (12 min, 50 ms)",
         "Paper: ascending / stable / descending states; rational range "
         "~[15, 40]; RT grows with concurrency, crossing 50 ms around the "
         "upper bound.");

  ScatterRunOptions options;
  options.duration = env.duration;
  options.max_users = 160.0;
  options.fixed_app_vms = 4;  // enough Tomcats to push MySQL through all stages
  const ScatterRunResult result =
      collect_scatter(env.params, kDbTier, options);

  print_scatter_analysis(std::cout,
                         "Fig 6(a): MySQL throughput vs concurrency", result);

  // Fig 6(b): RT-vs-Q scatter from the same samples.
  Series rt_points;
  rt_points.name = "RT vs Q (50ms samples)";
  for (const auto& s : result.raw_samples) {
    if (s.concurrency < 0.5 || s.completions == 0) continue;
    rt_points.x.push_back(s.concurrency);
    rt_points.y.push_back(s.mean_rt * 1e3);
  }
  ChartOptions co;
  co.x_label = "Concurrency [#]";
  co.y_label = "Fig 6(b): Response Time [ms]  (paper: 50 ms SLA line)";
  co.height = 14;
  std::cout << render_scatter(rt_points, co);

  if (result.range) {
    paper_note("Fig 6: optimal concurrency = lower bound of the rational "
               "range; measured Q_lower=" +
               std::to_string(result.range->q_lower) + ", Q_upper=" +
               std::to_string(result.range->q_upper) + ".");
  }
  env.maybe_dump("fig06_scatter", result);
  return 0;
}
