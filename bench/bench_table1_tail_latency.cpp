// Table I: "Tail response time (i.e., 95th and 99th percentile response
// time) comparison between EC2-AutoScaling and ConScale under six realistic
// bursty workload traces."
//
// Paper values (ms):
//                    LargeVar QuickVar SlowVar BigSpike DualPhase SteepTri
//   EC2    p95          462      157     1135      687       225      101
//   Con    p95          157       48       85      179        81       56
//   EC2    p99         2345      684     3252     3981      1153     1259
//   Con    p99          465      229      218      479       328      171
//
// The claim to preserve: ConScale wins across the board, and its p99 stays
// bounded (paper: < 500 ms) while EC2's blows past 1-4 s on bursty traces.
#include <vector>

#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Table I — tail latency, EC2-AutoScaling vs ConScale, six traces",
         "Paper: ConScale keeps p99 < ~500 ms everywhere; EC2 spikes to "
         "multi-second p99 on the bursty traces.");

  ScalingRunOptions options;
  options.duration = env.duration;

  // The full 12-cell grid (6 traces × 2 frameworks) as one fan-out.
  std::vector<RunSpec> specs;
  for (TraceKind kind : all_trace_kinds()) {
    for (FrameworkKind framework :
         {FrameworkKind::kEc2AutoScaling, FrameworkKind::kConScale}) {
      RunSpec spec;
      spec.params = env.params;
      spec.trace = kind;
      spec.framework = framework;
      spec.options = options;
      specs.push_back(spec);
    }
  }
  const std::vector<ScalingRunResult> results = env.run_all(specs);

  std::vector<TailRow> rows;
  double ec2_p99_worst = 0.0, con_p99_worst = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScalingRunResult& result = results[i];
    rows.push_back({result.framework_name, result.trace_name,
                    result.p95_ms, result.p99_ms});
    std::cout << "  ran " << result.framework_name << " on "
              << result.trace_name << ": p95=" << static_cast<int>(result.p95_ms)
              << "ms p99=" << static_cast<int>(result.p99_ms) << "ms, "
              << static_cast<int>(result.sla_500ms * 100.0)
              << "% of requests within 500 ms\n";
    if (specs[i].framework == FrameworkKind::kEc2AutoScaling) {
      ec2_p99_worst = std::max(ec2_p99_worst, result.p99_ms);
    } else {
      con_p99_worst = std::max(con_p99_worst, result.p99_ms);
    }
  }
  print_tail_table(std::cout, "Table I (measured)", rows);

  std::cout << "\n  worst-case p99: EC2-AutoScaling="
            << static_cast<int>(ec2_p99_worst)
            << " ms vs ConScale=" << static_cast<int>(con_p99_worst)
            << " ms\n";
  paper_note("Table I: paper worst-case p99 — EC2 3981 ms vs ConScale "
             "479 ms.");
  return 0;
}
