// Table I: "Tail response time (i.e., 95th and 99th percentile response
// time) comparison between EC2-AutoScaling and ConScale under six realistic
// bursty workload traces."
//
// Paper values (ms):
//                    LargeVar QuickVar SlowVar BigSpike DualPhase SteepTri
//   EC2    p95          462      157     1135      687       225      101
//   Con    p95          157       48       85      179        81       56
//   EC2    p99         2345      684     3252     3981      1153     1259
//   Con    p99          465      229      218      479       328      171
//
// The claim to preserve: ConScale wins across the board, and its p99 stays
// bounded (paper: < 500 ms) while EC2's blows past 1-4 s on bursty traces.
#include <algorithm>
#include <vector>

#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  // Extra key: frameworks= (controller-registry references; unknown names
  // abort with the registered list). Default reproduces the paper's table.
  BenchEnv env = BenchEnv::from_args(argc, argv, {"frameworks"});
  const Config config = Config::from_args(argc, argv);
  const std::vector<ControllerRef> frameworks =
      frameworks_from(config, "ec2,conscale");
  banner("Table I — tail latency, EC2-AutoScaling vs ConScale, six traces",
         "Paper: ConScale keeps p99 < ~500 ms everywhere; EC2 spikes to "
         "multi-second p99 on the bursty traces.");

  ScalingRunOptions options;
  options.duration = env.duration;

  // Offline training only when DCM is actually in the grid.
  ScalingRunOptions dcm_options = options;
  if (std::any_of(frameworks.begin(), frameworks.end(),
                  [](const ControllerRef& ref) { return ref.name == "dcm"; })) {
    std::cout << "  training DCM offline...\n";
    FrameworkConfig dcm_config = make_framework_config(env.params);
    dcm_config.dcm_profile = train_dcm_profile(env.params);
    dcm_options.framework_config = dcm_config;
  }

  // The full grid (6 traces × frameworks) as one fan-out.
  std::vector<RunSpec> specs;
  for (TraceKind kind : all_trace_kinds()) {
    for (const ControllerRef& framework : frameworks) {
      RunSpec spec;
      spec.params = env.params;
      spec.trace = kind;
      spec.framework = to_string(framework);
      spec.options = framework.name == "dcm" ? dcm_options : options;
      specs.push_back(spec);
    }
  }
  const std::vector<ScalingRunResult> results = env.run_all(specs);

  std::vector<TailRow> rows;
  // Worst-case p99 per framework, in frameworks= order.
  std::vector<double> worst_p99(frameworks.size(), 0.0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScalingRunResult& result = results[i];
    rows.push_back({result.framework_name, result.trace_name,
                    result.p95_ms, result.p99_ms});
    std::cout << "  ran " << result.framework_name << " on "
              << result.trace_name << ": p95=" << static_cast<int>(result.p95_ms)
              << "ms p99=" << static_cast<int>(result.p99_ms) << "ms, "
              << static_cast<int>(result.sla_500ms * 100.0)
              << "% of requests within 500 ms\n";
    const std::size_t f = i % frameworks.size();
    worst_p99[f] = std::max(worst_p99[f], result.p99_ms);
  }
  print_tail_table(std::cout, "Table I (measured)", rows);

  std::cout << "\n  worst-case p99: ";
  for (std::size_t f = 0; f < frameworks.size(); ++f) {
    if (f > 0) std::cout << " vs ";
    std::cout << results[f].framework_name << "="
              << static_cast<int>(worst_p99[f]) << " ms";
  }
  std::cout << "\n";
  paper_note("Table I: paper worst-case p99 — EC2 3981 ms vs ConScale "
             "479 ms.");
  return 0;
}
