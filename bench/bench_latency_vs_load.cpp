// Latency versus offered load: the classic open-loop capacity curve for the
// 3-tier system, with soft resources at the static default (1000-60-40) vs
// SCT-tuned. Complements the paper's closed-loop experiments: closed loops
// self-throttle when the system slows, open-loop arrivals do not — the knee
// of this curve is the honest capacity of the deployment.
#include "bench_common.h"

#include "workload/open_loop.h"

using namespace conscale;
using namespace conscale::bench;

namespace {

struct Point {
  double offered = 0.0;
  double achieved = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

Point run_at(const ScenarioParams& base, double rate, SimDuration duration,
             const DcmProfile* tuned) {
  ScenarioParams p = base;
  p.web_init = p.web_min = p.web_max = 1;
  p.app_init = p.app_min = p.app_max = 2;
  p.db_init = p.db_min = p.db_max = 1;

  Simulation sim;
  RequestMix mix = p.make_mix();
  NTierSystem system(sim, p.system_config());
  if (tuned) {
    auto it = tuned->tier_optimal_concurrency.find(kAppTier);
    if (it != tuned->tier_optimal_concurrency.end()) {
      system.tier(kAppTier).set_thread_pool_size(
          static_cast<std::size_t>(it->second));
    }
    it = tuned->tier_optimal_concurrency.find(kDbTier);
    if (it != tuned->tier_optimal_concurrency.end()) {
      system.tier(kAppTier).set_downstream_pool_size(
          std::max<std::size_t>(static_cast<std::size_t>(it->second) / 2, 1));
    }
  }
  const WorkloadTrace rate_trace = make_constant_trace(rate, duration + 1.0);
  OpenLoopGenerator gen(
      sim, rate_trace, mix,
      [&system](const RequestContext& ctx, std::function<void()> done) {
        system.submit(ctx, std::move(done));
      },
      {});
  sim.run_until(duration);

  Point point;
  point.offered = rate;
  point.achieved =
      static_cast<double>(gen.requests_completed()) / duration;
  point.p50_ms = to_ms(gen.response_times().percentile(50.0));
  point.p99_ms = to_ms(gen.response_times().percentile(99.0));
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Capacity curve — open-loop latency vs offered load (1/2/1)",
         "Expectation: flat latency until the knee, then the hockey stick; "
         "SCT-tuned pools shift the knee right of the 1000-60-40 default.");

  const SimDuration duration = std::min<SimDuration>(env.duration, 120.0);
  std::cout << "  profiling SCT optima for the tuned configuration...\n";
  const DcmProfile tuned = train_dcm_profile(env.params);

  std::cout << "\n  offered[r/s] | default: achieved  p50    p99   | tuned: "
               "achieved  p50    p99\n";
  // 1/2/1 nominal capacity ~ 2 Tomcats = ~3.3k req/s, MySQL ~3.8k.
  for (double rate : {500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0, 3300.0,
                      3600.0}) {
    const double r = rate / env.params.work_scale;
    const Point plain = run_at(env.params, r, duration, nullptr);
    const Point smart = run_at(env.params, r, duration, &tuned);
    char buf[180];
    std::snprintf(buf, sizeof(buf),
                  "  %10.0f   | %10.0f %5.0fms %6.0fms | %10.0f %5.0fms "
                  "%6.0fms\n",
                  rate, plain.achieved * env.params.work_scale, plain.p50_ms,
                  plain.p99_ms, smart.achieved * env.params.work_scale,
                  smart.p50_ms, smart.p99_ms);
    std::cout << buf;
  }
  return 0;
}
