// Figure 5: "Fine-grained monitoring of MySQL when the 3-tier system serves
// a realistic bursty workload" — MySQL's 50 ms concurrency, throughput, and
// response time over a 20-second window right after the system scales from
// 1/1/1 to 1/2/1 (i.e. right after the first Tomcat scale-out completes),
// under hardware-only scaling. This is the raw material of the SCT scatter.
#include <algorithm>

#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Figure 5 — 50 ms monitoring of MySQL after a Tomcat scale-out",
         "Paper: concurrency/TP/RT all fluctuate hard once the second Tomcat "
         "doubles the concurrent requests into MySQL.");

  const ScalingRunOptions options = env.scaling_options();
  const ScalingRunResult result =
      run_scaling(env.params, TraceKind::kLargeVariations,
                  "ec2", options);

  // The paper's window (85-105 s) is where MySQL concurrency fluctuates the
  // hardest after a Tomcat joins; our trace timing differs, so locate the
  // 20 s window around MySQL1's highest observed concurrency — by
  // construction that is the post-scale-out overload the figure shows.
  const auto& full_series = result.warehouse->server_series("MySQL1");
  SimTime peak_time = 90.0;
  double peak_q = 0.0;
  for (const auto& s : full_series) {
    if (s.concurrency > peak_q) {
      peak_q = s.concurrency;
      peak_time = s.t_end;
    }
  }
  const SimTime window_end = peak_time + 10.0;
  std::cout << "  window: [" << window_end - 20.0 << " s, " << window_end
            << " s] (peak MySQL concurrency " << static_cast<int>(peak_q)
            << " at t=" << peak_time << " s)\n";

  const auto samples =
      result.warehouse->server_window("MySQL1", 20.0, window_end);
  Series q, tp, rt;
  q.name = "concurrency [#]";
  tp.name = "throughput [queries/s]";
  rt.name = "response time [ms]";
  for (const auto& s : samples) {
    q.x.push_back(s.t_end);
    q.y.push_back(s.concurrency);
    tp.x.push_back(s.t_end);
    tp.y.push_back(s.throughput);
    rt.x.push_back(s.t_end);
    rt.y.push_back(s.mean_rt * 1e3);
  }
  ChartOptions co;
  co.x_label = "Timeline [s]";
  co.height = 12;
  co.y_label = "Fig 5(a): MySQL workload concurrency";
  std::cout << render_lines({q}, co);
  co.y_label = "Fig 5(b): MySQL throughput [queries/s]";
  std::cout << render_lines({tp}, co);
  co.y_label = "Fig 5(c): MySQL response time [ms]";
  std::cout << render_lines({rt}, co);

  double q_min = 1e18, q_max = 0.0;
  for (const auto& s : samples) {
    q_min = std::min(q_min, s.concurrency);
    q_max = std::max(q_max, s.concurrency);
  }
  std::cout << "  concurrency range in window: [" << q_min << ", " << q_max
            << "] across " << samples.size() << " samples\n";
  paper_note("Fig 5: MySQL concurrency swings from near-0 to ~80 within the "
             "same 20 s; throughput and RT fluctuate correspondingly.");
  return 0;
}
