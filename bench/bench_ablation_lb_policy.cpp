// Ablation: load-balancing policy during scale-out. The paper deploys
// HAProxy with `leastconn` (§IV-A); this ablation compares leastconn against
// plain round-robin under the Big Spike trace, where a newly added, empty
// server and established busy servers coexist — the case leastconn is
// designed for.
#include "bench_common.h"

using namespace conscale;
using namespace conscale::bench;

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::from_args(argc, argv);
  banner("Ablation — HAProxy policy: leastconn vs roundrobin",
         "Expectation: comparable at steady state; leastconn integrates "
         "freshly added VMs more smoothly during scale-out.");

  const std::vector<LbPolicy> policies = {LbPolicy::kLeastConnections,
                                          LbPolicy::kRoundRobin};
  std::vector<RunSpec> specs;
  for (LbPolicy policy : policies) {
    RunSpec spec;
    spec.label = "lb/" + to_string(policy);
    spec.params = env.params;
    spec.params.lb_policy = policy;
    spec.trace = TraceKind::kBigSpike;
    spec.framework = "conscale";
    spec.options.duration = env.duration;
    specs.push_back(spec);
  }
  const std::vector<ScalingRunResult> results = env.run_all(specs);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScalingRunResult& result = results[i];
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "  %-12s p50=%6.0fms p95=%6.0fms p99=%6.0fms max=%6.0fms "
                  "completed=%llu\n",
                  to_string(policies[i]).c_str(), result.p50_ms, result.p95_ms,
                  result.p99_ms, result.max_rt_ms,
                  static_cast<unsigned long long>(result.requests_completed));
    std::cout << buf;
  }
  return 0;
}
