// ServiceGraph: the DAG generalization of NTierSystem (DESIGN.md §"Service
// graphs"). Each graph node owns one horizontally scalable TierGroup plus a
// routing spec: an ordered list of stages executed sequentially, where every
// stage fans out to one or more child nodes in parallel and joins on all
// replies before the next stage runs (synchronous RPC semantics throughout —
// the serving thread is held across the whole route, exactly like the
// chain's downstream calls). Nodes may share children ("shared backend"), so
// cross-traffic from several parents meets at one tier and per-node SCT
// ranges must be estimated under interference.
//
// Two node behaviors ride on top of plain routing:
//   * cache nodes — a deterministic hit-ratio model; a hit short-circuits
//     the node's whole subtree. The hit ratio follows the cache's coverage
//     of a (possibly churning) working set, so the critical resource can
//     migrate between nodes mid-run.
//   * admission control at the graph entry — occupancy- and queue-age-based
//     shedding that reports RequestOutcome::kRejected instead of queueing
//     into an overloaded system.
//
// ServiceGraph implements TierSystem with node index == tier index, so every
// scaling framework, estimator, monitor, and fault plan runs against a graph
// unmodified; a linear chain expressed as a graph replays the exact event
// sequence NTierSystem produces (pinned by tests/topology).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cluster/tier_channel.h"
#include "cluster/tier_group.h"
#include "cluster/tier_system.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "simcore/lanes/lane_engine.h"
#include "simcore/simulation.h"
#include "workload/request.h"

namespace conscale::topology {

/// One call inside a route stage: dispatch into `node`'s load balancer.
struct GraphCall {
  std::size_t node = 0;
};

/// One sequential step of a node's route. All calls in a stage are issued
/// together (parallel fan-out) and joined on *all* replies before the next
/// stage starts; a single-call stage degenerates to the chain's sequential
/// RPC with zero extra bookkeeping.
struct RouteStage {
  std::vector<GraphCall> calls;
};

/// Deterministic cache model: each downstream invocation of the node draws
/// hit/miss from the node's own RNG stream (forked off the graph seed, so
/// runs replay byte-identically). The hit ratio is the base ratio scaled by
/// how much of the working set the cache covers:
///
///   h(t) = base_hit_ratio * min(1, capacity / ws(t))
///
/// where ws(t) rides a triangle wave of `churn_amplitude` around
/// `working_set` with period `churn_period` (0 = static). A growing working
/// set mid-period drops the hit ratio and pushes load into the subtree —
/// the critical resource migrates between nodes within one run.
struct CacheModel {
  bool enabled = false;
  double base_hit_ratio = 0.8;
  double capacity = 1.0;     ///< cache size, in working-set units
  double working_set = 1.0;  ///< nominal working-set size
  double churn_period = 0.0;     ///< seconds; 0 disables churn
  double churn_amplitude = 0.0;  ///< fractional swing of the working set

  double hit_ratio_at(SimTime t) const;
};

/// Entry-point shedding. A request is rejected (never enters any server)
/// when either bound trips:
///   * occupancy — requests waiting at the entry node (thread-pool queues
///     plus the LB surge backlog) have reached `queue_limit`;
///   * queue age — the oldest still-in-flight admitted request is older
///     than `max_queue_age` (the "queues aged out" signal: responses are
///     already slower than any client would wait for).
/// Either limit set to 0 disables that check.
struct AdmissionPolicy {
  bool enabled = false;
  std::size_t queue_limit = 0;
  double max_queue_age = 0.0;  ///< seconds
};

struct GraphNodeConfig {
  TierConfig tier;  ///< tier_index is overwritten with the node index
  std::size_t initial_vms = 1;
  std::vector<RouteStage> route;  ///< empty = leaf node
  CacheModel cache;
};

struct ServiceGraphConfig {
  /// Node 0 is the graph entry. Routes must form a DAG over the indices and
  /// every node must be reachable from the entry.
  std::vector<GraphNodeConfig> nodes;
  AdmissionPolicy admission;
  std::uint64_t seed = 1;  ///< cache hit/miss streams fork off this
  /// LAN hop on every node->node edge (each direction; seconds). 0 keeps
  /// the direct dispatch wiring. Must be > 0 for cross-lane placements.
  SimDuration lan_delay = 0.0;
};

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_occupancy = 0;
  std::uint64_t rejected_age = 0;

  std::uint64_t rejected() const { return rejected_occupancy + rejected_age; }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class ServiceGraph final : public TierSystem {
 public:
  /// Validates the config (throws std::invalid_argument on cycles,
  /// out-of-range route targets, self-calls, duplicate node names, or
  /// nodes unreachable from the entry), builds one TierGroup per node,
  /// wires the routers, and bootstraps the initial VMs.
  ServiceGraph(Simulation& sim, ServiceGraphConfig config,
               const RunContext* context = nullptr);

  /// Lane-partitioned construction: node i lives on lane
  /// `layout.lane_of_tier[i]`'s Simulation, every route edge crosses a
  /// TierChannel (requiring `config.lan_delay > 0` on cross-lane edges),
  /// and vm-ready signals are forwarded to `layout.control_lane`. The
  /// caller must declare the matching engine channels and submit() only
  /// from the entry node's lane.
  ServiceGraph(lanes::LaneEngine& engine, ServiceGraphConfig config,
               const TierLaneLayout& layout,
               const RunContext* context = nullptr);

  const RunContext& context() const override { return *ctx_; }

  /// Client entry point. The continuation reports whether the request was
  /// served or shed; rejections fire synchronously at submit time.
  void submit(const RequestContext& ctx,
              std::function<void(RequestOutcome)> done);

  // ---- TierSystem (node index == tier index) ----
  std::size_t tier_count() const override { return tiers_.size(); }
  TierGroup& tier(std::size_t index) override { return *tiers_[index]; }
  const TierGroup& tier(std::size_t index) const override {
    return *tiers_[index];
  }
  void add_vm_ready_callback(VmReadyCallback callback) override;

  /// The lane hosting node `index` (always 0 for serial construction).
  std::size_t tier_lane(std::size_t index) const {
    return node_lane_.empty() ? 0 : node_lane_[index];
  }
  /// The Simulation hosting node `index` (the shared sim when serial).
  Simulation& tier_sim(std::size_t index) { return *node_sims_[index]; }

  // ---- Graph-specific observability ----
  const ServiceGraphConfig& config() const { return config_; }
  const AdmissionStats& admission_stats() const { return admission_stats_; }
  const CacheStats& cache_stats(std::size_t node) const {
    return cache_stats_[node];
  }
  /// The cache model's hit ratio at time t (tests pin the churn shape).
  double cache_hit_ratio(std::size_t node, SimTime t) const {
    return config_.nodes[node].cache.hit_ratio_at(t);
  }

 private:
  struct InFlight {
    std::uint64_t id;
    SimTime admitted_at;
  };

  void validate(const ServiceGraphConfig& config) const;
  void build(lanes::LaneEngine* engine, const TierLaneLayout* layout);
  void run_route(std::size_t node, const RequestContext& ctx,
                 std::size_t stage, Server::Completion done);
  /// Routes one call across the (from -> to) edge's TierChannel.
  void dispatch_call(std::size_t from, std::size_t to,
                     const RequestContext& ctx, Server::Completion done);
  bool admit();
  void prune_inflight();

  Simulation& sim_;  ///< the entry node's sim (admission clock)
  const RunContext* ctx_;
  ServiceGraphConfig config_;
  std::vector<std::unique_ptr<TierGroup>> tiers_;
  std::vector<Simulation*> node_sims_;
  std::vector<std::size_t> node_lane_;  ///< empty when serial
  std::vector<std::unique_ptr<TierChannel>> channels_;
  /// Dense (from * n + to) -> channel index, or npos for absent edges.
  std::vector<std::size_t> edge_channel_;
  std::vector<std::unique_ptr<VmReadyNotifier>> notifiers_;
  std::vector<VmReadyCallback> on_vm_ready_;
  std::vector<Rng> cache_rngs_;          ///< per node (unused if no cache)
  std::vector<CacheStats> cache_stats_;  ///< per node
  AdmissionStats admission_stats_;
  /// Age tracking (only populated when the age check is armed): admitted
  /// requests in admission order + lazily-pruned completion marks. Keyed
  /// access only — never iterated (determinism audit, DESIGN.md §8).
  std::deque<InFlight> inflight_;
  std::unordered_set<std::uint64_t> completed_ids_;
};

}  // namespace conscale::topology
