#include "topology/service_graph.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

namespace conscale::topology {

double CacheModel::hit_ratio_at(SimTime t) const {
  double ws = working_set;
  if (churn_period > 0.0 && churn_amplitude != 0.0) {
    const double cycles = t / churn_period;
    const double phase = cycles - std::floor(cycles);
    // Triangle wave: -1 at the period edges, +1 mid-period. The working set
    // starts small (hit ratio at its best), swells to its peak halfway
    // through each churn cycle, and recedes again.
    const double tri = 1.0 - 4.0 * std::abs(phase - 0.5);
    ws = working_set * (1.0 + churn_amplitude * tri);
  }
  const double coverage = ws > 0.0 ? std::min(1.0, capacity / ws) : 1.0;
  return std::clamp(base_hit_ratio * coverage, 0.0, 1.0);
}

void ServiceGraph::validate(const ServiceGraphConfig& config) const {
  if (config.nodes.empty()) {
    throw std::invalid_argument("ServiceGraph: no nodes configured");
  }
  const std::size_t n = config.nodes.size();
  std::set<std::string> names;
  for (std::size_t i = 0; i < n; ++i) {
    const GraphNodeConfig& node = config.nodes[i];
    if (!names.insert(node.tier.name).second) {
      throw std::invalid_argument("ServiceGraph: duplicate node name '" +
                                  node.tier.name + "'");
    }
    for (const RouteStage& stage : node.route) {
      for (const GraphCall& call : stage.calls) {
        if (call.node >= n) {
          throw std::invalid_argument(
              "ServiceGraph: node '" + node.tier.name +
              "' routes to out-of-range node index " +
              std::to_string(call.node));
        }
        if (call.node == i) {
          throw std::invalid_argument("ServiceGraph: node '" +
                                      node.tier.name + "' calls itself");
        }
      }
    }
  }
  // Cycle check (iterative three-color DFS) + reachability from the entry.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  struct Frame {
    std::size_t node;
    std::size_t stage = 0;
    std::size_t call = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({0});
  color[0] = Color::kGray;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const GraphNodeConfig& node = config.nodes[frame.node];
    // Advance to the next unvisited edge of this node.
    while (frame.stage < node.route.size() &&
           frame.call >= node.route[frame.stage].calls.size()) {
      ++frame.stage;
      frame.call = 0;
    }
    if (frame.stage >= node.route.size()) {
      color[frame.node] = Color::kBlack;
      stack.pop_back();
      continue;
    }
    const std::size_t child = node.route[frame.stage].calls[frame.call].node;
    ++frame.call;
    if (color[child] == Color::kGray) {
      throw std::invalid_argument(
          "ServiceGraph: cycle through node '" +
          config.nodes[child].tier.name + "'");
    }
    if (color[child] == Color::kWhite) {
      color[child] = Color::kGray;
      stack.push_back({child});
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (color[i] == Color::kWhite) {
      throw std::invalid_argument("ServiceGraph: node '" +
                                  config.nodes[i].tier.name +
                                  "' is unreachable from the entry");
    }
  }
}

namespace {
constexpr std::size_t kNoChannel = static_cast<std::size_t>(-1);
}  // namespace

ServiceGraph::ServiceGraph(Simulation& sim, ServiceGraphConfig config,
                           const RunContext* context)
    : sim_(sim), ctx_(context ? context : &RunContext::global()),
      config_(std::move(config)) {
  build(nullptr, nullptr);
}

ServiceGraph::ServiceGraph(lanes::LaneEngine& engine,
                           ServiceGraphConfig config,
                           const TierLaneLayout& layout,
                           const RunContext* context)
    : sim_(engine.lane(config.nodes.empty()
                           ? layout.control_lane
                           : layout.lane_of_tier.front())
               .sim()),
      ctx_(context ? context : &RunContext::global()),
      config_(std::move(config)) {
  if (layout.lane_of_tier.size() != config_.nodes.size()) {
    throw std::invalid_argument(
        "ServiceGraph: layout.lane_of_tier must match node count");
  }
  build(&engine, &layout);
}

void ServiceGraph::build(lanes::LaneEngine* engine,
                         const TierLaneLayout* layout) {
  validate(config_);
  if (config_.lan_delay < 0.0) {
    throw std::invalid_argument("ServiceGraph: lan_delay must be >= 0");
  }
  const std::size_t n = config_.nodes.size();
  cache_stats_.resize(n);
  cache_rngs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Fixed per-node stream derivation so cache draws replay byte-identically
    // and are independent of every other RNG consumer in the run.
    cache_rngs_.emplace_back(config_.seed ^
                             (0x9e3779b97f4a7c15ULL * (i + 1)));
    TierConfig tc = config_.nodes[i].tier;
    tc.tier_index = static_cast<int>(i);
    Simulation& node_sim =
        engine ? engine->lane(layout->lane_of_tier[i]).sim() : sim_;
    node_sims_.push_back(&node_sim);
    tiers_.push_back(std::make_unique<TierGroup>(node_sim, tc, ctx_));
  }
  if (engine) node_lane_ = layout->lane_of_tier;
  // One TierChannel per distinct route edge, built in route order so actor
  // stream allocation is layout-independent. lan_delay = 0 (serial default)
  // makes every channel a direct dispatch — byte-identical to the pre-hop
  // wiring, including the single-call linear-equivalence contract.
  edge_channel_.assign(n * n, kNoChannel);
  for (std::size_t i = 0; i < n; ++i) {
    for (const RouteStage& stage : config_.nodes[i].route) {
      for (const GraphCall& call : stage.calls) {
        std::size_t& slot = edge_channel_[i * n + call.node];
        if (slot != kNoChannel) continue;
        slot = channels_.size();
        if (engine) {
          channels_.push_back(std::make_unique<TierChannel>(
              *engine, layout->lane_of_tier[i],
              layout->lane_of_tier[call.node], tiers_[call.node]->lb(),
              config_.lan_delay));
        } else {
          channels_.push_back(std::make_unique<TierChannel>(
              sim_, tiers_[call.node]->lb(), config_.lan_delay));
        }
      }
    }
  }
  // Wire each routing node's servers to the graph router. Leaf nodes with no
  // cache keep a null downstream, exactly like the chain's last tier.
  for (std::size_t i = 0; i < n; ++i) {
    const GraphNodeConfig& node = config_.nodes[i];
    if (node.route.empty() && !node.cache.enabled) continue;
    tiers_[i]->set_downstream_factory([this, i]() {
      return [this, i](const RequestContext& ctx, Server::Completion done) {
        const CacheModel& cache = config_.nodes[i].cache;
        if (cache.enabled) {
          // The draw clock is the node's own sim — identical to the run
          // clock when serial, the hosting lane's clock when partitioned.
          const double h = cache.hit_ratio_at(node_sims_[i]->now());
          if (cache_rngs_[i].bernoulli(h)) {
            ++cache_stats_[i].hits;
            done();  // hit: the whole subtree is short-circuited
            return;
          }
          ++cache_stats_[i].misses;
        }
        run_route(i, ctx, 0, std::move(done));
      };
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (engine) {
      const std::size_t lane = layout->lane_of_tier[i];
      if (lane != layout->control_lane && !(config_.lan_delay > 0.0)) {
        throw std::invalid_argument(
            "ServiceGraph: cross-lane nodes need lan_delay > 0 (the "
            "vm-ready hop to the control lane has no lookahead otherwise)");
      }
      notifiers_.push_back(std::make_unique<VmReadyNotifier>(
          *engine, lane, layout->control_lane, config_.lan_delay,
          [this, i](Vm& vm) {
            for (auto& callback : on_vm_ready_) callback(i, vm);
          }));
      VmReadyNotifier* notifier = notifiers_.back().get();
      tiers_[i]->set_vm_ready_callback(
          [notifier](Vm& vm) { notifier->notify(vm); });
    } else {
      tiers_[i]->set_vm_ready_callback([this, i](Vm& vm) {
        for (auto& callback : on_vm_ready_) callback(i, vm);
      });
    }
  }
  // Bootstrap after wiring so even time-zero VMs get their downstream set.
  for (std::size_t i = 0; i < n; ++i) {
    tiers_[i]->bootstrap(config_.nodes[i].initial_vms);
  }
}

void ServiceGraph::dispatch_call(std::size_t from, std::size_t to,
                                 const RequestContext& ctx,
                                 Server::Completion done) {
  const std::size_t slot = edge_channel_[from * config_.nodes.size() + to];
  channels_[slot]->dispatch(ctx, std::move(done));
}

void ServiceGraph::run_route(std::size_t node_index, const RequestContext& ctx,
                             std::size_t stage_index,
                             Server::Completion done) {
  const auto& route = config_.nodes[node_index].route;
  while (stage_index < route.size() &&
         route[stage_index].calls.empty()) {
    ++stage_index;
  }
  if (stage_index >= route.size()) {
    done();
    return;
  }
  const RouteStage& stage = route[stage_index];
  Server::Completion next;
  if (stage_index + 1 >= route.size()) {
    next = std::move(done);
  } else {
    next = [this, node_index, ctx, stage_index,
            done = std::move(done)]() mutable {
      run_route(node_index, ctx, stage_index + 1, std::move(done));
    };
  }
  if (stage.calls.size() == 1) {
    // Sequential call: no join bookkeeping — this is the chain's downstream
    // dispatch verbatim (the linear-equivalence contract rides on it).
    dispatch_call(node_index, stage.calls[0].node, ctx, std::move(next));
    return;
  }
  // Parallel fan-out with join-on-all: the last reply continues the route.
  struct JoinState {
    std::size_t remaining;
    Server::Completion next;
  };
  auto join = std::make_shared<JoinState>();
  join->remaining = stage.calls.size();
  join->next = std::move(next);
  for (const GraphCall& call : stage.calls) {
    dispatch_call(node_index, call.node, ctx, [join] {
      if (--join->remaining == 0) join->next();
    });
  }
}

bool ServiceGraph::admit() {
  const AdmissionPolicy& policy = config_.admission;
  if (policy.queue_limit > 0) {
    LoadBalancer& lb = tiers_.front()->lb();
    std::size_t depth = lb.surge_queued();
    for (Server* server : lb.backends()) depth += server->queued();
    if (depth >= policy.queue_limit) {
      ++admission_stats_.rejected_occupancy;
      return false;
    }
  }
  if (policy.max_queue_age > 0.0) {
    prune_inflight();
    if (!inflight_.empty() &&
        sim_.now() - inflight_.front().admitted_at > policy.max_queue_age) {
      ++admission_stats_.rejected_age;
      return false;
    }
  }
  return true;
}

void ServiceGraph::prune_inflight() {
  while (!inflight_.empty() &&
         completed_ids_.erase(inflight_.front().id) > 0) {
    inflight_.pop_front();
  }
}

void ServiceGraph::submit(const RequestContext& ctx,
                          std::function<void(RequestOutcome)> done) {
  if (config_.admission.enabled && !admit()) {
    done(RequestOutcome::kRejected);
    return;
  }
  ++admission_stats_.admitted;
  const bool track =
      config_.admission.enabled && config_.admission.max_queue_age > 0.0;
  if (track) inflight_.push_back({ctx.id, sim_.now()});
  tiers_.front()->lb().dispatch(
      ctx, [this, track, id = ctx.id, done = std::move(done)] {
        if (track) {
          completed_ids_.insert(id);
          prune_inflight();
        }
        done(RequestOutcome::kServed);
      });
}

void ServiceGraph::add_vm_ready_callback(VmReadyCallback callback) {
  on_vm_ready_.push_back(std::move(callback));
}

}  // namespace conscale::topology
