#include "tier/server.h"

#include <cassert>
#include <stdexcept>

#include "common/logging.h"

namespace conscale {

struct Server::Visit {
  RequestContext ctx;
  Completion done;
  SimTime arrival = 0.0;
  const PhaseDemand* demand = nullptr;
  int calls_remaining = 0;
  bool admitted = false;   ///< holds (or held) a worker thread
  bool aborted = false;    ///< errored by fail(); every continuation no-ops
  bool completed = false;  ///< finish() ran; guards double accounting
};

Server::Server(Simulation& sim, Params params)
    : sim_(sim), params_(std::move(params)), rng_(params_.seed),
      cpu_(sim, params_.cores, params_.speed, params_.contention),
      disk_(sim, params_.disk_channels, params_.disk_speed),
      threads_(params_.name + ".threads",
               std::max<std::size_t>(params_.thread_pool_size, 1)) {
  if (params_.downstream_pool_size > 0) {
    downstream_pool_ = std::make_unique<TokenPool>(
        params_.name + ".dbconn", params_.downstream_pool_size);
  }
}

void Server::set_downstream(DownstreamFn downstream) {
  downstream_ = std::move(downstream);
}

void Server::set_thread_pool_size(std::size_t size) {
  threads_.resize(std::max<std::size_t>(size, 1));
}

void Server::set_downstream_pool_size(std::size_t size) {
  if (!downstream_pool_) {
    if (size == 0) return;
    downstream_pool_ =
        std::make_unique<TokenPool>(params_.name + ".dbconn", size);
    return;
  }
  downstream_pool_->resize(std::max<std::size_t>(size, 1));
}

void Server::set_cores(int cores) { cpu_.set_cores(cores); }

void Server::handle(const RequestContext& ctx, Completion done) {
  auto visit = std::make_shared<Visit>();
  visit->ctx = ctx;
  visit->done = std::move(done);
  visit->arrival = sim_.now();
  const auto tier = static_cast<std::size_t>(params_.tier_index);
  if (ctx.request_class == nullptr ||
      tier >= ctx.request_class->tiers.size()) {
    throw std::logic_error("Server '" + params_.name +
                           "': request class has no demand for tier " +
                           std::to_string(params_.tier_index));
  }
  visit->demand = &ctx.request_class->tiers[tier];
  ++in_flight_;
  register_visit(visit);
  threads_.acquire([this, visit] { start_processing(visit); });
}

void Server::register_visit(const std::shared_ptr<Visit>& visit) {
  // Amortized compaction keeps the registry proportional to the true
  // in-flight count instead of growing with the request total.
  if (live_visits_.size() >= 64 &&
      live_visits_.size() > 2 * in_flight_) {
    std::erase_if(live_visits_,
                  [](const std::weak_ptr<Visit>& w) { return w.expired(); });
  }
  live_visits_.push_back(visit);
}

void Server::start_processing(const std::shared_ptr<Visit>& visit) {
  if (visit->aborted) return;
  visit->admitted = true;
  for (auto& h : hooks_) {
    if (h.on_admitted) h.on_admitted(sim_.now());
  }
  const double cv = visit->ctx.request_class->demand_cv;
  const double cpu_pre =
      visit->demand->cpu_pre <= 0.0
          ? 0.0
          : rng_.lognormal_mean_cv(visit->demand->cpu_pre, cv);
  auto after_delay = [this, visit] {
    visit->calls_remaining = visit->demand->downstream_calls;
    run_downstream_calls(visit);
  };
  auto after_disk = [this, visit, after_delay]() mutable {
    if (visit->aborted) return;
    const double cv2 = visit->ctx.request_class->demand_cv;
    const double delay =
        visit->demand->pure_delay <= 0.0
            ? 0.0
            : rng_.lognormal_mean_cv(visit->demand->pure_delay, cv2);
    if (delay > 0.0) {
      sim_.schedule_after(delay, std::move(after_delay));
    } else {
      after_delay();
    }
  };
  auto after_cpu = [this, visit, after_disk]() mutable {
    if (visit->aborted) return;
    const double cv2 = visit->ctx.request_class->demand_cv;
    const double disk_demand =
        visit->demand->disk <= 0.0
            ? 0.0
            : rng_.lognormal_mean_cv(visit->demand->disk, cv2);
    if (disk_demand > 0.0) {
      disk_.submit(disk_demand, std::move(after_disk));
    } else {
      after_disk();
    }
  };
  if (cpu_pre > 0.0) {
    cpu_.submit(cpu_pre, std::move(after_cpu));
  } else {
    after_cpu();
  }
}

void Server::run_downstream_calls(const std::shared_ptr<Visit>& visit) {
  if (visit->aborted) return;
  if (visit->calls_remaining <= 0 || !downstream_) {
    // Final CPU burst, then depart.
    const double cv = visit->ctx.request_class->demand_cv;
    const double cpu_post =
        visit->demand->cpu_post <= 0.0
            ? 0.0
            : rng_.lognormal_mean_cv(visit->demand->cpu_post, cv);
    if (cpu_post > 0.0) {
      cpu_.submit(cpu_post, [this, visit] { finish(visit); });
    } else {
      finish(visit);
    }
    return;
  }
  --visit->calls_remaining;
  if (downstream_pool_) {
    downstream_pool_->acquire([this, visit] {
      if (visit->aborted) return;  // crashed while waiting for a connection
      downstream_(visit->ctx, [this, visit] {
        // If this server crashed while the sub-request was downstream, the
        // pool has been reset — the token this visit held no longer exists.
        if (!visit->aborted) downstream_pool_->release();
        run_downstream_calls(visit);
      });
    });
  } else {
    downstream_(visit->ctx, [this, visit] { run_downstream_calls(visit); });
  }
}

std::size_t Server::fail() {
  // Phase 1: mark every live visit dead and retire admitted ones from the
  // concurrency integrators. Marking first makes every continuation held by
  // pending events / downstream completions a no-op.
  std::vector<std::shared_ptr<Visit>> doomed;
  doomed.reserve(live_visits_.size());
  for (auto& weak : live_visits_) {
    auto visit = weak.lock();
    if (!visit || visit->aborted || visit->completed) continue;
    visit->aborted = true;
    if (visit->admitted) {
      for (auto& h : hooks_) {
        if (h.on_aborted) h.on_aborted(sim_.now());
      }
    }
    doomed.push_back(std::move(visit));
  }
  live_visits_.clear();
  // Phase 2: wipe resources before any completion runs, so upstream
  // reactions see a consistent (empty) server.
  cpu_.abort_all();
  disk_.clear_queue();
  threads_.reset();
  if (downstream_pool_) downstream_pool_->reset();
  in_flight_ = 0;
  aborted_ += doomed.size();
  // Phase 3: error the requests — the upstream gets its reply (a reset
  // connection) immediately, in arrival order.
  for (auto& visit : doomed) {
    if (visit->done) {
      auto done = std::move(visit->done);
      done();
    }
  }
  return doomed.size();
}

void Server::finish(const std::shared_ptr<Visit>& visit) {
  if (visit->aborted || visit->completed) return;
  visit->completed = true;
  threads_.release();
  assert(in_flight_ > 0);
  --in_flight_;
  ++completed_;
  const double rt = sim_.now() - visit->arrival;
  for (auto& h : hooks_) {
    if (h.on_departed) h.on_departed(sim_.now(), rt);
  }
  if (visit->done) visit->done();
}

}  // namespace conscale
