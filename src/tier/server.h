// Server: the component-server model (Apache / Tomcat / MySQL stand-ins).
//
// Processing pipeline per request (thread-per-request, synchronous RPC —
// §III-A of the paper):
//
//   arrive -> [thread pool queue] -> acquire worker thread
//          -> CPU burst (cpu_pre, processor sharing w/ contention)
//          -> disk service (FCFS), if any
//          -> pure delay (network/protocol time holding the thread)
//          -> N sequential downstream RPCs, each optionally gated by the
//             downstream connection pool (the app tier's DB connection pool)
//          -> CPU burst (cpu_post)
//          -> release thread, report departure upstream
//
// Soft resources — the thread pool size and the downstream connection pool
// size — are runtime-resizable (the knobs ConScale's software agent turns).
// Hardware resources — core count / speed — are also runtime-adjustable
// (vertical scaling experiments, §III-C.1).
//
// The server exposes arrival/departure/admission hooks; the metrics layer
// builds the paper's 50 ms concurrency/throughput/response-time series from
// them without the model knowing about monitoring at all.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "resources/contention.h"
#include "resources/fcfs_resource.h"
#include "resources/ps_resource.h"
#include "resources/token_pool.h"
#include "simcore/simulation.h"
#include "workload/request.h"

namespace conscale {

class Server {
 public:
  struct Params {
    std::string name = "server";
    int tier_index = 0;  ///< which PhaseDemand entry of a request applies
    int cores = 1;
    double speed = 1.0;
    ContentionModel contention = {};
    int disk_channels = 1;
    double disk_speed = 1.0;
    std::size_t thread_pool_size = 64;
    /// 0 = this server makes no pooled downstream calls (calls pass through
    /// ungated); otherwise the connection-pool capacity.
    std::size_t downstream_pool_size = 0;
    std::uint64_t seed = 1;
  };

  /// Continuation invoked when this server finishes a request.
  using Completion = std::function<void()>;
  /// Wired by the cluster layer: forwards a sub-request to the next tier
  /// (usually through a load balancer) and calls the continuation on reply.
  using DownstreamFn = std::function<void(const RequestContext&, Completion)>;

  Server(Simulation& sim, Params params);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Entry point: process `ctx` and invoke `done` when complete.
  void handle(const RequestContext& ctx, Completion done);

  /// Crash semantics (VM failure, see cluster/vm.h): every in-flight request
  /// is errored — its completion fires immediately (the upstream sees a
  /// connection reset, not a hang) and it never counts as a departure — the
  /// CPU run queue and disk queue are wiped, and both pools reset to empty.
  /// The caller must stop routing to this server first. Returns the number
  /// of requests aborted.
  std::size_t fail();

  void set_downstream(DownstreamFn downstream);

  // ---- Soft-resource actuation (the paper's #threads / #DBconn knobs) ----
  void set_thread_pool_size(std::size_t size);
  void set_downstream_pool_size(std::size_t size);
  std::size_t thread_pool_size() const { return threads_.capacity(); }
  std::size_t downstream_pool_size() const {
    return downstream_pool_ ? downstream_pool_->capacity() : 0;
  }

  // ---- Hardware actuation (vertical scaling) ----
  void set_cores(int cores);
  int cores() const { return cpu_.cores(); }
  /// Effective per-core speed multiplier. Values < 1 model performance
  /// interference from co-located tenants (the Q-clouds problem): the VM
  /// keeps its vCPUs but each delivers fewer cycles.
  void set_cpu_speed(double speed) { cpu_.set_speed(speed); }
  double cpu_speed() const { return cpu_.speed(); }
  void set_contention(ContentionModel contention) {
    cpu_.set_contention(contention);
  }

  // ---- Observability ----
  const std::string& name() const { return params_.name; }
  int tier_index() const { return params_.tier_index; }
  /// Requests currently holding a worker thread (the paper's measured
  /// "workload concurrency" of the server).
  std::size_t processing() const { return threads_.in_use(); }
  /// Requests waiting for a worker thread.
  std::size_t queued() const { return threads_.waiting(); }
  /// Everything between arrival and departure.
  std::size_t in_flight() const { return in_flight_; }
  double cpu_busy_core_seconds() const { return cpu_.busy_core_seconds(); }
  double disk_busy_seconds() const { return disk_.busy_channel_seconds(); }
  std::uint64_t completed_requests() const { return completed_; }
  /// Requests errored by fail() over the server's lifetime.
  std::uint64_t aborted_requests() const { return aborted_; }

  /// Admission/departure hooks for the metrics layer. `rt` is the full
  /// in-server response time (arrival to departure, queueing included).
  /// `on_aborted` fires for each *admitted* request errored by fail(), so
  /// concurrency integrators can retire it without counting a completion.
  struct Hooks {
    std::function<void(SimTime)> on_admitted;
    std::function<void(SimTime, double rt)> on_departed;
    std::function<void(SimTime)> on_aborted;
  };
  void add_hooks(Hooks hooks) { hooks_.push_back(std::move(hooks)); }

 private:
  struct Visit;
  void start_processing(const std::shared_ptr<Visit>& visit);
  void run_downstream_calls(const std::shared_ptr<Visit>& visit);
  void finish(const std::shared_ptr<Visit>& visit);
  void register_visit(const std::shared_ptr<Visit>& visit);

  Simulation& sim_;
  Params params_;
  Rng rng_;
  ProcessorSharingResource cpu_;
  FcfsResource disk_;
  TokenPool threads_;
  std::unique_ptr<TokenPool> downstream_pool_;
  DownstreamFn downstream_;
  std::vector<Hooks> hooks_;
  /// Weak registry of in-flight visits so fail() can error them; compacted
  /// lazily in register_visit (entries expire when a request departs).
  std::vector<std::weak_ptr<Visit>> live_visits_;
  std::size_t in_flight_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
};

}  // namespace conscale
