#include "resources/token_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace conscale {

TokenPool::TokenPool(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity) {}

std::uint64_t TokenPool::acquire(GrantCallback on_grant) {
  const std::uint64_t ticket = next_ticket_++;
  if (!granting_ && queue_.empty() && in_use_ < capacity_) {
    ++in_use_;
    ++total_grants_;
    on_grant();
    return ticket;
  }
  queue_.push_back(Waiter{ticket, std::move(on_grant)});
  ++total_queued_;
  // A release may be in flight via grant_waiters; nothing else to do — FIFO
  // order is preserved by queueing behind existing waiters.
  grant_waiters();
  return ticket;
}

bool TokenPool::cancel(std::uint64_t ticket) {
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const Waiter& w) { return w.ticket == ticket; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

void TokenPool::release() {
  assert(in_use_ > 0);
  --in_use_;
  grant_waiters();
}

void TokenPool::reset() {
  queue_.clear();
  in_use_ = 0;
}

void TokenPool::resize(std::size_t capacity) {
  capacity_ = capacity;
  grant_waiters();
}

void TokenPool::grant_waiters() {
  if (granting_) return;  // re-entrancy guard: a grant callback may release()
  granting_ = true;
  while (!queue_.empty() && in_use_ < capacity_) {
    Waiter waiter = std::move(queue_.front());
    queue_.pop_front();
    ++in_use_;
    ++total_grants_;
    waiter.on_grant();
  }
  granting_ = false;
  // Grants performed inside callbacks may have freed more tokens.
  if (!queue_.empty() && in_use_ < capacity_) grant_waiters();
}

}  // namespace conscale
