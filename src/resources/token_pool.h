// TokenPool: a counting semaphore with a FIFO waiter queue and *runtime
// resize* semantics. This is the paper's "soft resource" in the abstract:
// a web/app server thread pool or an app-tier DB connection pool — the knob
// the ConScale software agent turns (§IV-A "Soft resource adaption").
//
// Resize semantics mirror what JMX-driven pool reconfiguration does in
// Tomcat: growing the pool admits queued waiters immediately; shrinking
// never interrupts a holder — capacity drains lazily as tokens are released.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "simcore/simulation.h"

namespace conscale {

class TokenPool {
 public:
  using GrantCallback = std::function<void()>;

  TokenPool(std::string name, std::size_t capacity);

  /// Requests a token. If one is free the callback fires synchronously
  /// (before acquire returns); otherwise the request queues FIFO.
  /// Returns a ticket id that can cancel a *queued* request.
  std::uint64_t acquire(GrantCallback on_grant);

  /// Cancels a queued (not yet granted) request. Returns true on success.
  bool cancel(std::uint64_t ticket);

  /// Returns one token and grants the head waiter, if any.
  void release();

  /// Runtime resize (soft-resource actuation). Growing grants waiters now;
  /// shrinking lets in-use tokens drain naturally.
  void resize(std::size_t capacity);

  /// Crash semantics: every holder is gone and every waiter is dropped
  /// (no callbacks fire). Capacity is kept — the pool is empty and free, as
  /// after a process restart. Callers must not release() tokens that were
  /// held across a reset.
  void reset();

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t in_use() const { return in_use_; }
  std::size_t waiting() const { return queue_.size(); }
  std::size_t available() const {
    return in_use_ >= capacity_ ? 0 : capacity_ - in_use_;
  }

  /// Lifetime counters for tests and metrics.
  std::uint64_t total_grants() const { return total_grants_; }
  std::uint64_t total_queued() const { return total_queued_; }

 private:
  struct Waiter {
    std::uint64_t ticket;
    GrantCallback on_grant;
  };

  void grant_waiters();

  std::string name_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<Waiter> queue_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t total_grants_ = 0;
  std::uint64_t total_queued_ = 0;
  bool granting_ = false;
};

}  // namespace conscale
