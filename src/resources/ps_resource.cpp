#include "resources/ps_resource.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace conscale {

namespace {
// Completion times computed from double arithmetic can land a hair before
// the job's remaining work reaches zero; treat anything below this as done.
constexpr double kWorkEpsilon = 1e-12;

// Min-heap on (finish_tag, id): std::*_heap build a max-heap under the
// comparator, so "less" here means "completes later".
bool completes_later(const ProcessorSharingResource::JobId lhs_id,
                     double lhs_tag,
                     const ProcessorSharingResource::JobId rhs_id,
                     double rhs_tag) {
  if (lhs_tag != rhs_tag) return lhs_tag > rhs_tag;
  return lhs_id > rhs_id;
}
}  // namespace

ProcessorSharingResource::ProcessorSharingResource(Simulation& sim, int cores,
                                                   double speed,
                                                   ContentionModel contention)
    : sim_(sim), cores_(cores), speed_(speed), contention_(contention),
      last_update_(sim.now()) {
  assert(cores_ >= 1);
  assert(speed_ > 0.0);
}

ProcessorSharingResource::~ProcessorSharingResource() {
  completion_event_.cancel();
}

void ProcessorSharingResource::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return completes_later(a.id, a.finish_tag, b.id,
                                          b.finish_tag);
                 });
}

void ProcessorSharingResource::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const HeapEntry& a, const HeapEntry& b) {
                  return completes_later(a.id, a.finish_tag, b.id,
                                         b.finish_tag);
                });
  heap_.pop_back();
}

void ProcessorSharingResource::prune_stale_heap_top() {
  while (!heap_.empty() && jobs_.find(heap_.front().id) == jobs_.end()) {
    heap_pop();
  }
}

double ProcessorSharingResource::per_job_rate() const {
  const auto n = static_cast<double>(jobs_.size());
  if (n == 0.0) return 0.0;
  const double share = std::min(1.0, static_cast<double>(cores_) / n);
  return speed_ * share * contention_.efficiency(n);
}

void ProcessorSharingResource::advance_to_now() {
  const SimTime now = sim_.now();
  const double elapsed = now - last_update_;
  last_update_ = now;
  if (elapsed <= 0.0 || jobs_.empty()) return;
  const auto n = static_cast<double>(jobs_.size());
  busy_core_seconds_ += elapsed * std::min(n, static_cast<double>(cores_));
  const double served = elapsed * per_job_rate();
  if (served <= 0.0) return;
  v_ += served;
}

void ProcessorSharingResource::reschedule_completion() {
  completion_event_.cancel();
  if (jobs_.empty()) {
    // Idle: rebase the virtual clock so a new busy period starts at V = 0
    // and finish tags never drift far from the magnitude of the demands.
    v_ = 0.0;
    sum_submit_v_ = 0.0;
    heap_.clear();
    return;
  }
  prune_stale_heap_top();
  assert(!heap_.empty());
  const double rate = per_job_rate();
  assert(rate > 0.0);
  const double min_remaining = heap_.front().finish_tag - v_;
  const double delay = std::max(min_remaining, 0.0) / rate;
  completion_event_ =
      sim_.schedule_after(delay, [this] { on_completion_event(); });
}

void ProcessorSharingResource::on_completion_event() {
  advance_to_now();
  prune_stale_heap_top();
  if (heap_.empty()) return;  // every candidate was aborted in the meantime
  // Complete every job whose tag the clock has reached (ties finish
  // together). If floating-point rounding left the frontrunner a sliver
  // short — so small that the rescheduled delay could underflow below one
  // ulp of the clock — complete it now rather than risk a zero-progress
  // event loop.
  double threshold = kWorkEpsilon;
  const double min_remaining = heap_.front().finish_tag - v_;
  if (min_remaining > threshold && min_remaining < 1e-9) {
    threshold = min_remaining;
  }
  auto done = std::move(done_scratch_);
  done.clear();
  while (!heap_.empty()) {
    prune_stale_heap_top();
    if (heap_.empty() || heap_.front().finish_tag - v_ > threshold) break;
    const HeapEntry top = heap_.front();
    heap_pop();
    auto it = jobs_.find(top.id);
    assert(it != jobs_.end());
    // Credit exactly the service delivered: the full demand, minus the
    // sub-epsilon sliver when the event fired a hair early.
    retired_work_ += std::min(top.finish_tag, v_) - it->second.submit_v;
    sum_submit_v_ -= it->second.submit_v;
    done.emplace_back(top.id, std::move(it->second.on_complete));
    jobs_.erase(it);
  }
  // Tied jobs complete in submission order regardless of heap layout.
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  reschedule_completion();
  // Callbacks run after internal state is consistent: they may submit new
  // jobs to this very resource.
  for (auto& [id, callback] : done) callback();
  done.clear();
  done_scratch_ = std::move(done);
}

ProcessorSharingResource::JobId ProcessorSharingResource::submit(
    double work, CompletionCallback on_complete) {
  advance_to_now();
  const JobId id = next_id_++;
  const double demand = std::max(work, 0.0);
  jobs_.emplace(id, Job{v_ + demand, v_, std::move(on_complete)});
  sum_submit_v_ += v_;
  heap_push({v_ + demand, id});
  reschedule_completion();
  return id;
}

bool ProcessorSharingResource::abort(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  advance_to_now();
  const double demand = it->second.finish_tag - it->second.submit_v;
  retired_work_ += std::clamp(v_ - it->second.submit_v, 0.0, demand);
  sum_submit_v_ -= it->second.submit_v;
  jobs_.erase(it);  // the heap entry goes stale and is skipped lazily
  reschedule_completion();
  return true;
}

std::size_t ProcessorSharingResource::abort_all() {
  advance_to_now();
  const std::size_t killed = jobs_.size();
  retired_work_ += static_cast<double>(killed) * v_ - sum_submit_v_;
  jobs_.clear();
  sum_submit_v_ = 0.0;
  reschedule_completion();  // empties and rebases
  return killed;
}

void ProcessorSharingResource::set_cores(int cores) {
  assert(cores >= 1);
  advance_to_now();
  cores_ = cores;
  reschedule_completion();
}

void ProcessorSharingResource::set_speed(double speed) {
  assert(speed > 0.0);
  advance_to_now();
  speed_ = speed;
  reschedule_completion();
}

void ProcessorSharingResource::set_contention(ContentionModel contention) {
  advance_to_now();
  contention_ = contention;
  reschedule_completion();
}

double ProcessorSharingResource::remaining(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return -1.0;
  return std::max(it->second.finish_tag - v_, 0.0);
}

double ProcessorSharingResource::busy_core_seconds() const {
  // Include the partially-integrated current interval so 1 s pollers see
  // up-to-date utilization.
  double busy = busy_core_seconds_;
  if (!jobs_.empty()) {
    const double elapsed = sim_.now() - last_update_;
    const auto n = static_cast<double>(jobs_.size());
    busy += std::max(elapsed, 0.0) * std::min(n, static_cast<double>(cores_));
  }
  return busy;
}

double ProcessorSharingResource::work_done() const {
  // Retired jobs carry their full credited service; live jobs have received
  // v_ - submit_v each, summed in O(1) via the maintained sum.
  return retired_work_ +
         static_cast<double>(jobs_.size()) * v_ - sum_submit_v_;
}

}  // namespace conscale
