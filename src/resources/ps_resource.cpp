#include "resources/ps_resource.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace conscale {

namespace {
// Completion times computed from double arithmetic can land a hair before
// the job's remaining work reaches zero; treat anything below this as done.
constexpr double kWorkEpsilon = 1e-12;
}  // namespace

ProcessorSharingResource::ProcessorSharingResource(Simulation& sim, int cores,
                                                   double speed,
                                                   ContentionModel contention)
    : sim_(sim), cores_(cores), speed_(speed), contention_(contention),
      last_update_(sim.now()) {
  assert(cores_ >= 1);
  assert(speed_ > 0.0);
}

ProcessorSharingResource::~ProcessorSharingResource() {
  completion_event_.cancel();
}

double ProcessorSharingResource::per_job_rate() const {
  const auto n = static_cast<double>(jobs_.size());
  if (n == 0.0) return 0.0;
  const double share = std::min(1.0, static_cast<double>(cores_) / n);
  return speed_ * share * contention_.efficiency(n);
}

void ProcessorSharingResource::advance_to_now() {
  const SimTime now = sim_.now();
  const double elapsed = now - last_update_;
  last_update_ = now;
  if (elapsed <= 0.0 || jobs_.empty()) return;
  const auto n = static_cast<double>(jobs_.size());
  busy_core_seconds_ += elapsed * std::min(n, static_cast<double>(cores_));
  const double served = elapsed * per_job_rate();
  if (served <= 0.0) return;
  for (auto& [id, job] : jobs_) {
    const double delta = std::min(job.remaining, served);
    job.remaining -= delta;
    work_done_ += delta;
  }
}

void ProcessorSharingResource::reschedule_completion() {
  completion_event_.cancel();
  if (jobs_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  const double rate = per_job_rate();
  assert(rate > 0.0);
  const double delay = std::max(min_remaining, 0.0) / rate;
  completion_event_ =
      sim_.schedule_after(delay, [this] { on_completion_event(); });
}

void ProcessorSharingResource::on_completion_event() {
  advance_to_now();
  // Collect every job that has run out of work (ties complete together).
  // If floating-point rounding left the frontrunner with a sliver of work so
  // small that the rescheduled delay could underflow below one ulp of the
  // clock, complete it now rather than risk a zero-progress event loop.
  double threshold = kWorkEpsilon;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  if (min_remaining > threshold && min_remaining < 1e-9) {
    threshold = min_remaining;
  }
  std::vector<CompletionCallback> callbacks;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= threshold) {
      callbacks.push_back(std::move(it->second.on_complete));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule_completion();
  // Callbacks run after internal state is consistent: they may submit new
  // jobs to this very resource.
  for (auto& callback : callbacks) callback();
}

ProcessorSharingResource::JobId ProcessorSharingResource::submit(
    double work, CompletionCallback on_complete) {
  advance_to_now();
  const JobId id = next_id_++;
  jobs_.emplace(id, Job{std::max(work, 0.0), std::move(on_complete)});
  reschedule_completion();
  return id;
}

bool ProcessorSharingResource::abort(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  advance_to_now();
  jobs_.erase(it);
  reschedule_completion();
  return true;
}

std::size_t ProcessorSharingResource::abort_all() {
  advance_to_now();
  const std::size_t killed = jobs_.size();
  jobs_.clear();
  reschedule_completion();
  return killed;
}

void ProcessorSharingResource::set_cores(int cores) {
  assert(cores >= 1);
  advance_to_now();
  cores_ = cores;
  reschedule_completion();
}

void ProcessorSharingResource::set_speed(double speed) {
  assert(speed > 0.0);
  advance_to_now();
  speed_ = speed;
  reschedule_completion();
}

void ProcessorSharingResource::set_contention(ContentionModel contention) {
  advance_to_now();
  contention_ = contention;
  reschedule_completion();
}

double ProcessorSharingResource::busy_core_seconds() const {
  // Include the partially-integrated current interval so 1 s pollers see
  // up-to-date utilization.
  double busy = busy_core_seconds_;
  if (!jobs_.empty()) {
    const double elapsed = sim_.now() - last_update_;
    const auto n = static_cast<double>(jobs_.size());
    busy += std::max(elapsed, 0.0) * std::min(n, static_cast<double>(cores_));
  }
  return busy;
}

}  // namespace conscale
