#include "resources/fcfs_resource.h"

#include <algorithm>
#include <cassert>

namespace conscale {

FcfsResource::FcfsResource(Simulation& sim, int channels, double speed)
    : sim_(sim), channels_(channels), speed_(speed), last_update_(sim.now()) {
  assert(channels_ >= 1);
  assert(speed_ > 0.0);
}

void FcfsResource::account_to_now() {
  const SimTime now = sim_.now();
  const double elapsed = now - last_update_;
  last_update_ = now;
  if (elapsed > 0.0) {
    busy_channel_seconds_ += elapsed * static_cast<double>(busy_);
  }
}

void FcfsResource::submit(double work, CompletionCallback on_complete) {
  queue_.push_back(PendingJob{std::max(work, 0.0), std::move(on_complete)});
  try_dispatch();
}

void FcfsResource::try_dispatch() {
  while (busy_ < static_cast<std::size_t>(channels_) && !queue_.empty()) {
    account_to_now();
    PendingJob job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    const double service_time = job.work / speed_;
    sim_.schedule_after(
        service_time, [this, callback = std::move(job.on_complete)]() mutable {
          account_to_now();
          assert(busy_ > 0);
          --busy_;
          // Free the channel before the callback: the callback may submit
          // follow-up work that should be able to start immediately.
          try_dispatch();
          callback();
        });
  }
}

std::size_t FcfsResource::clear_queue() {
  const std::size_t dropped = queue_.size();
  queue_.clear();
  return dropped;
}

void FcfsResource::set_speed(double speed) {
  assert(speed > 0.0);
  // Jobs already in service keep their original service time; new dispatches
  // use the new speed. (Disk speed changes only happen between experiment
  // phases, so the simplification is invisible in practice.)
  speed_ = speed;
}

void FcfsResource::set_channels(int channels) {
  assert(channels >= 1);
  account_to_now();
  channels_ = channels;
  try_dispatch();
}

double FcfsResource::busy_channel_seconds() const {
  double busy = busy_channel_seconds_;
  const double elapsed = sim_.now() - last_update_;
  if (elapsed > 0.0) busy += elapsed * static_cast<double>(busy_);
  return busy;
}

}  // namespace conscale
