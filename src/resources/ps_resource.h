// ProcessorSharingResource: an exact event-driven simulation of a multi-core
// processor-sharing station with a concurrency-dependent efficiency factor.
//
// Semantics: `n` active jobs share `cores` cores. A job's instantaneous
// service rate is
//
//   rate(n) = speed * min(1, cores / n) * efficiency(n)
//
// i.e. with n <= cores every job runs at full speed; beyond that the cores
// are shared equally; and the ContentionModel shrinks everyone's rate as
// concurrency grows. Between membership changes rates are constant, so the
// next completion is exactly the job with the smallest remaining work; the
// resource advances all jobs lazily at each event and reschedules the single
// pending completion event (O(active jobs) per event).
//
// Busy-core time is integrated continuously so the cluster layer can report
// the CPU utilization signal the scaling controllers act on.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "resources/contention.h"
#include "simcore/simulation.h"

namespace conscale {

class ProcessorSharingResource {
 public:
  using JobId = std::uint64_t;
  using CompletionCallback = std::function<void()>;

  ProcessorSharingResource(Simulation& sim, int cores, double speed = 1.0,
                           ContentionModel contention = ContentionModel::none());
  ~ProcessorSharingResource();
  ProcessorSharingResource(const ProcessorSharingResource&) = delete;
  ProcessorSharingResource& operator=(const ProcessorSharingResource&) = delete;

  /// Submits a job demanding `work` CPU-seconds (at speed 1, one core).
  /// `on_complete` fires when the job's work is fully served.
  JobId submit(double work, CompletionCallback on_complete);

  /// Aborts a job, discarding its remaining work (no callback). Returns
  /// false if the job already completed.
  bool abort(JobId id);

  /// Aborts every active job (no callbacks fire) — a VM crash wipes the
  /// CPU's run queue. Busy time is integrated up to now first, so the
  /// utilization signal stays consistent. Returns the number of jobs killed.
  std::size_t abort_all();

  /// Runtime reconfiguration — vertical scaling (§III-C.1). Takes effect
  /// immediately; in-flight jobs keep their remaining work.
  void set_cores(int cores);
  void set_speed(double speed);
  void set_contention(ContentionModel contention);

  int cores() const { return cores_; }
  double speed() const { return speed_; }
  const ContentionModel& contention() const { return contention_; }
  std::size_t active_jobs() const { return jobs_.size(); }

  /// Cumulative busy-core-seconds (integrated min(n, cores), *not* reduced
  /// by the contention factor: a thrashing CPU is still a busy CPU, which is
  /// exactly why hardware-only autoscalers get fooled).
  double busy_core_seconds() const;

  /// Cumulative CPU-seconds of useful work completed.
  double work_done() const { return work_done_; }

 private:
  struct Job {
    double remaining = 0.0;
    CompletionCallback on_complete;
  };

  double per_job_rate() const;
  void advance_to_now();
  void reschedule_completion();
  void on_completion_event();

  Simulation& sim_;
  int cores_;
  double speed_;
  ContentionModel contention_;

  std::unordered_map<JobId, Job> jobs_;
  JobId next_id_ = 1;
  SimTime last_update_ = 0.0;
  EventHandle completion_event_;

  double busy_core_seconds_ = 0.0;
  double work_done_ = 0.0;
};

}  // namespace conscale
