// ProcessorSharingResource: an exact event-driven simulation of a multi-core
// processor-sharing station with a concurrency-dependent efficiency factor.
//
// Semantics: `n` active jobs share `cores` cores. A job's instantaneous
// service rate is
//
//   rate(n) = speed * min(1, cores / n) * efficiency(n)
//
// i.e. with n <= cores every job runs at full speed; beyond that the cores
// are shared equally; and the ContentionModel shrinks everyone's rate as
// concurrency grows.
//
// Implementation (DESIGN.md §6.5): because every active job is served at the
// *same* instantaneous rate, per-job progress never needs to be stored — the
// resource keeps a virtual service clock V(t), the cumulative service each
// continuously-present job has received. V is piecewise linear in real time
// (dV/dt = rate(n), constant between membership/configuration changes). A
// job submitted when the clock reads V_s with demand w completes when
// V reaches V_s + w; that *finish tag* is immutable, so jobs live in a
// min-heap keyed on (finish tag, id). Advancing to now is O(1) (bump V),
// a completion pops in O(log n), and abort just drops the job from the id
// map — its heap entry is stale and gets skipped lazily. A busy period at
// concurrency n therefore costs O(log n) per event instead of the O(n)
// full-scan of the per-job-decrement formulation (kept as a test-only
// reference in tests/resources/reference_ps_resource.h).
//
// Busy-core time is integrated continuously so the cluster layer can report
// the CPU utilization signal the scaling controllers act on.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "resources/contention.h"
#include "simcore/simulation.h"

namespace conscale {

class ProcessorSharingResource {
 public:
  using JobId = std::uint64_t;
  using CompletionCallback = std::function<void()>;

  ProcessorSharingResource(Simulation& sim, int cores, double speed = 1.0,
                           ContentionModel contention = ContentionModel::none());
  ~ProcessorSharingResource();
  ProcessorSharingResource(const ProcessorSharingResource&) = delete;
  ProcessorSharingResource& operator=(const ProcessorSharingResource&) = delete;

  /// Submits a job demanding `work` CPU-seconds (at speed 1, one core).
  /// `on_complete` fires when the job's work is fully served.
  JobId submit(double work, CompletionCallback on_complete);

  /// Aborts a job, discarding its remaining work (no callback). Returns
  /// false if the job already completed.
  bool abort(JobId id);

  /// Aborts every active job (no callbacks fire) — a VM crash wipes the
  /// CPU's run queue. Busy time is integrated up to now first, so the
  /// utilization signal stays consistent. Returns the number of jobs killed.
  std::size_t abort_all();

  /// Runtime reconfiguration — vertical scaling (§III-C.1). Takes effect
  /// immediately; in-flight jobs keep their remaining work.
  void set_cores(int cores);
  void set_speed(double speed);
  void set_contention(ContentionModel contention);

  int cores() const { return cores_; }
  double speed() const { return speed_; }
  const ContentionModel& contention() const { return contention_; }
  std::size_t active_jobs() const { return jobs_.size(); }

  /// Remaining demand of an active job (finish tag minus the virtual clock),
  /// clamped at 0; -1 if the job already completed or was aborted.
  double remaining(JobId id) const;

  /// Cumulative busy-core-seconds (integrated min(n, cores), *not* reduced
  /// by the contention factor: a thrashing CPU is still a busy CPU, which is
  /// exactly why hardware-only autoscalers get fooled).
  double busy_core_seconds() const;

  /// Cumulative CPU-seconds of useful work completed.
  double work_done() const;

 private:
  struct Job {
    double finish_tag = 0.0;  ///< virtual clock value at which the job ends
    double submit_v = 0.0;    ///< virtual clock value at submission
    CompletionCallback on_complete;
  };
  /// Heap entries outlive aborted jobs (lazy deletion); an entry is live iff
  /// its id is still in jobs_ — ids are never reused, so that test suffices.
  struct HeapEntry {
    double finish_tag = 0.0;
    JobId id = 0;
  };

  double per_job_rate() const;
  void advance_to_now();
  void reschedule_completion();
  void on_completion_event();
  void heap_push(HeapEntry entry);
  void heap_pop();
  void prune_stale_heap_top();

  Simulation& sim_;
  int cores_;
  double speed_;
  ContentionModel contention_;

  // Determinism audit (DESIGN.md §8): accessed only by key (find/emplace/
  // erase/size/clear); completion order is decided by the finish-tag heap
  // below, with ties broken by JobId — hash order never surfaces.
  std::unordered_map<JobId, Job> jobs_;
  std::vector<HeapEntry> heap_;  ///< min-heap on (finish_tag, id)
  JobId next_id_ = 1;
  SimTime last_update_ = 0.0;
  EventHandle completion_event_;

  /// Virtual service clock: cumulative per-job service delivered during the
  /// current busy period (rebased to 0 whenever the resource goes idle, so
  /// finish tags keep full double precision over arbitrarily long runs).
  double v_ = 0.0;
  /// Sum of submit_v over active jobs — lets work_done() credit the partial
  /// service of in-flight jobs in O(1): sum(v_ - submit_v) over live jobs.
  double sum_submit_v_ = 0.0;

  double busy_core_seconds_ = 0.0;
  /// Work credited to jobs that already left (completed or aborted).
  double retired_work_ = 0.0;
  /// Callback scratch reused across completion events (swap-guarded, so a
  /// callback resubmitting into this resource cannot alias the iteration).
  std::vector<std::pair<JobId, CompletionCallback>> done_scratch_;
};

}  // namespace conscale
