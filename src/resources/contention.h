// ContentionModel: the multithreading-overhead curve that produces the
// *descending stage* of the paper's Scatter-Concurrency-Throughput relation
// (§III-A). The paper attributes the descent to lock contention, context
// switching, cache-coherence crosstalk, and GC under high concurrency; we do
// not simulate those mechanisms individually but expose their aggregate
// effect as an efficiency multiplier on the server's CPU capacity:
//
//   efficiency(n) = 1 / (1 + alpha * max(0, n - onset)^power)
//
// With alpha = 0 the server is an ideal PS station (pure utilization-law
// behaviour: ascending then flat). With alpha > 0 throughput peaks inside
// [Q_lower, Q_upper] and then decays — exactly the three-stage shape the SCT
// model must discover from noisy samples.
#pragma once

#include <cmath>

namespace conscale {

struct ContentionModel {
  /// Concurrency at which overhead starts to bite. Scaled with core count by
  /// the server model (onset is per-server, not per-core, but vertical
  /// scaling both raises capacity and delays contention).
  double onset = 25.0;
  /// Strength of the decay per job beyond the onset.
  double alpha = 0.01;
  /// Shape exponent; 1 = linear growth of overhead.
  double power = 1.0;

  /// Capacity multiplier in (0, 1] for `n` concurrently active jobs.
  double efficiency(double n) const {
    if (alpha <= 0.0 || n <= onset) return 1.0;
    return 1.0 / (1.0 + alpha * std::pow(n - onset, power));
  }

  /// An ideal station with no multithreading overhead.
  static ContentionModel none() { return ContentionModel{0.0, 0.0, 1.0}; }
};

}  // namespace conscale
