// FcfsResource: a first-come-first-served multi-channel service station.
// Models the database disk (the critical resource under the paper's
// read/write-mix I/O-intensive workload, §III-C.3): requests queue for one of
// `channels` identical servers and are served for their full demand without
// preemption. Unlike the CPU, adding concurrency to a saturated disk buys
// nothing — which is why the I/O-bound Q_lower in Fig 7(f) is so small.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "simcore/simulation.h"

namespace conscale {

class FcfsResource {
 public:
  using CompletionCallback = std::function<void()>;

  FcfsResource(Simulation& sim, int channels = 1, double speed = 1.0);
  FcfsResource(const FcfsResource&) = delete;
  FcfsResource& operator=(const FcfsResource&) = delete;

  /// Enqueues a job with `work` service-seconds of demand.
  void submit(double work, CompletionCallback on_complete);

  void set_speed(double speed);
  void set_channels(int channels);

  /// Drops every *queued* job (no callbacks fire). Jobs already in service
  /// run to completion — a real disk controller finishes the transfer it
  /// started — so channel accounting needs no special casing. Returns the
  /// number of jobs dropped.
  std::size_t clear_queue();

  int channels() const { return channels_; }
  double speed() const { return speed_; }
  std::size_t busy_channels() const { return busy_; }
  std::size_t queued() const { return queue_.size(); }
  /// Jobs in service plus jobs waiting.
  std::size_t active_jobs() const { return busy_ + queue_.size(); }

  /// Cumulative busy-channel-seconds (for disk utilization reporting).
  double busy_channel_seconds() const;

 private:
  struct PendingJob {
    double work;
    CompletionCallback on_complete;
  };

  void try_dispatch();
  void account_to_now();

  Simulation& sim_;
  int channels_;
  double speed_;
  std::size_t busy_ = 0;
  std::deque<PendingJob> queue_;
  double busy_channel_seconds_ = 0.0;
  SimTime last_update_ = 0.0;
};

}  // namespace conscale
