#include "cluster/lane_gateway.h"

#include <utility>

namespace conscale {

void LaneGateway::on_request(const RequestContext& ctx, SessionShard& from,
                             std::uint32_t user_slot) {
  // The shard stamped issued_at at the client; the system should see the
  // arrival instant (now = client issue + one-way network latency), exactly
  // as a frontend would.
  const SimTime client_issued = ctx.issued_at;
  RequestContext arrival = ctx;
  arrival.issued_at = sim().now();
  ++forwarded_;

  const std::size_t reply_lane = from.lane();
  submit_(arrival, [this, &from, reply_lane, user_slot, client_issued,
                    cls = ctx.request_class](RequestOutcome outcome) {
    if (outcome == RequestOutcome::kServed) {
      ++served_;
      if (completion_hook_) {
        // Client-perceived response time: the reply still has to cross the
        // network, so the client sees it one net_delay after system done.
        const double rt = sim().now() + params_.net_delay - client_issued;
        completion_hook_(client_issued, rt, *cls);
      }
    } else {
      ++rejected_;
      if (rejection_hook_) rejection_hook_(sim().now());
    }
    post(reply_lane, params_.net_delay,
         [&from, user_slot, outcome] { from.on_reply(user_slot, outcome); });
  });
}

}  // namespace conscale
