// TierChannel: one directed tier->tier (or node->node) RPC edge with an
// explicit LAN hop (DESIGN.md §6.6). The paper's testbed is a real n-tier
// deployment where every inter-tier call crosses the datacenter network;
// modeling that delay explicitly is what opens a lookahead window on the
// edge, letting the placement planner cut the serving system itself across
// lanes.
//
// Three regimes, picked at construction:
//   * zero delay, same Simulation — a direct LoadBalancer::dispatch call,
//     byte-identical to the pre-channel wiring (the lan_delay=0 default
//     keeps every existing result);
//   * positive delay, same Simulation — both legs (request forward, reply
//     return) are scheduled `delay` ahead on the shared sim;
//   * positive delay, cross-lane — both legs travel the lane engine as
//     keyed messages via per-endpoint LaneActors, so delivery order is
//     canonical and independent of the thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include <cstddef>
#include <functional>
#include <vector>

#include "cluster/load_balancer.h"
#include "simcore/lanes/actor.h"
#include "simcore/simulation.h"
#include "tier/server.h"
#include "workload/request.h"

namespace conscale {

class Vm;

/// Where each tier (graph node) of a laned system lives. The placement is a
/// *model* parameter (TierLanePlacement computes it; results are identical
/// for any layout given the same layout) — `control_lane` is the lane
/// hosting the control plane (monitor, controllers, agents), which the
/// engine serializes (LaneEngine::Options::serialize_lane0).
struct TierLaneLayout {
  std::vector<std::size_t> lane_of_tier;
  std::size_t control_lane = 0;
};

class TierChannel {
 public:
  /// Same-simulation edge (serial runs, or co-located lanes). `delay == 0`
  /// degenerates to a direct dispatch.
  TierChannel(Simulation& sim, LoadBalancer& dest, SimDuration delay);

  /// Cross-lane (or same-lane, keyed) edge on a lane engine. Requires
  /// `delay > 0` when the endpoints live on different lanes; the caller
  /// must declare the src->dst and dst->src channels on the engine.
  TierChannel(lanes::LaneEngine& engine, std::size_t src_lane,
              std::size_t dst_lane, LoadBalancer& dest, SimDuration delay);

  TierChannel(const TierChannel&) = delete;
  TierChannel& operator=(const TierChannel&) = delete;

  /// Forwards one request across the hop; `done` runs back on the caller's
  /// side after the reply hop.
  void dispatch(const RequestContext& ctx, Server::Completion done);

  /// The edge packaged as a server downstream callable.
  Server::DownstreamFn downstream() {
    return [this](const RequestContext& ctx, Server::Completion done) {
      dispatch(ctx, std::move(done));
    };
  }

  SimDuration delay() const { return delay_; }
  bool cross_lane() const { return forward_ != nullptr; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  /// LaneActor with the posting surface opened up for the channel.
  class Endpoint final : public lanes::LaneActor {
   public:
    using LaneActor::LaneActor;
    void post_to(std::size_t dest_lane, SimDuration delay,
                 EventCallback callback) {
      post(dest_lane, delay, std::move(callback));
    }
    void schedule(SimDuration delay, EventCallback callback) {
      schedule_after(delay, std::move(callback));
    }
  };

  Simulation* sim_ = nullptr;  ///< same-sim mode (null in cross-lane mode)
  LoadBalancer* dest_;
  SimDuration delay_;
  std::unique_ptr<Endpoint> forward_;  ///< on the source lane
  std::unique_ptr<Endpoint> reply_;    ///< on the destination lane
  std::uint64_t forwarded_ = 0;
};

/// Forwards a tier's vm-ready signal across the LAN hop to the control
/// lane, where the registered VmReadyCallbacks (monitor attach, decision
/// hooks, latency breakdown) run exactly as in a serial run. The Vm pointer
/// stays valid: TierGroup owns its VMs for the whole run.
class VmReadyNotifier final : public lanes::LaneActor {
 public:
  using Deliver = std::function<void(Vm&)>;

  VmReadyNotifier(lanes::LaneEngine& engine, std::size_t lane,
                  std::size_t control_lane, SimDuration delay,
                  Deliver deliver)
      : LaneActor(engine, lane),
        control_lane_(control_lane),
        delay_(delay),
        deliver_(std::move(deliver)) {}

  void notify(Vm& vm) {
    if (lane() == control_lane_) {
      deliver_(vm);
      return;
    }
    post(control_lane_, delay_, [this, vm = &vm] { deliver_(*vm); });
  }

 private:
  std::size_t control_lane_;
  SimDuration delay_;
  Deliver deliver_;
};

}  // namespace conscale
