#include "cluster/tier_group.h"

#include <algorithm>

namespace conscale {

TierGroup::TierGroup(Simulation& sim, TierConfig config,
                     const RunContext* context)
    : sim_(sim), ctx_(context ? context : &RunContext::global()),
      config_(std::move(config)),
      lb_(config_.name + ".lb", config_.lb_policy),
      thread_pool_size_(config_.server_template.thread_pool_size),
      downstream_pool_size_(config_.server_template.downstream_pool_size) {}

std::unique_ptr<Vm> TierGroup::make_vm(SimDuration prep_delay) {
  Server::Params params = config_.server_template;
  params.name = config_.name + std::to_string(next_vm_number_);
  params.tier_index = config_.tier_index;
  params.thread_pool_size = thread_pool_size_;
  params.downstream_pool_size = downstream_pool_size_;
  // Distinct demand-sampling streams per VM, still fully deterministic.
  params.seed = config_.server_template.seed + next_vm_number_ * 7919;
  // A VM born inside a tier-wide interference window shares the slow host.
  params.speed = config_.server_template.speed * cpu_speed_factor_;
  ++next_vm_number_;

  auto vm = std::make_unique<Vm>(
      sim_, std::move(params), prep_delay,
      [this](Vm& ready) {
        lb_.add_backend(&ready.server());
        if (on_vm_ready_) on_vm_ready_(ready);
      },
      ctx_);
  if (downstream_factory_) {
    vm->server().set_downstream(downstream_factory_());
  }
  return vm;
}

void TierGroup::bootstrap(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    vms_.push_back(make_vm(0.0));
    vms_.back()->mark_bootstrap();
    meters_.push_back(std::make_unique<CpuMeter>());
  }
}

bool TierGroup::scale_out() {
  if (billed_vms() >= config_.max_vms) return false;
  CS_RUN_LOG_INFO(*ctx_) << config_.name << ": scale-out started at t="
                         << sim_.now();
  vms_.push_back(make_vm(config_.vm_prep_delay * prep_delay_factor_));
  meters_.push_back(std::make_unique<CpuMeter>());
  return true;
}

bool TierGroup::inject_vm_crash(std::size_t ordinal,
                                SimDuration restart_delay) {
  std::size_t seen = 0;
  for (const auto& vm : vms_) {
    if (vm->state() != VmState::kRunning) continue;
    if (seen++ != ordinal) continue;
    // Deregister before failing so the LB never dispatches to a dead server
    // while the abort completions run.
    lb_.remove_backend(&vm->server());
    vm->fail(restart_delay, config_.vm_prep_delay * prep_delay_factor_);
    return true;
  }
  return false;
}

void TierGroup::set_prep_delay_factor(double factor) {
  prep_delay_factor_ = factor > 0.0 ? factor : 1.0;
  CS_RUN_LOG_INFO(*ctx_) << config_.name << ": boot delay factor set to "
                         << prep_delay_factor_ << " at t=" << sim_.now();
}

std::vector<Server*> TierGroup::set_vm_cpu_speed_factor(std::size_t ordinal,
                                                        double factor) {
  const double speed = config_.server_template.speed * factor;
  std::vector<Server*> touched;
  if (ordinal == kAllVms) {
    // Remember the factor so VMs created inside the window inherit it.
    cpu_speed_factor_ = factor;
    for (const auto& vm : vms_) {
      if (!vm->billed()) continue;
      vm->server().set_cpu_speed(speed);
      touched.push_back(&vm->server());
    }
    return touched;
  }
  std::size_t seen = 0;
  for (const auto& vm : vms_) {
    if (!vm->billed()) continue;
    if (seen++ != ordinal) continue;
    vm->server().set_cpu_speed(speed);
    touched.push_back(&vm->server());
    break;
  }
  return touched;
}

bool TierGroup::scale_in() {
  if (running_vms() <= config_.min_vms) return false;
  // Retire the most recently added running VM (LIFO keeps the original,
  // warmed-up servers in place).
  for (auto it = vms_.rbegin(); it != vms_.rend(); ++it) {
    Vm* vm = it->get();
    if (vm->state() == VmState::kRunning) {
      CS_RUN_LOG_INFO(*ctx_) << config_.name << ": draining " << vm->name()
                             << " at t=" << sim_.now();
      lb_.remove_backend(&vm->server());
      vm->drain([](Vm&) {});
      return true;
    }
  }
  return false;
}

bool TierGroup::set_cores(int cores) {
  if (cores < 1) return false;
  config_.server_template.cores = cores;
  for (const auto& vm : vms_) {
    if (vm->state() == VmState::kRunning ||
        vm->state() == VmState::kProvisioning) {
      vm->server().set_cores(cores);
    }
  }
  CS_RUN_LOG_INFO(*ctx_) << config_.name << ": vertical scaling to " << cores
                         << " cores";
  return true;
}

std::size_t TierGroup::billed_vms() const {
  std::size_t count = 0;
  for (const auto& vm : vms_) {
    if (vm->billed()) ++count;
  }
  return count;
}

std::size_t TierGroup::running_vms() const {
  std::size_t count = 0;
  for (const auto& vm : vms_) {
    if (vm->state() == VmState::kRunning) ++count;
  }
  return count;
}

std::size_t TierGroup::provisioning_vms() const {
  std::size_t count = 0;
  for (const auto& vm : vms_) {
    if (vm->state() == VmState::kProvisioning) ++count;
  }
  return count;
}

std::size_t TierGroup::failed_vms() const {
  std::size_t count = 0;
  for (const auto& vm : vms_) {
    if (vm->state() == VmState::kFailed) ++count;
  }
  return count;
}

std::uint64_t TierGroup::total_crashes() const {
  std::uint64_t count = 0;
  for (const auto& vm : vms_) count += vm->crash_count();
  return count;
}

std::uint64_t TierGroup::total_aborted_requests() const {
  std::uint64_t count = 0;
  for (const auto& vm : vms_) count += vm->server().aborted_requests();
  return count;
}

std::vector<Server*> TierGroup::running_servers() {
  std::vector<Server*> servers;
  for (const auto& vm : vms_) {
    if (vm->state() == VmState::kRunning) servers.push_back(&vm->server());
  }
  return servers;
}

std::vector<Vm*> TierGroup::all_vms() {
  std::vector<Vm*> out;
  out.reserve(vms_.size());
  for (const auto& vm : vms_) out.push_back(vm.get());
  return out;
}

double TierGroup::poll_avg_cpu_utilization() {
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    Vm& vm = *vms_[i];
    // Meters stay index-aligned with VMs; sample running VMs only, matching
    // what a per-VM monitoring agent would report.
    const double util = meters_[i]->sample(
        sim_.now(), vm.server().cpu_busy_core_seconds(), vm.server().cores());
    if (vm.state() == VmState::kRunning) {
      total += util;
      ++count;
    }
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

void TierGroup::set_thread_pool_size(std::size_t size) {
  thread_pool_size_ = std::max<std::size_t>(size, 1);
  for (const auto& vm : vms_) {
    if (vm->state() == VmState::kRunning ||
        vm->state() == VmState::kProvisioning) {
      vm->server().set_thread_pool_size(thread_pool_size_);
    }
  }
}

void TierGroup::set_downstream_pool_size(std::size_t size) {
  downstream_pool_size_ = std::max<std::size_t>(size, 1);
  for (const auto& vm : vms_) {
    if (vm->state() == VmState::kRunning ||
        vm->state() == VmState::kProvisioning) {
      vm->server().set_downstream_pool_size(downstream_pool_size_);
    }
  }
}

}  // namespace conscale
