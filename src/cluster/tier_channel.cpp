#include "cluster/tier_channel.h"

#include <stdexcept>

namespace conscale {

TierChannel::TierChannel(Simulation& sim, LoadBalancer& dest,
                         SimDuration delay)
    : sim_(&sim), dest_(&dest), delay_(delay) {
  if (delay_ < 0.0) {
    throw std::invalid_argument("TierChannel: delay must be >= 0");
  }
}

TierChannel::TierChannel(lanes::LaneEngine& engine, std::size_t src_lane,
                         std::size_t dst_lane, LoadBalancer& dest,
                         SimDuration delay)
    : dest_(&dest), delay_(delay) {
  if (src_lane == dst_lane) {
    // Co-located endpoints need no messaging; fall back to same-sim mode.
    sim_ = &engine.lane(src_lane).sim();
    if (delay_ < 0.0) {
      throw std::invalid_argument("TierChannel: delay must be >= 0");
    }
    return;
  }
  if (!(delay_ > 0.0)) {
    throw std::invalid_argument(
        "TierChannel: a cross-lane edge needs a positive LAN delay "
        "(zero-delay edges must be co-located — see TierLanePlacement)");
  }
  forward_ = std::make_unique<Endpoint>(engine, src_lane);
  reply_ = std::make_unique<Endpoint>(engine, dst_lane);
}

void TierChannel::dispatch(const RequestContext& ctx,
                           Server::Completion done) {
  ++forwarded_;
  if (sim_ != nullptr) {
    if (delay_ == 0.0) {
      dest_->dispatch(ctx, std::move(done));
      return;
    }
    // Both legs ride the shared sim; `ctx` is captured by value (it is a
    // small id/class/issue-time triple pointing at the run-wide mix).
    Simulation& sim = *sim_;
    const SimDuration delay = delay_;
    sim.schedule_after(delay, [this, &sim, delay, ctx,
                               done = std::move(done)]() mutable {
      dest_->dispatch(ctx, [&sim, delay, done = std::move(done)]() {
        sim.schedule_after(delay, done);
      });
    });
    return;
  }
  const std::size_t src_lane = forward_->lane();
  const std::size_t dst_lane = reply_->lane();
  const SimDuration delay = delay_;
  forward_->post_to(
      dst_lane, delay, [this, src_lane, delay, ctx, done = std::move(done)]() {
        dest_->dispatch(ctx, [this, src_lane, delay, done]() {
          reply_->post_to(src_lane, delay, done);
        });
      });
}

}  // namespace conscale
