// NTierSystem: the assembled web application — a chain of TierGroups
// (web -> app -> db in the RUBBoS default, deeper chains allowed) with
// synchronous RPC wiring between adjacent tiers. This is the system under
// test for every experiment: clients call submit(), scaling frameworks
// manipulate the tiers through the TierSystem interface. The linear chain
// is the trivial service graph (see src/topology/service_graph.h for the
// DAG generalization).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/tier_group.h"
#include "cluster/tier_system.h"
#include "common/run_context.h"
#include "simcore/simulation.h"
#include "workload/request.h"

namespace conscale {

struct SystemConfig {
  std::vector<TierConfig> tiers;
  /// Initial number of VMs per tier (the paper's #Web/#App/#DB notation;
  /// e.g. {1,1,1} for the 1/1/1 topology). Must match tiers.size().
  std::vector<std::size_t> initial_vms;
};

class NTierSystem final : public TierSystem {
 public:
  /// `context` (optional) scopes every tier's and VM's log output to the
  /// owning run (see common/run_context.h); pass the run's context when
  /// several systems share the process. It must outlive the system.
  NTierSystem(Simulation& sim, SystemConfig config,
              const RunContext* context = nullptr);

  const RunContext& context() const override { return *ctx_; }

  /// Client entry point: dispatch into the front tier.
  void submit(const RequestContext& ctx, std::function<void()> done);

  std::size_t tier_count() const override { return tiers_.size(); }
  TierGroup& tier(std::size_t index) override { return *tiers_[index]; }
  const TierGroup& tier(std::size_t index) const override {
    return *tiers_[index];
  }

  void add_vm_ready_callback(VmReadyCallback callback) override;

 private:
  Simulation& sim_;
  const RunContext* ctx_;
  std::vector<std::unique_ptr<TierGroup>> tiers_;
  std::vector<VmReadyCallback> on_vm_ready_;
};

}  // namespace conscale
