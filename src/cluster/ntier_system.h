// NTierSystem: the assembled web application — a chain of TierGroups
// (web -> app -> db in the RUBBoS default, deeper chains allowed) with
// synchronous RPC wiring between adjacent tiers. This is the system under
// test for every experiment: clients call submit(), scaling frameworks
// manipulate the tiers through the TierSystem interface. The linear chain
// is the trivial service graph (see src/topology/service_graph.h for the
// DAG generalization).
//
// Every tier->tier edge is a TierChannel carrying `config.lan_delay` of
// network latency (the paper's LAN hop). The default of 0 degenerates to
// the direct in-process dispatch every pre-hop result was measured with; a
// positive delay is what opens the lookahead window that lets the laned
// constructor place each tier on its own lane (DESIGN.md §6.6).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/tier_channel.h"
#include "cluster/tier_group.h"
#include "cluster/tier_system.h"
#include "common/run_context.h"
#include "simcore/lanes/lane_engine.h"
#include "simcore/simulation.h"
#include "workload/request.h"

namespace conscale {

struct SystemConfig {
  std::vector<TierConfig> tiers;
  /// Initial number of VMs per tier (the paper's #Web/#App/#DB notation;
  /// e.g. {1,1,1} for the 1/1/1 topology). Must match tiers.size().
  std::vector<std::size_t> initial_vms;
  /// LAN hop on every tier->tier edge (each direction; seconds). 0 keeps
  /// the direct dispatch wiring. Must be > 0 for cross-lane placements.
  SimDuration lan_delay = 0.0;
};

class NTierSystem final : public TierSystem {
 public:
  /// `context` (optional) scopes every tier's and VM's log output to the
  /// owning run (see common/run_context.h); pass the run's context when
  /// several systems share the process. It must outlive the system.
  NTierSystem(Simulation& sim, SystemConfig config,
              const RunContext* context = nullptr);

  /// Lane-partitioned construction: tier i lives on lane
  /// `layout.lane_of_tier[i]`'s Simulation, adjacent tiers talk through
  /// cross-lane TierChannels (which requires `config.lan_delay > 0` for
  /// every cross-lane edge), and vm-ready signals are forwarded to
  /// `layout.control_lane`. The caller must declare the matching engine
  /// channels and submit() only from the front tier's lane.
  NTierSystem(lanes::LaneEngine& engine, SystemConfig config,
              const TierLaneLayout& layout,
              const RunContext* context = nullptr);

  const RunContext& context() const override { return *ctx_; }

  /// Client entry point: dispatch into the front tier.
  void submit(const RequestContext& ctx, std::function<void()> done);

  std::size_t tier_count() const override { return tiers_.size(); }
  TierGroup& tier(std::size_t index) override { return *tiers_[index]; }
  const TierGroup& tier(std::size_t index) const override {
    return *tiers_[index];
  }

  /// The lane hosting tier `index` (always 0 for serial construction).
  std::size_t tier_lane(std::size_t index) const {
    return tier_lane_.empty() ? 0 : tier_lane_[index];
  }
  /// The Simulation hosting tier `index` (the shared sim when serial).
  Simulation& tier_sim(std::size_t index);

  void add_vm_ready_callback(VmReadyCallback callback) override;

 private:
  void build(SystemConfig config, lanes::LaneEngine* engine,
             const TierLaneLayout* layout);

  Simulation& sim_;
  const RunContext* ctx_;
  std::vector<std::unique_ptr<TierGroup>> tiers_;
  std::vector<Simulation*> tier_sims_;
  std::vector<std::size_t> tier_lane_;  ///< empty when serial
  std::vector<std::unique_ptr<TierChannel>> channels_;
  std::vector<std::unique_ptr<VmReadyNotifier>> notifiers_;
  std::vector<VmReadyCallback> on_vm_ready_;
};

}  // namespace conscale
