// NTierSystem: the assembled web application — a chain of TierGroups
// (web -> app -> db in the RUBBoS default, deeper chains allowed) with
// synchronous RPC wiring between adjacent tiers. This is the system under
// test for every experiment: clients call submit(), scaling frameworks
// manipulate the tiers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/tier_group.h"
#include "common/run_context.h"
#include "simcore/simulation.h"
#include "workload/request.h"

namespace conscale {

struct SystemConfig {
  std::vector<TierConfig> tiers;
  /// Initial number of VMs per tier (the paper's #Web/#App/#DB notation;
  /// e.g. {1,1,1} for the 1/1/1 topology). Must match tiers.size().
  std::vector<std::size_t> initial_vms;
};

class NTierSystem {
 public:
  /// (tier index, vm) — fired whenever any tier brings a VM online.
  using VmReadyCallback = std::function<void(std::size_t, Vm&)>;

  /// `context` (optional) scopes every tier's and VM's log output to the
  /// owning run (see common/run_context.h); pass the run's context when
  /// several systems share the process. It must outlive the system.
  NTierSystem(Simulation& sim, SystemConfig config,
              const RunContext* context = nullptr);

  const RunContext& context() const { return *ctx_; }

  /// Client entry point: dispatch into the front tier.
  void submit(const RequestContext& ctx, std::function<void()> done);

  std::size_t tier_count() const { return tiers_.size(); }
  TierGroup& tier(std::size_t index) { return *tiers_[index]; }
  const TierGroup& tier(std::size_t index) const { return *tiers_[index]; }
  /// Finds a tier by name; throws std::out_of_range if absent.
  TierGroup& tier_by_name(const std::string& name);
  /// Resolves a tier name to its index; returns tier_count() if absent
  /// (fault plans use this for validation without exceptions).
  std::size_t tier_index_by_name(const std::string& name) const;

  std::size_t total_billed_vms() const;
  /// Fault-injection totals across all tiers (zero in fault-free runs).
  std::uint64_t total_crashes() const;
  std::uint64_t total_aborted_requests() const;

  /// Multiple subscribers are supported (metrics, scaling policies, ...).
  void add_vm_ready_callback(VmReadyCallback callback);

 private:
  Simulation& sim_;
  const RunContext* ctx_;
  std::vector<std::unique_ptr<TierGroup>> tiers_;
  std::vector<VmReadyCallback> on_vm_ready_;
};

}  // namespace conscale
