#include "cluster/load_balancer.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace conscale {

std::string to_string(LbPolicy policy) {
  switch (policy) {
    case LbPolicy::kRoundRobin:
      return "roundrobin";
    case LbPolicy::kLeastConnections:
      return "leastconn";
  }
  return "?";
}

LoadBalancer::LoadBalancer(std::string name, LbPolicy policy)
    : name_(std::move(name)), policy_(policy) {}

void LoadBalancer::add_backend(Server* server) {
  ever_had_backend_ = true;
  if (std::find(backends_.begin(), backends_.end(), server) !=
      backends_.end()) {
    return;
  }
  backends_.push_back(server);
  outstanding_.try_emplace(server, 0);
  flush_surge_queue();
}

void LoadBalancer::remove_backend(Server* server) {
  backends_.erase(std::remove(backends_.begin(), backends_.end(), server),
                  backends_.end());
  // Keep the outstanding entry until its connections drain; dispatch
  // completions still decrement it.
}

std::size_t LoadBalancer::outstanding(const Server* server) const {
  auto it = outstanding_.find(server);
  return it == outstanding_.end() ? 0 : it->second;
}

Server* LoadBalancer::choose_backend() {
  switch (policy_) {
    case LbPolicy::kRoundRobin: {
      rr_index_ = (rr_index_ + 1) % backends_.size();
      return backends_[rr_index_];
    }
    case LbPolicy::kLeastConnections: {
      Server* best = nullptr;
      std::size_t best_count = std::numeric_limits<std::size_t>::max();
      // Scan order makes ties deterministic (first added wins).
      for (Server* s : backends_) {
        const std::size_t count = outstanding_[s];
        if (count < best_count) {
          best = s;
          best_count = count;
        }
      }
      return best;
    }
  }
  return backends_.front();
}

void LoadBalancer::dispatch(const RequestContext& ctx, Completion done) {
  if (backends_.empty()) {
    if (!ever_had_backend_) {
      throw std::runtime_error("LoadBalancer '" + name_ + "': no backends");
    }
    // Every backend is down (tier-wide crash). Park the request; it resumes
    // FIFO when a backend re-registers.
    waiting_.push_back(Parked{ctx, std::move(done)});
    return;
  }
  Server* target = choose_backend();
  ++outstanding_[target];
  ++dispatched_;
  target->handle(ctx, [this, target, done = std::move(done)] {
    auto it = outstanding_.find(target);
    if (it != outstanding_.end() && it->second > 0) --it->second;
    done();
  });
}

void LoadBalancer::flush_surge_queue() {
  if (flushing_) return;  // dispatch completions may re-enter add_backend
  flushing_ = true;
  while (!waiting_.empty() && !backends_.empty()) {
    Parked parked = std::move(waiting_.front());
    waiting_.pop_front();
    dispatch(parked.ctx, std::move(parked.done));
  }
  flushing_ = false;
}

}  // namespace conscale
