#include "cluster/load_balancer.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace conscale {

std::string to_string(LbPolicy policy) {
  switch (policy) {
    case LbPolicy::kRoundRobin:
      return "roundrobin";
    case LbPolicy::kLeastConnections:
      return "leastconn";
  }
  return "?";
}

LoadBalancer::LoadBalancer(std::string name, LbPolicy policy)
    : name_(std::move(name)), policy_(policy) {}

std::size_t LoadBalancer::slot_of(const Server* server) const {
  // Linear scan over the append-only registry: a tier holds at most a
  // handful of VMs, and scan order is registration order — fully
  // deterministic, no address ever compared.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].server == server) return i;
  }
  return kNoSlot;
}

std::size_t LoadBalancer::ensure_slot(Server* server) {
  const std::size_t existing = slot_of(server);
  if (existing != kNoSlot) return existing;
  slots_.push_back(BackendSlot{server, 0});
  return slots_.size() - 1;
}

void LoadBalancer::add_backend(Server* server) {
  ever_had_backend_ = true;
  if (std::find(backends_.begin(), backends_.end(), server) !=
      backends_.end()) {
    return;
  }
  const std::size_t slot = ensure_slot(server);
  backends_.push_back(server);
  backend_slots_.push_back(slot);
  flush_surge_queue();
}

void LoadBalancer::remove_backend(Server* server) {
  for (std::size_t i = backends_.size(); i-- > 0;) {
    if (backends_[i] == server) {
      backends_.erase(backends_.begin() + static_cast<std::ptrdiff_t>(i));
      backend_slots_.erase(backend_slots_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    }
  }
  // The slot (and its outstanding count) stays until its connections drain;
  // dispatch completions still decrement it.
}

std::size_t LoadBalancer::outstanding(const Server* server) const {
  const std::size_t slot = slot_of(server);
  return slot == kNoSlot ? 0 : slots_[slot].outstanding;
}

Server* LoadBalancer::choose_backend() {
  switch (policy_) {
    case LbPolicy::kRoundRobin: {
      rr_index_ = (rr_index_ + 1) % backends_.size();
      return backends_[rr_index_];
    }
    case LbPolicy::kLeastConnections: {
      Server* best = nullptr;
      std::size_t best_count = std::numeric_limits<std::size_t>::max();
      // Scan order makes ties deterministic (first added wins).
      for (std::size_t i = 0; i < backends_.size(); ++i) {
        const std::size_t count = slots_[backend_slots_[i]].outstanding;
        if (count < best_count) {
          best = backends_[i];
          best_count = count;
        }
      }
      return best;
    }
  }
  return backends_.front();
}

void LoadBalancer::dispatch(const RequestContext& ctx, Completion done) {
  if (backends_.empty()) {
    if (!ever_had_backend_) {
      throw std::runtime_error("LoadBalancer '" + name_ + "': no backends");
    }
    // Every backend is down (tier-wide crash). Park the request; it resumes
    // FIFO when a backend re-registers.
    waiting_.push_back(Parked{ctx, std::move(done)});
    return;
  }
  Server* target = choose_backend();
  const std::size_t slot = slot_of(target);
  ++slots_[slot].outstanding;
  ++dispatched_;
  target->handle(ctx, [this, slot, done = std::move(done)] {
    if (slots_[slot].outstanding > 0) --slots_[slot].outstanding;
    done();
  });
}

void LoadBalancer::flush_surge_queue() {
  if (flushing_) return;  // dispatch completions may re-enter add_backend
  flushing_ = true;
  while (!waiting_.empty() && !backends_.empty()) {
    Parked parked = std::move(waiting_.front());
    waiting_.pop_front();
    dispatch(parked.ctx, std::move(parked.done));
  }
  flushing_ = false;
}

}  // namespace conscale
