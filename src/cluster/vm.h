// Vm: a virtual machine hosting one component server.
//
// Lifecycle mirrors cloud scale-out mechanics (§IV-A "VM-scaling"):
// Provisioning (data/state replication + boot, the paper's 15 s preparation
// period) -> Running (registered with the tier's load balancer) ->
// Draining (scale-in: removed from the LB, finishing in-flight work) ->
// Stopped. CPU utilization — the signal threshold-based autoscalers act
// on — is read with a CpuMeter over the server's busy-core integral.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/run_context.h"
#include "simcore/simulation.h"
#include "tier/server.h"

namespace conscale {

enum class VmState { kProvisioning, kRunning, kDraining, kStopped };

std::string to_string(VmState state);

/// Differentiates a utilization percentage out of a monotone busy-seconds
/// integral. One meter per poller; stateless servers stay unpolluted.
class CpuMeter {
 public:
  /// Returns average utilization in [0,1] since the previous sample.
  double sample(SimTime now, double busy_core_seconds, int cores);

 private:
  SimTime last_time_ = 0.0;
  double last_busy_ = 0.0;
  bool primed_ = false;
};

class Vm {
 public:
  using ReadyCallback = std::function<void(Vm&)>;
  using StoppedCallback = std::function<void(Vm&)>;

  /// Creates the VM in Provisioning state; after `prep_delay` it transitions
  /// to Running and invokes `on_ready`. A zero delay still transitions via
  /// the event queue (deterministic ordering with other time-zero work).
  /// `context` (optional) scopes the VM's log lines to its run; it must
  /// outlive the VM.
  Vm(Simulation& sim, Server::Params server_params, SimDuration prep_delay,
     ReadyCallback on_ready, const RunContext* context = nullptr);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  Server& server() { return server_; }
  const Server& server() const { return server_; }
  VmState state() const { return state_; }
  const std::string& name() const { return server_.name(); }
  bool running() const { return state_ == VmState::kRunning; }

  /// Scale-in: stop accepting work (caller must deregister from the LB) and
  /// stop once in-flight work drains. `on_stopped` fires exactly once.
  void drain(StoppedCallback on_stopped);

  /// For the "# of VMs" metric: a VM is billed while provisioning, running,
  /// or draining.
  bool billed() const { return state_ != VmState::kStopped; }

  /// True for VMs created by the initial topology bootstrap rather than by a
  /// runtime scale-out. Controllers use this to tell "the system came up"
  /// apart from "a scaling action completed".
  bool is_bootstrap() const { return is_bootstrap_; }
  void mark_bootstrap() { is_bootstrap_ = true; }

 private:
  void check_drained();

  Simulation& sim_;
  const RunContext* ctx_;
  Server server_;
  VmState state_ = VmState::kProvisioning;
  bool is_bootstrap_ = false;
  StoppedCallback on_stopped_;
  EventHandle drain_poll_;
};

}  // namespace conscale
