// Vm: a virtual machine hosting one component server.
//
// Lifecycle mirrors cloud scale-out mechanics (§IV-A "VM-scaling"):
// Provisioning (data/state replication + boot, the paper's 15 s preparation
// period) -> Running (registered with the tier's load balancer) ->
// Draining (scale-in: removed from the LB, finishing in-flight work) ->
// Stopped. A fault-injected crash moves any live state to Failed; a failed
// VM may later restart, which re-enters Provisioning. CPU utilization — the
// signal threshold-based autoscalers act on — is read with a CpuMeter over
// the server's busy-core integral.
//
// Legal transitions (everything else throws std::logic_error):
//
//   Provisioning -> Running   (boot completes)
//   Provisioning -> Failed    (crash during boot)
//   Running      -> Draining  (scale-in)
//   Running      -> Failed    (crash)
//   Draining     -> Stopped   (in-flight work drained)
//   Draining     -> Failed    (crash while draining)
//   Failed       -> Provisioning (restart)
//   Stopped      -> (terminal)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/run_context.h"
#include "simcore/simulation.h"
#include "tier/server.h"

namespace conscale {

enum class VmState { kProvisioning, kRunning, kDraining, kStopped, kFailed };

std::string to_string(VmState state);

/// Differentiates a utilization percentage out of a monotone busy-seconds
/// integral. One meter per poller; stateless servers stay unpolluted.
class CpuMeter {
 public:
  /// Returns average utilization in [0,1] since the previous sample.
  double sample(SimTime now, double busy_core_seconds, int cores);

 private:
  SimTime last_time_ = 0.0;
  double last_busy_ = 0.0;
  bool primed_ = false;
};

class Vm {
 public:
  using ReadyCallback = std::function<void(Vm&)>;
  using StoppedCallback = std::function<void(Vm&)>;

  /// Creates the VM in Provisioning state; after `prep_delay` it transitions
  /// to Running and invokes `on_ready`. A zero delay still transitions via
  /// the event queue (deterministic ordering with other time-zero work).
  /// `on_ready` fires again after every restart-from-failure, so LB
  /// re-registration works the same way as first boot.
  /// `context` (optional) scopes the VM's log lines to its run; it must
  /// outlive the VM.
  Vm(Simulation& sim, Server::Params server_params, SimDuration prep_delay,
     ReadyCallback on_ready, const RunContext* context = nullptr);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  Server& server() { return server_; }
  const Server& server() const { return server_; }
  VmState state() const { return state_; }
  const std::string& name() const { return server_.name(); }
  bool running() const { return state_ == VmState::kRunning; }
  bool failed() const { return state_ == VmState::kFailed; }

  /// Scale-in: stop accepting work (caller must deregister from the LB) and
  /// stop once in-flight work drains. `on_stopped` fires exactly once.
  /// Idempotent while already Draining; throws std::logic_error from any
  /// state other than Running/Draining (e.g. Stopped -> Draining).
  void drain(StoppedCallback on_stopped);

  /// Fault injection: crash the VM now. In-flight requests are errored via
  /// Server::fail() (the upstream sees connection resets, not hangs) and any
  /// pending boot or drain events are cancelled. The caller must deregister
  /// the VM from its load balancer *before* calling fail().
  ///
  /// `restart_delay` >= 0 schedules a restart that many seconds from now;
  /// the restart re-enters Provisioning for `restart_prep_delay` seconds and
  /// then fires the construction-time ready callback again. A negative
  /// `restart_delay` means the crash is permanent. Throws std::logic_error
  /// if the VM is already Stopped or Failed. Returns the number of in-flight
  /// requests aborted.
  std::size_t fail(SimDuration restart_delay, SimDuration restart_prep_delay);

  /// For the "# of VMs" metric: a VM is billed while provisioning, running,
  /// or draining. Failed VMs are not billed until they restart.
  bool billed() const {
    return state_ != VmState::kStopped && state_ != VmState::kFailed;
  }

  /// How many times this VM has crashed (fault injection).
  std::uint64_t crash_count() const { return crash_count_; }

  /// True for VMs created by the initial topology bootstrap rather than by a
  /// runtime scale-out. Controllers use this to tell "the system came up"
  /// apart from "a scaling action completed".
  bool is_bootstrap() const { return is_bootstrap_; }
  void mark_bootstrap() { is_bootstrap_ = true; }

 private:
  void begin_provisioning(SimDuration prep_delay);
  void check_drained();

  Simulation& sim_;
  const RunContext* ctx_;
  Server server_;
  VmState state_ = VmState::kProvisioning;
  bool is_bootstrap_ = false;
  ReadyCallback on_ready_;
  StoppedCallback on_stopped_;
  EventHandle boot_event_;
  EventHandle restart_event_;
  EventHandle drain_poll_;
  std::uint64_t crash_count_ = 0;
};

}  // namespace conscale
