#include "cluster/tier_system.h"

#include <stdexcept>

namespace conscale {

TierGroup& TierSystem::tier_by_name(const std::string& name) {
  for (std::size_t i = 0; i < tier_count(); ++i) {
    if (tier(i).name() == name) return tier(i);
  }
  throw std::out_of_range("TierSystem: no tier named " + name);
}

std::size_t TierSystem::tier_index_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < tier_count(); ++i) {
    if (tier(i).name() == name) return i;
  }
  return tier_count();
}

std::uint64_t TierSystem::total_crashes() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < tier_count(); ++i) {
    total += tier(i).total_crashes();
  }
  return total;
}

std::uint64_t TierSystem::total_aborted_requests() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < tier_count(); ++i) {
    total += tier(i).total_aborted_requests();
  }
  return total;
}

std::size_t TierSystem::total_billed_vms() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < tier_count(); ++i) {
    total += tier(i).billed_vms();
  }
  return total;
}

}  // namespace conscale
