// TierSystem: the abstract system-under-test contract shared by the linear
// chain (NTierSystem) and the service-graph topology (topology::ServiceGraph).
// Everything above the cluster layer — scaling frameworks, estimators,
// monitoring, fault injection — talks to this interface, so a controller
// written against "tiers" runs unmodified whether tier i is a chain position
// or a graph node: a tier is a named, index-addressable TierGroup either way.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cluster/tier_group.h"
#include "common/run_context.h"

namespace conscale {

class TierSystem {
 public:
  /// (tier index, vm) — fired whenever any tier brings a VM online.
  using VmReadyCallback = std::function<void(std::size_t, Vm&)>;

  virtual ~TierSystem() = default;

  virtual const RunContext& context() const = 0;

  virtual std::size_t tier_count() const = 0;
  virtual TierGroup& tier(std::size_t index) = 0;
  virtual const TierGroup& tier(std::size_t index) const = 0;

  /// Multiple subscribers are supported (metrics, scaling policies, ...).
  virtual void add_vm_ready_callback(VmReadyCallback callback) = 0;

  /// Finds a tier by name; throws std::out_of_range if absent.
  TierGroup& tier_by_name(const std::string& name);
  /// Resolves a tier name to its index; returns tier_count() if absent
  /// (fault plans use this for validation without exceptions).
  std::size_t tier_index_by_name(const std::string& name) const;

  std::size_t total_billed_vms() const;
  /// Fault-injection totals across all tiers (zero in fault-free runs).
  std::uint64_t total_crashes() const;
  std::uint64_t total_aborted_requests() const;
};

}  // namespace conscale
