#include "cluster/ntier_system.h"

#include <stdexcept>

namespace conscale {

NTierSystem::NTierSystem(Simulation& sim, SystemConfig config,
                         const RunContext* context)
    : sim_(sim), ctx_(context ? context : &RunContext::global()) {
  if (config.tiers.empty()) {
    throw std::invalid_argument("NTierSystem: no tiers configured");
  }
  if (config.initial_vms.size() != config.tiers.size()) {
    throw std::invalid_argument(
        "NTierSystem: initial_vms must match tier count");
  }
  for (std::size_t i = 0; i < config.tiers.size(); ++i) {
    TierConfig tc = config.tiers[i];
    tc.tier_index = static_cast<int>(i);
    tiers_.push_back(std::make_unique<TierGroup>(sim_, tc, ctx_));
  }
  // Wire tier i's servers to dispatch into tier i+1's load balancer. The
  // factory form lets TierGroup hand the same wiring to VMs created later
  // by scale-out.
  for (std::size_t i = 0; i + 1 < tiers_.size(); ++i) {
    LoadBalancer* next_lb = &tiers_[i + 1]->lb();
    tiers_[i]->set_downstream_factory([next_lb]() {
      return [next_lb](const RequestContext& ctx,
                       Server::Completion done) {
        next_lb->dispatch(ctx, std::move(done));
      };
    });
  }
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    tiers_[i]->set_vm_ready_callback([this, i](Vm& vm) {
      for (auto& callback : on_vm_ready_) callback(i, vm);
    });
  }
  // Bootstrap after wiring so even time-zero VMs get their downstream set.
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    tiers_[i]->bootstrap(config.initial_vms[i]);
  }
}

void NTierSystem::submit(const RequestContext& ctx,
                         std::function<void()> done) {
  tiers_.front()->lb().dispatch(ctx, std::move(done));
}

void NTierSystem::add_vm_ready_callback(VmReadyCallback callback) {
  on_vm_ready_.push_back(std::move(callback));
}

}  // namespace conscale
