#include "cluster/ntier_system.h"

#include <stdexcept>

namespace conscale {

NTierSystem::NTierSystem(Simulation& sim, SystemConfig config,
                         const RunContext* context)
    : sim_(sim), ctx_(context ? context : &RunContext::global()) {
  build(std::move(config), nullptr, nullptr);
}

NTierSystem::NTierSystem(lanes::LaneEngine& engine, SystemConfig config,
                         const TierLaneLayout& layout,
                         const RunContext* context)
    : sim_(engine.lane(layout.control_lane).sim()),
      ctx_(context ? context : &RunContext::global()) {
  if (layout.lane_of_tier.size() != config.tiers.size()) {
    throw std::invalid_argument(
        "NTierSystem: layout.lane_of_tier must match tier count");
  }
  build(std::move(config), &engine, &layout);
}

void NTierSystem::build(SystemConfig config, lanes::LaneEngine* engine,
                        const TierLaneLayout* layout) {
  if (config.tiers.empty()) {
    throw std::invalid_argument("NTierSystem: no tiers configured");
  }
  if (config.initial_vms.size() != config.tiers.size()) {
    throw std::invalid_argument(
        "NTierSystem: initial_vms must match tier count");
  }
  if (config.lan_delay < 0.0) {
    throw std::invalid_argument("NTierSystem: lan_delay must be >= 0");
  }
  const std::size_t n = config.tiers.size();
  for (std::size_t i = 0; i < n; ++i) {
    TierConfig tc = config.tiers[i];
    tc.tier_index = static_cast<int>(i);
    Simulation& tier_sim =
        engine ? engine->lane(layout->lane_of_tier[i]).sim() : sim_;
    tier_sims_.push_back(&tier_sim);
    tiers_.push_back(std::make_unique<TierGroup>(tier_sim, tc, ctx_));
  }
  if (engine) tier_lane_ = layout->lane_of_tier;
  // Wire tier i's servers to dispatch into tier i+1's load balancer across
  // the LAN hop. The factory form lets TierGroup hand the same wiring to
  // VMs created later by scale-out; lan_delay = 0 (serial default) makes
  // the channel a direct dispatch, byte-identical to the pre-hop wiring.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (engine) {
      channels_.push_back(std::make_unique<TierChannel>(
          *engine, layout->lane_of_tier[i], layout->lane_of_tier[i + 1],
          tiers_[i + 1]->lb(), config.lan_delay));
    } else {
      channels_.push_back(std::make_unique<TierChannel>(
          sim_, tiers_[i + 1]->lb(), config.lan_delay));
    }
    TierChannel* channel = channels_.back().get();
    tiers_[i]->set_downstream_factory(
        [channel]() { return channel->downstream(); });
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (engine) {
      const std::size_t lane = layout->lane_of_tier[i];
      if (lane != layout->control_lane && !(config.lan_delay > 0.0)) {
        throw std::invalid_argument(
            "NTierSystem: cross-lane tiers need lan_delay > 0 (the "
            "vm-ready hop to the control lane has no lookahead otherwise)");
      }
      notifiers_.push_back(std::make_unique<VmReadyNotifier>(
          *engine, lane, layout->control_lane, config.lan_delay,
          [this, i](Vm& vm) {
            for (auto& callback : on_vm_ready_) callback(i, vm);
          }));
      VmReadyNotifier* notifier = notifiers_.back().get();
      tiers_[i]->set_vm_ready_callback(
          [notifier](Vm& vm) { notifier->notify(vm); });
    } else {
      tiers_[i]->set_vm_ready_callback([this, i](Vm& vm) {
        for (auto& callback : on_vm_ready_) callback(i, vm);
      });
    }
  }
  // Bootstrap after wiring so even time-zero VMs get their downstream set.
  for (std::size_t i = 0; i < n; ++i) {
    tiers_[i]->bootstrap(config.initial_vms[i]);
  }
}

Simulation& NTierSystem::tier_sim(std::size_t index) {
  return *tier_sims_[index];
}

void NTierSystem::submit(const RequestContext& ctx,
                         std::function<void()> done) {
  tiers_.front()->lb().dispatch(ctx, std::move(done));
}

void NTierSystem::add_vm_ready_callback(VmReadyCallback callback) {
  on_vm_ready_.push_back(std::move(callback));
}

}  // namespace conscale
