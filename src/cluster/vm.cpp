#include "cluster/vm.h"

namespace conscale {

std::string to_string(VmState state) {
  switch (state) {
    case VmState::kProvisioning:
      return "provisioning";
    case VmState::kRunning:
      return "running";
    case VmState::kDraining:
      return "draining";
    case VmState::kStopped:
      return "stopped";
  }
  return "?";
}

double CpuMeter::sample(SimTime now, double busy_core_seconds, int cores) {
  if (!primed_) {
    primed_ = true;
    last_time_ = now;
    last_busy_ = busy_core_seconds;
    return 0.0;
  }
  const double dt = now - last_time_;
  const double dbusy = busy_core_seconds - last_busy_;
  last_time_ = now;
  last_busy_ = busy_core_seconds;
  if (dt <= 0.0 || cores <= 0) return 0.0;
  const double util = dbusy / (dt * static_cast<double>(cores));
  return util < 0.0 ? 0.0 : (util > 1.0 ? 1.0 : util);
}

Vm::Vm(Simulation& sim, Server::Params server_params, SimDuration prep_delay,
       ReadyCallback on_ready, const RunContext* context)
    : sim_(sim), ctx_(context ? context : &RunContext::global()),
      server_(sim, std::move(server_params)) {
  sim_.schedule_after(prep_delay,
                      [this, on_ready = std::move(on_ready)]() mutable {
                        if (state_ != VmState::kProvisioning) return;
                        state_ = VmState::kRunning;
                        CS_RUN_LOG_DEBUG(*ctx_)
                            << "VM " << name() << " ready at t=" << sim_.now();
                        if (on_ready) on_ready(*this);
                      });
}

void Vm::drain(StoppedCallback on_stopped) {
  if (state_ == VmState::kStopped || state_ == VmState::kDraining) return;
  state_ = VmState::kDraining;
  on_stopped_ = std::move(on_stopped);
  check_drained();
}

void Vm::check_drained() {
  if (state_ != VmState::kDraining) return;
  if (server_.in_flight() == 0) {
    state_ = VmState::kStopped;
    CS_RUN_LOG_DEBUG(*ctx_) << "VM " << name() << " stopped at t="
                            << sim_.now();
    if (on_stopped_) {
      auto callback = std::move(on_stopped_);
      callback(*this);
    }
    return;
  }
  // Poll for drain completion; in-flight work holds no reference to the VM,
  // so a light poll keeps the coupling one-way.
  drain_poll_ = sim_.schedule_after(0.1, [this] { check_drained(); });
}

}  // namespace conscale
