#include "cluster/vm.h"

#include <stdexcept>

namespace conscale {

std::string to_string(VmState state) {
  switch (state) {
    case VmState::kProvisioning:
      return "provisioning";
    case VmState::kRunning:
      return "running";
    case VmState::kDraining:
      return "draining";
    case VmState::kStopped:
      return "stopped";
    case VmState::kFailed:
      return "failed";
  }
  return "?";
}

double CpuMeter::sample(SimTime now, double busy_core_seconds, int cores) {
  if (!primed_) {
    primed_ = true;
    last_time_ = now;
    last_busy_ = busy_core_seconds;
    return 0.0;
  }
  const double dt = now - last_time_;
  const double dbusy = busy_core_seconds - last_busy_;
  last_time_ = now;
  last_busy_ = busy_core_seconds;
  if (dt <= 0.0 || cores <= 0) return 0.0;
  const double util = dbusy / (dt * static_cast<double>(cores));
  return util < 0.0 ? 0.0 : (util > 1.0 ? 1.0 : util);
}

Vm::Vm(Simulation& sim, Server::Params server_params, SimDuration prep_delay,
       ReadyCallback on_ready, const RunContext* context)
    : sim_(sim), ctx_(context ? context : &RunContext::global()),
      server_(sim, std::move(server_params)), on_ready_(std::move(on_ready)) {
  begin_provisioning(prep_delay);
}

void Vm::begin_provisioning(SimDuration prep_delay) {
  state_ = VmState::kProvisioning;
  boot_event_ = sim_.schedule_after(prep_delay, [this] {
    if (state_ != VmState::kProvisioning) return;
    state_ = VmState::kRunning;
    CS_RUN_LOG_DEBUG(*ctx_) << "VM " << name() << " ready at t=" << sim_.now();
    if (on_ready_) on_ready_(*this);
  });
}

void Vm::drain(StoppedCallback on_stopped) {
  if (state_ == VmState::kDraining) return;
  if (state_ != VmState::kRunning) {
    throw std::logic_error("Vm '" + name() + "': illegal transition " +
                           to_string(state_) + " -> draining");
  }
  state_ = VmState::kDraining;
  on_stopped_ = std::move(on_stopped);
  check_drained();
}

std::size_t Vm::fail(SimDuration restart_delay,
                     SimDuration restart_prep_delay) {
  if (state_ == VmState::kStopped || state_ == VmState::kFailed) {
    throw std::logic_error("Vm '" + name() + "': illegal transition " +
                           to_string(state_) + " -> failed");
  }
  boot_event_.cancel();
  drain_poll_.cancel();
  on_stopped_ = nullptr;  // a crashed VM never reports a clean drain
  state_ = VmState::kFailed;
  ++crash_count_;
  const std::size_t aborted = server_.fail();
  CS_RUN_LOG_INFO(*ctx_) << "VM " << name() << " FAILED at t=" << sim_.now()
                         << " (aborted " << aborted << " in-flight requests"
                         << (restart_delay >= 0.0
                                 ? ", restart in " +
                                       std::to_string(restart_delay) + "s)"
                                 : ", permanent)");
  if (restart_delay >= 0.0) {
    restart_event_ =
        sim_.schedule_after(restart_delay, [this, restart_prep_delay] {
          if (state_ != VmState::kFailed) return;
          CS_RUN_LOG_INFO(*ctx_)
              << "VM " << name() << " restarting at t=" << sim_.now();
          begin_provisioning(restart_prep_delay);
        });
  }
  return aborted;
}

void Vm::check_drained() {
  if (state_ != VmState::kDraining) return;
  if (server_.in_flight() == 0) {
    state_ = VmState::kStopped;
    CS_RUN_LOG_DEBUG(*ctx_) << "VM " << name() << " stopped at t="
                            << sim_.now();
    if (on_stopped_) {
      auto callback = std::move(on_stopped_);
      callback(*this);
    }
    return;
  }
  // Poll for drain completion; in-flight work holds no reference to the VM,
  // so a light poll keeps the coupling one-way.
  drain_poll_ = sim_.schedule_after(0.1, [this] { check_drained(); });
}

}  // namespace conscale
