// TierGroup: one horizontally scalable tier — a set of VMs behind a load
// balancer, with scale-out/in operations and tier-wide soft-resource
// actuation. The hardware agent calls scale_out()/scale_in(); the software
// agent calls set_thread_pool_size()/set_downstream_pool_size().
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/load_balancer.h"
#include "cluster/vm.h"
#include "common/run_context.h"
#include "simcore/simulation.h"
#include "tier/server.h"

namespace conscale {

struct TierConfig {
  std::string name = "tier";
  int tier_index = 0;
  Server::Params server_template;  ///< name field is overridden per VM
  SimDuration vm_prep_delay = 15.0;  ///< §IV-A: dataset replication + boot
  LbPolicy lb_policy = LbPolicy::kLeastConnections;
  std::size_t min_vms = 1;
  std::size_t max_vms = 8;
};

class TierGroup {
 public:
  /// Invoked whenever a VM finishes provisioning and joins the LB —
  /// the metrics layer attaches monitors here, and scaling policies apply
  /// soft resources to the newcomer.
  using VmReadyCallback = std::function<void(Vm&)>;

  /// `context` (optional) scopes scaling/actuation log lines to the owning
  /// run; it must outlive the tier.
  TierGroup(Simulation& sim, TierConfig config,
            const RunContext* context = nullptr);

  /// Adds `count` VMs immediately (initial topology; no preparation delay).
  void bootstrap(std::size_t count);

  /// Starts provisioning one VM (takes vm_prep_delay to become Running).
  /// Returns false when at max capacity (counting in-flight provisioning).
  bool scale_out();

  /// Drains the most recently added running VM. Returns false at min size.
  bool scale_in();

  /// Vertical scaling (§III-C.1): sets the core count of every running VM
  /// in the tier (and of future VMs). Takes effect immediately — hypervisors
  /// hot-plug vCPUs. Returns false if `cores` < 1.
  bool set_cores(int cores);
  int cores() const { return config_.server_template.cores; }

  std::size_t billed_vms() const;    ///< provisioning + running + draining
  std::size_t running_vms() const;
  std::size_t provisioning_vms() const;
  const TierConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  LoadBalancer& lb() { return lb_; }

  /// Running servers (monitoring + estimation targets).
  std::vector<Server*> running_servers();
  std::vector<Vm*> all_vms();

  /// Average CPU utilization across running VMs since the previous call
  /// (each TierGroup poll uses its own meters; call at a fixed period).
  double poll_avg_cpu_utilization();

  // ---- Soft resources, applied tier-wide and remembered for future VMs ----
  void set_thread_pool_size(std::size_t size);
  void set_downstream_pool_size(std::size_t size);
  std::size_t thread_pool_size() const { return thread_pool_size_; }
  std::size_t downstream_pool_size() const { return downstream_pool_size_; }

  void set_vm_ready_callback(VmReadyCallback callback) {
    on_vm_ready_ = std::move(callback);
  }
  /// The cluster layer wires each new server's downstream here.
  void set_downstream_factory(std::function<Server::DownstreamFn()> factory) {
    downstream_factory_ = std::move(factory);
  }

 private:
  std::unique_ptr<Vm> make_vm(SimDuration prep_delay);

  Simulation& sim_;
  const RunContext* ctx_;
  TierConfig config_;
  LoadBalancer lb_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<std::unique_ptr<CpuMeter>> meters_;
  std::size_t next_vm_number_ = 1;
  std::size_t thread_pool_size_;
  std::size_t downstream_pool_size_;
  VmReadyCallback on_vm_ready_;
  std::function<Server::DownstreamFn()> downstream_factory_;
};

}  // namespace conscale
