// TierGroup: one horizontally scalable tier — a set of VMs behind a load
// balancer, with scale-out/in operations and tier-wide soft-resource
// actuation. The hardware agent calls scale_out()/scale_in(); the software
// agent calls set_thread_pool_size()/set_downstream_pool_size().
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/load_balancer.h"
#include "cluster/vm.h"
#include "common/run_context.h"
#include "simcore/simulation.h"
#include "tier/server.h"

namespace conscale {

struct TierConfig {
  std::string name = "tier";
  int tier_index = 0;
  Server::Params server_template;  ///< name field is overridden per VM
  SimDuration vm_prep_delay = 15.0;  ///< §IV-A: dataset replication + boot
  LbPolicy lb_policy = LbPolicy::kLeastConnections;
  std::size_t min_vms = 1;
  std::size_t max_vms = 8;
};

class TierGroup {
 public:
  /// Invoked whenever a VM finishes provisioning and joins the LB —
  /// the metrics layer attaches monitors here, and scaling policies apply
  /// soft resources to the newcomer.
  using VmReadyCallback = std::function<void(Vm&)>;

  /// `context` (optional) scopes scaling/actuation log lines to the owning
  /// run; it must outlive the tier.
  TierGroup(Simulation& sim, TierConfig config,
            const RunContext* context = nullptr);

  /// Adds `count` VMs immediately (initial topology; no preparation delay).
  void bootstrap(std::size_t count);

  /// Starts provisioning one VM (takes vm_prep_delay to become Running).
  /// Returns false when at max capacity (counting in-flight provisioning).
  bool scale_out();

  /// Drains the most recently added running VM. Returns false at min size.
  bool scale_in();

  // ---- Fault injection (src/faults) -------------------------------------

  /// Crashes the `ordinal`-th *running* VM (0 = oldest running, in creation
  /// order). The VM is deregistered from the LB first, then its server
  /// errors every in-flight request. `restart_delay` >= 0 schedules a
  /// restart after that many seconds (provisioning then takes the tier's
  /// current effective prep delay, i.e. vm_prep_delay * prep delay factor);
  /// negative = permanent. Returns false when no such running VM exists.
  bool inject_vm_crash(std::size_t ordinal, SimDuration restart_delay);

  /// Boot-latency jitter (degraded cloud provisioning API): multiplies the
  /// preparation delay of every *future* scale-out and crash-restart
  /// (the factor in effect when the operation starts applies). 1.0 = nominal.
  void set_prep_delay_factor(double factor);
  double prep_delay_factor() const { return prep_delay_factor_; }

  /// CPU interference (noisy neighbor): sets the per-core speed of the
  /// `ordinal`-th currently-billed VM to template speed x `factor`, or of
  /// every billed VM when `ordinal` is kAllVms (in which case VMs created
  /// while the window is open inherit the factor too). Returns the servers
  /// touched, so the injector can close the window on exactly those VMs.
  static constexpr std::size_t kAllVms = static_cast<std::size_t>(-1);
  std::vector<Server*> set_vm_cpu_speed_factor(std::size_t ordinal,
                                               double factor);

  /// Vertical scaling (§III-C.1): sets the core count of every running VM
  /// in the tier (and of future VMs). Takes effect immediately — hypervisors
  /// hot-plug vCPUs. Returns false if `cores` < 1.
  bool set_cores(int cores);
  int cores() const { return config_.server_template.cores; }

  std::size_t billed_vms() const;    ///< provisioning + running + draining
  std::size_t running_vms() const;
  std::size_t provisioning_vms() const;
  std::size_t failed_vms() const;
  /// Total crashes injected into this tier over the run.
  std::uint64_t total_crashes() const;
  /// Total requests errored by crashes across all of this tier's servers.
  std::uint64_t total_aborted_requests() const;
  const TierConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  LoadBalancer& lb() { return lb_; }

  /// Running servers (monitoring + estimation targets).
  std::vector<Server*> running_servers();
  std::vector<Vm*> all_vms();

  /// Average CPU utilization across running VMs since the previous call
  /// (each TierGroup poll uses its own meters; call at a fixed period).
  double poll_avg_cpu_utilization();

  // ---- Soft resources, applied tier-wide and remembered for future VMs ----
  void set_thread_pool_size(std::size_t size);
  void set_downstream_pool_size(std::size_t size);
  std::size_t thread_pool_size() const { return thread_pool_size_; }
  std::size_t downstream_pool_size() const { return downstream_pool_size_; }

  void set_vm_ready_callback(VmReadyCallback callback) {
    on_vm_ready_ = std::move(callback);
  }
  /// The cluster layer wires each new server's downstream here.
  void set_downstream_factory(std::function<Server::DownstreamFn()> factory) {
    downstream_factory_ = std::move(factory);
  }

 private:
  std::unique_ptr<Vm> make_vm(SimDuration prep_delay);

  Simulation& sim_;
  const RunContext* ctx_;
  TierConfig config_;
  LoadBalancer lb_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<std::unique_ptr<CpuMeter>> meters_;
  std::size_t next_vm_number_ = 1;
  double prep_delay_factor_ = 1.0;
  double cpu_speed_factor_ = 1.0;  ///< applied to newly created VMs too
  std::size_t thread_pool_size_;
  std::size_t downstream_pool_size_;
  VmReadyCallback on_vm_ready_;
  std::function<Server::DownstreamFn()> downstream_factory_;
};

}  // namespace conscale
