// LaneGateway: the system-lane endpoint of the shard protocol
// (DESIGN.md §6.6). It terminates the client<->frontend network channel:
// requests posted by SessionShards arrive here after the one-way network
// latency, get re-stamped to their arrival instant, and enter the serving
// system through a generic outcome-aware submit function (NTierSystem or
// topology::ServiceGraph — the gateway does not care which). When the
// system finishes a request, the gateway fires the metrics hooks at the
// client-perceived completion instant and posts the reply back across the
// same channel to the owning shard.
//
// The hooks are plain std::functions rather than a MonitoringAgent* so the
// cluster layer does not grow a dependency on metrics (metrics already
// links cluster); the laned runners wire them to the monitor exactly like
// ClientPopulation's hooks.
//
// Determinism: the gateway is a LaneActor on the system lane, so its reply
// posts carry canonical (stream, seq) keys drawn in lane-0 execution order
// — which the ordering contract (DESIGN.md §8) already makes identical for
// lanes=1 and lanes=K.
#pragma once

#include <cstdint>
#include <functional>

#include "common/time_units.h"
#include "simcore/lanes/actor.h"
#include "workload/request.h"
#include "workload/session_shard.h"

namespace conscale {

/// Deterministic shard->lane placement: the system owns lane 0 exclusively,
/// session shards round-robin over the worker lanes 1..K-1. With a single
/// lane everything shares lane 0 (the engine then runs windows inline with
/// zero threads — the byte-identity baseline).
inline std::size_t shard_lane(std::size_t shard_index,
                              std::size_t lane_count) {
  if (lane_count <= 1) return 0;
  return 1 + shard_index % (lane_count - 1);
}

class LaneGateway final : public ShardGateway, public lanes::LaneActor {
 public:
  /// Outcome-aware system entry point (same shape as
  /// ClientPopulation::OutcomeSubmitFn).
  using SubmitFn =
      std::function<void(const RequestContext&,
                         std::function<void(RequestOutcome)> on_response)>;
  /// Observer of completed requests: (client issue time, client-perceived
  /// response time, request class).
  using CompletionHook =
      std::function<void(SimTime issued, double rt, const RequestClass&)>;
  /// Observer of shed requests (fires at the rejection instant).
  using RejectionHook = std::function<void(SimTime rejected_at)>;

  struct Params {
    /// Client<->frontend one-way network latency; must match the shards'.
    SimDuration net_delay = 0.05;
  };

  LaneGateway(lanes::LaneEngine& engine, std::size_t lane, SubmitFn submit,
              Params params)
      : LaneActor(engine, lane), submit_(std::move(submit)), params_(params) {}

  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }
  void set_rejection_hook(RejectionHook hook) {
    rejection_hook_ = std::move(hook);
  }

  void on_request(const RequestContext& ctx, SessionShard& from,
                  std::uint32_t user_slot) override;

  /// The client<->frontend one-way latency this gateway models. The laned
  /// runners validate it against the LookaheadAnalysis channel delay and
  /// the shards' configured delay, so the three cannot silently diverge.
  SimDuration net_delay() const { return params_.net_delay; }

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t served() const { return served_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  SubmitFn submit_;
  Params params_;
  CompletionHook completion_hook_;
  RejectionHook rejection_hook_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace conscale
