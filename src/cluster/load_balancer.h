// LoadBalancer: the HAProxy stand-in that fronts each scalable tier.
// The paper deploys HAProxy for both the app and DB tiers and uses the
// `leastconn` policy (§IV-A); round-robin and weighted variants are provided
// for the LB-policy ablation.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "tier/server.h"
#include "workload/request.h"

namespace conscale {

enum class LbPolicy { kRoundRobin, kLeastConnections };

std::string to_string(LbPolicy policy);

class LoadBalancer {
 public:
  using Completion = std::function<void()>;

  LoadBalancer(std::string name, LbPolicy policy);

  void add_backend(Server* server);
  /// Stops new dispatches to `server`; in-flight requests complete normally.
  void remove_backend(Server* server);

  /// Dispatches to a backend per policy. Throws std::runtime_error if no
  /// backend was *ever* registered (a mis-wired topology). If backends were
  /// registered but all are currently gone (every VM of the tier crashed),
  /// the request parks in a surge queue — HAProxy's maxconn backlog — and is
  /// dispatched FIFO as soon as a backend comes back.
  void dispatch(const RequestContext& ctx, Completion done);

  void set_policy(LbPolicy policy) { policy_ = policy; }
  LbPolicy policy() const { return policy_; }
  std::size_t backend_count() const { return backends_.size(); }
  std::size_t outstanding(const Server* server) const;
  std::uint64_t total_dispatched() const { return dispatched_; }
  /// Requests parked because every backend is down.
  std::size_t surge_queued() const { return waiting_.size(); }
  const std::vector<Server*>& backends() const { return backends_; }

 private:
  struct Parked {
    RequestContext ctx;
    Completion done;
  };

  /// One entry per server ever registered, in registration order — the slot
  /// index is the server's stable identity inside this LB. Keying the
  /// outstanding-connection counters by slot (not by Server*) removes the
  /// only address-dependent container this class ever had: no allocation
  /// order can influence tie-breaks or iteration (detlint: pointer-key).
  struct BackendSlot {
    Server* server;
    std::size_t outstanding = 0;
  };

  std::size_t slot_of(const Server* server) const;
  std::size_t ensure_slot(Server* server);
  Server* choose_backend();
  void flush_surge_queue();

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  std::string name_;
  LbPolicy policy_;
  std::vector<BackendSlot> slots_;      ///< append-only registry
  std::vector<Server*> backends_;       ///< currently dispatchable
  std::vector<std::size_t> backend_slots_;  ///< slot of backends_[k]
  std::deque<Parked> waiting_;
  std::size_t rr_index_ = 0;
  std::uint64_t dispatched_ = 0;
  bool ever_had_backend_ = false;
  bool flushing_ = false;
};

}  // namespace conscale
