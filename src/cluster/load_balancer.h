// LoadBalancer: the HAProxy stand-in that fronts each scalable tier.
// The paper deploys HAProxy for both the app and DB tiers and uses the
// `leastconn` policy (§IV-A); round-robin and weighted variants are provided
// for the LB-policy ablation.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tier/server.h"
#include "workload/request.h"

namespace conscale {

enum class LbPolicy { kRoundRobin, kLeastConnections };

std::string to_string(LbPolicy policy);

class LoadBalancer {
 public:
  using Completion = std::function<void()>;

  LoadBalancer(std::string name, LbPolicy policy);

  void add_backend(Server* server);
  /// Stops new dispatches to `server`; in-flight requests complete normally.
  void remove_backend(Server* server);

  /// Dispatches to a backend per policy. Throws std::runtime_error if no
  /// backend is registered (the cluster layer guarantees at least one).
  void dispatch(const RequestContext& ctx, Completion done);

  void set_policy(LbPolicy policy) { policy_ = policy; }
  LbPolicy policy() const { return policy_; }
  std::size_t backend_count() const { return backends_.size(); }
  std::size_t outstanding(const Server* server) const;
  std::uint64_t total_dispatched() const { return dispatched_; }
  const std::vector<Server*>& backends() const { return backends_; }

 private:
  Server* choose_backend();

  std::string name_;
  LbPolicy policy_;
  std::vector<Server*> backends_;
  std::unordered_map<const Server*, std::size_t> outstanding_;
  std::size_t rr_index_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace conscale
