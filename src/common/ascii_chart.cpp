#include "common/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace conscale {

namespace {

constexpr char kSeriesGlyphs[] = {'*', '+', 'o', 'x', '%', '&'};

struct Bounds {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  bool valid = false;
};

Bounds compute_bounds(const std::vector<Series>& series) {
  Bounds b;
  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      b.x_min = std::min(b.x_min, s.x[i]);
      b.x_max = std::max(b.x_max, s.x[i]);
      b.y_min = std::min(b.y_min, s.y[i]);
      b.y_max = std::max(b.y_max, s.y[i]);
      b.valid = true;
    }
  }
  return b;
}

std::string format_tick(double v) {
  char buf[24];
  if (std::abs(v) >= 10000.0) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else if (std::abs(v - std::round(v)) < 1e-9) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

class Canvas {
 public:
  Canvas(int width, int height)
      : width_(width), height_(height),
        cells_(static_cast<std::size_t>(width * height), ' ') {}

  void put(int col, int row, char c) {
    if (col < 0 || col >= width_ || row < 0 || row >= height_) return;
    cells_[static_cast<std::size_t>(row * width_ + col)] = c;
  }

  char get(int col, int row) const {
    if (col < 0 || col >= width_ || row < 0 || row >= height_) return ' ';
    return cells_[static_cast<std::size_t>(row * width_ + col)];
  }

  int width() const { return width_; }
  int height() const { return height_; }

 private:
  int width_;
  int height_;
  std::vector<char> cells_;
};

std::string assemble(const Canvas& canvas, const Bounds& bounds,
                     const ChartOptions& options, const std::string& legend) {
  std::ostringstream out;
  constexpr int kGutter = 10;
  if (!options.y_label.empty()) {
    out << std::string(kGutter, ' ') << options.y_label << '\n';
  }
  for (int row = 0; row < canvas.height(); ++row) {
    const double frac =
        1.0 - static_cast<double>(row) / static_cast<double>(canvas.height() - 1);
    const double y_val = bounds.y_min + frac * (bounds.y_max - bounds.y_min);
    const bool tick = row % 4 == 0 || row == canvas.height() - 1;
    std::string label = tick ? format_tick(y_val) : "";
    out << std::string(kGutter - 2 - std::min<std::size_t>(label.size(), kGutter - 2),
                       ' ')
        << label << (tick ? " |" : " |");
    for (int col = 0; col < canvas.width(); ++col) out << canvas.get(col, row);
    out << '\n';
  }
  out << std::string(kGutter, ' ') << '+' << std::string(canvas.width(), '-')
      << '\n';
  // X tick labels at the quarters.
  out << std::string(kGutter, ' ');
  std::string xline(static_cast<std::size_t>(canvas.width() + 1), ' ');
  for (int q = 0; q <= 4; ++q) {
    const double frac = static_cast<double>(q) / 4.0;
    const double x_val = bounds.x_min + frac * (bounds.x_max - bounds.x_min);
    std::string label = format_tick(x_val);
    auto pos = static_cast<std::size_t>(frac * (canvas.width() - 1));
    if (pos + label.size() > xline.size()) {
      pos = xline.size() >= label.size() ? xline.size() - label.size() : 0;
    }
    xline.replace(pos, label.size(), label);
  }
  out << xline << '\n';
  if (!options.x_label.empty()) {
    out << std::string(kGutter + canvas.width() / 2 -
                           static_cast<int>(options.x_label.size() / 2),
                       ' ')
        << options.x_label << '\n';
  }
  if (!legend.empty()) out << legend << '\n';
  return out.str();
}

Bounds apply_option_bounds(Bounds bounds, const ChartOptions& options) {
  if (!options.auto_y_min) bounds.y_min = options.y_min;
  if (options.y_max > 0.0) bounds.y_max = options.y_max;
  if (bounds.y_max <= bounds.y_min) bounds.y_max = bounds.y_min + 1.0;
  if (bounds.x_max <= bounds.x_min) bounds.x_max = bounds.x_min + 1.0;
  return bounds;
}

}  // namespace

std::string render_lines(const std::vector<Series>& series,
                         const ChartOptions& options) {
  Bounds bounds = compute_bounds(series);
  if (!bounds.valid) return "(no data)\n";
  bounds = apply_option_bounds(bounds, options);

  Canvas canvas(options.width, options.height);
  std::ostringstream legend;
  legend << "  legend:";
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char glyph = kSeriesGlyphs[s % std::size(kSeriesGlyphs)];
    legend << "  [" << glyph << "] " << series[s].name;
    const auto& sr = series[s];
    const std::size_t n = std::min(sr.x.size(), sr.y.size());
    int prev_col = -1, prev_row = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(sr.x[i]) || !std::isfinite(sr.y[i])) continue;
      const double fx = (sr.x[i] - bounds.x_min) / (bounds.x_max - bounds.x_min);
      const double fy = (sr.y[i] - bounds.y_min) / (bounds.y_max - bounds.y_min);
      const int col = static_cast<int>(std::round(fx * (options.width - 1)));
      const int row = static_cast<int>(
          std::round((1.0 - std::clamp(fy, 0.0, 1.0)) * (options.height - 1)));
      canvas.put(col, row, glyph);
      // Connect consecutive points vertically so spikes remain visible.
      if (prev_col >= 0 && col == prev_col + 1 && std::abs(row - prev_row) > 1) {
        const int step = row > prev_row ? 1 : -1;
        for (int r = prev_row + step; r != row; r += step) {
          if (canvas.get(col, r) == ' ') canvas.put(col, r, '|');
        }
      }
      prev_col = col;
      prev_row = row;
    }
  }
  return assemble(canvas, bounds, options, legend.str());
}

std::string render_scatter(const Series& points, const ChartOptions& options) {
  Bounds bounds = compute_bounds({points});
  if (!bounds.valid) return "(no data)\n";
  bounds = apply_option_bounds(bounds, options);

  // Count hits per cell, then map density to a ramp.
  std::vector<int> density(
      static_cast<std::size_t>(options.width * options.height), 0);
  const std::size_t n = std::min(points.x.size(), points.y.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(points.x[i]) || !std::isfinite(points.y[i])) continue;
    const double fx = (points.x[i] - bounds.x_min) / (bounds.x_max - bounds.x_min);
    const double fy = (points.y[i] - bounds.y_min) / (bounds.y_max - bounds.y_min);
    const int col = static_cast<int>(std::round(std::clamp(fx, 0.0, 1.0) *
                                                (options.width - 1)));
    const int row = static_cast<int>(
        std::round((1.0 - std::clamp(fy, 0.0, 1.0)) * (options.height - 1)));
    ++density[static_cast<std::size_t>(row * options.width + col)];
  }
  int max_density = 0;
  for (int d : density) max_density = std::max(max_density, d);

  static constexpr char kRamp[] = {'.', ':', '*', '#', '@'};
  Canvas canvas(options.width, options.height);
  for (int row = 0; row < options.height; ++row) {
    for (int col = 0; col < options.width; ++col) {
      const int d = density[static_cast<std::size_t>(row * options.width + col)];
      if (d == 0) continue;
      const double frac =
          max_density > 1 ? static_cast<double>(d - 1) /
                                static_cast<double>(max_density - 1)
                          : 0.0;
      const auto ramp_idx = static_cast<std::size_t>(
          std::round(frac * (std::size(kRamp) - 1)));
      canvas.put(col, row, kRamp[ramp_idx]);
    }
  }
  std::string legend = "  scatter: " + points.name +
                       "  (density ramp . : * # @, n=" + std::to_string(n) + ")";
  return assemble(canvas, bounds, options, legend);
}

std::string render_bars(const std::vector<Bar>& bars, int width,
                        const std::string& unit) {
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& b : bars) {
    max_value = std::max(max_value, b.value);
    label_width = std::max(label_width, b.label.size());
  }
  if (max_value <= 0.0) max_value = 1.0;
  std::ostringstream out;
  for (const auto& b : bars) {
    const int len =
        static_cast<int>(std::round(b.value / max_value * width));
    out << "  " << b.label << std::string(label_width - b.label.size(), ' ')
        << " |" << std::string(static_cast<std::size_t>(len), '#')
        << std::string(static_cast<std::size_t>(width - len), ' ') << "| "
        << format_tick(b.value);
    if (!unit.empty()) out << ' ' << unit;
    out << '\n';
  }
  return out.str();
}

}  // namespace conscale
