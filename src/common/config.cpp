#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <stdexcept>

namespace conscale {

namespace {

std::string trim(const std::string& s) {
  auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    // Accept both key=value and --key=value.
    if (token.rfind("--", 0) == 0) token = token.substr(2);
    auto eq = token.find('=');
    if (eq == std::string::npos) {
      config.positional_.push_back(token);
    } else {
      config.set(trim(token.substr(0, eq)), trim(token.substr(eq + 1)));
    }
  }
  return config;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  Config config;
  std::string line;
  while (std::getline(in, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: malformed line: " + line);
    }
    config.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return config;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key '" + key + "' is not a number: " +
                             it->second);
  }
}

long Config::get_int(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stol(it->second);
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key '" + key + "' is not an integer: " +
                             it->second);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = lower(trim(it->second));
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::runtime_error("Config: key '" + key + "' is not a bool: " +
                           it->second);
}

void Config::require_known_keys(
    const std::vector<std::string>& known_keys) const {
  std::string unknown;
  for (const auto& [key, value] : values_) {  // std::map: sorted iteration
    if (std::find(known_keys.begin(), known_keys.end(), key) !=
        known_keys.end()) {
      continue;
    }
    if (!unknown.empty()) unknown += ", ";
    unknown += key;
  }
  if (unknown.empty()) return;
  std::string known;
  for (const auto& key : known_keys) {
    if (!known.empty()) known += ", ";
    known += key;
  }
  throw std::runtime_error("Config: unknown key(s): " + unknown +
                           " (known keys: " + known + ")");
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
  positional_.insert(positional_.end(), other.positional_.begin(),
                     other.positional_.end());
}

}  // namespace conscale
