#include "common/run_context.h"

namespace conscale {

const RunContext& RunContext::global() {
  static const RunContext context;
  return context;
}

void RunContext::log(LogLevel level, std::string_view message) const {
  if (!log_enabled(level)) return;
  if (label_.empty()) {
    if (sink_) {
      sink_(level, message);
    } else {
      Logger::instance().write(level, message);
    }
    return;
  }
  std::string prefixed;
  prefixed.reserve(label_.size() + 3 + message.size());
  prefixed += '[';
  prefixed += label_;
  prefixed += "] ";
  prefixed += message;
  if (sink_) {
    sink_(level, prefixed);
  } else {
    Logger::instance().write(level, prefixed);
  }
}

}  // namespace conscale
