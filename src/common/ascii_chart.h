// Terminal rendering of the paper's figures: line charts for timelines
// (Fig 1/5/10/11), scatter plots for SCT correlation graphs (Fig 6/7), and
// simple bar summaries for tables. The bench binaries print these so a run's
// output is directly comparable to the paper without external plotting.
#pragma once

#include <string>
#include <vector>

namespace conscale {

struct ChartOptions {
  int width = 96;        ///< plot area columns
  int height = 18;       ///< plot area rows
  std::string x_label;   ///< axis captions
  std::string y_label;
  double y_min = 0.0;    ///< fixed lower bound (default 0 — paper style)
  bool auto_y_min = false;
  double y_max = 0.0;    ///< 0 => auto from data
};

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Renders one or more line series on a shared axis. Each series gets a
/// distinct glyph; a legend line is appended.
std::string render_lines(const std::vector<Series>& series,
                         const ChartOptions& options);

/// Renders a scatter plot (density shown by character ramp . : * # @).
std::string render_scatter(const Series& points, const ChartOptions& options);

/// Renders a labeled horizontal bar chart, e.g. for Table I summaries.
struct Bar {
  std::string label;
  double value = 0.0;
};
std::string render_bars(const std::vector<Bar>& bars, int width = 60,
                        const std::string& unit = "");

}  // namespace conscale
