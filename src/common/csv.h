// Small CSV writer used by the figure/table harnesses to dump the series the
// paper plots, so they can be re-plotted with gnuplot/matplotlib.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace conscale {

/// Writes RFC-4180-ish CSV (quotes fields containing separators/quotes).
/// The writer owns the stream; destruction flushes.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  /// Writes to an already-open stream owned by the caller.
  explicit CsvWriter(std::ostream& out);

  void header(std::initializer_list<std::string_view> columns);
  void header(const std::vector<std::string>& columns);

  /// Appends one row. Values are formatted with %.6g.
  void row(std::initializer_list<double> values);
  void row(const std::vector<double>& values);
  /// Mixed row: already-formatted cells.
  void raw_row(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  void write_cells(const std::vector<std::string>& cells);
  static std::string escape(std::string_view cell);

  std::ofstream file_;
  std::ostream* out_;
  std::size_t rows_ = 0;
};

}  // namespace conscale
