// Deterministic, fast random number generation for the simulator.
//
// The whole reproduction depends on run-to-run determinism (DESIGN.md §6.4),
// so we do not use std::random_device or any global engine. Every component
// that needs randomness owns an Rng seeded from the experiment seed; forked
// streams (fork()) are independent so adding a consumer does not perturb the
// draws seen by existing consumers.
//
// Engine: xoshiro256** (Blackman & Vigna), seeded via SplitMix64 — the
// standard recommendation for seeding xoshiro from a single 64-bit value.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace conscale {

namespace detail {

/// SplitMix64: used only to expand a 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace detail

/// xoshiro256** PRNG with distribution helpers used by the workload and
/// service-time models. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = detail::splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = detail::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = detail::rotl(state_[3], 45);
    return result;
  }

  /// Independent child stream. Drawing from the child does not advance the
  /// parent beyond the single draw used to derive the child's seed.
  Rng fork() { return Rng(next() ^ 0xa02bdbf7bb3c0a7ULL); }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high bits -> double mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's unbiased bounded generation (rejection variant kept simple).
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with the given mean (= 1/rate). mean <= 0 returns 0.
  double exponential(double mean) {
    if (mean <= 0.0) return 0.0;
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal parameterized by the mean and coefficient of variation of the
  /// *resulting* distribution (convenient for service-time models).
  double lognormal_mean_cv(double mean, double cv) {
    if (mean <= 0.0) return 0.0;
    if (cv <= 0.0) return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
  }

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 60 to stay O(1)).
  std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean > 60.0) {
      const double x = normal(mean, std::sqrt(mean));
      return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
    }
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace conscale
