// RunContext: per-run execution context for self-contained simulation runs.
//
// The simulator used to log through the process-wide Logger::instance()
// singleton from inside the run path (VM lifecycle, tier scaling, soft
// actuation, SCT estimates). That is fine for one run per process but wrong
// for the parallel experiment runner (experiments/parallel.h), where N runs
// share the process: their log lines need a per-run label and, when
// requested, a per-run sink and level — without any cross-run shared state
// on the hot path.
//
// A RunContext carries exactly that: an optional label (prefixed to every
// line), an optional level override, and an optional sink override. A
// default-constructed context delegates level and output to the global
// Logger, so examples and tests that never touch RunContext keep the
// singleton behaviour unchanged; the global default sink is mutex-guarded,
// so concurrent runs logging through it cannot interleave torn lines.
//
// Ownership rule: the RunContext must outlive every component constructed
// with it (it is typically a field of the run's options object, which lives
// across the whole run). Components store a pointer and never copy it.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/logging.h"

namespace conscale {

class RunContext {
 public:
  using Sink = Logger::Sink;

  RunContext() = default;

  /// Shared default context: no label, level and sink delegate to the
  /// global Logger. Used by every component constructed without an explicit
  /// context.
  static const RunContext& global();

  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Per-run level override; unset delegates to Logger::instance().level().
  void set_log_level(LogLevel level) { level_ = level; }
  LogLevel log_level() const {
    return level_ ? *level_ : Logger::instance().level();
  }
  bool log_enabled(LogLevel level) const { return level >= log_level(); }

  /// Per-run sink override; unset routes through the global (mutex-guarded)
  /// sink. A per-run sink is called only from the run's own thread, so it
  /// needs no locking of its own.
  void set_log_sink(Sink sink) { sink_ = std::move(sink); }

  void log(LogLevel level, std::string_view message) const;

 private:
  std::optional<LogLevel> level_;
  Sink sink_;
  std::string label_;
};

namespace detail {
/// Stream-style one-shot message builder for the CS_RUN_LOG macros.
class RunLogMessage {
 public:
  RunLogMessage(const RunContext& context, LogLevel level)
      : context_(context), level_(level) {}
  ~RunLogMessage() { context_.log(level_, stream_.str()); }
  RunLogMessage(const RunLogMessage&) = delete;
  RunLogMessage& operator=(const RunLogMessage&) = delete;

  template <typename T>
  RunLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const RunContext& context_;
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace conscale

#define CS_RUN_LOG(ctx, level)            \
  if (!(ctx).log_enabled(level)) {        \
  } else                                  \
    ::conscale::detail::RunLogMessage((ctx), level)

#define CS_RUN_LOG_TRACE(ctx) CS_RUN_LOG(ctx, ::conscale::LogLevel::kTrace)
#define CS_RUN_LOG_DEBUG(ctx) CS_RUN_LOG(ctx, ::conscale::LogLevel::kDebug)
#define CS_RUN_LOG_INFO(ctx) CS_RUN_LOG(ctx, ::conscale::LogLevel::kInfo)
#define CS_RUN_LOG_WARN(ctx) CS_RUN_LOG(ctx, ::conscale::LogLevel::kWarn)
#define CS_RUN_LOG_ERROR(ctx) CS_RUN_LOG(ctx, ::conscale::LogLevel::kError)
