#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace conscale {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double pct) {
  std::vector<double> copy(values.begin(), values.end());
  return percentile_inplace(copy, pct);
}

double percentile_inplace(std::vector<double>& values, double pct) {
  if (values.empty()) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  std::nth_element(values.begin(), values.begin() + static_cast<long>(lo),
                   values.end());
  const double v_lo = values[lo];
  if (hi == lo || frac == 0.0) return v_lo;
  const double v_hi =
      *std::min_element(values.begin() + static_cast<long>(lo) + 1,
                        values.end());
  return v_lo + frac * (v_hi - v_lo);
}

double mean_of(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

double t_critical_95(double df) {
  // Two-sided 95% critical values; interpolation keeps the stage detector
  // smooth for the small bucket counts the 3-minute SCT window produces.
  struct Entry {
    double df;
    double t;
  };
  static constexpr Entry kTable[] = {
      {1, 12.706}, {2, 4.303}, {3, 3.182},  {4, 2.776},  {5, 2.571},
      {6, 2.447},  {7, 2.365}, {8, 2.306},  {9, 2.262},  {10, 2.228},
      {12, 2.179}, {15, 2.131}, {20, 2.086}, {25, 2.060}, {30, 2.042},
      {40, 2.021}, {60, 2.000}, {120, 1.980}};
  if (df <= kTable[0].df) return kTable[0].t;
  for (std::size_t i = 1; i < std::size(kTable); ++i) {
    if (df <= kTable[i].df) {
      const auto& a = kTable[i - 1];
      const auto& b = kTable[i];
      const double frac = (df - a.df) / (b.df - a.df);
      return a.t + frac * (b.t - a.t);
    }
  }
  return 1.96;
}

TTestResult welch_t_test(const RunningStats& a, const RunningStats& b) {
  TTestResult result;
  if (a.count() < 2 || b.count() < 2) return result;
  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  const double denom = std::sqrt(va + vb);
  if (denom <= 0.0) {
    // Zero variance in both samples: significant iff the means differ.
    result.t = (a.mean() == b.mean()) ? 0.0 : 1e9;
    result.degrees_freedom = static_cast<double>(a.count() + b.count() - 2);
    result.significant = a.mean() != b.mean();
    return result;
  }
  result.t = (a.mean() - b.mean()) / denom;
  const double num = (va + vb) * (va + vb);
  const double den = va * va / static_cast<double>(a.count() - 1) +
                     vb * vb / static_cast<double>(b.count() - 1);
  result.degrees_freedom = den > 0.0 ? num / den : 1.0;
  result.significant =
      std::abs(result.t) > t_critical_95(result.degrees_freedom);
  return result;
}

std::vector<double> moving_average(std::span<const double> values,
                                   std::size_t radius) {
  std::vector<double> out;
  out.reserve(values.size());
  const std::size_t n = values.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Shrink the window near the edges so it stays centered.
    const std::size_t left_room = i;
    const std::size_t right_room = n - 1 - i;
    const std::size_t r = std::min({radius, left_room, right_room});
    double sum = 0.0;
    for (std::size_t j = i - r; j <= i + r; ++j) sum += values[j];
    out.push_back(sum / static_cast<double>(2 * r + 1));
  }
  return out;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double cov = sxy - sx * sy / dn;
  const double varx = sxx - sx * sx / dn;
  const double vary = syy - sy * sy / dn;
  if (varx <= 0.0) return fit;
  fit.slope = cov / varx;
  fit.intercept = (sy - fit.slope * sx) / dn;
  fit.r2 = vary > 0.0 ? (cov * cov) / (varx * vary) : 1.0;
  return fit;
}

}  // namespace conscale
