// Statistics primitives shared by the metrics pipeline and the SCT model:
// streaming moments (Welford), percentiles, Welch's two-sample t-test (the
// statistical-intervention building block, after Malkowski et al. 2007),
// simple smoothing, and least-squares regression.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace conscale {

/// Streaming mean/variance accumulator (Welford's algorithm).
/// Numerically stable; O(1) per observation.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile (0..100) with linear interpolation between order statistics.
/// Sorts a copy; use Histogram for high-volume streaming cases.
double percentile(std::span<const double> values, double pct);

/// In-place variant for callers that can afford mutating their buffer.
double percentile_inplace(std::vector<double>& values, double pct);

double mean_of(std::span<const double> values);
double stddev_of(std::span<const double> values);

/// Result of Welch's unequal-variance t-test.
struct TTestResult {
  double t = 0.0;                ///< test statistic
  double degrees_freedom = 0.0;  ///< Welch-Satterthwaite approximation
  bool significant = false;      ///< |t| exceeds the critical value
};

/// Two-sample Welch t-test at (approximately) the 95% confidence level.
/// Used by the intervention analysis to decide whether throughput at one
/// concurrency level differs from throughput at another.
TTestResult welch_t_test(const RunningStats& a, const RunningStats& b);

/// Critical t value for a two-sided 5% test with `df` degrees of freedom
/// (piecewise table + asymptote; adequate for stage detection).
double t_critical_95(double df);

/// Centered moving average with window half-width `radius`; edges shrink the
/// window symmetrically. Returns an empty vector for empty input.
std::vector<double> moving_average(std::span<const double> values,
                                   std::size_t radius);

/// Ordinary least squares y = a + b*x over paired samples.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace conscale
