// Histograms for high-volume latency recording.
//
// LinearHistogram: fixed-width buckets, used by interval metrics.
// LogHistogram: exponentially sized buckets (HdrHistogram-style, base-2 with
// linear sub-buckets), used for tail-latency percentiles over full runs where
// storing every sample would be wasteful.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace conscale {

/// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to
/// the first/last bucket so totals are conserved.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t buckets);

  void add(double value, std::uint64_t count = 1);
  void reset();

  std::uint64_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t index) const { return counts_[index]; }
  /// Midpoint value represented by bucket `index`.
  double bucket_value(std::size_t index) const;

  /// Percentile (0..100) via bucket interpolation; 0 when empty.
  double percentile(double pct) const;
  double mean() const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Log-scale histogram for non-negative values with bounded relative error
/// (~1/subbuckets). Suitable for latencies spanning microseconds to minutes.
class LogHistogram {
 public:
  /// `unit` is the smallest resolvable value (e.g. 1e-4 s = 0.1 ms);
  /// `sub_buckets` controls relative precision per power of two.
  explicit LogHistogram(double unit = 1e-4, std::size_t sub_buckets = 32);

  void add(double value, std::uint64_t count = 1);
  void merge(const LogHistogram& other);
  void reset();

  std::uint64_t total() const { return total_; }
  double percentile(double pct) const;
  double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }
  double max_recorded() const { return max_; }
  /// Fraction of recorded values <= `threshold` (SLA attainment); 0 when
  /// empty. Resolution is the bucket width at the threshold (~3%).
  double fraction_below(double threshold) const;

 private:
  std::size_t index_for(double value) const;
  double value_for(std::size_t index) const;

  double unit_;
  std::size_t sub_buckets_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace conscale
