#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace conscale {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("LinearHistogram: empty range");
  }
  counts_.assign(buckets, 0);
}

void LinearHistogram::add(double value, std::uint64_t count) {
  auto idx = static_cast<long>((value - lo_) / width_);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += count;
  total_ += count;
  sum_ += value * static_cast<double>(count);
}

void LinearHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
}

double LinearHistogram::bucket_value(std::size_t index) const {
  return lo_ + (static_cast<double>(index) + 0.5) * width_;
}

double LinearHistogram::percentile(double pct) const {
  if (total_ == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const double target = pct / 100.0 * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      // Interpolate within the bucket.
      const double frac =
          counts_[i] ? (target - cumulative) / static_cast<double>(counts_[i])
                     : 0.0;
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cumulative = next;
  }
  return bucket_value(counts_.size() - 1);
}

double LinearHistogram::mean() const {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

LogHistogram::LogHistogram(double unit, std::size_t sub_buckets)
    : unit_(unit), sub_buckets_(sub_buckets) {
  if (unit <= 0.0 || sub_buckets == 0) {
    throw std::invalid_argument("LogHistogram: bad parameters");
  }
  // 64 powers of two cover any double we will see in practice.
  counts_.assign(64 * sub_buckets_, 0);
}

std::size_t LogHistogram::index_for(double value) const {
  if (value <= unit_) return 0;
  const double scaled = value / unit_;
  const int power = std::min(62, static_cast<int>(std::log2(scaled)));
  const double base = std::exp2(static_cast<double>(power));
  const double frac = (scaled - base) / base;  // [0,1) within the octave
  auto sub = static_cast<std::size_t>(frac * static_cast<double>(sub_buckets_));
  sub = std::min(sub, sub_buckets_ - 1);
  const std::size_t idx = static_cast<std::size_t>(power) * sub_buckets_ + sub;
  return std::min(idx, counts_.size() - 1);
}

double LogHistogram::value_for(std::size_t index) const {
  const std::size_t power = index / sub_buckets_;
  const std::size_t sub = index % sub_buckets_;
  const double base = std::exp2(static_cast<double>(power));
  const double frac =
      (static_cast<double>(sub) + 0.5) / static_cast<double>(sub_buckets_);
  return unit_ * base * (1.0 + frac);
}

void LogHistogram::add(double value, std::uint64_t count) {
  value = std::max(value, 0.0);
  counts_[index_for(value)] += count;
  total_ += count;
  sum_ += value * static_cast<double>(count);
  max_ = std::max(max_, value);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.unit_ != unit_ || other.sub_buckets_ != sub_buckets_) {
    throw std::invalid_argument("LogHistogram::merge: layout mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LogHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

double LogHistogram::fraction_below(double threshold) const {
  if (total_ == 0) return 0.0;
  if (threshold < 0.0) return 0.0;
  const std::size_t limit = index_for(threshold);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i <= limit && i < counts_.size(); ++i) {
    below += counts_[i];
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double LogHistogram::percentile(double pct) const {
  if (total_ == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(pct / 100.0 * static_cast<double>(total_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target && counts_[i] > 0) {
      return std::min(value_for(i), max_);
    }
  }
  return max_;
}

}  // namespace conscale
