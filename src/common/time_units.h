// Simulated-time units. All simulator time is kept in double-precision
// seconds; these helpers make call sites self-describing (ms(50) rather
// than 0.05) and keep unit mistakes out of the model code.
#pragma once

namespace conscale {

/// Simulated time, in seconds since the start of the simulation.
using SimTime = double;
/// A duration in simulated seconds.
using SimDuration = double;

constexpr SimDuration seconds(double s) { return s; }
constexpr SimDuration ms(double m) { return m * 1e-3; }
constexpr SimDuration us(double u) { return u * 1e-6; }
constexpr SimDuration minutes(double m) { return m * 60.0; }

constexpr double to_ms(SimDuration d) { return d * 1e3; }
constexpr double to_seconds(SimDuration d) { return d; }

/// Sentinel for "no deadline / never".
constexpr SimTime kSimTimeNever = 1e300;

}  // namespace conscale
