#include "common/csv.h"

#include <cstdio>
#include <stdexcept>

namespace conscale {

CsvWriter::CsvWriter(const std::string& path) : file_(path), out_(&file_) {
  if (!file_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::CsvWriter(std::ostream& out) : out_(&out) {}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::header(std::initializer_list<std::string_view> columns) {
  std::vector<std::string> cells;
  cells.reserve(columns.size());
  for (auto c : columns) cells.emplace_back(c);
  write_cells(cells);
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  write_cells(columns);
}

void CsvWriter::row(std::initializer_list<double> values) {
  row(std::vector<double>(values));
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  char buf[32];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    cells.emplace_back(buf);
  }
  write_cells(cells);
  ++rows_;
}

void CsvWriter::raw_row(const std::vector<std::string>& cells) {
  write_cells(cells);
  ++rows_;
}

}  // namespace conscale
