#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace conscale {

namespace {
std::mutex g_sink_mutex;
}

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view message) {
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(to_string(level).size()),
                 to_string(level).data(), static_cast<int>(message.size()),
                 message.data());
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, std::string_view message) {
      std::fprintf(stderr, "[%.*s] %.*s\n",
                   static_cast<int>(to_string(level).size()),
                   to_string(level).data(), static_cast<int>(message.size()),
                   message.data());
    };
  }
}

void Logger::log(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  write(level, message);
}

void Logger::write(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_(level, message);
}

}  // namespace conscale
