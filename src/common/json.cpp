#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace conscale {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Frame::kObject && !pending_key_) {
    throw std::logic_error("JsonWriter: value in object without key");
  }
  if (stack_.back() == Frame::kArray) {
    if (!first_in_frame_.back()) out_ << ',';
    first_in_frame_.back() = false;
  }
  pending_key_ = false;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty() || stack_.back() != Frame::kObject) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (pending_key_) throw std::logic_error("JsonWriter: key after key");
  if (!first_in_frame_.back()) out_ << ',';
  first_in_frame_.back() = false;
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  out_ << '}';
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  out_ << ']';
  stack_.pop_back();
  first_in_frame_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ << '"' << escape(text) << '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ << "null";  // JSON has no NaN/Inf
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", number);
    out_ << buf;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ << number;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

}  // namespace conscale
