// Minimal leveled logger for the simulator and the experiment harnesses.
//
// Design notes:
//  * The simulator is single-threaded (DESIGN.md §6.4), so no locking is
//    needed on the hot path; a mutex still guards sink swaps so examples can
//    redirect output safely.
//  * Messages are formatted only when the level is enabled; guard macros keep
//    the disabled-path cost to one branch.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace conscale {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

/// Process-wide logger configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Replace the output sink (default: stderr). Passing nullptr restores
  /// the default sink.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace detail {
/// Stream-style one-shot message builder used by the LOG macros.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::instance().log(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace conscale

#define CS_LOG(level)                                  \
  if (!::conscale::Logger::instance().enabled(level)) { \
  } else                                               \
    ::conscale::detail::LogMessage(level)

#define CS_LOG_TRACE CS_LOG(::conscale::LogLevel::kTrace)
#define CS_LOG_DEBUG CS_LOG(::conscale::LogLevel::kDebug)
#define CS_LOG_INFO CS_LOG(::conscale::LogLevel::kInfo)
#define CS_LOG_WARN CS_LOG(::conscale::LogLevel::kWarn)
#define CS_LOG_ERROR CS_LOG(::conscale::LogLevel::kError)
