// Minimal leveled logger for the simulator and the experiment harnesses.
//
// Design notes:
//  * Each simulation run is single-threaded, but several runs may execute
//    concurrently (DESIGN.md §6.4, experiments/parallel.h). The level is a
//    relaxed atomic so the disabled-path check stays one branch; a mutex
//    guards the sink so concurrent runs logging through the shared default
//    cannot interleave torn lines.
//  * Messages are formatted only when the level is enabled.
//  * Run-path components log through a per-run RunContext instead of this
//    singleton (common/run_context.h); the singleton remains the default
//    target and the one examples configure.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace conscale {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

/// Process-wide logger configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance();

  // The level is read from every run thread on the disabled-log fast path
  // and may be set concurrently by the host program; relaxed atomics keep
  // that race benign without a lock.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Replace the output sink (default: stderr). Passing nullptr restores
  /// the default sink.
  void set_sink(Sink sink);

  void log(LogLevel level, std::string_view message);

  /// Writes through the (mutex-guarded) sink without the level gate — used
  /// by RunContext, which applies its own per-run level first.
  void write(LogLevel level, std::string_view message);

 private:
  Logger();
  std::atomic<LogLevel> level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace detail {
/// Stream-style one-shot message builder used by the LOG macros.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::instance().log(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace conscale

#define CS_LOG(level)                                  \
  if (!::conscale::Logger::instance().enabled(level)) { \
  } else                                               \
    ::conscale::detail::LogMessage(level)

#define CS_LOG_TRACE CS_LOG(::conscale::LogLevel::kTrace)
#define CS_LOG_DEBUG CS_LOG(::conscale::LogLevel::kDebug)
#define CS_LOG_INFO CS_LOG(::conscale::LogLevel::kInfo)
#define CS_LOG_WARN CS_LOG(::conscale::LogLevel::kWarn)
#define CS_LOG_ERROR CS_LOG(::conscale::LogLevel::kError)
