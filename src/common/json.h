// Minimal JSON writer (no parsing): enough to export experiment results for
// external analysis pipelines without pulling in a dependency. Streaming,
// RFC 8259-conformant escaping, deterministic field order (caller-driven).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace conscale {

/// Builds one JSON document into a stream. Usage:
///   JsonWriter json(out);
///   json.begin_object();
///   json.key("name").value("run1");
///   json.key("points").begin_array();
///   json.value(1.5); json.value(2.5);
///   json.end_array();
///   json.end_object();
/// Commas and nesting are managed automatically; mismatched begin/end or a
/// bare key without a value throws std::logic_error at the offending call.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be directly inside an object and must be
  /// followed by exactly one value (or container).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// True when the document is complete (all containers closed, at least
  /// one value written).
  bool complete() const { return done_; }

  static std::string escape(std::string_view text);

 private:
  enum class Frame { kObject, kArray };
  void before_value();

  std::ostream& out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool pending_key_ = false;
  bool done_ = false;
};

}  // namespace conscale
