// Key/value configuration used by examples and benches: parses
// "key=value" pairs from argv and simple INI-ish files, with typed getters
// and defaults so every experiment knob is overridable from the command line.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace conscale {

class Config {
 public:
  Config() = default;

  /// Parses "key=value" tokens; tokens without '=' are collected as
  /// positional arguments.
  static Config from_args(int argc, const char* const* argv);

  /// Parses a file of `key = value` lines; '#' starts a comment. Throws
  /// std::runtime_error if the file cannot be read.
  static Config from_file(const std::string& path);

  void set(const std::string& key, const std::string& value);
  bool contains(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& entries() const { return values_; }

  /// Merge: entries in `other` override entries here.
  void merge(const Config& other);

  /// Validation: throws std::runtime_error naming every key not in
  /// `known_keys` (sorted, so the message is deterministic). A mistyped
  /// `durration=60` must abort the bench, not silently run the default.
  void require_known_keys(const std::vector<std::string>& known_keys) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace conscale
