// Mean Value Analysis (MVA) for closed queueing networks — the classic
// analytical machinery (Lazowska et al., "Quantitative System Performance",
// the paper's reference [13]) behind offline concurrency profiling: DCM-style
// frameworks derive their optimal settings from exactly this kind of model.
//
// Implemented here:
//  * exact single-class MVA over queueing (PS/FCFS) and delay stations;
//  * a multi-server correction (Seidmann et al. approximation: an m-server
//    station becomes a queueing station with demand D/m plus a delay D(m-1)/m);
//  * a contention extension: a station's effective demand grows with its
//    local population per the same ContentionModel the simulator uses
//    (iterated fixed point per population step), reproducing the paper's
//    descending stage analytically;
//  * curve utilities: throughput-vs-population and the analytical
//    [Q_lower, Q_upper] range, directly comparable to the SCT estimate.
//
// The simulator measures; MVA predicts. tests/analysis cross-validates them.
#pragma once

#include <string>
#include <vector>

#include "resources/contention.h"

namespace conscale {

struct MvaStation {
  enum class Kind {
    kQueueing,  ///< contended resource (CPU, disk): queueing applies
    kDelay      ///< pure latency (think time, network): no queueing
  };
  std::string name;
  Kind kind = Kind::kQueueing;
  /// Mean service demand per job visit-aggregated [seconds].
  double demand = 0.0;
  /// Parallel servers at the station (cores / disk channels). Only
  /// meaningful for queueing stations.
  int servers = 1;
  /// Multithreading-overhead model; inflates the *effective* demand as the
  /// station's local population grows.
  ContentionModel contention = ContentionModel::none();
};

struct MvaPoint {
  int population = 0;
  double throughput = 0.0;     ///< jobs/s
  double response_time = 0.0;  ///< total residence excluding pure delays? no:
                               ///< full cycle time minus nothing — R = N/X
  std::vector<double> queue_lengths;  ///< mean jobs at each station
  std::vector<double> utilizations;   ///< per station, in [0,1]
};

/// Exact MVA evaluated at every population 1..n_max.
/// Throws std::invalid_argument on empty stations or non-positive demands
/// (zero-demand stations are allowed and simply dropped).
std::vector<MvaPoint> solve_mva(const std::vector<MvaStation>& stations,
                                int n_max);

/// Just the final point (population == n).
MvaPoint solve_mva_at(const std::vector<MvaStation>& stations, int n);

/// The analytical rational concurrency range: Q_lower is the smallest
/// population whose throughput is within `tolerance` of the curve's maximum,
/// Q_upper the largest. Mirrors the SCT plateau definition (§III-A).
struct AnalyticalRange {
  int q_lower = 0;
  int q_upper = 0;
  double tp_max = 0.0;
  int peak_population = 0;
};
AnalyticalRange analytical_range(const std::vector<MvaStation>& stations,
                                 int n_max, double tolerance = 0.05);

/// Asymptotic bounds (operational laws): X(n) <= min(n / (D_total + Z),
/// 1 / D_bottleneck) — useful for sanity checks and capacity planning.
struct AsymptoticBounds {
  double max_throughput = 0.0;   ///< 1 / max demand
  double knee_population = 0.0;  ///< (D_total + Z) / D_bottleneck
};
AsymptoticBounds asymptotic_bounds(const std::vector<MvaStation>& stations);

}  // namespace conscale
