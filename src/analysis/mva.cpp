#include "analysis/mva.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace conscale {

namespace {

struct PreparedStation {
  MvaStation::Kind kind;
  double queue_demand = 0.0;  ///< demand at the queueing part
  double delay_demand = 0.0;  ///< demand served as pure delay
  ContentionModel contention;
  std::size_t source_index = 0;  ///< index into the caller's station list
};

// Applies the Seidmann multi-server transformation and splits each input
// station into queueing + delay components.
std::vector<PreparedStation> prepare(const std::vector<MvaStation>& stations) {
  if (stations.empty()) {
    throw std::invalid_argument("MVA: no stations");
  }
  std::vector<PreparedStation> prepared;
  for (std::size_t index = 0; index < stations.size(); ++index) {
    const auto& s = stations[index];
    if (s.demand < 0.0) {
      throw std::invalid_argument("MVA: negative demand at " + s.name);
    }
    if (s.demand == 0.0) continue;
    PreparedStation p;
    p.kind = s.kind;
    p.contention = s.contention;
    p.source_index = index;
    if (s.kind == MvaStation::Kind::kDelay) {
      p.delay_demand = s.demand;
    } else if (s.servers <= 1) {
      p.queue_demand = s.demand;
    } else {
      // Seidmann et al.: m-server station ~ queueing station with demand
      // D/m plus a delay of D(m-1)/m. Exact at m=1; good above.
      const double m = static_cast<double>(s.servers);
      p.queue_demand = s.demand / m;
      p.delay_demand = s.demand * (m - 1.0) / m;
    }
    prepared.push_back(p);
  }
  if (prepared.empty()) {
    throw std::invalid_argument("MVA: all stations have zero demand");
  }
  return prepared;
}

}  // namespace

std::vector<MvaPoint> solve_mva(const std::vector<MvaStation>& stations,
                                int n_max) {
  if (n_max < 1) throw std::invalid_argument("MVA: n_max must be >= 1");
  const auto prepared = prepare(stations);
  const std::size_t k = prepared.size();

  std::vector<MvaPoint> curve;
  curve.reserve(static_cast<std::size_t>(n_max));
  std::vector<double> queue(k, 0.0);  // Q_k(n-1)

  for (int n = 1; n <= n_max; ++n) {
    // Contention makes effective demand depend on the station's own
    // population at *this* n, which MVA computes from these very demands —
    // so iterate the fixed point (converges in a few rounds; the demand
    // inflation is a smooth monotone function of local population).
    std::vector<double> local_q = queue;  // initial guess: last population's
    std::vector<double> residence(k, 0.0);
    double throughput = 0.0;
    for (int iteration = 0; iteration < 20; ++iteration) {
      double total_residence = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        const auto& s = prepared[i];
        // Effective demand under contention at the station's current load.
        const double inflation =
            1.0 / s.contention.efficiency(std::max(local_q[i], 1.0));
        const double dq = s.queue_demand * inflation;
        residence[i] = s.delay_demand + dq * (1.0 + queue[i]);
        total_residence += residence[i];
      }
      throughput = static_cast<double>(n) / total_residence;
      bool converged = true;
      for (std::size_t i = 0; i < k; ++i) {
        const double new_q = throughput * residence[i];
        if (std::abs(new_q - local_q[i]) > 1e-9) converged = false;
        local_q[i] = new_q;
      }
      if (converged) break;
    }

    MvaPoint point;
    point.population = n;
    point.throughput = throughput;
    point.response_time = static_cast<double>(n) / throughput;
    // Report per *input* station so callers can index by their own list
    // (zero-demand stations simply stay at zero).
    point.queue_lengths.assign(stations.size(), 0.0);
    point.utilizations.assign(stations.size(), 0.0);
    for (std::size_t i = 0; i < k; ++i) {
      const auto& s = prepared[i];
      const double inflation =
          1.0 / s.contention.efficiency(std::max(local_q[i], 1.0));
      point.queue_lengths[s.source_index] = local_q[i];
      point.utilizations[s.source_index] =
          s.queue_demand > 0.0
              ? std::min(throughput * s.queue_demand * inflation, 1.0)
              : 0.0;
      queue[i] = local_q[i];
    }
    curve.push_back(std::move(point));
  }
  return curve;
}

MvaPoint solve_mva_at(const std::vector<MvaStation>& stations, int n) {
  auto curve = solve_mva(stations, n);
  return curve.back();
}

AnalyticalRange analytical_range(const std::vector<MvaStation>& stations,
                                 int n_max, double tolerance) {
  const auto curve = solve_mva(stations, n_max);
  AnalyticalRange range;
  for (const auto& p : curve) {
    if (p.throughput > range.tp_max) {
      range.tp_max = p.throughput;
      range.peak_population = p.population;
    }
  }
  const double floor = (1.0 - tolerance) * range.tp_max;
  range.q_lower = curve.back().population;
  for (const auto& p : curve) {
    if (p.throughput >= floor) {
      range.q_lower = p.population;
      break;
    }
  }
  range.q_upper = range.q_lower;
  for (const auto& p : curve) {
    if (p.throughput >= floor) range.q_upper = p.population;
  }
  return range;
}

AsymptoticBounds asymptotic_bounds(const std::vector<MvaStation>& stations) {
  const auto prepared = prepare(stations);
  AsymptoticBounds bounds;
  double d_max = 0.0;
  double d_total = 0.0;
  double z_total = 0.0;
  for (const auto& s : prepared) {
    d_max = std::max(d_max, s.queue_demand);
    d_total += s.queue_demand;
    z_total += s.delay_demand;
  }
  if (d_max <= 0.0) {
    // Pure delay network: throughput grows without queueing bound.
    bounds.max_throughput = 0.0;
    bounds.knee_population = 0.0;
    return bounds;
  }
  bounds.max_throughput = 1.0 / d_max;
  bounds.knee_population = (d_total + z_total) / d_max;
  return bounds;
}

}  // namespace conscale
