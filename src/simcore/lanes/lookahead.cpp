#include "simcore/lanes/lookahead.h"

#include <limits>
#include <sstream>
#include <utility>

namespace conscale::lanes {

void LookaheadAnalysis::add_source(std::string name, SimDuration delay,
                                   bool is_channel) {
  sources_.push_back(LookaheadSource{std::move(name), delay, is_channel});
}

SimDuration LookaheadAnalysis::window() const {
  SimDuration min_delay = std::numeric_limits<SimDuration>::infinity();
  bool any = false;
  for (const LookaheadSource& source : sources_) {
    if (!source.is_channel || source.delay <= 0.0) continue;
    any = true;
    if (source.delay < min_delay) min_delay = source.delay;
  }
  return any ? min_delay : 0.0;
}

double LookaheadAnalysis::channel_skew() const {
  SimDuration min_delay = std::numeric_limits<SimDuration>::infinity();
  SimDuration max_delay = 0.0;
  bool any = false;
  for (const LookaheadSource& source : sources_) {
    if (!source.is_channel || source.delay <= 0.0) continue;
    any = true;
    if (source.delay < min_delay) min_delay = source.delay;
    if (source.delay > max_delay) max_delay = source.delay;
  }
  return any ? max_delay / min_delay : 1.0;
}

LookaheadAnalysis::Protocol LookaheadAnalysis::recommended(
    double skew_threshold) const {
  // Uniform channels: a global time window already runs every lane at its
  // individual pairwise bound, so the simpler barrier wins. Strong skew is
  // the only regime where per-pair null messages buy extra parallelism.
  return channel_skew() <= skew_threshold ? Protocol::kTimeWindow
                                          : Protocol::kNullMessage;
}

std::string to_string(LookaheadAnalysis::Protocol protocol) {
  return protocol == LookaheadAnalysis::Protocol::kTimeWindow
             ? "time-window barrier"
             : "null-message";
}

std::string LookaheadAnalysis::summary() const {
  std::ostringstream out;
  out << "lookahead sources:\n";
  for (const LookaheadSource& source : sources_) {
    out << "  " << source.name << " = " << source.delay << " s"
        << (source.is_channel ? " (channel)" : " (slack)") << "\n";
  }
  out << "window = " << window() << " s, channel skew = " << channel_skew()
      << "x -> protocol: " << to_string(recommended()) << "\n";
  return out.str();
}

}  // namespace conscale::lanes
