// TierLanePlacement: decides which model components share a lane
// (DESIGN.md §6.6). The partition is a *model* parameter — every placement
// yields identical results — so the planner optimizes only wall-clock:
//
//   * an edge with delay below the cut floor carries no usable lookahead, so
//     its endpoints must share a lane (cutting it would force zero-width
//     windows);
//   * every remaining connected cluster gets its own lane;
//   * when the caller caps the lane count, the lightest clusters are merged
//     pairwise (by declared event weight) until the plan fits — packing the
//     heavy tiers onto dedicated lanes and folding the cheap ones together.
//
// Numbering is deterministic: clusters are indexed by the first node (in
// insertion order) they contain, and merges always fold the lighter (then
// higher-indexed) cluster into the lighter pair's lower index.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time_units.h"

namespace conscale::lanes {

/// The planner's output: node -> lane cluster, densely numbered from 0.
struct LanePlan {
  std::vector<std::size_t> lane_of;
  std::size_t lane_count = 0;
  std::vector<double> lane_weight;

  /// Human-readable plan ("3 lanes: [web]=1.0 [app db]=2.4 ...") for
  /// LaneRunInfo logging and tests.
  std::string summary(const std::vector<std::string>& node_names) const;
};

class TierLanePlacement {
 public:
  /// Registers a component; `event_weight` is any monotone proxy for its
  /// event rate (VM count, expected arrivals). Returns the node id.
  std::size_t add_node(std::string name, double event_weight);

  /// Declares a communication edge with the minimum model delay between the
  /// two components (direction is irrelevant for placement).
  void add_edge(std::size_t a, std::size_t b, SimDuration delay);

  std::size_t node_count() const { return names_.size(); }
  const std::vector<std::string>& node_names() const { return names_; }

  /// Computes the placement. Edges with delay < `min_cut_delay` (or <= 0)
  /// are uncuttable and merge their endpoints; `max_lanes` > 0 caps the
  /// cluster count by weight-packing (0 = unlimited).
  LanePlan plan(SimDuration min_cut_delay, std::size_t max_lanes = 0) const;

 private:
  struct Edge {
    std::size_t a = 0;
    std::size_t b = 0;
    SimDuration delay = 0.0;
  };

  std::vector<std::string> names_;
  std::vector<double> weights_;
  std::vector<Edge> edges_;
};

}  // namespace conscale::lanes
