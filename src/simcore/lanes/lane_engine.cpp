#include "simcore/lanes/lane_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace conscale::lanes {

namespace {

/// Heap order for the pending-message min-heap: earliest delivery first.
/// Ties need no order here — delivery injects keyed events, and the
/// destination queue orders equal times by (stream, seq) regardless of
/// injection order.
bool later_delivery(const LaneMessage& a, const LaneMessage& b) {
  return a.deliver_time > b.deliver_time;
}

}  // namespace

LaneEngine::LaneEngine(Options options) : lookahead_(options.lookahead) {
  if (options.lanes == 0) options.lanes = 1;
  if (!(lookahead_ > 0.0)) {
    throw std::invalid_argument(
        "LaneEngine: lookahead must be > 0 (conservative synchronization "
        "needs a positive cross-lane delay floor)");
  }
  lanes_.reserve(options.lanes);
  for (std::size_t i = 0; i < options.lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(i));
  }
  worker_errors_.resize(options.lanes);
}

LaneEngine::~LaneEngine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void LaneEngine::post(std::size_t from, std::size_t dest,
                      SimTime deliver_time, std::uint64_t stream,
                      std::uint64_t seq, EventCallback fn) {
  if (dest >= lanes_.size()) {
    throw std::out_of_range("LaneEngine::post: no such destination lane");
  }
  lanes_[from]->outbox_.push_back(
      LaneMessage{deliver_time, stream, seq, dest, std::move(fn)});
}

void LaneEngine::start_workers() {
  if (!workers_.empty() || lanes_.size() == 1) return;
  workers_.reserve(lanes_.size() - 1);
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void LaneEngine::worker_loop(std::size_t lane_index) {
  Lane& lane = *lanes_[lane_index];
  std::uint64_t seen_generation = 0;
  for (;;) {
    SimTime bound;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || window_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = window_generation_;
      bound = window_bound_;
    }
    try {
      lane.sim().run_before(bound);
    } catch (...) {
      worker_errors_[lane_index] = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_running_ == 0) done_cv_.notify_one();
    }
  }
}

void LaneEngine::run_window(SimTime bound) {
  if (lanes_.size() == 1) {
    lanes_[0]->sim().run_before(bound);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    window_bound_ = bound;
    workers_running_ = lanes_.size() - 1;
    ++window_generation_;
  }
  start_cv_.notify_all();
  // Lane 0 (the system lane in the laned runners — typically the heaviest)
  // runs on the coordinating thread while the workers run theirs.
  lanes_[0]->sim().run_before(bound);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_running_ == 0; });
  }
  for (std::exception_ptr& error : worker_errors_) {
    if (error) {
      const std::exception_ptr raised = std::exchange(error, nullptr);
      std::rethrow_exception(raised);
    }
  }
}

void LaneEngine::deliver_pending(SimTime bound) {
  while (!pending_.empty() && pending_.front().deliver_time < bound) {
    std::pop_heap(pending_.begin(), pending_.end(), later_delivery);
    LaneMessage message = std::move(pending_.back());
    pending_.pop_back();
    lanes_[message.dest]->sim().schedule_keyed(
        message.deliver_time, message.stream, message.seq,
        std::move(message.fn));
  }
}

void LaneEngine::collect_outboxes(SimTime bound) {
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    for (LaneMessage& message : lane->outbox_) {
      if (message.deliver_time < bound) {
        std::ostringstream what;
        what << "lane " << lane->index() << " lookahead violation: message "
             << "(stream " << message.stream << ", seq " << message.seq
             << ") delivers at " << message.deliver_time
             << " inside the current window (bound " << bound
             << ", lookahead " << lookahead_
             << ") — a cross-lane channel carries less delay than the "
                "engine's window";
        throw std::runtime_error(what.str());
      }
      ++stats_.messages;
      pending_.push_back(std::move(message));
      std::push_heap(pending_.begin(), pending_.end(), later_delivery);
    }
    lane->outbox_.clear();
  }
}

void LaneEngine::run(SimTime duration) {
  // Events scheduled at exactly `duration` must execute (run_until
  // semantics), so the final exclusive bound is the next double above it.
  const SimTime end_bound =
      std::nextafter(duration, std::numeric_limits<SimTime>::infinity());
  start_workers();
  // Messages posted during model construction (before any window) enter the
  // routing heap here; deliver_time >= 0 + lookahead, so nothing is due yet.
  collect_outboxes(0.0);
  for (;;) {
    SimTime t_next = std::numeric_limits<SimTime>::infinity();
    for (const std::unique_ptr<Lane>& lane : lanes_) {
      t_next = std::min(t_next, lane->sim().next_event_time());
    }
    if (!pending_.empty()) {
      t_next = std::min(t_next, pending_.front().deliver_time);
    }
    if (t_next >= end_bound) break;
    const SimTime bound = std::min(t_next + lookahead_, end_bound);
    deliver_pending(bound);
    run_window(bound);
    collect_outboxes(bound);
    ++stats_.windows;
  }
  stats_.events = 0;
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    lane->sim().advance_to(duration);
    stats_.events += lane->sim().events_executed();
  }
}

}  // namespace conscale::lanes
