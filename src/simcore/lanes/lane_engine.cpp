#include "simcore/lanes/lane_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace conscale::lanes {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

/// Heap order for the pending-message min-heaps: earliest delivery first.
/// Ties need no order here — delivery injects keyed events, and the
/// destination queue orders equal times by (stream, seq) regardless of
/// injection order.
bool later_delivery(const LaneMessage& a, const LaneMessage& b) {
  return a.deliver_time > b.deliver_time;
}

}  // namespace

LaneEngine::LaneEngine(Options options)
    : lookahead_(options.lookahead),
      protocol_(options.protocol),
      null_floor_(options.null_floor),
      serialize_lane0_(options.serialize_lane0) {
  if (options.lanes == 0) options.lanes = 1;
  if (!(lookahead_ > 0.0)) {
    throw std::invalid_argument(
        "LaneEngine: lookahead must be > 0 (conservative synchronization "
        "needs a positive cross-lane delay floor)");
  }
  if (null_floor_ < 0.0) {
    throw std::invalid_argument("LaneEngine: null_floor must be >= 0");
  }
  thread_count_ = options.threads == 0
                      ? options.lanes
                      : std::min(options.threads, options.lanes);
  if (thread_count_ == 0) thread_count_ = 1;
  lanes_.reserve(options.lanes);
  for (std::size_t i = 0; i < options.lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(i));
  }
  pending_.resize(options.lanes);
  channels_from_.resize(options.lanes);
  channels_to_.resize(options.lanes);
  activity_.resize(options.lanes, kInf);
  bounds_.resize(options.lanes, 0.0);
  worker_errors_.resize(options.lanes);
}

LaneEngine::~LaneEngine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void LaneEngine::declare_channel(std::size_t from, std::size_t to,
                                 SimDuration min_delay) {
  if (from >= lanes_.size() || to >= lanes_.size()) {
    throw std::out_of_range("LaneEngine::declare_channel: no such lane");
  }
  if (from == to) {
    throw std::invalid_argument(
        "LaneEngine::declare_channel: self-channels are implicit (same-lane "
        "scheduling needs no channel)");
  }
  if (!(min_delay > 0.0)) {
    throw std::invalid_argument(
        "LaneEngine::declare_channel: min_delay must be > 0");
  }
  for (const std::size_t index : channels_from_[from]) {
    Channel& existing = channels_[index];
    if (existing.to == to) {
      existing.min_delay = std::min(existing.min_delay, min_delay);
      return;
    }
  }
  const std::size_t index = channels_.size();
  channels_.push_back(Channel{from, to, min_delay, -kInf});
  channels_from_[from].push_back(index);
  channels_to_[to].push_back(index);
  fresh_eot_.resize(channels_.size(), -kInf);
}

void LaneEngine::post(std::size_t from, std::size_t dest,
                      SimTime deliver_time, std::uint64_t stream,
                      std::uint64_t seq, EventCallback fn) {
  if (dest >= lanes_.size()) {
    throw std::out_of_range("LaneEngine::post: no such destination lane");
  }
  if (!channels_.empty()) {
    const Channel* channel = nullptr;
    for (const std::size_t index : channels_from_[from]) {
      if (channels_[index].to == dest) {
        channel = &channels_[index];
        break;
      }
    }
    if (channel == nullptr) {
      std::ostringstream what;
      what << "LaneEngine::post: lane " << from << " -> " << dest
           << " has no declared channel (stream " << stream << ", seq " << seq
           << ") — every cross-lane edge must be declared once any is";
      throw std::runtime_error(what.str());
    }
    // fl(now + d) is monotone in d, so a conforming post (delay >= declared
    // minimum) always passes this check exactly — no epsilon needed.
    const SimTime min_deliver =
        lanes_[from]->sim().now() + channel->min_delay;
    if (deliver_time < min_deliver) {
      std::ostringstream what;
      what << "LaneEngine::post: lane " << from << " -> " << dest
           << " lookahead violation: message (stream " << stream << ", seq "
           << seq << ") delivers at " << deliver_time
           << " but the channel guarantees >= " << min_deliver
           << " (declared min delay " << channel->min_delay << ")";
      throw std::runtime_error(what.str());
    }
  }
  lanes_[from]->outbox_.push_back(
      LaneMessage{deliver_time, stream, seq, dest, std::move(fn)});
}

void LaneEngine::start_workers() {
  const std::size_t pool =
      std::min(thread_count_, lanes_.size());
  if (!workers_.empty() || pool <= 1) return;
  workers_.reserve(pool - 1);
  for (std::size_t i = 1; i < pool; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void LaneEngine::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || round_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = round_generation_;
    }
    drain_work_queue();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_running_ == 0) done_cv_.notify_one();
    }
  }
}

void LaneEngine::drain_work_queue() {
  // Work-pulling: each participating thread (workers + the coordinator)
  // claims the next (lane, bound) pair. Which thread runs a lane is
  // unobservable — lanes are causally closed within a round.
  for (;;) {
    const std::size_t index =
        work_cursor_.fetch_add(1, std::memory_order_relaxed);
    if (index >= round_work_.size()) return;
    const std::size_t lane_index = round_work_[index].first;
    const SimTime bound = round_work_[index].second;
    try {
      lanes_[lane_index]->sim().run_before(bound);
    } catch (...) {
      worker_errors_[lane_index] = std::current_exception();
    }
  }
}

SimTime LaneEngine::next_activity(std::size_t lane_index) {
  SimTime t = lanes_[lane_index]->sim().next_event_time();
  if (!pending_[lane_index].empty()) {
    t = std::min(t, pending_[lane_index].front().deliver_time);
  }
  return t;
}

void LaneEngine::deliver_pending(std::size_t dest, SimTime bound) {
  std::vector<LaneMessage>& heap = pending_[dest];
  Simulation& sim = lanes_[dest]->sim();
  while (!heap.empty() && heap.front().deliver_time < bound) {
    std::pop_heap(heap.begin(), heap.end(), later_delivery);
    LaneMessage message = std::move(heap.back());
    heap.pop_back();
    if (message.deliver_time < sim.now()) {
      std::ostringstream what;
      what << "LaneEngine: causality violation delivering to lane " << dest
           << ": message (stream " << message.stream << ", seq " << message.seq
           << ") arrives at " << message.deliver_time
           << " but the lane already executed to " << sim.now();
      throw std::runtime_error(what.str());
    }
    sim.schedule_keyed(message.deliver_time, message.stream, message.seq,
                       std::move(message.fn));
  }
}

void LaneEngine::collect_outboxes(SimTime check_bound) {
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    for (LaneMessage& message : lane->outbox_) {
      // With declared channels the post() path already validated per-channel
      // lookahead; without them the global window is the only contract.
      if (channels_.empty() && message.deliver_time < check_bound) {
        std::ostringstream what;
        what << "lane " << lane->index() << " lookahead violation: message "
             << "(stream " << message.stream << ", seq " << message.seq
             << ") delivers at " << message.deliver_time
             << " inside the current window (bound " << check_bound
             << ", lookahead " << lookahead_
             << ") — a cross-lane channel carries less delay than the "
                "engine's window";
        throw std::runtime_error(what.str());
      }
      ++stats_.messages;
      std::vector<LaneMessage>& heap = pending_[message.dest];
      heap.push_back(std::move(message));
      std::push_heap(heap.begin(), heap.end(), later_delivery);
    }
    lane->outbox_.clear();
  }
}

void LaneEngine::run_serial_instant(SimTime t0, SimTime bound) {
  // Drain every lane through the instant on the coordinator thread, lane 0
  // first. Clocks are normalized to t0 so control-plane code that directly
  // calls into another lane's components (scale-out, warehouse queries)
  // observes the same `now` a single-threaded run would — and the same one
  // under either protocol, since the instant set {t0} is round-structure
  // independent.
  for (;;) {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      deliver_pending(i, bound);
      lanes_[i]->sim().advance_to(t0);
      lanes_[i]->sim().run_before(bound);
    }
    collect_outboxes(bound);
    // A lane-0 event may have scheduled follow-ups at t0 on other lanes (or
    // vice versa through a zero-delay direct call); sweep until quiescent.
    bool again = false;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (next_activity(i) < bound) {
        again = true;
        break;
      }
    }
    if (!again) return;
  }
}

void LaneEngine::compute_bounds(SimTime t_all, SimTime cap) {
  if (protocol_ == Protocol::kTimeWindow || channels_.empty()) {
    const SimTime bound = std::min(t_all + lookahead_, cap);
    for (std::size_t i = 0; i < lanes_.size(); ++i) bounds_[i] = bound;
    return;
  }
  // Null-message protocol (CMB). Pass 1: refresh each channel's earliest
  // output time. A channel's source can act at its own next event OR at the
  // arrival of a message another lane could still send it, so the sound EOT
  // is the fixed point
  //
  //   eot[c] = min(activity[src(c)], min over channels c' into src(c) of
  //                eot[c']) + delay[c]
  //
  // iterated downward from +inf. The result is the minimum over simple
  // paths ending in c of (path-source activity + total path delay): cycles
  // only add positive delay, so the iteration is stable after at most one
  // sweep per lane. Crucially this value never *decreases* across rounds —
  // a lane woken by a message inherits the (activity + delay) budget of its
  // waker, which the previous round's paths already included — so the
  // monotone announcement layer below stays sound even for lanes that were
  // idle (EOT +inf) and later receive work.
  for (std::size_t c = 0; c < channels_.size(); ++c) fresh_eot_[c] = kInf;
  for (std::size_t sweep = 0; sweep < lanes_.size(); ++sweep) {
    bool changed = false;
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      SimTime horizon = activity_[channels_[c].from];
      for (const std::size_t in : channels_to_[channels_[c].from]) {
        horizon = std::min(horizon, fresh_eot_[in]);
      }
      const SimTime value = horizon + channels_[c].min_delay;
      if (value < fresh_eot_[c]) {
        fresh_eot_[c] = value;
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Announce only advances of at least the anti-flood floor. Suppression
  // can only *delay* a bound, never relax it, so it affects scheduling but
  // not results.
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (fresh_eot_[c] > channels_[c].announced_eot) {
      if (fresh_eot_[c] - channels_[c].announced_eot >= null_floor_) {
        channels_[c].announced_eot = fresh_eot_[c];
        ++stats_.nulls_announced;
      } else {
        ++stats_.nulls_suppressed;
      }
    }
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    SimTime bound = cap;
    for (const std::size_t c : channels_to_[i]) {
      bound = std::min(bound, channels_[c].announced_eot);
    }
    bounds_[i] = bound;
  }
  // Pass 2: demand-driven announcements. A lane with work remaining but a
  // bound at or below its next activity is starved by suppressed nulls;
  // force-publish its in-channels' fresh EOTs. The global-minimum lane
  // always ends up with bound >= t_all + min in-channel delay > t_all, so
  // every round strictly advances the global clock — deadlock-free.
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (activity_[i] >= cap || bounds_[i] > activity_[i]) continue;
    SimTime bound = cap;
    for (const std::size_t c : channels_to_[i]) {
      if (fresh_eot_[c] > channels_[c].announced_eot) {
        channels_[c].announced_eot = fresh_eot_[c];
        ++stats_.nulls_announced;
        --stats_.nulls_suppressed;
      }
      bound = std::min(bound, channels_[c].announced_eot);
    }
    bounds_[i] = bound;
  }
}

void LaneEngine::run(SimTime duration) {
  if (protocol_ == Protocol::kNullMessage && channels_.empty()) {
    throw std::runtime_error(
        "LaneEngine: the null-message protocol needs declared channels "
        "(declare_channel) to derive per-pair bounds");
  }
  // Events scheduled at exactly `duration` must execute (run_until
  // semantics), so the final exclusive bound is the next double above it.
  end_bound_ =
      std::nextafter(duration, std::numeric_limits<SimTime>::infinity());
  for (Channel& channel : channels_) channel.announced_eot = -kInf;
  start_workers();
  // Messages posted during model construction (before any round) enter the
  // routing heaps here; deliver_time >= 0 + channel delay, nothing is due.
  collect_outboxes(0.0);
  for (;;) {
    SimTime t_all = kInf;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      activity_[i] = next_activity(i);
      t_all = std::min(t_all, activity_[i]);
    }
    if (t_all >= end_bound_) break;
    const SimTime t0 = serialize_lane0_ ? activity_[0] : kInf;
    if (t0 <= t_all) {
      const SimTime bound = std::min(
          std::nextafter(t0, std::numeric_limits<SimTime>::infinity()),
          end_bound_);
      run_serial_instant(t0, bound);
      ++stats_.windows;
      ++stats_.serial_rounds;
      continue;
    }
    const SimTime cap = std::min(end_bound_, t0);
    compute_bounds(t_all, cap);
    round_work_.clear();
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (activity_[i] < bounds_[i]) {
        round_work_.emplace_back(i, bounds_[i]);
        deliver_pending(i, bounds_[i]);
      }
    }
    if (round_work_.empty()) {
      // compute_bounds guarantees the global-minimum lane is runnable;
      // reaching here means the protocol state is corrupt.
      throw std::runtime_error(
          "LaneEngine: no lane runnable below its bound — synchronization "
          "state is inconsistent");
    }
    if (round_work_.size() == 1 || workers_.empty()) {
      // Solo fast path: a round with one active lane (or a single-threaded
      // pool) needs no barrier round-trip — run inline on the coordinator.
      if (round_work_.size() == 1) ++stats_.solo_rounds;
      for (const std::pair<std::size_t, SimTime>& work : round_work_) {
        lanes_[work.first]->sim().run_before(work.second);
      }
    } else {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        work_cursor_.store(0, std::memory_order_relaxed);
        workers_running_ = workers_.size();
        ++round_generation_;
      }
      start_cv_.notify_all();
      drain_work_queue();
      {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return workers_running_ == 0; });
      }
      for (std::exception_ptr& error : worker_errors_) {
        if (error) {
          const std::exception_ptr raised = std::exchange(error, nullptr);
          std::rethrow_exception(raised);
        }
      }
    }
    collect_outboxes(std::min(t_all + lookahead_, cap));
    ++stats_.windows;
  }
  stats_.events = 0;
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    lane->sim().advance_to(duration);
    stats_.events += lane->sim().events_executed();
  }
}

}  // namespace conscale::lanes
