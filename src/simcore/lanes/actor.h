// LaneActor: the scheduling discipline a model component must follow to be
// placeable on any lane without perturbing results (DESIGN.md §6.6).
//
// An actor owns a globally-unique stream id and a monotonic counter; every
// event it schedules and every message it posts is keyed (stream, counter).
// Because neither depends on the lane count or on what other lanes do, the
// key stream is identical for lanes=1 and lanes=K — which is what makes the
// two executions byte-identical. Components that live permanently on the
// system lane (lane 0) and never share a Simulation with another lane's
// components (NTierSystem, the controllers, the warehouse) keep using plain
// schedule_at unchanged; only components whose events could interleave with
// another lane's at equal times — i.e. everything that is actually
// partitioned — must go through an actor.
#pragma once

#include <cstdint>
#include <utility>

#include "simcore/lanes/lane_engine.h"

namespace conscale::lanes {

class LaneActor {
 public:
  LaneActor(LaneEngine& engine, std::size_t lane)
      : engine_(engine), lane_(lane), stream_(engine.new_stream()) {}

  std::size_t lane() const { return lane_; }
  std::uint64_t stream() const { return stream_; }
  Simulation& sim() { return engine_.lane(lane_).sim(); }
  LaneEngine& engine() { return engine_; }

 protected:
  /// Keyed local event: executes on this actor's lane in canonical order.
  EventHandle schedule_at(SimTime when, EventCallback callback) {
    return sim().schedule_keyed(when, stream_, next_seq_++,
                                std::move(callback));
  }

  EventHandle schedule_after(SimDuration delay, EventCallback callback) {
    return schedule_at(sim().now() + std::max(delay, 0.0),
                       std::move(callback));
  }

  /// Cross-lane message: `callback` executes on `dest_lane` at now+delay.
  /// `delay` must be at least the engine's lookahead window.
  void post(std::size_t dest_lane, SimDuration delay, EventCallback callback) {
    engine_.post(lane_, dest_lane, sim().now() + delay, stream_, next_seq_++,
                 std::move(callback));
  }

 private:
  LaneEngine& engine_;
  std::size_t lane_;
  std::uint64_t stream_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace conscale::lanes
