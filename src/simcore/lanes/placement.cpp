#include "simcore/lanes/placement.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace conscale::lanes {

namespace {

std::size_t find_root(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

std::string LanePlan::summary(
    const std::vector<std::string>& node_names) const {
  std::ostringstream out;
  out << lane_count << (lane_count == 1 ? " lane:" : " lanes:");
  for (std::size_t lane = 0; lane < lane_count; ++lane) {
    out << " [";
    bool first = true;
    for (std::size_t node = 0; node < lane_of.size(); ++node) {
      if (lane_of[node] != lane) continue;
      if (!first) out << ' ';
      first = false;
      if (node < node_names.size()) {
        out << node_names[node];
      } else {
        out << '#' << node;
      }
    }
    out << "]=" << lane_weight[lane];
  }
  return out.str();
}

std::size_t TierLanePlacement::add_node(std::string name,
                                        double event_weight) {
  names_.push_back(std::move(name));
  weights_.push_back(event_weight);
  return names_.size() - 1;
}

void TierLanePlacement::add_edge(std::size_t a, std::size_t b,
                                 SimDuration delay) {
  if (a >= names_.size() || b >= names_.size()) {
    throw std::out_of_range("TierLanePlacement::add_edge: no such node");
  }
  edges_.push_back(Edge{a, b, delay});
}

LanePlan TierLanePlacement::plan(SimDuration min_cut_delay,
                                 std::size_t max_lanes) const {
  const std::size_t n = names_.size();
  LanePlan out;
  out.lane_of.assign(n, 0);
  if (n == 0) return out;

  // Phase 1: merge across uncuttable edges (no lookahead to exploit).
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  for (const Edge& edge : edges_) {
    if (edge.delay > 0.0 && edge.delay >= min_cut_delay) continue;
    parent[find_root(parent, edge.a)] = find_root(parent, edge.b);
  }

  // Dense cluster ids in first-node order (partition-count independent).
  constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> cluster_of_root(n, kUnset);
  std::vector<std::size_t> cluster(n, 0);
  std::vector<double> weight;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find_root(parent, i);
    if (cluster_of_root[root] == kUnset) {
      cluster_of_root[root] = weight.size();
      weight.push_back(0.0);
    }
    cluster[i] = cluster_of_root[root];
    weight[cluster[i]] += weights_[i];
  }

  // Phase 2: weight-pack down to the cap. Repeatedly fold the two lightest
  // clusters together (ties by lower index), remapping into the lower id —
  // heavy tiers keep dedicated lanes, cheap ones share.
  std::vector<std::size_t> remap(weight.size());
  for (std::size_t c = 0; c < weight.size(); ++c) remap[c] = c;
  std::size_t live = weight.size();
  while (max_lanes > 0 && live > max_lanes) {
    std::size_t lightest = kUnset;
    std::size_t second = kUnset;
    for (std::size_t c = 0; c < weight.size(); ++c) {
      if (remap[c] != c) continue;  // already folded away
      if (lightest == kUnset || weight[c] < weight[lightest]) {
        second = lightest;
        lightest = c;
      } else if (second == kUnset || weight[c] < weight[second]) {
        second = c;
      }
    }
    const std::size_t keep = std::min(lightest, second);
    const std::size_t fold = std::max(lightest, second);
    weight[keep] += weight[fold];
    remap[fold] = keep;
    --live;
  }

  // Densify the surviving clusters, again in first-appearance order.
  std::vector<std::size_t> dense(weight.size(), kUnset);
  out.lane_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t c = cluster[i];
    while (remap[c] != c) c = remap[c];
    if (dense[c] == kUnset) {
      dense[c] = out.lane_count++;
      out.lane_weight.push_back(weight[c]);
    }
    out.lane_of[i] = dense[c];
  }
  return out;
}

}  // namespace conscale::lanes
