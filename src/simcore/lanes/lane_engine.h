// LaneEngine: conservative-synchronization parallel DES (DESIGN.md §6.6).
//
// One run's event loop is partitioned into `lanes` — each lane owns a full
// Simulation (its own event arena, queue and clock: the arena sharding) and
// hosts a disjoint set of model components. Lanes interact only through
// timestamped inter-lane messages carrying at least the channel's declared
// lookahead of delay. The engine repeats conservative rounds under one of
// two synchronization protocols:
//
//   time-window    1. t_all = earliest activity anywhere
//                  2. bound = min(t_all + L, end) with L the global window
//                  3. deliver messages due before the bound as keyed events
//                  4. every lane with work below the bound runs in parallel
//   null-message   per-channel bounds (Chandy–Misra–Bryant): every declared
//                  channel (j -> i, delay L_c) announces an earliest-output
//                  time. The sound EOT is conditional on j's own inputs —
//                  the fixed point eot[c] = min(na_j, min in-channel eots of
//                  j) + L_c (na_j = lane j's earliest activity), i.e. the
//                  minimum over message paths ending in c of path-source
//                  activity plus total path delay. Lane i may run to the min
//                  announced EOT over its in-channels. Announcements are
//                  demand-driven with an anti-flood floor: a fresh EOT is
//                  published only when it advances the previous announcement
//                  by at least the floor, or when a starved lane (bound <=
//                  na, work remaining) demands it. See DESIGN.md §6.6 for
//                  the deadlock-avoidance argument (the floor delays bounds,
//                  never results).
//
// Safety (both protocols): a message posted at send >= na with delay >= L
// delivers at >= na + L >= every bound derived from na + L (floating-point
// addition is monotone), so nothing a lane does inside a round can affect
// any lane's same round — each lane's round execution is causally closed.
//
// Serialized control lane (tier-laned placements): when
// `options.serialize_lane0` is set, lane 0 hosts the control plane
// (controllers, agents, monitor coarse tick, warehouse queries) whose events
// *directly* read and mutate state owned by other lanes. The engine never
// runs lane 0 concurrently: every parallel bound is capped at t0 (lane 0's
// earliest activity), and when the global minimum reaches t0 the engine runs
// a *serial instant* — every lane's clock is advanced to t0 and all lanes
// are drained through bound nextafter(t0) on the coordinator thread, lane 0
// first, until quiescent. Control code therefore executes exactly as in a
// single-threaded run: all events before t0 everywhere have completed, every
// clock reads t0, and the round barrier's mutex gives the happens-before
// edge that makes the cross-lane reads race-free.
//
// Determinism (the K-threads vs 1-thread bit-for-bit contract): the
// partition (which component lives on which lane) is a *model* parameter and
// `threads` only sets worker-pool width. Within one Simulation, keyed events
// execute in (time, stream, seq) order regardless of which round delivered
// them; across Simulations, same-time events belong to non-interacting
// components except at serial instants, which run in fixed lane order on one
// thread. Round structure — window sizes, protocol, solo fast paths — can
// change *when* an event runs but never its key order, so results are
// invariant to both the thread count and the synchronization protocol.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time_units.h"
#include "simcore/lanes/lookahead.h"
#include "simcore/simulation.h"

namespace conscale::lanes {

/// A timestamped cross-lane interaction. `stream`/`seq` are the *origin*
/// actor's canonical key; the destination lane schedules the callback as a
/// keyed event under exactly this key, so delivery order at equal times is
/// a property of the model, not of the partition.
struct LaneMessage {
  SimTime deliver_time = 0.0;
  std::uint64_t stream = 0;
  std::uint64_t seq = 0;
  std::size_t dest = 0;
  EventCallback fn;
};

struct LaneEngineStats {
  std::uint64_t windows = 0;       ///< rounds executed (all kinds)
  std::uint64_t messages = 0;      ///< cross-lane messages routed
  std::uint64_t events = 0;        ///< events executed, summed over lanes
  std::uint64_t serial_rounds = 0; ///< control-lane serial instants
  std::uint64_t solo_rounds = 0;   ///< rounds with <=1 active lane (no barrier)
  std::uint64_t nulls_announced = 0;   ///< CMB: channel EOT announcements
  std::uint64_t nulls_suppressed = 0;  ///< CMB: announcements under the floor
};

/// One partition of the run: a self-contained Simulation plus the outbox
/// the engine drains at every barrier. The outbox is touched only by the
/// lane's executing thread during a round and by the coordinator between
/// rounds; the barrier's mutex orders the two.
class Lane {
 public:
  explicit Lane(std::size_t index) : index_(index) {}
  Lane(const Lane&) = delete;
  Lane& operator=(const Lane&) = delete;

  Simulation& sim() { return sim_; }
  std::size_t index() const { return index_; }

 private:
  friend class LaneEngine;
  std::size_t index_;
  Simulation sim_;
  std::vector<LaneMessage> outbox_;
};

class LaneEngine {
 public:
  using Protocol = LookaheadAnalysis::Protocol;

  struct Options {
    std::size_t lanes = 1;
    /// The global synchronization window for the time-window protocol (and
    /// the delay floor for undeclared-channel models): no cross-lane message
    /// may carry less than this much delay. Must be > 0 — zero lookahead
    /// admits no conservative parallelism.
    SimDuration lookahead = 0.0;
    /// Worker-pool width. 0 means one thread per lane (the pre-placement
    /// behavior). Lanes are a model parameter; threads are not — results
    /// are identical for every value.
    std::size_t threads = 0;
    /// Synchronization protocol. kNullMessage requires declared channels.
    Protocol protocol = Protocol::kTimeWindow;
    /// CMB anti-flood floor: a channel re-announces its EOT only when it
    /// advanced by at least this much (demanded announcements bypass the
    /// floor). 0 disables suppression.
    SimDuration null_floor = 0.0;
    /// Serialize lane 0 (see header comment). Required whenever lane-0
    /// events directly touch state owned by other lanes.
    bool serialize_lane0 = false;
  };

  explicit LaneEngine(Options options);
  ~LaneEngine();
  LaneEngine(const LaneEngine&) = delete;
  LaneEngine& operator=(const LaneEngine&) = delete;

  std::size_t lane_count() const { return lanes_.size(); }
  Lane& lane(std::size_t index) { return *lanes_[index]; }
  SimDuration lookahead() const { return lookahead_; }
  Protocol protocol() const { return protocol_; }

  /// Declares a directed cross-lane channel with a guaranteed minimum model
  /// delay. Once any channel is declared, *every* post must travel a
  /// declared channel and carry at least its delay — validated at post time
  /// (throws std::runtime_error). Redeclaring a pair keeps the minimum.
  /// Channels also feed the null-message protocol's per-pair bounds.
  /// Call before run(); self-channels (from == to) are rejected.
  void declare_channel(std::size_t from, std::size_t to, SimDuration min_delay);

  /// Hands out the next globally-unique actor stream id (starts at 1; 0 is
  /// the plain-event group). Allocation order must be partition-independent:
  /// construct actors in a fixed order regardless of the lane count.
  std::uint64_t new_stream() { return next_stream_++; }

  /// Posts a message from `from` (which must be the lane currently
  /// executing, or any lane between rounds). `deliver_time` must be at
  /// least the channel's declared delay in the future (validated here when
  /// channels are declared, at the next barrier otherwise). Prefer
  /// LaneActor::post.
  void post(std::size_t from, std::size_t dest, SimTime deliver_time,
            std::uint64_t stream, std::uint64_t seq, EventCallback fn);

  /// Runs every lane to `duration` (inclusive, like Simulation::run_until)
  /// under the conservative round loop, then parks every lane clock at
  /// `duration`. Throws std::runtime_error on a lookahead violation and
  /// rethrows the first model exception raised on a worker lane.
  void run(SimTime duration);

  const LaneEngineStats& stats() const { return stats_; }

 private:
  struct Channel {
    std::size_t from = 0;
    std::size_t to = 0;
    SimDuration min_delay = 0.0;
    SimTime announced_eot = 0.0;  // initialized to -inf before run()
  };

  void start_workers();
  void run_round();
  void run_serial_instant(SimTime t0, SimTime bound);
  void compute_bounds(SimTime t_all, SimTime cap);
  void deliver_pending(std::size_t dest, SimTime bound);
  void collect_outboxes(SimTime check_bound);
  void worker_loop();
  void drain_work_queue();
  SimTime next_activity(std::size_t lane_index);

  SimDuration lookahead_;
  Protocol protocol_;
  SimDuration null_floor_;
  bool serialize_lane0_;
  std::size_t thread_count_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::uint64_t next_stream_ = 1;
  /// Per-destination min-heaps (by deliver_time) of routed-but-undelivered
  /// messages. Only the coordinator touches them, always between rounds.
  std::vector<std::vector<LaneMessage>> pending_;
  std::vector<Channel> channels_;
  /// Channel indices by endpoint, for post validation and CMB bounds.
  std::vector<std::vector<std::size_t>> channels_from_;
  std::vector<std::vector<std::size_t>> channels_to_;
  /// Scratch, reused every round (sized lanes / channels once).
  std::vector<SimTime> activity_;
  std::vector<SimTime> bounds_;
  std::vector<SimTime> fresh_eot_;
  SimTime end_bound_ = 0.0;
  LaneEngineStats stats_;

  // --- worker pool (work-pulling; the coordinator pulls too) ---
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t round_generation_ = 0;
  /// (lane, bound) pairs for the current parallel round; written by the
  /// coordinator under the mutex before the generation bump, read by
  /// workers after observing it.
  std::vector<std::pair<std::size_t, SimTime>> round_work_;
  std::atomic<std::size_t> work_cursor_{0};
  std::size_t workers_running_ = 0;
  bool shutdown_ = false;
  std::vector<std::exception_ptr> worker_errors_;
  std::vector<std::thread> workers_;
};

}  // namespace conscale::lanes
