// LaneEngine: conservative-synchronization parallel DES (DESIGN.md §6.6).
//
// One run's event loop is partitioned into `lanes` — each lane owns a full
// Simulation (its own event arena, queue and clock: the arena sharding) and
// hosts a disjoint set of model components. Lanes interact only through
// timestamped inter-lane messages carrying at least the model's lookahead
// window `L` of delay (the client<->frontend network latency in the laned
// runners). The engine repeats a time-window barrier round:
//
//   1. t_next  = earliest activity anywhere (lane events + pending messages)
//   2. bound   = min(t_next + L, end)
//   3. deliver every pending message with deliver_time < bound into its
//      destination lane as a *keyed* event
//   4. every lane executes its events with time < bound — in parallel
//   5. collect the messages each lane posted; any with deliver_time < bound
//      is a lookahead violation (the model sent with delay < L) and throws
//
// Safety: a message posted at send >= t_next with delay >= L delivers at
// send+delay >= t_next+L >= bound (floating-point addition is monotone), so
// nothing a lane does inside a window can affect that same window — each
// lane's window execution is causally closed.
//
// Determinism (the lanes=1 vs lanes=K bit-for-bit contract): every lane
// actor schedules its events and stamps its messages with a canonical
// (time, stream, seq) key — the stream id is globally unique per actor and
// the seq a per-actor counter, so keys never depend on which lane (or how
// many lanes) the actor landed in. Within one Simulation, keyed events
// execute in key order; across Simulations, same-time events belong to
// non-interacting components (interaction = a message, and messages carry
// their origin's canonical key), so their relative order is unobservable.
// Running the identical window schedule with K=1 therefore replays the
// exact same state evolution byte for byte — with zero threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time_units.h"
#include "simcore/simulation.h"

namespace conscale::lanes {

/// A timestamped cross-lane interaction. `stream`/`seq` are the *origin*
/// actor's canonical key; the destination lane schedules the callback as a
/// keyed event under exactly this key, so delivery order at equal times is
/// a property of the model, not of the partition.
struct LaneMessage {
  SimTime deliver_time = 0.0;
  std::uint64_t stream = 0;
  std::uint64_t seq = 0;
  std::size_t dest = 0;
  EventCallback fn;
};

struct LaneEngineStats {
  std::uint64_t windows = 0;   ///< barrier rounds executed
  std::uint64_t messages = 0;  ///< cross-lane messages routed
  std::uint64_t events = 0;    ///< events executed, summed over lanes
};

/// One partition of the run: a self-contained Simulation plus the outbox
/// the engine drains at every barrier. The outbox is touched only by the
/// lane's executing thread during a window and by the coordinator between
/// windows; the barrier's mutex orders the two.
class Lane {
 public:
  explicit Lane(std::size_t index) : index_(index) {}
  Lane(const Lane&) = delete;
  Lane& operator=(const Lane&) = delete;

  Simulation& sim() { return sim_; }
  std::size_t index() const { return index_; }

 private:
  friend class LaneEngine;
  std::size_t index_;
  Simulation sim_;
  std::vector<LaneMessage> outbox_;
};

class LaneEngine {
 public:
  struct Options {
    std::size_t lanes = 1;
    /// The synchronization window: no cross-lane message may carry less
    /// than this much delay (derive it with LookaheadAnalysis::window()).
    /// Must be > 0 — zero lookahead admits no conservative parallelism.
    SimDuration lookahead = 0.0;
  };

  explicit LaneEngine(Options options);
  ~LaneEngine();
  LaneEngine(const LaneEngine&) = delete;
  LaneEngine& operator=(const LaneEngine&) = delete;

  std::size_t lane_count() const { return lanes_.size(); }
  Lane& lane(std::size_t index) { return *lanes_[index]; }
  SimDuration lookahead() const { return lookahead_; }

  /// Hands out the next globally-unique actor stream id (starts at 1; 0 is
  /// the plain-event group). Allocation order must be partition-independent:
  /// construct actors in a fixed order regardless of the lane count.
  std::uint64_t new_stream() { return next_stream_++; }

  /// Posts a message from `from` (which must be the lane currently
  /// executing, or any lane between windows). `deliver_time` must be at
  /// least a full lookahead window in the future; violations are detected
  /// at the next barrier and throw. Prefer LaneActor::post.
  void post(std::size_t from, std::size_t dest, SimTime deliver_time,
            std::uint64_t stream, std::uint64_t seq, EventCallback fn);

  /// Runs every lane to `duration` (inclusive, like Simulation::run_until)
  /// under the window-barrier loop, then parks every lane clock at
  /// `duration`. Throws std::runtime_error on a lookahead violation and
  /// rethrows the first model exception raised on a worker lane.
  void run(SimTime duration);

  const LaneEngineStats& stats() const { return stats_; }

 private:
  void start_workers();
  void run_window(SimTime bound);
  void deliver_pending(SimTime bound);
  void collect_outboxes(SimTime bound);
  void worker_loop(std::size_t lane_index);

  SimDuration lookahead_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::uint64_t next_stream_ = 1;
  /// Min-heap (by deliver_time) of routed-but-undelivered messages. Only
  /// the coordinator touches it, always between windows.
  std::vector<LaneMessage> pending_;
  LaneEngineStats stats_;

  // --- worker pool (lanes 1..K-1; lane 0 runs on the caller's thread) ---
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t window_generation_ = 0;
  SimTime window_bound_ = 0.0;
  std::size_t workers_running_ = 0;
  bool shutdown_ = false;
  std::vector<std::exception_ptr> worker_errors_;
  std::vector<std::thread> workers_;
};

}  // namespace conscale::lanes
