// Lookahead analysis for the lane-partitioned PDES engine (DESIGN.md §6.6).
//
// Conservative parallel DES is only correct when a lane can prove that no
// other lane will send it a message "from the past". The proof currency is
// *lookahead*: the minimum model delay on every cross-lane channel. This
// module collects the model's natural delays (client<->frontend network
// latency, VM preparation/boot delay, monitoring periods), derives the safe
// synchronization window, and recommends a barrier protocol:
//
//   kTimeWindow    one global window of length min-channel-delay per round;
//                  every lane runs [W, W+L) in parallel, messages created in
//                  the window deliver at >= W+L by construction. Optimal when
//                  channel delays are near-uniform (a star topology where
//                  every channel has the same latency loses nothing to the
//                  global min) — which is exactly the shape of this model's
//                  profitable cut (session shards <-> system gateway).
//   kNullMessage   per-pair lookahead via Chandy-Misra-Bryant null messages.
//                  Pays off only when delays are strongly skewed, so distant
//                  lane pairs can run far ahead of the global min; costs a
//                  null-message flood on low-lookahead pairs.
#pragma once

#include <string>
#include <vector>

#include "common/time_units.h"

namespace conscale::lanes {

/// One model delay feeding the analysis. `is_channel` marks delays that
/// cross-lane messages actually traverse (these bound the window); sources
/// with `is_channel = false` (VM prep delay, monitoring periods) document
/// additional slack but cannot relax the window on their own.
struct LookaheadSource {
  std::string name;
  SimDuration delay = 0.0;
  bool is_channel = true;
};

class LookaheadAnalysis {
 public:
  enum class Protocol { kTimeWindow, kNullMessage };

  void add_source(std::string name, SimDuration delay, bool is_channel = true);

  /// The safe synchronization window: the minimum positive channel delay,
  /// or 0 when no channel source was added (no safe parallel execution).
  SimDuration window() const;

  /// Ratio of the largest to the smallest channel delay (1 when uniform).
  double channel_skew() const;

  /// Protocol choice: time-window barriers while channel delays are within
  /// `skew_threshold` of each other, null messages beyond it (see header).
  Protocol recommended(double skew_threshold = 4.0) const;

  const std::vector<LookaheadSource>& sources() const { return sources_; }

  /// Human-readable report (bench_scale prints it; tests pin the window).
  std::string summary() const;

 private:
  std::vector<LookaheadSource> sources_;
};

std::string to_string(LookaheadAnalysis::Protocol protocol);

}  // namespace conscale::lanes
