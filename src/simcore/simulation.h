// The discrete-event simulation kernel: a virtual clock and a deterministic
// event queue. Single-threaded by design (see DESIGN.md §6.4); the model is
// concurrent, the engine is not, which gives reproducible experiments and a
// trivially race-free substrate. Each Simulation is fully self-contained
// (its event arena and queue are instance state, no globals), so
// independent runs are thread-safe by isolation and can execute
// concurrently — see experiments/parallel.h for the run-level fan-out, and
// simcore/lanes/ for the intra-run fan-out that runs several Simulations
// (one per lane) under a conservative window barrier.
#pragma once

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/time_units.h"
#include "simcore/event.h"

namespace conscale {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `callback` at absolute time `when`; times in the past are
  /// clamped to `now()` (fires next, after already-queued events at now()).
  EventHandle schedule_at(SimTime when, EventCallback callback);

  /// Schedules `callback` after `delay` seconds (negative clamps to 0).
  EventHandle schedule_after(SimDuration delay, EventCallback callback);

  /// Schedules `callback` under an explicit ordering key. Events execute in
  /// (time, group, seq) order; plain schedule_at/schedule_after events carry
  /// group 0 and the kernel's arrival counter, so at equal times they run
  /// before every keyed event and keep their historical relative order.
  /// Keyed events exist for the lane engine (simcore/lanes/): a lane actor
  /// keys its events by its globally-unique stream id and a per-stream
  /// counter, which makes same-time ordering a property of the *model*
  /// rather than of which Simulation instance the event landed in — the
  /// bit-for-bit lanes=1 vs lanes=K contract rests on this. `group` must be
  /// non-zero and (group, seq) pairs must never repeat at the same time.
  EventHandle schedule_keyed(SimTime when, std::uint64_t group,
                             std::uint64_t seq, EventCallback callback);

  /// Runs events until the queue is empty or the next event is after
  /// `deadline`; the clock is left at min(deadline, last event time).
  void run_until(SimTime deadline);

  /// Executes every event with time strictly below `bound` and stops; the
  /// clock is left at the last executed event (never advanced to `bound`).
  /// This is the lane engine's window primitive: events at or after the
  /// window edge stay queued for later windows.
  void run_before(SimTime bound);

  /// Time of the earliest live (non-cancelled) event, or +infinity when the
  /// queue is empty. Prunes cancelled heads as a side effect.
  SimTime next_event_time();

  /// Advances the clock to `t` without executing anything (no-op if `t` is
  /// in the past). The lane engine uses this to park every lane exactly at
  /// the run's end time after the final window.
  void advance_to(SimTime t) { now_ = std::max(now_, t); }

  /// Convenience: run_until(now() + duration).
  void run_for(SimDuration duration) { run_until(now_ + duration); }

  /// Executes the single next event. Returns false if the queue is empty.
  bool step();

  /// Drains every queued event (use only in tests / bounded scenarios).
  void run_all();

  std::size_t pending_events() const { return live_events_; }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct QueuedEvent {
    SimTime time;
    std::uint64_t group;     ///< 0 = plain event; >0 = keyed stream id
    std::uint64_t sequence;  ///< arrival counter (plain) or stream seq (keyed)
    std::uint32_t slot;
    std::uint32_t generation;
    bool operator>(const QueuedEvent& other) const {
      if (time != other.time) return time > other.time;
      if (group != other.group) return group > other.group;
      return sequence > other.sequence;
    }
  };

  /// Pops the queue head and recycles its arena slot.
  void pop_and_release();

  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  detail::EventArena arena_;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>,
                      std::greater<QueuedEvent>>
      queue_;
};

/// Repeats a callback at a fixed period until stopped. Used for the 1 s
/// monitoring-agent ticks and 50 ms metric intervals.
class PeriodicTask {
 public:
  /// `callback` receives the firing time. The first firing is at
  /// `start + period` unless `fire_immediately` is set.
  PeriodicTask(Simulation& sim, SimDuration period,
               std::function<void(SimTime)> callback,
               bool fire_immediately = false);
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }
  SimDuration period() const { return period_; }

 private:
  void arm();

  Simulation& sim_;
  SimDuration period_;
  std::function<void(SimTime)> callback_;
  EventHandle next_;
  bool running_ = true;
};

}  // namespace conscale
