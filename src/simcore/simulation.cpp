#include "simcore/simulation.h"

#include <algorithm>
#include <utility>

namespace conscale {

EventHandle Simulation::schedule_at(SimTime when, EventCallback callback) {
  auto state = std::make_shared<detail::EventState>();
  state->callback = std::move(callback);
  QueuedEvent entry{std::max(when, now_), next_sequence_++, state};
  queue_.push(std::move(entry));
  ++live_events_;
  return EventHandle(state);
}

EventHandle Simulation::schedule_after(SimDuration delay,
                                       EventCallback callback) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(callback));
}

bool Simulation::step() {
  while (!queue_.empty()) {
    QueuedEvent entry = queue_.top();
    queue_.pop();
    --live_events_;
    if (entry.state->cancelled) continue;
    now_ = entry.time;
    ++executed_;
    // Mark fired so a handle held by the callback's owner reports !pending().
    entry.state->cancelled = true;
    // Move the callback out so self-rescheduling callbacks can't be clobbered
    // by queue growth.
    EventCallback callback = std::move(entry.state->callback);
    callback();
    return true;
  }
  return false;
}

void Simulation::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing the clock.
    if (queue_.top().state->cancelled) {
      queue_.pop();
      --live_events_;
      continue;
    }
    if (queue_.top().time > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

void Simulation::run_all() {
  while (step()) {
  }
}

PeriodicTask::PeriodicTask(Simulation& sim, SimDuration period,
                           std::function<void(SimTime)> callback,
                           bool fire_immediately)
    : sim_(sim), period_(period), callback_(std::move(callback)) {
  if (fire_immediately) {
    next_ = sim_.schedule_after(0.0, [this] {
      if (!running_) return;
      callback_(sim_.now());
      if (running_) arm();
    });
  } else {
    arm();
  }
}

void PeriodicTask::arm() {
  next_ = sim_.schedule_after(period_, [this] {
    if (!running_) return;
    callback_(sim_.now());
    if (running_) arm();
  });
}

void PeriodicTask::stop() {
  running_ = false;
  next_.cancel();
}

}  // namespace conscale
