#include "simcore/simulation.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace conscale {

EventHandle Simulation::schedule_at(SimTime when, EventCallback callback) {
  const std::uint32_t slot = arena_.allocate(std::move(callback));
  const std::uint32_t generation = arena_.generation(slot);
  queue_.push(QueuedEvent{std::max(when, now_), 0, next_sequence_++, slot,
                          generation});
  ++live_events_;
  return EventHandle(&arena_, slot, generation);
}

EventHandle Simulation::schedule_keyed(SimTime when, std::uint64_t group,
                                       std::uint64_t seq,
                                       EventCallback callback) {
  const std::uint32_t slot = arena_.allocate(std::move(callback));
  const std::uint32_t generation = arena_.generation(slot);
  queue_.push(QueuedEvent{std::max(when, now_), group, seq, slot, generation});
  ++live_events_;
  return EventHandle(&arena_, slot, generation);
}

EventHandle Simulation::schedule_after(SimDuration delay,
                                       EventCallback callback) {
  return schedule_at(now_ + std::max(delay, 0.0), std::move(callback));
}

void Simulation::pop_and_release() {
  arena_.release(queue_.top().slot);
  queue_.pop();
  --live_events_;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    const QueuedEvent entry = queue_.top();
    if (arena_.cancelled(entry.slot)) {
      pop_and_release();
      continue;
    }
    now_ = entry.time;
    ++executed_;
    // Move the callback out and recycle the slot before invoking: a handle
    // held by the callback's owner reports !pending() during the call (the
    // generation already moved on), and the callback may schedule freely —
    // including reusing this very slot — without touching freed state.
    EventCallback callback = arena_.take_callback(entry.slot);
    pop_and_release();
    callback();
    return true;
  }
  return false;
}

void Simulation::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing the clock.
    if (arena_.cancelled(queue_.top().slot)) {
      pop_and_release();
      continue;
    }
    if (queue_.top().time > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

void Simulation::run_before(SimTime bound) {
  while (!queue_.empty()) {
    if (arena_.cancelled(queue_.top().slot)) {
      pop_and_release();
      continue;
    }
    if (queue_.top().time >= bound) break;
    step();
  }
}

SimTime Simulation::next_event_time() {
  while (!queue_.empty()) {
    if (arena_.cancelled(queue_.top().slot)) {
      pop_and_release();
      continue;
    }
    return queue_.top().time;
  }
  return std::numeric_limits<SimTime>::infinity();
}

void Simulation::run_all() {
  while (step()) {
  }
}

PeriodicTask::PeriodicTask(Simulation& sim, SimDuration period,
                           std::function<void(SimTime)> callback,
                           bool fire_immediately)
    : sim_(sim), period_(period), callback_(std::move(callback)) {
  if (fire_immediately) {
    next_ = sim_.schedule_after(0.0, [this] {
      if (!running_) return;
      callback_(sim_.now());
      if (running_) arm();
    });
  } else {
    arm();
  }
}

void PeriodicTask::arm() {
  next_ = sim_.schedule_after(period_, [this] {
    if (!running_) return;
    callback_(sim_.now());
    if (running_) arm();
  });
}

void PeriodicTask::stop() {
  running_ = false;
  next_.cancel();
}

}  // namespace conscale
