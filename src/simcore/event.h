// Event primitives for the discrete-event engine.
//
// Events are heap-ordered by (time, sequence); the sequence number makes
// ordering of simultaneous events deterministic (FIFO in scheduling order),
// which the reproduction relies on for bit-for-bit repeatable runs.
//
// Storage: callbacks live in an EventArena owned by the Simulation — a
// slot + generation pool with a free list, so scheduling an event on a warm
// simulation performs no heap allocation (the dominant cost of the old
// one-shared_ptr-per-event scheme; the processor-sharing resource cancels
// and reschedules completions every time its active set changes, so the
// schedule/cancel path is the hottest in the kernel). An EventHandle is a
// {slot index, generation} pair: the generation check makes handles to
// fired or cancelled-and-reused slots inert, keeping cancel() O(1) and lazy
// (the queue drops cancelled entries when they surface).
//
// Lifetime rule: a handle must not be used after the Simulation that issued
// it is destroyed (handles are meant to be held by model objects, whose
// lifetime is bounded by the run's).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time_units.h"

namespace conscale {

using EventCallback = std::function<void()>;

namespace detail {

/// Slot + generation pool for scheduled-event state. Owned by Simulation;
/// one slot per in-queue event, recycled through a free list.
class EventArena {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Claims a slot for `callback`; returns its index. Reuses a free slot if
  /// available, otherwise grows the pool.
  std::uint32_t allocate(EventCallback callback) {
    std::uint32_t index;
    if (free_head_ != kNone) {
      index = free_head_;
      free_head_ = slots_[index].next_free;
      slots_[index].callback = std::move(callback);
      slots_[index].cancelled = false;
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{std::move(callback), kNone, 0, false});
    }
    return index;
  }

  /// Releases a slot: bumps the generation (invalidating outstanding
  /// handles), drops the callback, and returns the slot to the free list.
  void release(std::uint32_t index) {
    Slot& slot = slots_[index];
    ++slot.generation;
    slot.callback = nullptr;
    slot.cancelled = true;
    slot.next_free = free_head_;
    free_head_ = index;
  }

  std::uint32_t generation(std::uint32_t index) const {
    return slots_[index].generation;
  }

  bool cancelled(std::uint32_t index) const {
    return slots_[index].cancelled;
  }

  /// Moves the callback out of a slot (caller releases afterwards).
  EventCallback take_callback(std::uint32_t index) {
    return std::move(slots_[index].callback);
  }

  /// O(1) lazy cancel; returns true if this call performed the cancellation.
  bool cancel(std::uint32_t index, std::uint32_t generation) {
    if (index >= slots_.size()) return false;
    Slot& slot = slots_[index];
    if (slot.generation != generation || slot.cancelled) return false;
    slot.cancelled = true;
    return true;
  }

  bool pending(std::uint32_t index, std::uint32_t generation) const {
    if (index >= slots_.size()) return false;
    const Slot& slot = slots_[index];
    return slot.generation == generation && !slot.cancelled;
  }

 private:
  struct Slot {
    EventCallback callback;
    std::uint32_t next_free = kNone;
    std::uint32_t generation = 0;
    bool cancelled = false;
  };

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNone;
};

}  // namespace detail

/// Handle to a scheduled event; cheap to copy, safe to outlive the event
/// (but not the Simulation).
class EventHandle {
 public:
  EventHandle() = default;
  EventHandle(detail::EventArena* arena, std::uint32_t index,
              std::uint32_t generation)
      : arena_(arena), index_(index), generation_(generation) {}

  /// Cancels the event if it has not fired yet. Returns true if this call
  /// performed the cancellation.
  bool cancel() { return arena_ && arena_->cancel(index_, generation_); }

  /// True while the event is scheduled and not cancelled.
  bool pending() const {
    return arena_ && arena_->pending(index_, generation_);
  }

 private:
  detail::EventArena* arena_ = nullptr;
  std::uint32_t index_ = 0;
  std::uint32_t generation_ = 0;
};

}  // namespace conscale
