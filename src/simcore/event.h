// Event primitives for the discrete-event engine.
//
// Events are heap-ordered by (time, sequence); the sequence number makes
// ordering of simultaneous events deterministic (FIFO in scheduling order),
// which the reproduction relies on for bit-for-bit repeatable runs.
// Cancellation is lazy: EventHandle flips a flag, the queue drops the entry
// when it surfaces. This keeps cancel() O(1), which matters because the
// processor-sharing resource cancels and reschedules completions every time
// its active set changes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/time_units.h"

namespace conscale {

using EventCallback = std::function<void()>;

namespace detail {
struct EventState {
  EventCallback callback;
  bool cancelled = false;
};
}  // namespace detail

/// Handle to a scheduled event; cheap to copy, safe to outlive the event.
class EventHandle {
 public:
  EventHandle() = default;
  explicit EventHandle(std::weak_ptr<detail::EventState> state)
      : state_(std::move(state)) {}

  /// Cancels the event if it has not fired yet. Returns true if this call
  /// performed the cancellation.
  bool cancel() {
    if (auto s = state_.lock(); s && !s->cancelled) {
      s->cancelled = true;
      return true;
    }
    return false;
  }

  /// True while the event is scheduled and not cancelled.
  bool pending() const {
    auto s = state_.lock();
    return s && !s->cancelled;
  }

 private:
  std::weak_ptr<detail::EventState> state_;
};

}  // namespace conscale
