#include "sct/scatter.h"

#include <algorithm>
#include <cmath>

namespace conscale {

void ScatterSet::add(const IntervalSample& sample) {
  if (sample.concurrency < 0.5) return;
  const int q = static_cast<int>(std::lround(sample.concurrency));
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), q,
      [](const ConcurrencyBucket& b, int level) { return b.q < level; });
  if (it == buckets_.end() || it->q != q) {
    it = buckets_.insert(it, ConcurrencyBucket{});
    it->q = q;
  }
  it->throughput.add(sample.throughput);
  // Intervals with no completions say "saturated/stalled", which matters for
  // throughput; they carry no RT observation though.
  if (sample.completions > 0) it->response_time.add(sample.mean_rt);
  ++total_samples_;
}

void ScatterSet::add_all(std::span<const IntervalSample> samples) {
  for (const auto& s : samples) add(s);
}

std::span<const ConcurrencyBucket* const> ScatterSet::ordered_dense(
    std::size_t min_samples) const {
  dense_scratch_.clear();
  for (const auto& bucket : buckets_) {
    if (bucket.throughput.count() >= min_samples) {
      dense_scratch_.push_back(&bucket);
    }
  }
  return dense_scratch_;
}

void ScatterSet::clear() {
  buckets_.clear();
  total_samples_ = 0;
}

}  // namespace conscale
