#include "sct/scatter.h"

#include <cmath>

namespace conscale {

void ScatterSet::add(const IntervalSample& sample) {
  if (sample.concurrency < 0.5) return;
  const int q = static_cast<int>(std::lround(sample.concurrency));
  auto& bucket = buckets_[q];
  bucket.q = q;
  bucket.throughput.add(sample.throughput);
  // Intervals with no completions say "saturated/stalled", which matters for
  // throughput; they carry no RT observation though.
  if (sample.completions > 0) bucket.response_time.add(sample.mean_rt);
  ++total_samples_;
}

void ScatterSet::add_all(const std::vector<IntervalSample>& samples) {
  for (const auto& s : samples) add(s);
}

std::vector<const ConcurrencyBucket*> ScatterSet::ordered() const {
  std::vector<const ConcurrencyBucket*> out;
  out.reserve(buckets_.size());
  for (const auto& [q, bucket] : buckets_) out.push_back(&bucket);
  return out;
}

std::vector<const ConcurrencyBucket*> ScatterSet::ordered_dense(
    std::size_t min_samples) const {
  std::vector<const ConcurrencyBucket*> out;
  for (const auto& [q, bucket] : buckets_) {
    if (bucket.throughput.count() >= min_samples) out.push_back(&bucket);
  }
  return out;
}

int ScatterSet::max_q() const {
  return buckets_.empty() ? 0 : buckets_.rbegin()->first;
}

void ScatterSet::clear() {
  buckets_.clear();
  total_samples_ = 0;
}

}  // namespace conscale
