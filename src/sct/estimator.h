// SctEstimator: the Estimation phase of the Scatter-Concurrency-Throughput
// model (§III-A, Fig 4). Given the bucketed {Q, TP, RT} statistics it
// recovers the three stages of the concurrency-throughput relation and the
// rational concurrency range [Q_lower, Q_upper]:
//
//   Q_lower  minimum concurrency whose throughput is statistically
//            indistinguishable from the peak (start of the Stable Stage)
//   Q_upper  maximum such concurrency (end of the Stable Stage)
//
// Stage membership is decided by statistical intervention analysis in the
// spirit of Malkowski et al. 2007: a bucket belongs to the stable stage if
// either its smoothed mean throughput is within the plateau tolerance of the
// peak, or a Welch two-sample t-test cannot distinguish it from the peak
// bucket. The paper picks Q_lower as the *optimal* setting because, inside
// the stable stage, lower concurrency means lower response time (Fig 6).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sct/scatter.h"

namespace conscale {

enum class SctStage { kAscending, kStable, kDescending };

std::string to_string(SctStage stage);

struct SctParams {
  /// Buckets thinner than this are discarded as noise.
  std::size_t min_samples_per_bucket = 4;
  /// δ: a bucket within (1-δ)·TP_max of the peak is plateau by definition.
  double plateau_tolerance = 0.05;
  /// Moving-average half-width over bucket means before peak detection.
  std::size_t smoothing_radius = 1;
  /// Minimum number of dense buckets for a trustworthy estimate.
  std::size_t min_buckets = 5;
  /// Optional response-time SLA (seconds; 0 disables). Fig 6(b) draws a
  /// latency threshold across the RT-vs-Q scatter: within the stable stage,
  /// RT still grows with Q, so when an SLA is set the *optimal* setting is
  /// the largest plateau level whose mean in-server RT stays within it
  /// (never below Q_lower — throughput comes first, as in the paper).
  double rt_sla = 0.0;
};

struct RationalRange {
  int q_lower = 0;
  int q_upper = 0;
  double tp_max = 0.0;       ///< smoothed peak throughput [req/s]
  int optimal = 0;           ///< = q_lower (§III-A)
  /// True when the descending stage was actually observed; false means the
  /// window never pushed concurrency beyond the plateau, so q_upper is
  /// right-censored at the largest observed level.
  bool descending_observed = false;
  /// True when q_upper is merely where contiguous observations stop (the
  /// next concurrency level up is unobserved or sparse), rather than a
  /// measured knee-top. A bursty window often contains the ascending range
  /// and a deeply degraded blob pinned at the old allocation with nothing
  /// in between: descending is observed, but the plateau's right edge is
  /// still unknown. Policies should not treat a censored q_upper as a hard
  /// ceiling.
  bool q_upper_censored = false;
  std::size_t buckets_used = 0;
  std::size_t samples_used = 0;
};

/// Per-bucket stage labels, for reporting/plots (Fig 6a's three states).
struct StagePoint {
  int q = 0;
  double mean_throughput = 0.0;
  double smoothed_throughput = 0.0;
  double mean_rt = 0.0;
  std::size_t samples = 0;
  SctStage stage = SctStage::kAscending;
};

class SctEstimator {
 public:
  explicit SctEstimator(SctParams params = {}) : params_(params) {}

  /// Returns the rational range, or nullopt when the window does not hold
  /// enough dense buckets (the framework then keeps the previous setting).
  std::optional<RationalRange> estimate(const ScatterSet& scatter) const;

  /// Stage classification of every dense bucket (empty if underpopulated).
  std::vector<StagePoint> classify(const ScatterSet& scatter) const;

  const SctParams& params() const { return params_; }

 private:
  struct Analysis {
    /// View into the ScatterSet's dense-bucket scratch; valid for the
    /// duration of one estimate()/classify() call.
    std::span<const ConcurrencyBucket* const> buckets;
    std::vector<double> smoothed;
    std::size_t peak_index = 0;
    double tp_max = 0.0;
    std::size_t lower_index = 0;
    std::size_t upper_index = 0;
  };
  std::optional<Analysis> analyze(const ScatterSet& scatter) const;
  bool at_peak(const ConcurrencyBucket& bucket, const ConcurrencyBucket& peak,
               double smoothed_value, double tp_max) const;

  SctParams params_;
};

}  // namespace conscale
