#include "sct/estimator.h"

#include <algorithm>

namespace conscale {

std::string to_string(SctStage stage) {
  switch (stage) {
    case SctStage::kAscending:
      return "ascending";
    case SctStage::kStable:
      return "stable";
    case SctStage::kDescending:
      return "descending";
  }
  return "?";
}

bool SctEstimator::at_peak(const ConcurrencyBucket& bucket,
                           const ConcurrencyBucket& peak,
                           double smoothed_value, double tp_max) const {
  if (smoothed_value >= (1.0 - params_.plateau_tolerance) * tp_max) {
    return true;
  }
  // Statistical intervention: indistinguishable from the peak bucket. A
  // noisy bucket can fail to *reject* equality while its mean is far below
  // the peak, so the test alone would let the ascending stage leak into the
  // plateau; require the bucket mean to at least be near the peak.
  if (bucket.throughput.mean() <
      (1.0 - 2.0 * params_.plateau_tolerance) * tp_max) {
    return false;
  }
  const TTestResult test = welch_t_test(bucket.throughput, peak.throughput);
  return !test.significant;
}

std::optional<SctEstimator::Analysis> SctEstimator::analyze(
    const ScatterSet& scatter) const {
  Analysis a;
  a.buckets = scatter.ordered_dense(params_.min_samples_per_bucket);
  if (a.buckets.size() < params_.min_buckets) return std::nullopt;

  std::vector<double> means;
  means.reserve(a.buckets.size());
  for (const auto* b : a.buckets) means.push_back(b->throughput.mean());
  a.smoothed = moving_average(means, params_.smoothing_radius);

  a.peak_index = static_cast<std::size_t>(
      std::max_element(a.smoothed.begin(), a.smoothed.end()) -
      a.smoothed.begin());
  a.tp_max = a.smoothed[a.peak_index];
  if (a.tp_max <= 0.0) return std::nullopt;

  // Walk outward from the peak; the stable stage is the maximal contiguous
  // run of at-peak buckets containing the peak.
  a.lower_index = a.peak_index;
  while (a.lower_index > 0 &&
         at_peak(*a.buckets[a.lower_index - 1], *a.buckets[a.peak_index],
                 a.smoothed[a.lower_index - 1], a.tp_max)) {
    --a.lower_index;
  }
  a.upper_index = a.peak_index;
  while (a.upper_index + 1 < a.buckets.size() &&
         at_peak(*a.buckets[a.upper_index + 1], *a.buckets[a.peak_index],
                 a.smoothed[a.upper_index + 1], a.tp_max)) {
    ++a.upper_index;
  }
  return a;
}

std::optional<RationalRange> SctEstimator::estimate(
    const ScatterSet& scatter) const {
  auto analysis = analyze(scatter);
  if (!analysis) return std::nullopt;
  const Analysis& a = *analysis;

  RationalRange range;
  range.q_lower = a.buckets[a.lower_index]->q;
  range.q_upper = a.buckets[a.upper_index]->q;
  range.tp_max = a.tp_max;
  range.optimal = range.q_lower;
  if (params_.rt_sla > 0.0) {
    // Fig 6(b): inside the plateau pick the largest level that still meets
    // the latency threshold; if even Q_lower misses it, keep Q_lower (the
    // SLA is infeasible at peak throughput and throughput wins).
    for (std::size_t i = a.lower_index; i <= a.upper_index; ++i) {
      const auto& rt = a.buckets[i]->response_time;
      if (rt.count() == 0) continue;
      if (rt.mean() <= params_.rt_sla) {
        range.optimal = a.buckets[i]->q;
      }
    }
  }
  // The descending stage counts as *observed* only on strong evidence: some
  // dense bucket beyond Q_upper whose throughput sits both *practically*
  // (several tolerances) and *statistically* (Welch test vs the peak
  // bucket) below the plateau. Two failure modes this guards against:
  //  - a saturated server pinned at its allocation produces a noisy flat
  //    top whose edge buckets dip by chance; accepting those as descending
  //    shaves the recommendation on every refresh (a ratchet);
  //  - a calm window's sparse tail can dip spuriously; capping a healthy
  //    tier from it starts an under-allocation spiral (capped concurrency
  //    -> low CPU -> no hardware scaling -> the cap is never revisited).
  // Real overload windows pass easily: concurrency pinned at the (too
  // large) allocation yields a dense, deeply degraded bucket far beyond
  // the plateau — even when the mid range was transited too fast to sample.
  range.descending_observed = false;
  const double practical_floor =
      (1.0 - 3.0 * params_.plateau_tolerance) * a.tp_max;
  for (std::size_t i = a.upper_index + 1; i < a.buckets.size(); ++i) {
    if (a.buckets[i]->throughput.mean() >= practical_floor) continue;
    const TTestResult test = welch_t_test(
        a.buckets[i]->throughput, a.buckets[a.peak_index]->throughput);
    if (test.significant) {
      range.descending_observed = true;
      break;
    }
  }
  // q_upper is only a *measured* plateau edge if the observations continue
  // contiguously past it; a gap right after means the plateau's true extent
  // is unknown (data simply stops there).
  range.q_upper_censored =
      a.upper_index + 1 >= a.buckets.size() ||
      a.buckets[a.upper_index + 1]->q > a.buckets[a.upper_index]->q + 2;
  range.buckets_used = a.buckets.size();
  for (const auto* b : a.buckets) {
    range.samples_used += b->throughput.count();
  }
  return range;
}

std::vector<StagePoint> SctEstimator::classify(
    const ScatterSet& scatter) const {
  auto analysis = analyze(scatter);
  if (!analysis) return {};
  const Analysis& a = *analysis;
  std::vector<StagePoint> points;
  points.reserve(a.buckets.size());
  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
    StagePoint p;
    p.q = a.buckets[i]->q;
    p.mean_throughput = a.buckets[i]->throughput.mean();
    p.smoothed_throughput = a.smoothed[i];
    p.mean_rt = a.buckets[i]->response_time.mean();
    p.samples = a.buckets[i]->throughput.count();
    if (i < a.lower_index) {
      p.stage = SctStage::kAscending;
    } else if (i <= a.upper_index) {
      p.stage = SctStage::kStable;
    } else {
      p.stage = SctStage::kDescending;
    }
    points.push_back(p);
  }
  return points;
}

}  // namespace conscale
