// ScatterSet: the Real-time Metrics Collection phase of the SCT model
// (§III-A, Fig 4). Fine-grained {Q_tn, TP_tn, RT_tn} tuples from a short
// window (e.g. 3 minutes of 50 ms samples) are grouped by integer
// concurrency level Q_n; for each level we keep full running statistics of
// throughput and response time — the t-test in the estimation phase needs
// variances, not just means.
//
// Buckets are stored in a vector sorted by Q (levels are few and dense, so
// the occasional ordered insert is cheap); ordered views are spans over
// that storage — the estimator runs every few seconds on every tier and
// must not reallocate pointer vectors per invocation. A returned view is
// invalidated by the next add()/clear() (and, for ordered_dense, by the
// next ordered_dense call).
#pragma once

#include <span>
#include <vector>

#include "common/stats.h"
#include "metrics/interval.h"

namespace conscale {

struct ConcurrencyBucket {
  int q = 0;                  ///< concurrency level (rounded)
  RunningStats throughput;    ///< requests/s observed at this level
  RunningStats response_time; ///< seconds
};

class ScatterSet {
 public:
  /// Folds one interval sample in. Samples with concurrency < 0.5 are
  /// idle-time noise and are skipped (they carry no information about the
  /// concurrency-throughput relation).
  void add(const IntervalSample& sample);

  void add_all(std::span<const IntervalSample> samples);

  /// Buckets in increasing-Q order (view over internal storage).
  std::span<const ConcurrencyBucket> ordered() const { return buckets_; }

  /// Buckets with at least `min_samples` observations, increasing Q. The
  /// view is backed by a scratch buffer reused across calls.
  std::span<const ConcurrencyBucket* const> ordered_dense(
      std::size_t min_samples) const;

  std::size_t total_samples() const { return total_samples_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  bool empty() const { return buckets_.empty(); }
  int max_q() const { return buckets_.empty() ? 0 : buckets_.back().q; }

  void clear();

 private:
  std::vector<ConcurrencyBucket> buckets_;  ///< sorted by q
  std::size_t total_samples_ = 0;
  /// Reused by ordered_dense (rebuilt on every call, so stale pointers from
  /// a copied/moved-from set never leak out).
  mutable std::vector<const ConcurrencyBucket*> dense_scratch_;
};

}  // namespace conscale
