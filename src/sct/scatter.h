// ScatterSet: the Real-time Metrics Collection phase of the SCT model
// (§III-A, Fig 4). Fine-grained {Q_tn, TP_tn, RT_tn} tuples from a short
// window (e.g. 3 minutes of 50 ms samples) are grouped by integer
// concurrency level Q_n; for each level we keep full running statistics of
// throughput and response time — the t-test in the estimation phase needs
// variances, not just means.
#pragma once

#include <map>
#include <vector>

#include "common/stats.h"
#include "metrics/interval.h"

namespace conscale {

struct ConcurrencyBucket {
  int q = 0;                  ///< concurrency level (rounded)
  RunningStats throughput;    ///< requests/s observed at this level
  RunningStats response_time; ///< seconds
};

class ScatterSet {
 public:
  /// Folds one interval sample in. Samples with concurrency < 0.5 are
  /// idle-time noise and are skipped (they carry no information about the
  /// concurrency-throughput relation).
  void add(const IntervalSample& sample);

  void add_all(const std::vector<IntervalSample>& samples);

  /// Buckets in increasing-Q order.
  std::vector<const ConcurrencyBucket*> ordered() const;

  /// Buckets with at least `min_samples` observations, increasing Q.
  std::vector<const ConcurrencyBucket*> ordered_dense(
      std::size_t min_samples) const;

  std::size_t total_samples() const { return total_samples_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  bool empty() const { return buckets_.empty(); }
  int max_q() const;

  void clear();

 private:
  std::map<int, ConcurrencyBucket> buckets_;
  std::size_t total_samples_ = 0;
};

}  // namespace conscale
