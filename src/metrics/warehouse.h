// MetricsWarehouse: the framework's central metric store (Fig 8, step 1-2).
// Monitoring agents in each VM push application-level samples (50 ms
// {Q, TP, RT} tuples) and system-level samples (1 s CPU utilization, VM
// counts); the Decision Controller and the Optimal Concurrency Estimator
// pull from here. In the real system this is a TSDB; here an in-memory,
// append-only store with windowed queries.
//
// Hot-path design: series are identified by dense interned ids, not by
// string keys — a producer interns its name once at attach time and every
// 50 ms ingest after that is a vector index, not a map lookup. Windowed
// queries binary-search the append-ordered series and return a span over
// the stored samples (no copy); a returned span is invalidated by the next
// ingest into the same series (the estimator consumes it immediately).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time_units.h"
#include "metrics/interval.h"

namespace conscale {

/// 1 s system-level sample for one tier.
struct TierSample {
  SimTime t = 0.0;
  double avg_cpu_utilization = 0.0;  ///< [0,1] across running VMs
  std::uint32_t billed_vms = 0;
  std::uint32_t running_vms = 0;
};

/// 1 s end-to-end sample (client-perceived).
struct SystemSample {
  SimTime t = 0.0;
  double throughput = 0.0;  ///< completed requests per second
  double mean_rt = 0.0;     ///< mean RT of completions in the second [s]
  double max_rt = 0.0;      ///< worst completion in the second [s]
  std::uint32_t total_vms = 0;
  std::uint32_t rejected = 0;  ///< requests shed by admission this second
};

class MetricsWarehouse {
 public:
  /// Dense series handle; valid until clear(). Interning the same name
  /// twice returns the same id.
  using SeriesId = std::uint32_t;

  // ---- interning (attach-time, not per-sample) ----
  SeriesId server_id(const std::string& server);
  SeriesId tier_id(const std::string& tier);

  // ---- ingestion ----
  void record_server(SeriesId id, const IntervalSample& sample);
  void record_tier(SeriesId id, const TierSample& sample);
  void record_system(const SystemSample& sample);
  /// String-keyed conveniences (cold paths, tests): intern + record.
  void record_server(const std::string& server, const IntervalSample& sample);
  void record_tier(const std::string& tier, const TierSample& sample);

  /// Monitoring dropout (fault injection): while disabled, every record_*
  /// call is counted and discarded — consumers see a widening gap between
  /// `now` and the newest stored sample, exactly like a crashed TSDB
  /// ingestion path. Queries still serve the pre-dropout series.
  void set_ingestion_enabled(bool enabled) { ingestion_enabled_ = enabled; }
  bool ingestion_enabled() const { return ingestion_enabled_; }
  std::uint64_t dropped_samples() const { return dropped_samples_; }

  // ---- full-series access (figure rendering) ----
  const std::vector<IntervalSample>& server_series(SeriesId id) const;
  const std::vector<IntervalSample>& server_series(
      const std::string& server) const;
  const std::vector<TierSample>& tier_series(SeriesId id) const;
  const std::vector<TierSample>& tier_series(const std::string& tier) const;
  const std::vector<SystemSample>& system_series() const { return system_; }
  /// All interned server names, sorted (stable across runs regardless of
  /// attach order).
  std::vector<std::string> server_names() const;

  // ---- windowed queries (estimator / controller) ----
  /// Server samples with t_end in (now - window, now], as a view over the
  /// stored series (samples are appended in time order, so the window is one
  /// contiguous range found by binary search). Invalidated by ingestion.
  std::span<const IntervalSample> server_window(SeriesId id,
                                                SimDuration window,
                                                SimTime now) const;
  std::span<const IntervalSample> server_window(const std::string& server,
                                                SimDuration window,
                                                SimTime now) const;
  /// Latest tier sample, or a default-constructed one if none.
  TierSample latest_tier(SeriesId id) const;
  TierSample latest_tier(const std::string& tier) const;

  /// Drops every sample AND every interned id (outstanding SeriesIds are
  /// invalidated).
  void clear();

 private:
  static SeriesId intern(const std::string& name,
                         std::unordered_map<std::string, SeriesId>& index,
                         std::vector<std::string>& names);

  // Determinism audit (DESIGN.md §8): both indexes are lookup-only — every
  // access is find/emplace/clear by key; ordered traversal always goes
  // through the SeriesId-indexed vectors below, so hash order can never
  // reach a result.
  std::unordered_map<std::string, SeriesId> server_index_;
  std::unordered_map<std::string, SeriesId> tier_index_;
  std::vector<std::string> server_names_;  ///< by SeriesId
  std::vector<std::string> tier_names_;    ///< by SeriesId
  std::vector<std::vector<IntervalSample>> servers_;  ///< by SeriesId
  std::vector<std::vector<TierSample>> tiers_;        ///< by SeriesId
  std::vector<SystemSample> system_;
  bool ingestion_enabled_ = true;
  std::uint64_t dropped_samples_ = 0;
};

}  // namespace conscale
