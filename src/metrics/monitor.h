// MonitoringAgent: the per-VM monitoring agents + 1 s pollers of Fig 8
// (step 1). It attaches a 50 ms IntervalAggregator to every server (present
// and future — scale-out VMs are picked up through the vm-ready callback),
// polls tier-level CPU utilization and VM counts every second, and folds
// client-side completions into per-second system samples. Everything lands
// in the MetricsWarehouse.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/tier_system.h"
#include "common/run_context.h"
#include "metrics/interval.h"
#include "metrics/warehouse.h"
#include "simcore/simulation.h"

namespace conscale {

/// Defaults: §III-B's 50 ms fine interval; Fig 8's 1 s agent reports.
struct MonitoringParams {
  SimDuration fine_period = 0.050;
  SimDuration coarse_period = 1.0;
};

class MonitoringAgent {
 public:
  using Params = MonitoringParams;

  /// `context` (optional) scopes the agent's diagnostics to the owning run;
  /// it must outlive the agent.
  MonitoringAgent(Simulation& sim, TierSystem& system,
                  MetricsWarehouse& warehouse, Params params = {},
                  const RunContext* context = nullptr);

  /// Lane-partitioned runs: resolves the Simulation hosting a tier, so each
  /// per-VM IntervalAggregator ticks on the tier's own lane (its samples
  /// land in per-series warehouse vectors no other lane touches). Must be
  /// set before the run starts; unset, every aggregator uses the agent's
  /// sim — the serial behavior.
  using TierSimResolver = std::function<Simulation&(std::size_t)>;
  void set_tier_sim_resolver(TierSimResolver resolver) {
    tier_sim_resolver_ = std::move(resolver);
  }

  /// Wire this to the client population's completion hook.
  void on_client_completion(SimTime issued, double rt);
  /// Wire this to the client population's rejection hook (admission
  /// control); folds shed requests into the per-second system samples.
  void on_client_rejection(SimTime rejected_at);

  const Params& params() const { return params_; }

  /// Total hook underflows across every attached aggregator (see
  /// IntervalAggregator::hook_underflows). Zero in a correct run; the
  /// experiment runner exports it so tests fail loudly on accounting bugs.
  std::uint64_t hook_underflows() const;

 private:
  void attach(std::size_t tier_index, Vm& vm);
  void coarse_tick(SimTime now);

  Simulation& sim_;
  TierSystem& system_;
  const RunContext* ctx_;
  MetricsWarehouse& warehouse_;
  Params params_;
  TierSimResolver tier_sim_resolver_;
  std::vector<std::unique_ptr<IntervalAggregator>> aggregators_;
  /// Servers already wired. A restarted VM fires vm-ready again with the
  /// same server; attaching twice would double-count its samples.
  std::set<std::string> attached_;
  /// Interned warehouse ids per tier index — the 1 s poll records by id.
  std::vector<MetricsWarehouse::SeriesId> tier_ids_;
  std::unique_ptr<PeriodicTask> coarse_task_;

  // Per-second client completion accumulation.
  std::uint64_t window_completions_ = 0;
  std::uint64_t window_rejections_ = 0;
  double window_rt_sum_ = 0.0;
  double window_rt_max_ = 0.0;
};

}  // namespace conscale
