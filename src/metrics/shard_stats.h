// Ordered merge of per-shard client statistics (DESIGN.md §6.6).
//
// Each SessionShard accumulates its own response-time histogram and request
// counters on its own lane — no shared metrics state ever crosses a lane
// boundary during a run. After LaneEngine::run returns, the laned runners
// fold the shards into one ClientStats in *shard-index order*. The order
// matters only for bit-level reproducibility of the merged histogram
// (LogHistogram::merge adds bucket counts, and integer addition is
// commutative, but max_recorded tracking and any future floating
// accumulators are safest folded in one canonical order); it costs nothing
// and keeps the merge independent of lane placement.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "workload/session_shard.h"

namespace conscale {

/// Whole-population client statistics, shaped like ClientPopulation's
/// accessors so ScalingRunResult extraction is identical for both paths.
struct ClientStats {
  LogHistogram response_times;
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_rejected = 0;
};

/// Folds `shards` in shard-index order regardless of the vector's order.
ClientStats merge_shard_stats(
    const std::vector<const SessionShard*>& shards);

}  // namespace conscale
