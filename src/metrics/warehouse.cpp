#include "metrics/warehouse.h"

#include <algorithm>
#include <cassert>

namespace conscale {

namespace {
const std::vector<IntervalSample> kEmptyIntervalSeries;
const std::vector<TierSample> kEmptyTierSeries;
}  // namespace

MetricsWarehouse::SeriesId MetricsWarehouse::intern(
    const std::string& name,
    std::unordered_map<std::string, SeriesId>& index,
    std::vector<std::string>& names) {
  auto [it, inserted] =
      index.emplace(name, static_cast<SeriesId>(names.size()));
  if (inserted) names.push_back(name);
  return it->second;
}

MetricsWarehouse::SeriesId MetricsWarehouse::server_id(
    const std::string& server) {
  const SeriesId id = intern(server, server_index_, server_names_);
  if (id >= servers_.size()) servers_.resize(id + 1);
  return id;
}

MetricsWarehouse::SeriesId MetricsWarehouse::tier_id(const std::string& tier) {
  const SeriesId id = intern(tier, tier_index_, tier_names_);
  if (id >= tiers_.size()) tiers_.resize(id + 1);
  return id;
}

void MetricsWarehouse::record_server(SeriesId id,
                                     const IntervalSample& sample) {
  assert(id < servers_.size());
  if (!ingestion_enabled_) {
    ++dropped_samples_;
    return;
  }
  servers_[id].push_back(sample);
}

void MetricsWarehouse::record_tier(SeriesId id, const TierSample& sample) {
  assert(id < tiers_.size());
  if (!ingestion_enabled_) {
    ++dropped_samples_;
    return;
  }
  tiers_[id].push_back(sample);
}

void MetricsWarehouse::record_server(const std::string& server,
                                     const IntervalSample& sample) {
  record_server(server_id(server), sample);
}

void MetricsWarehouse::record_tier(const std::string& tier,
                                   const TierSample& sample) {
  record_tier(tier_id(tier), sample);
}

void MetricsWarehouse::record_system(const SystemSample& sample) {
  if (!ingestion_enabled_) {
    ++dropped_samples_;
    return;
  }
  system_.push_back(sample);
}

const std::vector<IntervalSample>& MetricsWarehouse::server_series(
    SeriesId id) const {
  return id < servers_.size() ? servers_[id] : kEmptyIntervalSeries;
}

const std::vector<IntervalSample>& MetricsWarehouse::server_series(
    const std::string& server) const {
  auto it = server_index_.find(server);
  return it == server_index_.end() ? kEmptyIntervalSeries
                                   : server_series(it->second);
}

const std::vector<TierSample>& MetricsWarehouse::tier_series(
    SeriesId id) const {
  return id < tiers_.size() ? tiers_[id] : kEmptyTierSeries;
}

const std::vector<TierSample>& MetricsWarehouse::tier_series(
    const std::string& tier) const {
  auto it = tier_index_.find(tier);
  return it == tier_index_.end() ? kEmptyTierSeries : tier_series(it->second);
}

std::vector<std::string> MetricsWarehouse::server_names() const {
  std::vector<std::string> names = server_names_;
  std::sort(names.begin(), names.end());
  return names;
}

std::span<const IntervalSample> MetricsWarehouse::server_window(
    SeriesId id, SimDuration window, SimTime now) const {
  const auto& series = server_series(id);
  const SimTime cutoff = now - window;
  // Series are appended in time order; binary-search both window edges.
  auto first = std::lower_bound(
      series.begin(), series.end(), cutoff,
      [](const IntervalSample& s, SimTime t) { return s.t_end <= t; });
  auto last = std::upper_bound(
      first, series.end(), now,
      [](SimTime t, const IntervalSample& s) { return t < s.t_end; });
  return {first, last};
}

std::span<const IntervalSample> MetricsWarehouse::server_window(
    const std::string& server, SimDuration window, SimTime now) const {
  auto it = server_index_.find(server);
  if (it == server_index_.end()) return {};
  return server_window(it->second, window, now);
}

TierSample MetricsWarehouse::latest_tier(SeriesId id) const {
  const auto& series = tier_series(id);
  return series.empty() ? TierSample{} : series.back();
}

TierSample MetricsWarehouse::latest_tier(const std::string& tier) const {
  auto it = tier_index_.find(tier);
  return it == tier_index_.end() ? TierSample{} : latest_tier(it->second);
}

void MetricsWarehouse::clear() {
  server_index_.clear();
  tier_index_.clear();
  server_names_.clear();
  tier_names_.clear();
  servers_.clear();
  tiers_.clear();
  system_.clear();
}

}  // namespace conscale
