#include "metrics/warehouse.h"

#include <algorithm>

namespace conscale {

namespace {
const std::vector<IntervalSample> kEmptyIntervalSeries;
const std::vector<TierSample> kEmptyTierSeries;
}  // namespace

void MetricsWarehouse::record_server(const std::string& server,
                                     const IntervalSample& sample) {
  if (!ingestion_enabled_) {
    ++dropped_samples_;
    return;
  }
  servers_[server].push_back(sample);
}

void MetricsWarehouse::record_tier(const std::string& tier,
                                   const TierSample& sample) {
  if (!ingestion_enabled_) {
    ++dropped_samples_;
    return;
  }
  tiers_[tier].push_back(sample);
}

void MetricsWarehouse::record_system(const SystemSample& sample) {
  if (!ingestion_enabled_) {
    ++dropped_samples_;
    return;
  }
  system_.push_back(sample);
}

const std::vector<IntervalSample>& MetricsWarehouse::server_series(
    const std::string& server) const {
  auto it = servers_.find(server);
  return it == servers_.end() ? kEmptyIntervalSeries : it->second;
}

const std::vector<TierSample>& MetricsWarehouse::tier_series(
    const std::string& tier) const {
  auto it = tiers_.find(tier);
  return it == tiers_.end() ? kEmptyTierSeries : it->second;
}

std::vector<std::string> MetricsWarehouse::server_names() const {
  std::vector<std::string> names;
  names.reserve(servers_.size());
  for (const auto& [name, series] : servers_) names.push_back(name);
  return names;
}

std::vector<IntervalSample> MetricsWarehouse::server_window(
    const std::string& server, SimDuration window, SimTime now) const {
  const auto& series = server_series(server);
  const SimTime cutoff = now - window;
  // Series are appended in time order; binary-search the window start.
  auto first = std::lower_bound(
      series.begin(), series.end(), cutoff,
      [](const IntervalSample& s, SimTime t) { return s.t_end <= t; });
  std::vector<IntervalSample> out;
  for (auto it = first; it != series.end() && it->t_end <= now; ++it) {
    out.push_back(*it);
  }
  return out;
}

TierSample MetricsWarehouse::latest_tier(const std::string& tier) const {
  const auto& series = tier_series(tier);
  return series.empty() ? TierSample{} : series.back();
}

void MetricsWarehouse::clear() {
  servers_.clear();
  tiers_.clear();
  system_.clear();
}

}  // namespace conscale
