// LatencyBreakdown: per-server response-time distributions over a run.
// The end-to-end percentiles say *that* the system spiked; the breakdown
// says *where* — which tier's in-server response time (queueing included)
// carries the tail. Used by the reports and by diagnosis in the examples.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/tier_system.h"
#include "common/histogram.h"

namespace conscale {

class LatencyBreakdown {
 public:
  /// Attaches RT recorders to every present and future server of `system`.
  explicit LatencyBreakdown(TierSystem& system);

  struct ServerStats {
    std::string server;
    std::string tier;
    std::uint64_t completions = 0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };

  /// Snapshot for every server that completed at least one request,
  /// ordered by tier then server name.
  std::vector<ServerStats> snapshot() const;

  /// Tier-aggregated view (all replicas merged).
  std::vector<ServerStats> by_tier() const;

  /// Render as an aligned table.
  static std::string format(const std::vector<ServerStats>& rows);

 private:
  void attach(const std::string& tier, Vm& vm);

  struct Recorder {
    std::string tier;
    LogHistogram histogram;
  };
  // Stable addresses for the hook closures.
  std::map<std::string, std::unique_ptr<Recorder>> recorders_;
};

}  // namespace conscale
