#include "metrics/monitor.h"

#include <algorithm>

namespace conscale {

MonitoringAgent::MonitoringAgent(Simulation& sim, TierSystem& system,
                                 MetricsWarehouse& warehouse, Params params,
                                 const RunContext* context)
    : sim_(sim), system_(system),
      ctx_(context ? context : &RunContext::global()), warehouse_(warehouse),
      params_(params) {
  system_.add_vm_ready_callback(
      [this](std::size_t tier_index, Vm& vm) { attach(tier_index, vm); });
  coarse_task_ = std::make_unique<PeriodicTask>(
      sim_, params_.coarse_period, [this](SimTime now) { coarse_tick(now); });
}

void MonitoringAgent::attach(std::size_t tier_index, Vm& vm) {
  if (!attached_.insert(vm.name()).second) return;  // restarted VM
  Simulation& host_sim =
      tier_sim_resolver_ ? tier_sim_resolver_(tier_index) : sim_;
  auto aggregator = std::make_unique<IntervalAggregator>(
      host_sim, vm.server(), params_.fine_period);
  // Intern the series once at attach; every 50 ms ingest is then an index.
  const MetricsWarehouse::SeriesId id = warehouse_.server_id(vm.name());
  aggregator->start([this, id](const IntervalSample& sample) {
    warehouse_.record_server(id, sample);
  });
  aggregators_.push_back(std::move(aggregator));
}

std::uint64_t MonitoringAgent::hook_underflows() const {
  std::uint64_t total = 0;
  for (const auto& aggregator : aggregators_) {
    total += aggregator->hook_underflows();
  }
  return total;
}

void MonitoringAgent::on_client_completion(SimTime, double rt) {
  ++window_completions_;
  window_rt_sum_ += rt;
  window_rt_max_ = std::max(window_rt_max_, rt);
}

void MonitoringAgent::on_client_rejection(SimTime) {
  ++window_rejections_;
}

void MonitoringAgent::coarse_tick(SimTime now) {
  for (std::size_t i = 0; i < system_.tier_count(); ++i) {
    TierGroup& tier = system_.tier(i);
    if (tier_ids_.size() <= i) {
      tier_ids_.push_back(warehouse_.tier_id(tier.name()));
    }
    TierSample sample;
    sample.t = now;
    sample.avg_cpu_utilization = tier.poll_avg_cpu_utilization();
    sample.billed_vms = static_cast<std::uint32_t>(tier.billed_vms());
    sample.running_vms = static_cast<std::uint32_t>(tier.running_vms());
    warehouse_.record_tier(tier_ids_[i], sample);
  }
  SystemSample sys;
  sys.t = now;
  sys.throughput = static_cast<double>(window_completions_) /
                   params_.coarse_period;
  sys.mean_rt = window_completions_
                    ? window_rt_sum_ / static_cast<double>(window_completions_)
                    : 0.0;
  sys.max_rt = window_rt_max_;
  sys.total_vms = static_cast<std::uint32_t>(system_.total_billed_vms());
  sys.rejected = static_cast<std::uint32_t>(window_rejections_);
  warehouse_.record_system(sys);
  window_completions_ = 0;
  window_rejections_ = 0;
  window_rt_sum_ = 0.0;
  window_rt_max_ = 0.0;
}

}  // namespace conscale
