// Fine-grained interval metrics (§III-B): per 50 ms window we record a
// server's throughput (completions in the window), mean response time of
// those completions, and concurrency (time-average number of requests being
// processed). These {Q, TP, RT} tuples are the raw material of the SCT model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/stats.h"
#include "simcore/simulation.h"
#include "tier/server.h"

namespace conscale {

struct IntervalSample {
  SimTime t_end = 0.0;       ///< end of the measurement interval
  double concurrency = 0.0;  ///< time-averaged #requests in processing
  double throughput = 0.0;   ///< completions per second over the interval
  double mean_rt = 0.0;      ///< mean response time of completions [s]
  std::uint64_t completions = 0;
};

/// Builds IntervalSamples from a server's admission/departure hooks.
/// Attach once; read via the callback given to start().
class IntervalAggregator {
 public:
  using SampleCallback = std::function<void(const IntervalSample&)>;

  /// Attaches to `server` immediately; emits a sample every `period` once
  /// start() is called.
  IntervalAggregator(Simulation& sim, Server& server, SimDuration period);

  void start(SampleCallback on_sample);
  void stop();

  SimDuration period() const { return period_; }

  /// Hook entry points (wired to the server's admission/departure/abort
  /// hooks by the constructor; public so adapters and tests can drive the
  /// aggregator without a Server).
  void note_admitted(SimTime now);
  void note_departed(SimTime now, double rt);
  void note_aborted(SimTime now);

  /// Departure/abort hooks that arrived with no matching admission. A
  /// correct hook wiring never produces these; silently clamping them (the
  /// old behavior) would skew the concurrency integral, so they are counted
  /// and must be asserted zero by the harness (see MonitoringAgent).
  std::uint64_t hook_underflows() const { return hook_underflows_; }

 private:
  void advance_integral(SimTime now);
  void emit(SimTime now);

  Simulation& sim_;
  SimDuration period_;
  SampleCallback on_sample_;
  std::unique_ptr<PeriodicTask> tick_;

  // Concurrency integration state.
  std::size_t current_ = 0;
  SimTime last_change_ = 0.0;
  double integral_ = 0.0;
  SimTime window_start_ = 0.0;
  std::uint64_t hook_underflows_ = 0;

  // Completion accumulation for the current window.
  std::uint64_t completions_ = 0;
  double rt_sum_ = 0.0;
};

}  // namespace conscale
