#include "metrics/interval.h"

namespace conscale {

IntervalAggregator::IntervalAggregator(Simulation& sim, Server& server,
                                       SimDuration period)
    : sim_(sim), period_(period), last_change_(sim.now()),
      window_start_(sim.now()) {
  // Seed the integrator with whatever is already in flight so mid-run
  // attachment (VMs added by scale-out) starts correct.
  current_ = server.processing();
  Server::Hooks hooks;
  hooks.on_admitted = [this](SimTime now) { note_admitted(now); };
  hooks.on_departed = [this](SimTime now, double rt) {
    note_departed(now, rt);
  };
  hooks.on_aborted = [this](SimTime now) { note_aborted(now); };
  server.add_hooks(std::move(hooks));
}

void IntervalAggregator::start(SampleCallback on_sample) {
  on_sample_ = std::move(on_sample);
  window_start_ = sim_.now();
  last_change_ = sim_.now();
  integral_ = 0.0;
  completions_ = 0;
  rt_sum_ = 0.0;
  tick_ = std::make_unique<PeriodicTask>(
      sim_, period_, [this](SimTime now) { emit(now); });
}

void IntervalAggregator::stop() { tick_.reset(); }

void IntervalAggregator::advance_integral(SimTime now) {
  integral_ += static_cast<double>(current_) * (now - last_change_);
  last_change_ = now;
}

void IntervalAggregator::note_admitted(SimTime now) {
  advance_integral(now);
  ++current_;
}

void IntervalAggregator::note_departed(SimTime now, double rt) {
  advance_integral(now);
  if (current_ == 0) {
    ++hook_underflows_;  // accounting bug upstream; see hook_underflows()
  } else {
    --current_;
  }
  ++completions_;
  rt_sum_ += rt;
}

void IntervalAggregator::note_aborted(SimTime now) {
  // A crash-errored request leaves the concurrency integral but is not a
  // completion — throughput and mean RT must not credit it.
  advance_integral(now);
  if (current_ == 0) {
    ++hook_underflows_;
  } else {
    --current_;
  }
}

void IntervalAggregator::emit(SimTime now) {
  advance_integral(now);
  const double window = now - window_start_;
  IntervalSample sample;
  sample.t_end = now;
  sample.concurrency = window > 0.0 ? integral_ / window : 0.0;
  sample.throughput =
      window > 0.0 ? static_cast<double>(completions_) / window : 0.0;
  sample.mean_rt =
      completions_ > 0 ? rt_sum_ / static_cast<double>(completions_) : 0.0;
  sample.completions = completions_;
  if (on_sample_) on_sample_(sample);

  window_start_ = now;
  integral_ = 0.0;
  completions_ = 0;
  rt_sum_ = 0.0;
}

}  // namespace conscale
