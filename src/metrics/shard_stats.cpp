#include "metrics/shard_stats.h"

#include <algorithm>

namespace conscale {

ClientStats merge_shard_stats(
    const std::vector<const SessionShard*>& shards) {
  std::vector<const SessionShard*> ordered = shards;
  std::sort(ordered.begin(), ordered.end(),
            [](const SessionShard* a, const SessionShard* b) {
              return a->shard_index() < b->shard_index();
            });
  ClientStats stats;
  for (const SessionShard* shard : ordered) {
    stats.response_times.merge(shard->response_times());
    stats.requests_issued += shard->requests_issued();
    stats.requests_completed += shard->requests_completed();
    stats.requests_rejected += shard->requests_rejected();
  }
  return stats;
}

}  // namespace conscale
