#include "metrics/latency_breakdown.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/time_units.h"

namespace conscale {

LatencyBreakdown::LatencyBreakdown(TierSystem& system) {
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    TierGroup& tier = system.tier(i);
    for (Vm* vm : tier.all_vms()) attach(tier.name(), *vm);
  }
  system.add_vm_ready_callback([this, &system](std::size_t tier_index,
                                               Vm& vm) {
    attach(system.tier(tier_index).name(), vm);
  });
}

void LatencyBreakdown::attach(const std::string& tier, Vm& vm) {
  if (recorders_.count(vm.name())) return;
  auto recorder = std::make_unique<Recorder>();
  recorder->tier = tier;
  Recorder* raw = recorder.get();
  Server::Hooks hooks;
  hooks.on_departed = [raw](SimTime, double rt) { raw->histogram.add(rt); };
  vm.server().add_hooks(std::move(hooks));
  recorders_.emplace(vm.name(), std::move(recorder));
}

std::vector<LatencyBreakdown::ServerStats> LatencyBreakdown::snapshot() const {
  std::vector<ServerStats> rows;
  for (const auto& [name, recorder] : recorders_) {
    if (recorder->histogram.total() == 0) continue;
    ServerStats row;
    row.server = name;
    row.tier = recorder->tier;
    row.completions = recorder->histogram.total();
    row.mean_ms = to_ms(recorder->histogram.mean());
    row.p50_ms = to_ms(recorder->histogram.percentile(50.0));
    row.p95_ms = to_ms(recorder->histogram.percentile(95.0));
    row.p99_ms = to_ms(recorder->histogram.percentile(99.0));
    row.max_ms = to_ms(recorder->histogram.max_recorded());
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const ServerStats& a, const ServerStats& b) {
              return a.tier != b.tier ? a.tier < b.tier
                                      : a.server < b.server;
            });
  return rows;
}

std::vector<LatencyBreakdown::ServerStats> LatencyBreakdown::by_tier() const {
  std::map<std::string, LogHistogram> merged;
  for (const auto& [name, recorder] : recorders_) {
    auto [it, inserted] = merged.try_emplace(recorder->tier);
    it->second.merge(recorder->histogram);
  }
  std::vector<ServerStats> rows;
  for (const auto& [tier, histogram] : merged) {
    if (histogram.total() == 0) continue;
    ServerStats row;
    row.server = "*";
    row.tier = tier;
    row.completions = histogram.total();
    row.mean_ms = to_ms(histogram.mean());
    row.p50_ms = to_ms(histogram.percentile(50.0));
    row.p95_ms = to_ms(histogram.percentile(95.0));
    row.p99_ms = to_ms(histogram.percentile(99.0));
    row.max_ms = to_ms(histogram.max_recorded());
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string LatencyBreakdown::format(const std::vector<ServerStats>& rows) {
  std::ostringstream out;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "  %-10s %-10s %12s %8s %8s %8s %8s %8s\n",
                "tier", "server", "completions", "mean", "p50", "p95", "p99",
                "max");
  out << buf;
  for (const auto& r : rows) {
    std::snprintf(buf, sizeof(buf),
                  "  %-10s %-10s %12llu %7.1f %7.1f %7.1f %7.1f %7.1f\n",
                  r.tier.c_str(), r.server.c_str(),
                  static_cast<unsigned long long>(r.completions), r.mean_ms,
                  r.p50_ms, r.p95_ms, r.p99_ms, r.max_ms);
    out << buf;
  }
  return out.str();
}

}  // namespace conscale
