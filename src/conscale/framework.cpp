#include "conscale/framework.h"

#include <algorithm>
#include <stdexcept>

namespace conscale {

ScalingFramework::ScalingFramework(Simulation& sim, TierSystem& system,
                                   MetricsWarehouse& warehouse,
                                   const std::string& controller_ref,
                                   FrameworkConfig config,
                                   const RunContext* context) {
  const ControllerRef ref = parse_controller_ref(controller_ref);
  const ControllerSpec& spec = ControllerRegistry::global().at(ref.name);
  key_ = spec.name;
  name_ = spec.display_name;
  if (!ref.options.empty()) {
    if (!spec.configure) {
      throw std::runtime_error("controller '" + spec.name +
                               "' takes no options (reference was '" +
                               controller_ref + "')");
    }
    spec.configure(ref.options, config);
  }
  hw_ = std::make_unique<HardwareAgent>(sim, system, context);
  sw_ = std::make_unique<SoftwareAgent>(sim, system, context);
  FrameworkParts parts = spec.build(ControllerBuildContext{
      sim, system, warehouse, *hw_, *sw_, config, context});
  if (!parts.controller) {
    throw std::runtime_error("controller '" + spec.name +
                             "': builder returned no controller");
  }
  estimator_ = std::move(parts.estimator);
  policy_ = std::move(parts.policy);
  controller_ = std::move(parts.controller);
}

std::vector<ScalingEvent> ScalingFramework::all_events() const {
  std::vector<ScalingEvent> events = hw_->events();
  const auto& soft = sw_->events();
  events.insert(events.end(), soft.begin(), soft.end());
  std::stable_sort(events.begin(), events.end(),
                   [](const ScalingEvent& a, const ScalingEvent& b) {
                     return a.t < b.t;
                   });
  return events;
}

namespace detail {

void register_builtin_controllers(ControllerRegistry& registry) {
  registry.register_spec(ControllerSpec{
      .name = "ec2",
      .display_name = "EC2-AutoScaling",
      .description = "reactive threshold hardware scaling; soft resources "
                     "stay at their static initial allocation",
      .reference = "paper baseline (Amazon EC2 Auto Scaling)",
      .configure = nullptr,
      .build =
          [](const ControllerBuildContext& ctx) {
            FrameworkParts parts;
            parts.policy = std::make_unique<Ec2AutoScalingPolicy>();
            parts.controller = std::make_unique<DecisionController>(
                ctx.sim, ctx.system, ctx.warehouse, ctx.hw, ctx.sw,
                *parts.policy, ctx.config.controller);
            return parts;
          },
  });
  registry.register_spec(ControllerSpec{
      .name = "dcm",
      .display_name = "DCM",
      .description = "threshold scaling plus offline pre-profiled optimal "
                     "concurrency (stale when conditions drift)",
      .reference = "Wang et al., TPDS'18",
      .configure = nullptr,
      .build =
          [](const ControllerBuildContext& ctx) {
            FrameworkParts parts;
            parts.policy = std::make_unique<DcmPolicy>(
                ctx.system, ctx.sw, ctx.config.targets,
                ctx.config.dcm_profile);
            parts.controller = std::make_unique<DecisionController>(
                ctx.sim, ctx.system, ctx.warehouse, ctx.hw, ctx.sw,
                *parts.policy, ctx.config.controller);
            return parts;
          },
  });
  registry.register_spec(ControllerSpec{
      .name = "conscale",
      .display_name = "ConScale",
      .description = "threshold scaling plus the online SCT concurrency "
                     "estimator (the paper's contribution)",
      .reference = "Liu et al., IPPS'20",
      .configure =
          [](const ControllerOptions& options, FrameworkConfig& config) {
            OptionReader reader("conscale", options);
            reader.get("headroom", config.conscale_headroom);
            reader.finish();
          },
      .build =
          [](const ControllerBuildContext& ctx) {
            FrameworkParts parts;
            parts.estimator = std::make_unique<ConcurrencyEstimatorService>(
                ctx.sim, ctx.system, ctx.warehouse, ctx.config.estimator,
                ctx.run_context);
            parts.policy = std::make_unique<ConScalePolicy>(
                ctx.system, ctx.sw, ctx.config.targets, *parts.estimator,
                ctx.config.conscale_headroom);
            parts.controller = std::make_unique<DecisionController>(
                ctx.sim, ctx.system, ctx.warehouse, ctx.hw, ctx.sw,
                *parts.policy, ctx.config.controller);
            return parts;
          },
  });
}

}  // namespace detail

}  // namespace conscale
