#include "conscale/framework.h"

#include <algorithm>

namespace conscale {

std::string to_string(FrameworkKind kind) {
  switch (kind) {
    case FrameworkKind::kEc2AutoScaling:
      return "EC2-AutoScaling";
    case FrameworkKind::kDcm:
      return "DCM";
    case FrameworkKind::kConScale:
      return "ConScale";
  }
  return "?";
}

ScalingFramework::ScalingFramework(Simulation& sim, NTierSystem& system,
                                   MetricsWarehouse& warehouse,
                                   FrameworkKind kind, FrameworkConfig config,
                                   const RunContext* context)
    : kind_(kind), name_(to_string(kind)) {
  hw_ = std::make_unique<HardwareAgent>(sim, system, context);
  sw_ = std::make_unique<SoftwareAgent>(sim, system, context);
  switch (kind_) {
    case FrameworkKind::kEc2AutoScaling:
      policy_ = std::make_unique<Ec2AutoScalingPolicy>();
      break;
    case FrameworkKind::kDcm:
      policy_ = std::make_unique<DcmPolicy>(system, *sw_, config.targets,
                                            config.dcm_profile);
      break;
    case FrameworkKind::kConScale:
      estimator_ = std::make_unique<ConcurrencyEstimatorService>(
          sim, system, warehouse, config.estimator, context);
      policy_ = std::make_unique<ConScalePolicy>(system, *sw_, config.targets,
                                                 *estimator_,
                                                 config.conscale_headroom);
      break;
  }
  controller_ = std::make_unique<DecisionController>(
      sim, system, warehouse, *hw_, *sw_, *policy_, config.controller);
}

std::vector<ScalingEvent> ScalingFramework::all_events() const {
  std::vector<ScalingEvent> events = hw_->events();
  const auto& soft = sw_->events();
  events.insert(events.end(), soft.begin(), soft.end());
  std::stable_sort(events.begin(), events.end(),
                   [](const ScalingEvent& a, const ScalingEvent& b) {
                     return a.t < b.t;
                   });
  return events;
}

}  // namespace conscale
