// ScalingFramework: convenience bundle that assembles one of the three
// evaluated scaling frameworks — EC2-AutoScaling, DCM, or ConScale — from
// the building blocks (agents, estimator service, policy, controller).
// Experiments construct one of these per run.
#pragma once

#include <memory>
#include <string>

#include "cluster/ntier_system.h"
#include "conscale/agents.h"
#include "conscale/controller.h"
#include "conscale/estimator_service.h"
#include "conscale/policy.h"
#include "metrics/warehouse.h"

namespace conscale {

enum class FrameworkKind { kEc2AutoScaling, kDcm, kConScale };

std::string to_string(FrameworkKind kind);

struct FrameworkConfig {
  ControllerConfig controller;
  EstimatorServiceParams estimator;  ///< used by ConScale only
  SoftAdaptTargets targets;          ///< used by DCM and ConScale
  DcmProfile dcm_profile;            ///< used by DCM only
  double conscale_headroom = 1.4;    ///< see ConScalePolicy
};

class ScalingFramework {
 public:
  /// `context` (optional) scopes the framework's components' log output to
  /// the owning run; it must outlive the framework.
  ScalingFramework(Simulation& sim, NTierSystem& system,
                   MetricsWarehouse& warehouse, FrameworkKind kind,
                   FrameworkConfig config,
                   const RunContext* context = nullptr);

  FrameworkKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  HardwareAgent& hardware_agent() { return *hw_; }
  SoftwareAgent& software_agent() { return *sw_; }
  DecisionController& controller() { return *controller_; }
  /// Null unless kind == kConScale.
  ConcurrencyEstimatorService* estimator_service() { return estimator_.get(); }

  /// Hardware + soft actuation events merged and time-sorted.
  std::vector<ScalingEvent> all_events() const;

 private:
  FrameworkKind kind_;
  std::string name_;
  std::unique_ptr<HardwareAgent> hw_;
  std::unique_ptr<SoftwareAgent> sw_;
  std::unique_ptr<ConcurrencyEstimatorService> estimator_;
  std::unique_ptr<SoftResourcePolicy> policy_;
  std::unique_ptr<DecisionController> controller_;
};

}  // namespace conscale
