// ScalingFramework: the per-run factory/bundle for a scaling framework.
// Given a controller reference ("conscale", "pi(target_ms=200)") it looks up
// the ControllerSpec in the registry, applies any reference options onto the
// run's FrameworkConfig, wires up the two actuation agents, and lets the
// spec's builder assemble the estimator/policy/controller parts. Experiments
// construct one of these per run; the old closed `FrameworkKind` enum is
// gone — frameworks are registry names now (see conscale/registry.h).
#pragma once

#include <memory>
#include <string>

#include "cluster/tier_system.h"
#include "conscale/agents.h"
#include "conscale/controller.h"
#include "conscale/estimator_service.h"
#include "conscale/policy.h"
#include "conscale/registry.h"
#include "conscale/zoo/zoo_params.h"
#include "metrics/warehouse.h"

namespace conscale {

/// The union of every controller's tuning knobs, defaulted sensibly. A
/// spec's `configure` hook overlays reference options onto the relevant
/// members; its builder reads only the members it cares about.
struct FrameworkConfig {
  ControllerConfig controller;
  EstimatorServiceParams estimator;  ///< used by ConScale only
  SoftAdaptTargets targets;          ///< concurrency-aware policies
  DcmProfile dcm_profile;            ///< used by DCM only
  double conscale_headroom = 1.4;    ///< see ConScalePolicy
  // --- controller zoo (src/conscale/zoo) ---
  PiPolicyParams pi;
  FuzzyPolicyParams fuzzy;
  VerticalControllerParams vertical;
  PredictiveControllerParams predictive;
  HybridControllerParams hybrid;
};

class ScalingFramework {
 public:
  /// `controller_ref` is a registry reference — "ec2", "conscale",
  /// "pi(target_ms=250)", ... Throws std::runtime_error (listing the
  /// registered controllers) on an unknown name, malformed reference
  /// syntax, or invalid options. `context` (optional) scopes the
  /// framework's components' log output to the owning run; it must outlive
  /// the framework.
  ScalingFramework(Simulation& sim, TierSystem& system,
                   MetricsWarehouse& warehouse,
                   const std::string& controller_ref, FrameworkConfig config,
                   const RunContext* context = nullptr);

  /// Registry key of the spec this framework was built from ("conscale").
  const std::string& key() const { return key_; }
  /// Display name for reports ("ConScale").
  const std::string& name() const { return name_; }
  HardwareAgent& hardware_agent() { return *hw_; }
  SoftwareAgent& software_agent() { return *sw_; }
  Controller& controller() { return *controller_; }
  const Controller& controller() const { return *controller_; }
  /// The soft-resource policy, or null for controllers that manage soft
  /// resources themselves (or not at all).
  SoftResourcePolicy* policy() { return policy_.get(); }
  /// Null unless the controller runs an online estimator (ConScale).
  ConcurrencyEstimatorService* estimator_service() { return estimator_.get(); }

  /// Hardware + soft actuation events merged and time-sorted.
  std::vector<ScalingEvent> all_events() const;

 private:
  std::string key_;
  std::string name_;
  std::unique_ptr<HardwareAgent> hw_;
  std::unique_ptr<SoftwareAgent> sw_;
  // Declaration order is the reference chain: the controller may hold the
  // policy, the policy may hold the estimator. Members destruct in reverse,
  // so dependents go first.
  std::unique_ptr<ConcurrencyEstimatorService> estimator_;
  std::unique_ptr<SoftResourcePolicy> policy_;
  std::unique_ptr<Controller> controller_;
};

namespace detail {
/// Registers the paper's three frameworks ("ec2", "dcm", "conscale") with
/// their historical display names. Called once by the registry constructor;
/// exposed for tests that build a private registry.
void register_builtin_controllers(ControllerRegistry& registry);
}  // namespace detail

}  // namespace conscale
