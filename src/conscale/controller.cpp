#include "conscale/controller.h"

#include "common/logging.h"

namespace conscale {

DecisionController::DecisionController(Simulation& sim, TierSystem& system,
                                       const MetricsWarehouse& warehouse,
                                       HardwareAgent& hw, SoftwareAgent& sw,
                                       SoftResourcePolicy& policy,
                                       ControllerConfig config)
    : sim_(sim), system_(system), warehouse_(warehouse), hw_(hw), sw_(sw),
      policy_(policy), config_(config) {
  rules_.reserve(system_.tier_count());
  for (std::size_t i = 0; i < system_.tier_count(); ++i) {
    rules_.emplace_back(config_.rule);
  }
  // When a scale-out VM comes online: start that tier's cooldown and let the
  // policy adapt soft resources to the new topology (§IV: "once the hardware
  // scaling is done"). Bootstrap VMs coming up at t=0 are not scaling
  // actions and must not start cooldowns or trigger adaptation.
  system_.add_vm_ready_callback([this](std::size_t tier_index, Vm& vm) {
    if (vm.is_bootstrap()) return;
    rules_[tier_index].on_action(sim_.now());
    ++adapts_;
    policy_.adapt(sim_.now());
  });
  tick_task_ = std::make_unique<PeriodicTask>(
      sim_, config_.tick, [this](SimTime now) { tick(now); });
  if (config_.periodic_adapt > 0.0) {
    adapt_task_ = std::make_unique<PeriodicTask>(
        sim_, config_.periodic_adapt, [this](SimTime now) {
          ++adapts_;
          policy_.adapt(now);
        });
  }
}

ControllerCounters DecisionController::counters() const {
  return {{"adapts", adapts_},
          {"scale_ins", scale_ins_},
          {"scale_outs", scale_outs_},
          {"stale_skips", stale_skips_}};
}

void DecisionController::tick(SimTime now) {
  for (std::size_t i = 0; i < system_.tier_count(); ++i) {
    TierGroup& tier = system_.tier(i);
    const TierSample sample = warehouse_.latest_tier(tier.name());
    if (config_.metric_staleness_limit > 0.0 &&
        now - sample.t > config_.metric_staleness_limit) {
      // Monitoring dropout: the newest sample is too old to act on. Holding
      // is safer than replaying it — a frozen utilization reading would
      // otherwise keep triggering the same decision every tick.
      ++stale_skips_;
      continue;
    }
    const bool blocked = tier.provisioning_vms() > 0;
    const ScalingDirection direction =
        rules_[i].evaluate(now, sample.avg_cpu_utilization, blocked);
    switch (direction) {
      case ScalingDirection::kOut:
        if (hw_.scale_out(i)) {
          ++scale_outs_;
          rules_[i].on_action(now);
          // The adapt happens when the VM becomes Running (vm-ready hook).
        }
        break;
      case ScalingDirection::kIn:
        if (hw_.scale_in(i)) {
          ++scale_ins_;
          rules_[i].on_action(now);
          ++adapts_;
          policy_.adapt(now);
        }
        break;
      case ScalingDirection::kNone:
        break;
    }
  }
}

}  // namespace conscale
