// ConcurrencyEstimatorService: the Optimal Concurrency Estimator of Fig 8
// (step 2-3). Asynchronously (on its own refresh period, decoupled from the
// decision loop) it pulls the last `window` of fine-grained samples for
// every server of each monitored tier from the Metrics Warehouse, merges
// them per tier into a ScatterSet — replicas of a tier run identical
// software, so their {Q, TP} tuples describe the same curve — runs the SCT
// estimation, and caches the freshest rational range per tier. The Decision
// Controller reads the cache (the paper's "Historical Result" box) when it
// needs a recommendation.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/tier_system.h"
#include "common/run_context.h"
#include "metrics/warehouse.h"
#include "sct/estimator.h"
#include "simcore/simulation.h"

namespace conscale {

struct EstimatorServiceParams {
  SimDuration window = 180.0;   ///< §III-A: "short time window (e.g. 3 min)"
  SimDuration refresh = 5.0;    ///< asynchronous re-estimation period
  SctParams sct;                ///< estimation-phase knobs
  /// Exponential smoothing applied to successive per-tier estimates (the
  /// "Historical Result" box of Fig 8): blends the new q_lower/q_upper with
  /// the cached one so a single noisy window cannot yank the allocation.
  /// 1.0 = no smoothing (use the raw estimate).
  double smoothing = 0.5;
  /// Monitoring-dropout guard: when > 0, a tier whose newest fine-grained
  /// sample is older than this many seconds does not re-estimate — the
  /// cached range (learned from complete data) stays authoritative instead
  /// of being diluted by a half-empty window. 0 disables (fault-free
  /// default). Dropouts shorter than `window` still estimate as long as the
  /// newest surviving sample passes this bound.
  SimDuration max_staleness = 0.0;
};

class ConcurrencyEstimatorService {
 public:
  ConcurrencyEstimatorService(Simulation& sim, TierSystem& system,
                              const MetricsWarehouse& warehouse,
                              EstimatorServiceParams params,
                              const RunContext* context = nullptr);

  /// Latest cached estimate for a tier, if any estimation has succeeded.
  std::optional<RationalRange> tier_estimate(
      const std::string& tier_name) const;

  /// Forces an immediate re-estimation of every tier (used right after a
  /// hardware scaling completes, when a fresh recommendation is needed).
  void refresh_now();

  /// Every estimate ever produced, for reporting.
  struct HistoryEntry {
    SimTime t = 0.0;
    std::string tier;
    RationalRange range;
  };
  const std::vector<HistoryEntry>& history() const { return history_; }

  /// Tier-refreshes skipped because the window was stale (dropout guard).
  std::uint64_t stale_skip_count() const { return stale_skips_; }

  const EstimatorServiceParams& params() const { return params_; }

 private:
  void refresh(SimTime now);

  Simulation& sim_;
  TierSystem& system_;
  const RunContext* ctx_;
  const MetricsWarehouse& warehouse_;
  EstimatorServiceParams params_;
  SctEstimator estimator_;
  std::map<std::string, RationalRange> cache_;
  std::vector<HistoryEntry> history_;
  std::uint64_t stale_skips_ = 0;
  std::unique_ptr<PeriodicTask> refresh_task_;
};

}  // namespace conscale
