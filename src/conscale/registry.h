// ControllerRegistry: the string-keyed plug-in seam that replaced the old
// closed `FrameworkKind` enum. A scaling framework is registered once as a
// `ControllerSpec` — registry key, display name, one-line description, an
// optional per-controller option parser, and a builder that assembles the
// run-scoped parts (estimator / policy / controller) — and from then on
// every experiment layer (runner, RunSet, benches, reports) refers to it by
// name. Adding a policy is one implementation file plus one registration
// line; no switch site anywhere else moves.
//
// Controller references accepted everywhere a framework name is taken:
//   "conscale"                       bare registry key
//   "pi(target_ms=250;kp=0.9)"       key plus controller-specific options,
//                                    parsed by the spec's `configure` hook
// Unknown keys and unknown option names abort loudly with the list of
// registered controllers (resp. the offending option), never silently fall
// back to a default.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/tier_system.h"
#include "common/run_context.h"
#include "conscale/agents.h"
#include "conscale/controller.h"
#include "conscale/estimator_service.h"
#include "conscale/policy.h"
#include "metrics/warehouse.h"
#include "simcore/simulation.h"

namespace conscale {

struct FrameworkConfig;  // conscale/framework.h

/// Everything a builder may wire a controller into. The agents are owned by
/// the enclosing ScalingFramework and outlive the parts; `config` is only
/// guaranteed alive during the build call — copy what you keep.
struct ControllerBuildContext {
  Simulation& sim;
  TierSystem& system;
  MetricsWarehouse& warehouse;
  HardwareAgent& hw;
  SoftwareAgent& sw;
  const FrameworkConfig& config;
  const RunContext* run_context = nullptr;
};

/// What a builder returns. `controller` is mandatory; `estimator` and
/// `policy` are optional collaborators the framework keeps alive for the
/// run (destruction order: controller first, then policy, then estimator —
/// the reverse of the reference chain ConScale-style builders create).
struct FrameworkParts {
  std::unique_ptr<ConcurrencyEstimatorService> estimator;
  std::unique_ptr<SoftResourcePolicy> policy;
  std::unique_ptr<Controller> controller;
};

/// Controller-specific `key=value` options parsed out of a reference like
/// "pi(target_ms=250;kp=0.9)". Ordered so error messages are deterministic.
using ControllerOptions = std::map<std::string, std::string>;

struct ControllerSpec {
  /// Registry key ("ec2", "conscale", "pi", ...): lower-case, stable, what
  /// benches take on the command line.
  std::string name;
  /// Report/CSV/JSON name ("EC2-AutoScaling", ...). The three paper
  /// frameworks keep their historical display names byte-for-byte so
  /// existing goldens don't move.
  std::string display_name;
  /// One line for --list-controllers and the README table.
  std::string description;
  /// Literature grounding ("Venkatarama & Sekaran", ...); may be empty.
  std::string reference;
  /// Applies controller-specific options onto the run's FrameworkConfig.
  /// Null means the controller takes no options — passing any aborts.
  /// Implementations must reject unknown option names loudly.
  std::function<void(const ControllerOptions&, FrameworkConfig&)> configure;
  /// Assembles the run-scoped parts. Must be pure w.r.t. process state:
  /// everything it creates hangs off the context's run-scoped objects.
  std::function<FrameworkParts(const ControllerBuildContext&)> build;
};

/// A parsed controller reference: registry key + options, pre-validation.
struct ControllerRef {
  std::string name;
  ControllerOptions options;
};

/// Splits "name" / "name(k=v;k2=v2)" into its parts. Throws
/// std::runtime_error on malformed syntax; does NOT touch the registry
/// (lookup and option validation happen at build/config time).
ControllerRef parse_controller_ref(const std::string& text);

/// Canonical text form: "name" or "name(k=v;k2=v2)", options in map order.
/// Round-trips through parse_controller_ref.
std::string to_string(const ControllerRef& ref);

class ControllerRegistry {
 public:
  /// The process-wide registry, pre-populated with the three paper
  /// frameworks and the zoo controllers. Construction is thread-safe
  /// (function-local static); after that the run path only reads. Tests
  /// that register extra specs do so single-threaded.
  static ControllerRegistry& global();

  /// Registers a spec. Throws std::invalid_argument on an empty name, a
  /// missing builder, or a duplicate registration.
  void register_spec(ControllerSpec spec);

  bool contains(const std::string& name) const;
  /// Throws std::runtime_error naming the registered controllers when
  /// `name` is unknown — the loud-validation path every bench shares.
  const ControllerSpec& at(const std::string& name) const;
  /// Registry keys in sorted order (std::map iteration order).
  std::vector<std::string> names() const;
  /// All specs in key order, for --list-controllers and bench grids.
  std::vector<const ControllerSpec*> all() const;

  /// Parses a comma-separated controller list ("ec2,conscale,pi(kp=1)");
  /// commas inside option parentheses do not split. Every referenced name
  /// is validated against the registry — unknown ones abort with the
  /// registered list. An empty string yields an empty vector.
  std::vector<ControllerRef> parse_list(const std::string& text) const;

 private:
  ControllerRegistry();

  std::map<std::string, ControllerSpec> specs_;
};

/// Helper for `configure` hooks: pull typed values out of a ControllerOptions
/// map and reject anything left over. Usage:
///
///   OptionReader reader("pi", options);
///   reader.get("target_ms", config.pi.target_rt_ms);
///   reader.get("kp", config.pi.kp);
///   reader.finish();   // throws on unknown option names
class OptionReader {
 public:
  OptionReader(std::string controller, const ControllerOptions& options)
      : controller_(std::move(controller)), remaining_(options) {}

  /// Each get() consumes the option if present (leaving `out` untouched
  /// otherwise) and throws std::runtime_error on an unparsable value.
  void get(const std::string& key, double& out);
  void get(const std::string& key, int& out);
  /// Accepts "true"/"false"/"1"/"0".
  void get(const std::string& key, bool& out);

  /// Throws std::runtime_error naming any option no get() consumed.
  void finish() const;

 private:
  std::string take(const std::string& key, bool& found);

  std::string controller_;
  ControllerOptions remaining_;
};

}  // namespace conscale
