#include "conscale/registry.h"

#include <sstream>
#include <stdexcept>

#include "conscale/framework.h"
#include "conscale/zoo/zoo.h"

namespace conscale {

namespace {

std::string strip(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

ControllerOptions parse_options(const std::string& body,
                                const std::string& full) {
  ControllerOptions options;
  std::string token;
  std::istringstream in(body);
  // ';' is the documented separator; ',' works too since the list splitter
  // is paren-aware.
  while (std::getline(in, token, ';')) {
    std::istringstream inner(token);
    std::string piece;
    while (std::getline(inner, piece, ',')) {
      piece = strip(piece);
      if (piece.empty()) continue;
      const auto eq = piece.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::runtime_error("controller reference '" + full +
                                 "': option '" + piece +
                                 "' is not key=value");
      }
      const std::string key = strip(piece.substr(0, eq));
      if (!options.emplace(key, strip(piece.substr(eq + 1))).second) {
        throw std::runtime_error("controller reference '" + full +
                                 "': duplicate option '" + key + "'");
      }
    }
  }
  return options;
}

}  // namespace

ControllerRef parse_controller_ref(const std::string& text) {
  const std::string trimmed = strip(text);
  ControllerRef ref;
  const auto open = trimmed.find('(');
  if (open == std::string::npos) {
    ref.name = trimmed;
  } else {
    if (trimmed.empty() || trimmed.back() != ')') {
      throw std::runtime_error("controller reference '" + text +
                               "': missing closing ')'");
    }
    ref.name = strip(trimmed.substr(0, open));
    ref.options = parse_options(
        trimmed.substr(open + 1, trimmed.size() - open - 2), text);
  }
  if (ref.name.empty()) {
    throw std::runtime_error("controller reference '" + text +
                             "': empty controller name");
  }
  return ref;
}

std::string to_string(const ControllerRef& ref) {
  if (ref.options.empty()) return ref.name;
  std::ostringstream out;
  out << ref.name << "(";
  bool first = true;
  for (const auto& [key, value] : ref.options) {
    if (!first) out << ";";
    out << key << "=" << value;
    first = false;
  }
  out << ")";
  return out.str();
}

ControllerRegistry& ControllerRegistry::global() {
  static ControllerRegistry registry;
  return registry;
}

ControllerRegistry::ControllerRegistry() {
  detail::register_builtin_controllers(*this);
  zoo::register_zoo_controllers(*this);
}

void ControllerRegistry::register_spec(ControllerSpec spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("ControllerSpec: empty registry name");
  }
  if (!spec.build) {
    throw std::invalid_argument("ControllerSpec '" + spec.name +
                                "': missing builder");
  }
  if (spec.display_name.empty()) spec.display_name = spec.name;
  const std::string name = spec.name;
  if (!specs_.emplace(name, std::move(spec)).second) {
    throw std::invalid_argument("ControllerSpec '" + name +
                                "': already registered");
  }
}

bool ControllerRegistry::contains(const std::string& name) const {
  return specs_.find(name) != specs_.end();
}

const ControllerSpec& ControllerRegistry::at(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) {
    std::ostringstream message;
    message << "unknown controller '" << name << "'; registered:";
    for (const auto& [key, spec] : specs_) message << " " << key;
    throw std::runtime_error(message.str());
  }
  return it->second;
}

std::vector<std::string> ControllerRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(specs_.size());
  for (const auto& [key, spec] : specs_) result.push_back(key);
  return result;
}

std::vector<const ControllerSpec*> ControllerRegistry::all() const {
  std::vector<const ControllerSpec*> result;
  result.reserve(specs_.size());
  for (const auto& [key, spec] : specs_) result.push_back(&spec);
  return result;
}

std::vector<ControllerRef> ControllerRegistry::parse_list(
    const std::string& text) const {
  std::vector<ControllerRef> refs;
  std::string current;
  int depth = 0;
  const auto flush = [&] {
    const std::string piece = strip(current);
    current.clear();
    if (piece.empty()) return;
    ControllerRef ref = parse_controller_ref(piece);
    at(ref.name);  // loud validation: unknown names list the registry
    refs.push_back(std::move(ref));
  };
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      flush();
    } else {
      current.push_back(c);
    }
  }
  if (depth != 0) {
    throw std::runtime_error("controller list '" + text +
                             "': unbalanced parentheses");
  }
  flush();
  return refs;
}

std::string OptionReader::take(const std::string& key, bool& found) {
  const auto it = remaining_.find(key);
  if (it == remaining_.end()) {
    found = false;
    return "";
  }
  found = true;
  std::string value = it->second;
  remaining_.erase(it);
  return value;
}

void OptionReader::get(const std::string& key, double& out) {
  bool found = false;
  const std::string value = take(key, found);
  if (!found) return;
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty()) {
    throw std::runtime_error("controller '" + controller_ + "': option '" +
                             key + "=" + value + "' is not a number");
  }
  out = parsed;
}

void OptionReader::get(const std::string& key, int& out) {
  bool found = false;
  const std::string value = take(key, found);
  if (!found) return;
  std::size_t used = 0;
  int parsed = 0;
  try {
    parsed = std::stoi(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty()) {
    throw std::runtime_error("controller '" + controller_ + "': option '" +
                             key + "=" + value + "' is not an integer");
  }
  out = parsed;
}

void OptionReader::get(const std::string& key, bool& out) {
  bool found = false;
  const std::string value = take(key, found);
  if (!found) return;
  if (value == "true" || value == "1") {
    out = true;
  } else if (value == "false" || value == "0") {
    out = false;
  } else {
    throw std::runtime_error("controller '" + controller_ + "': option '" +
                             key + "=" + value + "' is not a boolean");
  }
}

void OptionReader::finish() const {
  if (remaining_.empty()) return;
  std::ostringstream message;
  message << "controller '" << controller_ << "': unknown option(s):";
  for (const auto& [key, value] : remaining_) message << " " << key;
  throw std::runtime_error(message.str());
}

}  // namespace conscale
