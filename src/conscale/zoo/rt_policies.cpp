#include "conscale/zoo/rt_policies.h"

#include <algorithm>
#include <cmath>
#include <optional>

namespace conscale::zoo {

namespace {

/// Seeds the control variable from the live allocation so the first applied
/// value continues the scenario's initial topology instead of jumping.
double initial_allocation(TierSystem& system, const SoftAdaptTargets& targets,
                          int fallback) {
  if (!targets.thread_adapt_tiers.empty()) {
    const std::size_t pool =
        system.tier(targets.thread_adapt_tiers.front()).thread_pool_size();
    if (pool > 0) return static_cast<double>(pool);
  }
  return static_cast<double>(fallback);
}

/// The latest client-perceived sample with completions in it, or nullopt.
/// A zero mean RT means nothing completed in the second (e.g. during a
/// total stall) — there is no error signal to act on.
std::optional<SystemSample> latest_rt_sample(
    const MetricsWarehouse& warehouse) {
  const auto& series = warehouse.system_series();
  if (series.empty()) return std::nullopt;
  const SystemSample& sample = series.back();
  if (sample.mean_rt <= 0.0) return std::nullopt;
  return sample;
}

void apply_allocation(TierSystem& system, SoftwareAgent& agent,
                      const SoftAdaptTargets& targets, double allocation) {
  const int threads = static_cast<int>(std::lround(allocation));
  apply_optima(system, agent, targets,
               [threads](std::size_t) -> std::optional<int> {
                 return threads;
               });
}

}  // namespace

PiResponseTimePolicy::PiResponseTimePolicy(TierSystem& system,
                                           SoftwareAgent& agent,
                                           const MetricsWarehouse& warehouse,
                                           SoftAdaptTargets targets,
                                           PiPolicyParams params)
    : system_(system), agent_(agent), warehouse_(warehouse),
      targets_(std::move(targets)), params_(params) {}

void PiResponseTimePolicy::adapt(SimTime) {
  const auto sample = latest_rt_sample(warehouse_);
  if (!sample) return;
  if (sample->t == last_sample_t_) return;  // one PI update per observation
  last_sample_t_ = sample->t;
  const double target = params_.target_rt_ms * 1e-3;
  const double error = (target - sample->mean_rt) / target;
  if (!primed_) {
    allocation_ = initial_allocation(system_, targets_, params_.max_threads);
    prev_error_ = error;
    primed_ = true;
  }
  double integral = params_.ki * error;
  if (params_.conditional_integration) {
    // Conditional integration (ROADMAP zoo follow-up (a)): drop the ki term
    // when it can only wind up —
    //  * the allocation is pinned at a clamp and the error pushes further
    //    into it (the controller would bank a debt it must unwind before it
    //    can react to the next excursion);
    //  * RT is over target while an adapted tier is still provisioning VMs:
    //    the excursion reflects hardware that has not arrived yet, not
    //    excess concurrency — integrating it shrinks the pools exactly when
    //    the tier needs them open and keeps them pinned after the VMs land.
    const bool at_min =
        error < 0.0 &&
        allocation_ <= static_cast<double>(params_.min_threads);
    const bool at_max =
        error > 0.0 &&
        allocation_ >= static_cast<double>(params_.max_threads);
    const bool actuator_lag = error < 0.0 && targets_provisioning();
    if (at_min || at_max || actuator_lag) integral = 0.0;
  }
  allocation_ += params_.kp * (error - prev_error_) + integral;
  allocation_ = std::clamp(allocation_,
                           static_cast<double>(params_.min_threads),
                           static_cast<double>(params_.max_threads));
  prev_error_ = error;
  apply_allocation(system_, agent_, targets_, allocation_);
}

bool PiResponseTimePolicy::targets_provisioning() const {
  // The error signal is the *system* mean RT, so a provisioning window on
  // any tier pollutes it — scan them all, not just the adapted ones.
  for (std::size_t tier = 0; tier < system_.tier_count(); ++tier) {
    if (system_.tier(tier).provisioning_vms() > 0) return true;
  }
  return false;
}

FuzzyResponseTimePolicy::FuzzyResponseTimePolicy(
    TierSystem& system, SoftwareAgent& agent,
    const MetricsWarehouse& warehouse, SoftAdaptTargets targets,
    FuzzyPolicyParams params)
    : system_(system), agent_(agent), warehouse_(warehouse),
      targets_(std::move(targets)), params_(params) {}

double FuzzyResponseTimePolicy::defuzzify_step(double error,
                                               double delta_error) const {
  // Normalize so |error| == error_scale saturates the outer sets.
  const double e = std::clamp(error / params_.error_scale, -1.0, 1.0);
  const double de = std::clamp(delta_error / params_.error_scale, -1.0, 1.0);
  // Triangular memberships over [-1, 1].
  const double e_m[3] = {std::max(0.0, -e), std::max(0.0, 1.0 - std::abs(e)),
                         std::max(0.0, e)};
  const double de_m[3] = {std::max(0.0, -de),
                          std::max(0.0, 1.0 - std::abs(de)),
                          std::max(0.0, de)};
  // Output singletons for the standard anti-diagonal PI rule table
  // (rows: error N/Z/P, cols: delta-error N/Z/P). Negative error = RT over
  // target = shrink concurrency.
  const double large = params_.step_large;
  const double small = params_.step_small;
  const double table[3][3] = {{-large, -small, 0.0},
                              {-small, 0.0, small},
                              {0.0, small, large}};
  double weight_sum = 0.0;
  double value_sum = 0.0;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const double w = std::min(e_m[i], de_m[j]);
      weight_sum += w;
      value_sum += w * table[i][j];
    }
  }
  return weight_sum > 0.0 ? value_sum / weight_sum : 0.0;
}

void FuzzyResponseTimePolicy::adapt(SimTime) {
  const auto sample = latest_rt_sample(warehouse_);
  if (!sample) return;
  if (sample->t == last_sample_t_) return;
  last_sample_t_ = sample->t;
  const double target = params_.target_rt_ms * 1e-3;
  const double error = (target - sample->mean_rt) / target;
  if (!primed_) {
    allocation_ = initial_allocation(system_, targets_, params_.max_threads);
    prev_error_ = error;
    primed_ = true;
  }
  allocation_ += defuzzify_step(error, error - prev_error_);
  allocation_ = std::clamp(allocation_,
                           static_cast<double>(params_.min_threads),
                           static_cast<double>(params_.max_threads));
  prev_error_ = error;
  apply_allocation(system_, agent_, targets_, allocation_);
}

}  // namespace conscale::zoo
