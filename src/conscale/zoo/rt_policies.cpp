#include "conscale/zoo/rt_policies.h"

#include <algorithm>
#include <cmath>
#include <optional>

namespace conscale::zoo {

namespace {

/// Seeds the control variable from the live allocation so the first applied
/// value continues the scenario's initial topology instead of jumping.
double initial_allocation(NTierSystem& system, const SoftAdaptTargets& targets,
                          int fallback) {
  if (!targets.thread_adapt_tiers.empty()) {
    const std::size_t pool =
        system.tier(targets.thread_adapt_tiers.front()).thread_pool_size();
    if (pool > 0) return static_cast<double>(pool);
  }
  return static_cast<double>(fallback);
}

/// The latest client-perceived sample with completions in it, or nullopt.
/// A zero mean RT means nothing completed in the second (e.g. during a
/// total stall) — there is no error signal to act on.
std::optional<SystemSample> latest_rt_sample(
    const MetricsWarehouse& warehouse) {
  const auto& series = warehouse.system_series();
  if (series.empty()) return std::nullopt;
  const SystemSample& sample = series.back();
  if (sample.mean_rt <= 0.0) return std::nullopt;
  return sample;
}

void apply_allocation(NTierSystem& system, SoftwareAgent& agent,
                      const SoftAdaptTargets& targets, double allocation) {
  const int threads = static_cast<int>(std::lround(allocation));
  apply_optima(system, agent, targets,
               [threads](std::size_t) -> std::optional<int> {
                 return threads;
               });
}

}  // namespace

PiResponseTimePolicy::PiResponseTimePolicy(NTierSystem& system,
                                           SoftwareAgent& agent,
                                           const MetricsWarehouse& warehouse,
                                           SoftAdaptTargets targets,
                                           PiPolicyParams params)
    : system_(system), agent_(agent), warehouse_(warehouse),
      targets_(std::move(targets)), params_(params) {}

void PiResponseTimePolicy::adapt(SimTime) {
  const auto sample = latest_rt_sample(warehouse_);
  if (!sample) return;
  if (sample->t == last_sample_t_) return;  // one PI update per observation
  last_sample_t_ = sample->t;
  const double target = params_.target_rt_ms * 1e-3;
  const double error = (target - sample->mean_rt) / target;
  if (!primed_) {
    allocation_ = initial_allocation(system_, targets_, params_.max_threads);
    prev_error_ = error;
    primed_ = true;
  }
  allocation_ += params_.kp * (error - prev_error_) + params_.ki * error;
  allocation_ = std::clamp(allocation_,
                           static_cast<double>(params_.min_threads),
                           static_cast<double>(params_.max_threads));
  prev_error_ = error;
  apply_allocation(system_, agent_, targets_, allocation_);
}

FuzzyResponseTimePolicy::FuzzyResponseTimePolicy(
    NTierSystem& system, SoftwareAgent& agent,
    const MetricsWarehouse& warehouse, SoftAdaptTargets targets,
    FuzzyPolicyParams params)
    : system_(system), agent_(agent), warehouse_(warehouse),
      targets_(std::move(targets)), params_(params) {}

double FuzzyResponseTimePolicy::defuzzify_step(double error,
                                               double delta_error) const {
  // Normalize so |error| == error_scale saturates the outer sets.
  const double e = std::clamp(error / params_.error_scale, -1.0, 1.0);
  const double de = std::clamp(delta_error / params_.error_scale, -1.0, 1.0);
  // Triangular memberships over [-1, 1].
  const double e_m[3] = {std::max(0.0, -e), std::max(0.0, 1.0 - std::abs(e)),
                         std::max(0.0, e)};
  const double de_m[3] = {std::max(0.0, -de),
                          std::max(0.0, 1.0 - std::abs(de)),
                          std::max(0.0, de)};
  // Output singletons for the standard anti-diagonal PI rule table
  // (rows: error N/Z/P, cols: delta-error N/Z/P). Negative error = RT over
  // target = shrink concurrency.
  const double large = params_.step_large;
  const double small = params_.step_small;
  const double table[3][3] = {{-large, -small, 0.0},
                              {-small, 0.0, small},
                              {0.0, small, large}};
  double weight_sum = 0.0;
  double value_sum = 0.0;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const double w = std::min(e_m[i], de_m[j]);
      weight_sum += w;
      value_sum += w * table[i][j];
    }
  }
  return weight_sum > 0.0 ? value_sum / weight_sum : 0.0;
}

void FuzzyResponseTimePolicy::adapt(SimTime) {
  const auto sample = latest_rt_sample(warehouse_);
  if (!sample) return;
  if (sample->t == last_sample_t_) return;
  last_sample_t_ = sample->t;
  const double target = params_.target_rt_ms * 1e-3;
  const double error = (target - sample->mean_rt) / target;
  if (!primed_) {
    allocation_ = initial_allocation(system_, targets_, params_.max_threads);
    prev_error_ = error;
    primed_ = true;
  }
  allocation_ += defuzzify_step(error, error - prev_error_);
  allocation_ = std::clamp(allocation_,
                           static_cast<double>(params_.min_threads),
                           static_cast<double>(params_.max_threads));
  prev_error_ = error;
  apply_allocation(system_, agent_, targets_, allocation_);
}

}  // namespace conscale::zoo
