// The controller zoo: scaling frameworks beyond the paper's three, each one
// implementation file plus one registration line in zoo.cpp. Registered
// keys: "pi", "fuzzy", "vertical", "holt-winters".
#pragma once

namespace conscale {

class ControllerRegistry;

namespace zoo {

/// Registers every zoo controller. Called once by the registry constructor;
/// exposed for tests that build a private registry.
void register_zoo_controllers(ControllerRegistry& registry);

}  // namespace zoo
}  // namespace conscale
