// Robust vertical scaler (controller zoo), after Makridis et al.
// (arXiv:1811.05533): keep each managed tier's per-VM CPU *entitlement* (the
// hypervisor-credit speed window the fault injector also drives) tracking
// measured usage plus headroom. Horizontal scaling stays on the shared
// threshold DecisionController — the entitlement loop reclaims the slack
// horizontal scaling leaves behind, and hands capacity back before the
// threshold rule would have to add a whole VM.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/tier_system.h"
#include "conscale/agents.h"
#include "conscale/controller.h"
#include "conscale/zoo/zoo_params.h"
#include "metrics/warehouse.h"
#include "simcore/simulation.h"

namespace conscale::zoo {

/// Composes the shared threshold DecisionController (horizontal + policy
/// adaptation) with a periodic per-tier entitlement review:
///   usage_k   = utilization_k * entitlement_k        (in nominal-CPU units)
///   desired_k = clamp(usage_k / target_utilization)
///   e_{k+1}   = e_k + smoothing * (desired_k - e_k), actuated outside the
///               deadband only.
/// Utilization is measured against the *entitled* speed, so trimming raises
/// the reading — the loop converges onto target_utilization, which sits
/// safely below the threshold rule's 80 % scale-out line.
class VerticalEntitlementController final : public Controller {
 public:
  VerticalEntitlementController(Simulation& sim, TierSystem& system,
                                const MetricsWarehouse& warehouse,
                                HardwareAgent& hw, SoftwareAgent& sw,
                                SoftResourcePolicy& policy,
                                const ControllerConfig& controller_config,
                                VerticalControllerParams params);

  ControllerCounters counters() const override;

 private:
  void review(SimTime now);

  TierSystem& system_;
  const MetricsWarehouse& warehouse_;
  HardwareAgent& hw_;
  VerticalControllerParams params_;
  DecisionController horizontal_;
  std::vector<double> entitlement_;  ///< by tier index
  std::unique_ptr<PeriodicTask> review_task_;
  std::uint64_t raises_ = 0;
  std::uint64_t trims_ = 0;
  std::uint64_t holds_ = 0;
};

}  // namespace conscale::zoo
