#include "conscale/zoo/vertical_controller.h"

#include <algorithm>
#include <cmath>

namespace conscale::zoo {

VerticalEntitlementController::VerticalEntitlementController(
    Simulation& sim, TierSystem& system, const MetricsWarehouse& warehouse,
    HardwareAgent& hw, SoftwareAgent& sw, SoftResourcePolicy& policy,
    const ControllerConfig& controller_config,
    VerticalControllerParams params)
    : system_(system), warehouse_(warehouse), hw_(hw), params_(params),
      horizontal_(sim, system, warehouse, hw, sw, policy, controller_config),
      entitlement_(system.tier_count(), params.max_entitlement) {
  review_task_ = std::make_unique<PeriodicTask>(
      sim, params_.period, [this](SimTime now) { review(now); });
}

void VerticalEntitlementController::review(SimTime) {
  for (const std::size_t tier_index : params_.tiers) {
    if (tier_index >= system_.tier_count()) continue;
    TierGroup& tier = system_.tier(tier_index);
    const TierSample sample = warehouse_.latest_tier(tier.name());
    if (sample.running_vms == 0) continue;  // nothing to entitle yet
    const double current = entitlement_[tier_index];
    // Utilization is relative to the entitled speed; convert to nominal-CPU
    // usage so the target tracks real demand, not the shrinking window.
    const double usage = sample.avg_cpu_utilization * current;
    const double desired =
        std::clamp(usage / params_.target_utilization,
                   params_.min_entitlement, params_.max_entitlement);
    const double next =
        current + params_.smoothing * (desired - current);
    if (std::abs(next - current) < params_.deadband) {
      ++holds_;
      continue;
    }
    if (hw_.set_tier_cpu_entitlement(tier_index, next)) {
      entitlement_[tier_index] = next;
      if (next > current) {
        ++raises_;
      } else {
        ++trims_;
      }
    }
  }
}

ControllerCounters VerticalEntitlementController::counters() const {
  ControllerCounters counters = horizontal_.counters();
  counters.emplace("entitlement_holds", holds_);
  counters.emplace("entitlement_raises", raises_);
  counters.emplace("entitlement_trims", trims_);
  return counters;
}

}  // namespace conscale::zoo
