// Holt-Winters predictive autoscaler (controller zoo). The reactive
// frameworks all pay the VM preparation delay *after* a ramp arrives: the
// threshold rule needs sustained hot samples, then the new VM needs
// vm_prep_delay (15 s) to boot, and the tail spikes in between. This
// controller instead runs double-exponential smoothing (level + trend) on
// the observed completion rate and scales each tier to the load forecast
// `horizon` seconds ahead — chosen larger than the preparation delay, so
// capacity lands before the ramp does. Proactive class of the
// Qu/Calheiros/Buyya autoscaling taxonomy (arXiv:1609.09224).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/tier_system.h"
#include "conscale/agents.h"
#include "conscale/controller.h"
#include "conscale/zoo/zoo_params.h"
#include "metrics/warehouse.h"
#include "simcore/simulation.h"

namespace conscale::zoo {

class PredictiveController final : public Controller {
 public:
  PredictiveController(Simulation& sim, TierSystem& system,
                       const MetricsWarehouse& warehouse, HardwareAgent& hw,
                       PredictiveControllerParams params);

  ControllerCounters counters() const override;

 private:
  void step(SimTime now);

  TierSystem& system_;
  const MetricsWarehouse& warehouse_;
  HardwareAgent& hw_;
  PredictiveControllerParams params_;
  std::unique_ptr<PeriodicTask> step_task_;
  // Holt state over the 1 s completion-rate series, updated once per period.
  double level_ = 0.0;
  double trend_ = 0.0;
  bool primed_ = false;
  std::vector<SimTime> cooldown_until_;  ///< by tier index
  std::uint64_t forecasts_ = 0;
  std::uint64_t scale_outs_ = 0;
  std::uint64_t scale_ins_ = 0;
};

}  // namespace conscale::zoo
