// Response-time-regulating soft-resource policies (controller zoo). Both
// close the loop on the client-perceived 1 s mean response time from the
// Metrics Warehouse and actuate the adapted tiers' per-server concurrency
// through the same apply_optima arithmetic DCM/ConScale use — so the
// experimental variable against the paper's frameworks is purely *what
// signal* drives the soft resources (RT error vs. profiled/estimated
// optimal concurrency), not how allocations are applied.
//
// After Venkatarama & Sekaran (arXiv:1011.1738), who regulate Apache's
// MaxClients: response time above the setpoint means the concurrency limit
// admits too much multithreading contention and must come down; below the
// setpoint the limit can grow back toward the configured maximum.
#pragma once

#include <string>

#include "cluster/tier_system.h"
#include "conscale/agents.h"
#include "conscale/policy.h"
#include "conscale/zoo/zoo_params.h"
#include "metrics/warehouse.h"

namespace conscale::zoo {

/// Velocity-form PI on the normalized RT error
///   e = (target - rt) / target
/// with the integral living in the allocation itself:
///   a_k = clamp(a_{k-1} + kp (e_k - e_{k-1}) + ki e_k).
/// Anti-windup is conditional integration (PiPolicyParams::
/// conditional_integration, default on): the ki term is skipped while the
/// clamp is saturated in the error's direction or while an adapted tier is
/// still provisioning VMs (actuator lag — the regime that produced the
/// original zoo grid's 9.5 s dual_phase p99).
class PiResponseTimePolicy final : public SoftResourcePolicy {
 public:
  PiResponseTimePolicy(TierSystem& system, SoftwareAgent& agent,
                       const MetricsWarehouse& warehouse,
                       SoftAdaptTargets targets, PiPolicyParams params);

  std::string name() const override { return "PI-RT"; }
  void adapt(SimTime now) override;

 private:
  /// True while any adapted tier still has VMs in flight — the actuator-lag
  /// window conditional integration suspends the ki term in.
  bool targets_provisioning() const;

  TierSystem& system_;
  SoftwareAgent& agent_;
  const MetricsWarehouse& warehouse_;
  SoftAdaptTargets targets_;
  PiPolicyParams params_;
  double allocation_ = 0.0;  ///< continuous control variable [threads/server]
  double prev_error_ = 0.0;
  SimTime last_sample_t_ = -1.0;  ///< dedups adapt() calls within one second
  bool primed_ = false;
};

/// 9-rule Mamdani table on (error, delta-error), triangular
/// Negative/Zero/Positive memberships, singleton outputs
/// {-large, -small, 0, +small, +large}, weighted-average defuzzification.
class FuzzyResponseTimePolicy final : public SoftResourcePolicy {
 public:
  FuzzyResponseTimePolicy(TierSystem& system, SoftwareAgent& agent,
                          const MetricsWarehouse& warehouse,
                          SoftAdaptTargets targets, FuzzyPolicyParams params);

  std::string name() const override { return "Fuzzy-RT"; }
  void adapt(SimTime now) override;

 private:
  double defuzzify_step(double error, double delta_error) const;

  TierSystem& system_;
  SoftwareAgent& agent_;
  const MetricsWarehouse& warehouse_;
  SoftAdaptTargets targets_;
  FuzzyPolicyParams params_;
  double allocation_ = 0.0;
  double prev_error_ = 0.0;
  SimTime last_sample_t_ = -1.0;
  bool primed_ = false;
};

}  // namespace conscale::zoo
