// Tuning knobs for the controller zoo (src/conscale/zoo). These live in
// their own dependency-light header so FrameworkConfig can embed them
// without pulling the controller implementations into every experiment
// translation unit. Defaults are calibrated on the six-trace grid at the
// paper's scale (see EXPERIMENTS.md, "controller zoo").
#pragma once

#include <cstddef>
#include <vector>

#include "common/time_units.h"

namespace conscale {

/// PI response-time regulator (Venkatarama & Sekaran, arXiv:1011.1738):
/// velocity-form PI on the normalized end-to-end response-time error,
/// actuating the adapted tiers' per-server concurrency the same way
/// DCM/ConScale apply their optima. RT above target shrinks the allocation
/// (shed multithreading contention); RT below target grows it back.
struct PiPolicyParams {
  double target_rt_ms = 250.0;  ///< setpoint for the 1 s mean RT
  double kp = 18.0;             ///< threads per unit normalized error
  double ki = 4.0;              ///< threads per unit error-integral (per adapt)
  int min_threads = 4;          ///< actuation clamp (keeps the pipe open)
  int max_threads = 400;
  /// Conditional integration (anti-windup). The velocity form keeps the
  /// integral inside the clamped allocation, but two regimes still wind it
  /// up: errors pushing further into a saturated clamp, and RT-over-target
  /// errors during VM-provisioning windows — there the excursion reflects
  /// missing hardware, not excess concurrency, and integrating it shrinks
  /// the pools exactly when the tier needs them open, then keeps them
  /// pinned after the VMs land (the 9.5 s dual_phase p99 of the original
  /// zoo grid). When set, the ki term is skipped in both regimes.
  bool conditional_integration = true;
};

/// Fuzzy response-time regulator (Venkatarama & Sekaran): a 9-rule Mamdani
/// table on (error, delta-error) with triangular memberships and singleton
/// outputs, defuzzified by weighted average into a concurrency step.
struct FuzzyPolicyParams {
  double target_rt_ms = 250.0;
  /// Normalized error magnitude at which the Negative/Positive memberships
  /// saturate (1.0 = |RT - target| equal to the target itself).
  double error_scale = 1.0;
  double step_large = 14.0;  ///< output singleton for the LARGE sets [threads]
  double step_small = 5.0;   ///< output singleton for the SMALL sets [threads]
  int min_threads = 4;
  int max_threads = 400;
};

/// Robust vertical scaler (Makridis et al., arXiv:1811.05533): tracks each
/// tier's CPU *entitlement* (the per-VM cpu-speed window) so measured usage
/// sits at `target_utilization` of the entitled capacity — usage plus
/// headroom, smoothed so a single noisy sample cannot yank the allocation.
/// Horizontal scaling stays on the shared threshold rule; the entitlement
/// loop trims the slack horizontal scaling leaves behind.
struct VerticalControllerParams {
  double target_utilization = 0.65;
  double min_entitlement = 0.25;  ///< floor: never below a quarter core
  double max_entitlement = 1.0;   ///< full nominal speed
  double smoothing = 0.5;         ///< first-order lag toward the new target
  double deadband = 0.05;         ///< |change| below this is not actuated
  SimDuration period = 5.0;       ///< entitlement review cadence [s]
  /// Tier indices whose entitlement is managed (standard 3-tier layout:
  /// 1 = app, 2 = db; the web tier stays at full speed).
  std::vector<std::size_t> tiers = {1, 2};
};

/// Holt-Winters predictive autoscaler (Qu/Calheiros/Buyya taxonomy,
/// arXiv:1609.09224, the proactive class): double-exponential smoothing
/// (level + trend) on the observed completion rate, forecast `horizon`
/// seconds ahead — past the VM preparation delay — and scale each tier to
/// the forecast *before* the ramp arrives instead of after it.
struct PredictiveControllerParams {
  double alpha = 0.35;  ///< level smoothing
  double beta = 0.15;   ///< trend smoothing
  SimDuration period = 5.0;   ///< forecast/decision cadence [s]
  SimDuration horizon = 25.0; ///< look-ahead [s]; > vm_prep_delay pays off
  double target_utilization = 0.60;  ///< capacity headroom at the forecast
  /// Scale in only when the forecast load sits below this fraction of the
  /// target band — hysteresis against trading VMs on forecast noise.
  double scale_in_fraction = 0.55;
  SimDuration cooldown = 10.0;  ///< per-tier quiet period after any action
};

/// Hybrid proactive/adaptive autoscaler: the Holt-Winters forecast drives
/// the hardware loop while ConScale's SCT-backed policy re-fits soft
/// resources at every hardware action and on a slow periodic cadence —
/// the zoo's two complementary halves composed (see hybrid_controller.h).
struct HybridControllerParams {
  PredictiveControllerParams forecast;  ///< hardware-loop knobs, shared
  /// Periodic soft-adapt cadence [s]; 0 = adapt at hardware actions only.
  /// Matches the builtin frameworks' ControllerConfig::periodic_adapt
  /// default wiring (make_framework_config uses 10 s).
  SimDuration periodic_adapt = 10.0;
};

}  // namespace conscale
