#include "conscale/zoo/zoo.h"

#include <memory>

#include "conscale/framework.h"
#include "conscale/registry.h"
#include "conscale/zoo/hybrid_controller.h"
#include "conscale/zoo/predictive_controller.h"
#include "conscale/zoo/rt_policies.h"
#include "conscale/zoo/vertical_controller.h"

namespace conscale::zoo {

namespace {

ControllerSpec pi_spec() {
  return ControllerSpec{
      .name = "pi",
      .display_name = "PI-RT",
      .description = "threshold hardware scaling plus a velocity-form PI "
                     "loop regulating mean RT via soft concurrency",
      .reference = "Venkatarama & Sekaran, arXiv:1011.1738",
      .configure =
          [](const ControllerOptions& options, FrameworkConfig& config) {
            OptionReader reader("pi", options);
            reader.get("target_ms", config.pi.target_rt_ms);
            reader.get("kp", config.pi.kp);
            reader.get("ki", config.pi.ki);
            reader.get("min_threads", config.pi.min_threads);
            reader.get("max_threads", config.pi.max_threads);
            reader.get("anti_windup", config.pi.conditional_integration);
            reader.finish();
          },
      .build =
          [](const ControllerBuildContext& ctx) {
            FrameworkParts parts;
            parts.policy = std::make_unique<PiResponseTimePolicy>(
                ctx.system, ctx.sw, ctx.warehouse, ctx.config.targets,
                ctx.config.pi);
            parts.controller = std::make_unique<DecisionController>(
                ctx.sim, ctx.system, ctx.warehouse, ctx.hw, ctx.sw,
                *parts.policy, ctx.config.controller);
            return parts;
          },
  };
}

ControllerSpec fuzzy_spec() {
  return ControllerSpec{
      .name = "fuzzy",
      .display_name = "Fuzzy-RT",
      .description = "threshold hardware scaling plus a 9-rule fuzzy "
                     "controller stepping soft concurrency on RT error",
      .reference = "Venkatarama & Sekaran, arXiv:1011.1738",
      .configure =
          [](const ControllerOptions& options, FrameworkConfig& config) {
            OptionReader reader("fuzzy", options);
            reader.get("target_ms", config.fuzzy.target_rt_ms);
            reader.get("error_scale", config.fuzzy.error_scale);
            reader.get("step_large", config.fuzzy.step_large);
            reader.get("step_small", config.fuzzy.step_small);
            reader.get("min_threads", config.fuzzy.min_threads);
            reader.get("max_threads", config.fuzzy.max_threads);
            reader.finish();
          },
      .build =
          [](const ControllerBuildContext& ctx) {
            FrameworkParts parts;
            parts.policy = std::make_unique<FuzzyResponseTimePolicy>(
                ctx.system, ctx.sw, ctx.warehouse, ctx.config.targets,
                ctx.config.fuzzy);
            parts.controller = std::make_unique<DecisionController>(
                ctx.sim, ctx.system, ctx.warehouse, ctx.hw, ctx.sw,
                *parts.policy, ctx.config.controller);
            return parts;
          },
  };
}

ControllerSpec vertical_spec() {
  return ControllerSpec{
      .name = "vertical",
      .display_name = "Vertical-Robust",
      .description = "threshold scaling plus a robust per-tier CPU "
                     "entitlement loop tracking usage + headroom",
      .reference = "Makridis et al., arXiv:1811.05533",
      .configure =
          [](const ControllerOptions& options, FrameworkConfig& config) {
            OptionReader reader("vertical", options);
            reader.get("target_util", config.vertical.target_utilization);
            reader.get("min_entitlement", config.vertical.min_entitlement);
            reader.get("max_entitlement", config.vertical.max_entitlement);
            reader.get("smoothing", config.vertical.smoothing);
            reader.get("deadband", config.vertical.deadband);
            reader.get("period", config.vertical.period);
            reader.finish();
          },
      .build =
          [](const ControllerBuildContext& ctx) {
            FrameworkParts parts;
            // Soft resources ride the EC2 baseline (static); the controller
            // adds the vertical dimension on top of threshold scaling.
            parts.policy = std::make_unique<Ec2AutoScalingPolicy>();
            parts.controller = std::make_unique<VerticalEntitlementController>(
                ctx.sim, ctx.system, ctx.warehouse, ctx.hw, ctx.sw,
                *parts.policy, ctx.config.controller, ctx.config.vertical);
            return parts;
          },
  };
}

ControllerSpec holt_winters_spec() {
  return ControllerSpec{
      .name = "holt-winters",
      .display_name = "HoltWinters-Pred",
      .description = "proactive scaling on a level+trend forecast of the "
                     "completion rate, ahead of the VM prep delay",
      .reference = "Qu, Calheiros & Buyya, arXiv:1609.09224",
      .configure =
          [](const ControllerOptions& options, FrameworkConfig& config) {
            OptionReader reader("holt-winters", options);
            reader.get("alpha", config.predictive.alpha);
            reader.get("beta", config.predictive.beta);
            reader.get("period", config.predictive.period);
            reader.get("horizon", config.predictive.horizon);
            reader.get("target_util", config.predictive.target_utilization);
            reader.get("scale_in_fraction",
                       config.predictive.scale_in_fraction);
            reader.get("cooldown", config.predictive.cooldown);
            reader.finish();
          },
      .build =
          [](const ControllerBuildContext& ctx) {
            FrameworkParts parts;
            parts.controller = std::make_unique<PredictiveController>(
                ctx.sim, ctx.system, ctx.warehouse, ctx.hw,
                ctx.config.predictive);
            return parts;
          },
  };
}

ControllerSpec hybrid_spec() {
  return ControllerSpec{
      .name = "hybrid",
      .display_name = "Hybrid-PredSCT",
      .description = "Holt-Winters forecast hardware scaling combined with "
                     "ConScale's online SCT soft-resource adaptation",
      .reference = "Qu et al., arXiv:1609.09224 + Liu et al., IPPS'20",
      .configure =
          [](const ControllerOptions& options, FrameworkConfig& config) {
            OptionReader reader("hybrid", options);
            reader.get("alpha", config.hybrid.forecast.alpha);
            reader.get("beta", config.hybrid.forecast.beta);
            reader.get("period", config.hybrid.forecast.period);
            reader.get("horizon", config.hybrid.forecast.horizon);
            reader.get("target_util",
                       config.hybrid.forecast.target_utilization);
            reader.get("scale_in_fraction",
                       config.hybrid.forecast.scale_in_fraction);
            reader.get("cooldown", config.hybrid.forecast.cooldown);
            reader.get("adapt_period", config.hybrid.periodic_adapt);
            reader.get("headroom", config.conscale_headroom);
            reader.finish();
          },
      .build =
          [](const ControllerBuildContext& ctx) {
            FrameworkParts parts;
            parts.estimator = std::make_unique<ConcurrencyEstimatorService>(
                ctx.sim, ctx.system, ctx.warehouse, ctx.config.estimator,
                ctx.run_context);
            parts.policy = std::make_unique<ConScalePolicy>(
                ctx.system, ctx.sw, ctx.config.targets, *parts.estimator,
                ctx.config.conscale_headroom);
            parts.controller = std::make_unique<HybridController>(
                ctx.sim, ctx.system, ctx.warehouse, ctx.hw, *parts.policy,
                ctx.config.hybrid);
            return parts;
          },
  };
}

}  // namespace

void register_zoo_controllers(ControllerRegistry& registry) {
  registry.register_spec(pi_spec());
  registry.register_spec(fuzzy_spec());
  registry.register_spec(vertical_spec());
  registry.register_spec(holt_winters_spec());
  registry.register_spec(hybrid_spec());
}

}  // namespace conscale::zoo
